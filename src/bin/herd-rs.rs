//! `herd-rs` — check litmus tests against a consistency model.
//!
//! ```text
//! herd-rs [OPTIONS] FILE.litmus     # check one test
//! herd-rs [OPTIONS] --library      # run every built-in paper test
//! herd-rs [OPTIONS] serve          # JSON-lines service on stdin/stdout
//! herd-rs [OPTIONS] --listen ADDR serve   # multi-client TCP verdict service
//! herd-rs client --connect ADDR    # forward stdin requests to a server
//! herd-rs [OPTIONS] conformance    # differential conformance campaign
//! herd-rs store VERB PATH...       # maintain a verdict store offline
//! ```
//!
//! `--jobs N` (`-j N`) checks candidate executions on `N` worker threads;
//! the default `0` means one per available hardware thread. Output is
//! byte-identical for every job count. `--early-exit` stops each check as
//! soon as its verdict is decided (counts become lower bounds).
//!
//! `--store PATH` routes checking through the persistent verdict store:
//! results already cached are replayed without enumerating anything, and
//! stdout stays byte-identical to a storeless run (cache observability
//! goes to stderr). `--salt STR` versions the cache keys — bump it when
//! checking semantics change. `--early-exit` is rejected alongside
//! `--store`, since its lower-bound counts must never be cached as exact.
//!
//! `--budget-candidates N`, `--budget-steps N`, and `--budget-ms N`
//! bound each check; a check that exceeds its budget reports a
//! structured *inconclusive* outcome (with exact partial tallies)
//! instead of hanging or dying. Inconclusive verdicts are never written
//! to a store. In `serve` mode `--budget-ms` becomes a per-request
//! deadline and `--max-request-bytes` caps request-line length.
//!
//! `serve --listen ADDR` swaps stdin/stdout for a TCP listener feeding
//! a bounded worker pool: `--server-workers` answer requests over a
//! shared store partitioned into `--shards` independent logs, and each
//! connection is governed by per-client admission control
//! (`--quota-requests`, `--max-pending`, `--max-conns`); over-quota
//! requests are answered with a typed rejection and the `client`
//! subcommand maps them to exit 10 (11 for overload). The protocol,
//! cache keys, and verdicts are identical to stdio `serve`; a 1-shard
//! family is byte-interchangeable with the sequential `--store` log,
//! and `store export` of an N-shard family equals the sequential
//! export byte for byte. The server holds every shard's advisory lock
//! for its whole lifetime, so offline `store` verbs cannot race it
//! (they exit 9); a stale lock left by a dead process is reclaimed
//! with a message naming the holder PID.
//!
//! `conformance` runs every generated cycle up to `--max-cycle-len`
//! plus the named library through all seven checkers, evaluates the
//! oracle invariants (native ≡ cat, SC ⊆ TSO ⊆ LKMM envelope, simulator
//! soundness, the §5.2 C11 divergence whitelist), and shrinks each
//! violation to a minimal discriminating litmus test. The default
//! output is a human table; `--json` prints a deterministic JSON report
//! (byte-identical on a warm re-run over the same `--store`).
//!
//! A campaign survives being killed: `--checkpoint PATH` writes a
//! framed, checksummed progress manifest every `--checkpoint-every`
//! units (and on every clean suspend), and `--resume` continues from
//! the latest valid frame — the final report is byte-identical to an
//! uninterrupted run, because completed units replay as store hits.
//! Resume refuses a checkpoint written under a different corpus/config
//! fingerprint. Worker faults (panics, wall-clock trips, transient
//! store I/O) are retried with seeded exponential backoff up to
//! `--max-retries`; a unit that keeps failing is quarantined into the
//! report's `failed_units` and the campaign completes *degraded*
//! (exit 8) instead of dying. `--stop-after N` suspends cleanly after
//! N units (exit 0) for tests and benchmarks.
//!
//! `store scrub|compact|export|merge|stats` maintains a verdict store
//! offline: `scrub` classifies torn-tail vs corrupt-frame damage (and
//! heals it with `--repair`), `compact` rewrites the log one frame per
//! distinct key via an atomic snapshot, `export` writes a compacted
//! copy without touching the source, `merge` folds one store into
//! another (source wins on conflicting keys; `--shards N` promotes
//! into an N-way family), and `stats` breaks a store down per shard
//! (records, superseded, quarantine state, total index size). Every
//! verb discovers sharded families on disk and walks all members. All
//! verbs take the store's advisory lock; a store held by a live
//! process exits 9.
//!
//! `conformance --algorithms` swaps the cycle corpus for the
//! real-algorithm litmus families (`--list-algorithms` enumerates
//! them): each family expands at `--algo-threads`/`--algo-sections`/
//! `--algo-retries` into program variants held to per-family safety
//! invariants across the axiomatic matrix, the hardware simulators,
//! real host threads, and exhaustive interleaving of the family's step
//! machine. `--families a,b` restricts the run; unknown names are
//! rejected at parse time.
//!
//! Exit codes: 0 success, 1 internal/transport failure, 2 usage error,
//! 3 input-file I/O error, 4 litmus parse error, 5 store error,
//! 6 single-test check inconclusive (budget exhausted), 7 conformance
//! campaign found discrepancies, 8 campaign degraded (units quarantined
//! after exhausting retries), 9 store locked by a live process,
//! 10 request rejected over-quota (`client`), 11 server overloaded
//! (`client`).

use linux_kernel_memory_model::algorithms::FamilyId;
use linux_kernel_memory_model::server::{serve_tcp, ServerConfig};
use linux_kernel_memory_model::service::json::Json;
use linux_kernel_memory_model::service::serve::{serve_with, ServeOptions};
use linux_kernel_memory_model::service::{BatchChecker, RecoveryReport, ShardedStore, VerdictStore};
use linux_kernel_memory_model::{
    Budget, CheckOutcome, Herd, InconclusiveReason, ModelChoice, MultiCheckOutcome, Report, Tally,
};
use lkmm_core::quota::ClientQuota;
use lkmm_exec::enumerate::{enumerate, EnumOptions};
use lkmm_exec::states::collect_states;
use lkmm_exec::MAX_JOBS;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: herd-rs [--model lkmm|lkmm-cat|sc|tso|armv8|power|c11] [--jobs N] [--early-exit] [--dot] [--states] [--store PATH] [--salt STR] [BUDGET] FILE.litmus\n\
     \x20      herd-rs --models M1,M2,... [--jobs N] [--queue-depth N] [BUDGET] FILE.litmus\n\
     \x20      herd-rs [--model M] [--jobs N] [--store PATH] [--salt STR] [BUDGET] --library\n\
     \x20      herd-rs [--model M] [--jobs N] [--store PATH] [--salt STR] [BUDGET] [--max-request-bytes N] [SERVER] serve\n\
     \x20      herd-rs client --connect ADDR\n\
     \x20      herd-rs [--jobs N] [--store PATH] [--salt STR] [BUDGET] [CONFORMANCE] conformance\n\
     \x20      herd-rs [--jobs N] [--store PATH] [--salt STR] [BUDGET] [ALGORITHMS] conformance --algorithms\n\
     \x20      herd-rs --list-algorithms\n\
     \x20      herd-rs store scrub [--repair] PATH | store compact PATH | store stats PATH |\n\
     \x20              store export SRC DST | store merge [--shards N] DST SRC...\n\
     \x20 --models M1,M2   decide several models from ONE enumeration pass per test; output is\n\
     \x20                  byte-identical to running --model M1, --model M2, ... in sequence\n\
     \x20 --jobs N, -j N   worker threads (0 = all hardware threads; output is identical for any N)\n\
     \x20 --queue-depth N  per-worker candidate queue bound (default 256)\n\
     \x20 --early-exit     stop each check once its verdict is decided (not with --store)\n\
     \x20 --store PATH     answer from / append to a persistent verdict store\n\
     \x20 --salt STR       version salt folded into every cache key\n\
     \x20 --enum-stats     report enumerator pruning counters on stderr (and a JSON section in\n\
     \x20                  `conformance --json`); with `--library --store`, `--models`, or\n\
     \x20                  `conformance`\n\
     \x20 serve            answer JSON-lines requests on stdin (check/batch/stats/flush)\n\
     \x20 SERVER options (`serve --listen` runs the multi-client TCP verdict service):\n\
     \x20 --listen ADDR    accept TCP clients on ADDR instead of stdin/stdout; the bound\n\
     \x20                  address is announced on stderr (use port 0 to pick a free port)\n\
     \x20 --shards N       partition the store into N independent logs (default 1; a 1-shard\n\
     \x20                  store is byte-interchangeable with the plain --store log)\n\
     \x20 --server-workers N   worker threads answering requests (default 4)\n\
     \x20 --durable        fsync each append before acknowledging the request\n\
     \x20 --quota-requests N   per-connection lifetime request allowance (over-quota\n\
     \x20                  requests are rejected with a typed error; `client` exits 10)\n\
     \x20 --max-pending N  per-connection admitted-request backlog bound (default 64;\n\
     \x20                  past it requests bounce as overloaded; `client` exits 11)\n\
     \x20 --max-conns N    concurrent connection cap (default 64)\n\
     \x20 --idle-timeout-ms N  drop a connection silent mid-line this long (default 30000;\n\
     \x20                  0 disables the slowloris defense)\n\
     \x20 client           forward stdin request lines to --connect ADDR, print responses\n\
     \x20 BUDGET options (exceeding one reports `inconclusive`, exit code 6 for single tests):\n\
     \x20 --budget-candidates N   stop a check after N candidate executions\n\
     \x20 --budget-steps N        stop a check after N model evaluation steps\n\
     \x20 --budget-ms N           per-check wall-clock bound (per-request in `serve`)\n\
     \x20 --max-request-bytes N   `serve` only: reject request lines longer than N bytes\n\
     \x20 CONFORMANCE options (a campaign runs all seven checkers; --model is rejected):\n\
     \x20 --max-cycle-len N   generate diy cycles up to length N, 0..=6 (default 4; shortest is 4)\n\
     \x20 --contended         add each cycle's contended twin (one location, colliding values)\n\
     \x20 --no-library        exclude the named paper library from the corpus\n\
     \x20 --no-shrink         report discrepancies without minimizing them\n\
     \x20 --sim-iterations N  per-arch simulator runs per forbidden test (default 200, 0 = off)\n\
     \x20 --sim-seed N        base seed for the simulator soundness pass (default 7)\n\
     \x20 --sim-stride N      simulate every Nth corpus test (default 1; not with --algorithms)\n\
     \x20 --json              deterministic JSON report instead of the human table\n\
     \x20 --checkpoint PATH   write a crash-safe progress manifest alongside the campaign\n\
     \x20 --checkpoint-every N  units between checkpoint frames (default 64)\n\
     \x20 --resume            continue from the checkpoint's latest valid frame (needs\n\
     \x20                     --checkpoint; refuses a manifest from a different config)\n\
     \x20 --max-retries N     attempts per faulting unit before quarantine (default 2)\n\
     \x20 --retry-base-ms N   base backoff delay between retries, 0 = none (default 25)\n\
     \x20 --stop-after N      suspend cleanly after N units (exit 0; resume to continue)\n\
     \x20 STORE verbs (offline maintenance; every verb takes the store's advisory lock\n\
     \x20 and walks every member of a sharded family):\n\
     \x20 store scrub PATH    report torn/corrupt damage; with --repair, heal it in place\n\
     \x20 store compact PATH  rewrite the log one frame per distinct key (atomic snapshot)\n\
     \x20 store stats PATH    per-shard record/superseded/quarantine counts and index size\n\
     \x20 store export SRC DST  write a compacted copy of SRC to DST; SRC is untouched\n\
     \x20                     (a sharded SRC merges into one key-ordered snapshot)\n\
     \x20 store merge DST SRC...  fold each SRC into DST (source wins on conflicts);\n\
     \x20                     --shards N promotes the sources into an N-way family\n\
     \x20 ALGORITHMS options (`conformance --algorithms` checks the real-algorithm families):\n\
     \x20 --algorithms        run the algorithm-family campaign instead of the cycle corpus\n\
     \x20 --families F1,F2    restrict to the named families (see --list-algorithms)\n\
     \x20 --algo-threads N    contending threads per family (default 2)\n\
     \x20 --algo-sections N   critical sections / operations per thread (default 1)\n\
     \x20 --algo-retries N    retry-loop depth for bounded retry loops (default 1)\n\
     \x20 --list-algorithms   list the algorithm families (name, invariant, description)\n\
     \x20 exit codes: 0 ok, 1 internal, 2 usage, 3 input I/O, 4 parse, 5 store, 6 inconclusive,\n\
     \x20             7 conformance discrepancies, 8 campaign degraded (units quarantined),\n\
     \x20             9 store locked by a live process, 10 request over quota (`client`),\n\
     \x20             11 server overloaded (`client`)";

const EXIT_INTERNAL: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_INPUT: u8 = 3;
const EXIT_PARSE: u8 = 4;
const EXIT_STORE: u8 = 5;
const EXIT_INCONCLUSIVE: u8 = 6;
const EXIT_DISCREPANCY: u8 = 7;
const EXIT_DEGRADED: u8 = 8;
const EXIT_LOCKED: u8 = 9;
const EXIT_OVER_QUOTA: u8 = 10;
const EXIT_OVERLOADED: u8 = 11;

/// Cycle lengths past this explode combinatorially; a bigger campaign
/// should be driven through the library API, not one CLI invocation.
const MAX_CAMPAIGN_CYCLE_LEN: usize = 6;

/// Queue depths beyond this are a typo, not a tuning choice.
const MAX_QUEUE_DEPTH: usize = 1 << 20;

struct Cli {
    model: ModelChoice,
    model_given: bool,
    models: Option<Vec<ModelChoice>>,
    file: Option<String>,
    serve_mode: bool,
    conformance_mode: bool,
    run_library: bool,
    dot: bool,
    states: bool,
    jobs: usize,
    queue_depth: Option<usize>,
    early_exit: bool,
    store: Option<String>,
    salt: String,
    budget_candidates: Option<u64>,
    budget_steps: Option<u64>,
    budget_ms: Option<u64>,
    max_request_bytes: Option<usize>,
    max_cycle_len: Option<usize>,
    contended: bool,
    no_library: bool,
    no_shrink: bool,
    json: bool,
    sim_iterations: u64,
    sim_seed: u64,
    sim_stride: usize,
    sim_stride_given: bool,
    enum_stats: bool,
    conformance_flag_seen: bool,
    algorithms: bool,
    families: Vec<FamilyId>,
    algo_threads: Option<usize>,
    algo_sections: Option<usize>,
    algo_retries: Option<usize>,
    list_algorithms: bool,
    checkpoint: Option<String>,
    checkpoint_every: Option<usize>,
    resume: bool,
    max_retries: Option<u32>,
    retry_base_ms: Option<u64>,
    stop_after: Option<usize>,
    store_cmd: bool,
    store_args: Vec<String>,
    repair: bool,
    listen: Option<String>,
    shards: Option<usize>,
    server_workers: Option<usize>,
    durable: bool,
    quota_requests: Option<u64>,
    max_pending: Option<usize>,
    max_conns: Option<usize>,
    idle_timeout_ms: Option<u64>,
    client_mode: bool,
    connect: Option<String>,
}

fn usage_fail(message: &str) -> ExitCode {
    eprintln!("herd-rs: {message} (try --help)");
    ExitCode::from(EXIT_USAGE)
}

fn fail_code(code: u8, message: &str) -> ExitCode {
    eprintln!("herd-rs: {message}");
    ExitCode::from(code)
}

fn parse_count(flag: &str, value: &str) -> Result<u64, String> {
    match value.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} needs a positive integer, got `{value}`")),
    }
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        model: ModelChoice::Lkmm,
        model_given: false,
        models: None,
        file: None,
        serve_mode: false,
        conformance_mode: false,
        run_library: false,
        dot: false,
        states: false,
        jobs: 0, // 0 = available parallelism
        queue_depth: None,
        early_exit: false,
        store: None,
        salt: String::new(),
        budget_candidates: None,
        budget_steps: None,
        budget_ms: None,
        max_request_bytes: None,
        max_cycle_len: None,
        contended: false,
        no_library: false,
        no_shrink: false,
        json: false,
        sim_iterations: 200,
        sim_seed: 7,
        sim_stride: 1,
        sim_stride_given: false,
        enum_stats: false,
        conformance_flag_seen: false,
        algorithms: false,
        families: Vec::new(),
        algo_threads: None,
        algo_sections: None,
        algo_retries: None,
        list_algorithms: false,
        checkpoint: None,
        checkpoint_every: None,
        resume: false,
        max_retries: None,
        retry_base_ms: None,
        stop_after: None,
        store_cmd: false,
        store_args: Vec::new(),
        repair: false,
        listen: None,
        shards: None,
        server_workers: None,
        durable: false,
        quota_requests: None,
        max_pending: None,
        max_conns: None,
        idle_timeout_ms: None,
        client_mode: false,
        connect: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let n = it.next().ok_or("--jobs needs an argument")?;
                cli.jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs needs a non-negative integer, got `{n}`"))?;
                if cli.jobs > MAX_JOBS {
                    return Err(format!("--jobs {n} exceeds the maximum of {MAX_JOBS}"));
                }
            }
            "--queue-depth" => {
                let n = it.next().ok_or("--queue-depth needs an argument")?;
                let depth = n.parse::<usize>().ok().filter(|d| (1..=MAX_QUEUE_DEPTH).contains(d));
                cli.queue_depth = Some(depth.ok_or_else(|| {
                    format!("--queue-depth needs an integer in 1..={MAX_QUEUE_DEPTH}, got `{n}`")
                })?);
            }
            "--early-exit" => cli.early_exit = true,
            "--model" | "-m" => {
                let name = it.next().ok_or("--model needs an argument")?;
                cli.model = ModelChoice::parse_name(name).ok_or_else(|| {
                    format!("unknown model `{name}` (lkmm, lkmm-cat, sc, tso, armv8, power, c11)")
                })?;
                cli.model_given = true;
            }
            "--models" => {
                let list = it.next().ok_or("--models needs a comma-separated list of models")?;
                let mut choices = Vec::new();
                for name in list.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        return Err(format!("--models got an empty model name in `{list}`"));
                    }
                    choices.push(ModelChoice::parse_name(name).ok_or_else(|| {
                        format!(
                            "unknown model `{name}` in --models \
                             (lkmm, lkmm-cat, sc, tso, armv8, power, c11)"
                        )
                    })?);
                }
                cli.models = Some(choices);
            }
            "--store" => {
                let path = it.next().ok_or("--store needs a path argument")?;
                cli.store = Some(path.clone());
            }
            "--salt" => {
                let salt = it.next().ok_or("--salt needs an argument")?;
                cli.salt = salt.clone();
            }
            "--budget-candidates" => {
                let n = it.next().ok_or("--budget-candidates needs an argument")?;
                cli.budget_candidates = Some(parse_count("--budget-candidates", n)?);
            }
            "--budget-steps" => {
                let n = it.next().ok_or("--budget-steps needs an argument")?;
                cli.budget_steps = Some(parse_count("--budget-steps", n)?);
            }
            "--budget-ms" => {
                let n = it.next().ok_or("--budget-ms needs an argument")?;
                cli.budget_ms = Some(parse_count("--budget-ms", n)?);
            }
            "--max-request-bytes" => {
                let n = it.next().ok_or("--max-request-bytes needs an argument")?;
                cli.max_request_bytes =
                    Some(parse_count("--max-request-bytes", n)? as usize);
            }
            "--max-cycle-len" => {
                let n = it.next().ok_or("--max-cycle-len needs an argument")?;
                let len = n
                    .parse::<usize>()
                    .ok()
                    .filter(|l| *l <= MAX_CAMPAIGN_CYCLE_LEN);
                cli.max_cycle_len = Some(len.ok_or_else(|| {
                    format!(
                        "--max-cycle-len needs an integer in 0..={MAX_CAMPAIGN_CYCLE_LEN}, \
                         got `{n}` (longer campaigns explode combinatorially; drive them \
                         through the conformance library API instead)"
                    )
                })?);
                cli.conformance_flag_seen = true;
            }
            "--contended" => {
                cli.contended = true;
                cli.conformance_flag_seen = true;
            }
            "--no-library" => {
                cli.no_library = true;
                cli.conformance_flag_seen = true;
            }
            "--no-shrink" => {
                cli.no_shrink = true;
                cli.conformance_flag_seen = true;
            }
            "--json" => {
                cli.json = true;
                cli.conformance_flag_seen = true;
            }
            "--sim-iterations" => {
                let n = it.next().ok_or("--sim-iterations needs an argument")?;
                cli.sim_iterations = n.parse::<u64>().map_err(|_| {
                    format!("--sim-iterations needs a non-negative integer, got `{n}`")
                })?;
                cli.conformance_flag_seen = true;
            }
            "--sim-seed" => {
                let n = it.next().ok_or("--sim-seed needs an argument")?;
                cli.sim_seed = n
                    .parse::<u64>()
                    .map_err(|_| format!("--sim-seed needs a non-negative integer, got `{n}`"))?;
                cli.conformance_flag_seen = true;
            }
            "--sim-stride" => {
                let n = it.next().ok_or("--sim-stride needs an argument")?;
                cli.sim_stride = parse_count("--sim-stride", n)? as usize;
                cli.sim_stride_given = true;
                cli.conformance_flag_seen = true;
            }
            "--checkpoint" => {
                let path = it.next().ok_or("--checkpoint needs a path argument")?;
                cli.checkpoint = Some(path.clone());
                cli.conformance_flag_seen = true;
            }
            "--checkpoint-every" => {
                let n = it.next().ok_or("--checkpoint-every needs an argument")?;
                cli.checkpoint_every = Some(parse_count("--checkpoint-every", n)? as usize);
                cli.conformance_flag_seen = true;
            }
            "--resume" => {
                cli.resume = true;
                cli.conformance_flag_seen = true;
            }
            "--max-retries" => {
                let n = it.next().ok_or("--max-retries needs an argument")?;
                cli.max_retries = Some(n.parse::<u32>().map_err(|_| {
                    format!("--max-retries needs a non-negative integer, got `{n}`")
                })?);
                cli.conformance_flag_seen = true;
            }
            "--retry-base-ms" => {
                let n = it.next().ok_or("--retry-base-ms needs an argument")?;
                cli.retry_base_ms = Some(n.parse::<u64>().map_err(|_| {
                    format!("--retry-base-ms needs a non-negative integer, got `{n}`")
                })?);
                cli.conformance_flag_seen = true;
            }
            "--stop-after" => {
                let n = it.next().ok_or("--stop-after needs an argument")?;
                cli.stop_after = Some(parse_count("--stop-after", n)? as usize);
                cli.conformance_flag_seen = true;
            }
            "--repair" => cli.repair = true,
            "--listen" => {
                let addr = it.next().ok_or("--listen needs an address argument")?;
                cli.listen = Some(addr.clone());
            }
            "--shards" => {
                let n = it.next().ok_or("--shards needs an argument")?;
                let shards = n.parse::<usize>().ok().filter(|s| (1..=64).contains(s));
                cli.shards = Some(
                    shards
                        .ok_or_else(|| format!("--shards needs an integer in 1..=64, got `{n}`"))?,
                );
            }
            "--server-workers" => {
                let n = it.next().ok_or("--server-workers needs an argument")?;
                cli.server_workers = Some(parse_count("--server-workers", n)? as usize);
            }
            "--durable" => cli.durable = true,
            "--quota-requests" => {
                let n = it.next().ok_or("--quota-requests needs an argument")?;
                cli.quota_requests = Some(parse_count("--quota-requests", n)?);
            }
            "--max-pending" => {
                let n = it.next().ok_or("--max-pending needs an argument")?;
                cli.max_pending = Some(parse_count("--max-pending", n)? as usize);
            }
            "--max-conns" => {
                let n = it.next().ok_or("--max-conns needs an argument")?;
                cli.max_conns = Some(parse_count("--max-conns", n)? as usize);
            }
            "--idle-timeout-ms" => {
                let n = it.next().ok_or("--idle-timeout-ms needs an argument")?;
                cli.idle_timeout_ms = Some(n.parse::<u64>().map_err(|_| {
                    format!("--idle-timeout-ms needs a non-negative integer, got `{n}`")
                })?);
            }
            "--connect" => {
                let addr = it.next().ok_or("--connect needs an address argument")?;
                cli.connect = Some(addr.clone());
            }
            "--algorithms" => {
                cli.algorithms = true;
                cli.conformance_flag_seen = true;
            }
            "--families" => {
                let list = it.next().ok_or("--families needs a comma-separated list")?;
                for name in list.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        return Err(format!("--families got an empty family name in `{list}`"));
                    }
                    cli.families.push(FamilyId::parse_name(name).ok_or_else(|| {
                        let known = FamilyId::ALL
                            .iter()
                            .map(|f| f.name())
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!("unknown algorithm family `{name}` ({known})")
                    })?);
                }
                cli.conformance_flag_seen = true;
            }
            "--algo-threads" => {
                let n = it.next().ok_or("--algo-threads needs an argument")?;
                cli.algo_threads = Some(parse_count("--algo-threads", n)? as usize);
                cli.conformance_flag_seen = true;
            }
            "--algo-sections" => {
                let n = it.next().ok_or("--algo-sections needs an argument")?;
                cli.algo_sections = Some(parse_count("--algo-sections", n)? as usize);
                cli.conformance_flag_seen = true;
            }
            "--algo-retries" => {
                let n = it.next().ok_or("--algo-retries needs an argument")?;
                cli.algo_retries = Some(parse_count("--algo-retries", n)? as usize);
                cli.conformance_flag_seen = true;
            }
            "--list-algorithms" => cli.list_algorithms = true,
            "--enum-stats" => cli.enum_stats = true,
            "--library" | "-l" => cli.run_library = true,
            "--dot" => cli.dot = true,
            "--states" | "-s" => cli.states = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            "serve"
                if !cli.serve_mode && !cli.conformance_mode && !cli.store_cmd
                    && !cli.client_mode && cli.file.is_none() =>
            {
                cli.serve_mode = true;
            }
            "conformance"
                if !cli.serve_mode && !cli.conformance_mode && !cli.store_cmd
                    && !cli.client_mode && cli.file.is_none() =>
            {
                cli.conformance_mode = true;
            }
            "store"
                if !cli.serve_mode && !cli.conformance_mode && !cli.store_cmd
                    && !cli.client_mode && cli.file.is_none() =>
            {
                cli.store_cmd = true;
            }
            "client"
                if !cli.serve_mode && !cli.conformance_mode && !cli.store_cmd
                    && !cli.client_mode && cli.file.is_none() =>
            {
                cli.client_mode = true;
            }
            other => {
                if cli.store_cmd {
                    cli.store_args.push(other.to_string());
                    continue;
                }
                if cli.serve_mode {
                    return Err(format!("unexpected argument `{other}` after `serve`"));
                }
                if cli.client_mode {
                    return Err(format!("unexpected argument `{other}` after `client`"));
                }
                if cli.conformance_mode {
                    return Err(format!("unexpected argument `{other}` after `conformance`"));
                }
                if let Some(first) = &cli.file {
                    return Err(format!("unexpected second input file `{other}` (after `{first}`)"));
                }
                cli.file = Some(other.to_string());
            }
        }
    }
    if cli.serve_mode && (cli.run_library || cli.dot || cli.states || cli.early_exit) {
        return Err("`serve` takes only --model, --jobs, --queue-depth, --store, --salt, \
                    --budget-*, --max-request-bytes, and the --listen server options"
            .to_string());
    }
    if cli.client_mode {
        if cli.connect.is_none() {
            return Err("`client` needs --connect ADDR (the server to talk to)".to_string());
        }
        if cli.serve_mode
            || cli.conformance_mode
            || cli.store_cmd
            || cli.run_library
            || cli.file.is_some()
            || cli.model_given
            || cli.models.is_some()
            || cli.store.is_some()
            || cli.listen.is_some()
            || cli.conformance_flag_seen
            || cli.enum_stats
            || cli.list_algorithms
        {
            return Err("`client` takes only --connect ADDR".to_string());
        }
        return Ok(Some(cli));
    }
    if cli.connect.is_some() {
        return Err("--connect only applies to `client`".to_string());
    }
    if cli.listen.is_some() && !cli.serve_mode {
        return Err("--listen only applies to `serve`".to_string());
    }
    if cli.listen.is_none()
        && (cli.server_workers.is_some()
            || cli.durable
            || cli.quota_requests.is_some()
            || cli.max_pending.is_some()
            || cli.max_conns.is_some()
            || cli.idle_timeout_ms.is_some())
    {
        return Err("--server-workers/--durable/--quota-requests/--max-pending/--max-conns/\
                    --idle-timeout-ms only apply to `serve --listen`"
            .to_string());
    }
    if cli.shards.is_some()
        && !(cli.serve_mode && cli.listen.is_some())
        && !(cli.store_cmd && cli.store_args.first().map(String::as_str) == Some("merge"))
    {
        return Err(
            "--shards applies to `serve --listen` and `store merge`".to_string(),
        );
    }
    if cli.conformance_mode
        && (cli.run_library || cli.dot || cli.states || cli.early_exit || cli.model_given)
    {
        return Err("`conformance` runs all models over its own corpus; it takes only --jobs, \
                    --queue-depth, --store, --salt, --budget-*, and the conformance flags"
            .to_string());
    }
    if cli.list_algorithms {
        if cli.serve_mode
            || cli.conformance_mode
            || cli.store_cmd
            || cli.run_library
            || cli.file.is_some()
            || cli.models.is_some()
            || cli.model_given
            || cli.conformance_flag_seen
            || cli.enum_stats
            || cli.store.is_some()
        {
            return Err("--list-algorithms takes no other options".to_string());
        }
        return Ok(Some(cli));
    }
    if cli.store_cmd {
        if cli.run_library
            || cli.dot
            || cli.states
            || cli.early_exit
            || cli.model_given
            || cli.models.is_some()
            || cli.enum_stats
            || cli.store.is_some()
            || cli.conformance_flag_seen
            || cli.budget_candidates.is_some()
            || cli.budget_steps.is_some()
            || cli.budget_ms.is_some()
            || cli.max_request_bytes.is_some()
        {
            return Err("`store` takes a verb (scrub/compact/export/merge/stats), its path \
                        arguments, --repair (scrub only), and --shards (merge only)"
                .to_string());
        }
        if cli.store_args.is_empty() {
            return Err(
                "`store` needs a verb: scrub, compact, export, merge, or stats".to_string()
            );
        }
    }
    if cli.repair
        && !(cli.store_cmd && cli.store_args.first().map(String::as_str) == Some("scrub"))
    {
        return Err("--repair only applies to `store scrub`".to_string());
    }
    if cli.conformance_flag_seen && !cli.conformance_mode {
        return Err("--max-cycle-len/--contended/--no-library/--no-shrink/--json/--sim-*/\
                    --algorithms/--families/--algo-*/--checkpoint*/--resume/--max-retries/\
                    --retry-base-ms/--stop-after only apply to `conformance`"
            .to_string());
    }
    if cli.resume && cli.checkpoint.is_none() {
        return Err("--resume needs --checkpoint PATH (the manifest to resume from)".to_string());
    }
    if cli.checkpoint_every.is_some() && cli.checkpoint.is_none() {
        return Err("--checkpoint-every needs --checkpoint PATH".to_string());
    }
    if cli.algorithms
        && (cli.checkpoint.is_some()
            || cli.checkpoint_every.is_some()
            || cli.resume
            || cli.max_retries.is_some()
            || cli.retry_base_ms.is_some()
            || cli.stop_after.is_some())
    {
        return Err("--checkpoint/--checkpoint-every/--resume/--max-retries/--retry-base-ms/\
                    --stop-after drive the cycle campaign; `--algorithms` runs its family \
                    corpus in one piece"
            .to_string());
    }
    if !cli.algorithms
        && (!cli.families.is_empty()
            || cli.algo_threads.is_some()
            || cli.algo_sections.is_some()
            || cli.algo_retries.is_some())
    {
        return Err("--families/--algo-threads/--algo-sections/--algo-retries only apply to \
                    `conformance --algorithms`"
            .to_string());
    }
    if cli.algorithms
        && (cli.max_cycle_len.is_some()
            || cli.contended
            || cli.no_library
            || cli.sim_stride_given)
    {
        return Err("--max-cycle-len/--contended/--no-library/--sim-stride describe the cycle \
                    corpus; `--algorithms` replaces it with the family programs"
            .to_string());
    }
    if cli.enum_stats
        && !(cli.conformance_mode
            || (cli.run_library && cli.store.is_some())
            || cli.models.is_some())
    {
        return Err(
            "--enum-stats applies to `conformance`, `--models`, or `--library --store`"
                .to_string(),
        );
    }
    if cli.max_request_bytes.is_some() && !cli.serve_mode {
        return Err("--max-request-bytes only applies to `serve`".to_string());
    }
    if cli.models.is_some() {
        if cli.model_given {
            return Err("--models replaces --model; give the whole list to --models".to_string());
        }
        if cli.serve_mode
            || cli.conformance_mode
            || cli.run_library
            || cli.dot
            || cli.states
            || cli.early_exit
            || cli.store.is_some()
        {
            return Err("--models checks one FILE.litmus and takes only --jobs, --queue-depth, \
                        and --budget-* (use `conformance` for store-backed multi-model \
                        campaigns)"
                .to_string());
        }
    }
    if cli.run_library && cli.file.is_some() {
        return Err("--library does not take an input file".to_string());
    }
    if cli.store.is_some() && cli.early_exit {
        return Err(
            "--early-exit cannot be combined with --store (its counts are lower bounds and \
             must not be cached as exact)"
                .to_string(),
        );
    }
    Ok(Some(cli))
}

impl Cli {
    /// The per-check budget the flags describe. In `serve` mode the
    /// wall-clock axis is handled per request instead (see `main`).
    fn budget(&self, include_time: bool) -> Budget {
        let mut budget = Budget::default();
        if let Some(n) = self.budget_candidates {
            budget = budget.with_max_candidates(n);
        }
        if let Some(n) = self.budget_steps {
            budget = budget.with_max_eval_steps(n);
        }
        if include_time {
            if let Some(ms) = self.budget_ms {
                budget = budget.with_time_limit(Duration::from_millis(ms));
            }
        }
        budget
    }
}

/// Open the store named by `--store` (or an in-memory one for `serve`
/// without persistence), reporting recovery events on stderr.
fn open_store(path: Option<&str>) -> Result<VerdictStore, (u8, String)> {
    let Some(path) = path else {
        return Ok(VerdictStore::in_memory());
    };
    let store = VerdictStore::open(path).map_err(|e| {
        let code = match &e {
            lkmm_service::StoreError::Locked { .. } => EXIT_LOCKED,
            lkmm_service::StoreError::Io(_) => EXIT_STORE,
        };
        (code, format!("{path}: {e}"))
    })?;
    report_recovery(path, &store.recovery());
    Ok(store)
}

/// Narrate open-time recovery events on stderr: reclaimed stale locks
/// (naming the dead holder), quarantined contents, truncated tails.
fn report_recovery(path: &str, recovery: &RecoveryReport) {
    if let Some(pid) = recovery.reclaimed_pid {
        eprintln!("herd-rs: store {path}: reclaimed stale lock held by dead process {pid}");
    }
    if recovery.quarantined {
        eprintln!("herd-rs: store {path}: unrecognized contents quarantined to {path}.corrupt");
    } else if recovery.truncated_bytes() > 0 {
        eprintln!(
            "herd-rs: store {path}: recovered {} records, dropped {} trailing bytes \
             ({} torn, {} from {} corrupt frames)",
            recovery.records,
            recovery.truncated_bytes(),
            recovery.torn_bytes,
            recovery.corrupt_bytes,
            recovery.corrupt_frames
        );
    }
}

fn library_line(name: &str, result: &lkmm_exec::TestResult) -> String {
    format!(
        "{:26} {:8} (candidates={}, allowed={}, witnesses={})",
        name,
        result.verdict.to_string(),
        result.candidates,
        result.allowed,
        result.witnesses
    )
}

fn inconclusive_line(name: &str, reason: &InconclusiveReason, partial: &Tally) -> String {
    format!(
        "{:26} {:8} ({reason}; partial: candidates={}, allowed={}, witnesses={})",
        name, "Inconc", partial.candidates, partial.allowed, partial.witnesses
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => return usage_fail(&e),
    };

    if cli.list_algorithms {
        return list_algorithms_mode();
    }

    if cli.client_mode {
        let addr = cli.connect.as_deref().expect("parse_args requires --connect");
        return client_mode(addr);
    }

    if cli.serve_mode {
        return if let Some(addr) = cli.listen.as_deref() {
            serve_tcp_mode(&cli, addr)
        } else {
            serve_mode(&cli)
        };
    }

    if cli.store_cmd {
        return store_cmd_mode(&cli);
    }

    if cli.conformance_mode {
        return if cli.algorithms { algo_conformance_mode(&cli) } else { conformance_mode(&cli) };
    }

    if cli.run_library {
        return if let Some(store_path) = cli.store.as_deref() {
            library_via_store(&cli, store_path)
        } else {
            library_plain(&cli)
        };
    }

    let Some(path) = cli.file.clone() else {
        return usage_fail("no input file");
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail_code(EXIT_INPUT, &format!("{path}: {e}")),
    };
    let test = match lkmm_litmus::parse(&source) {
        Ok(t) => t,
        Err(e) => return fail_code(EXIT_PARSE, &format!("{path}: {e}")),
    };

    if let Some(models) = cli.models.as_deref() {
        return multi_mode(&cli, models, &test, &path);
    }

    let outcome = if let Some(store_path) = cli.store.as_deref() {
        let model = cli.model.model();
        let store = match open_store(Some(store_path)) {
            Ok(s) => s,
            Err((code, e)) => return fail_code(code, &e),
        };
        let mut checker = BatchChecker::new(model.as_ref(), store, &cli.salt)
            .with_jobs(cli.jobs)
            .with_queue_depth(cli.queue_depth.unwrap_or(256))
            .with_budget(cli.budget(true));
        let outcome = match checker.check_one(&test) {
            Ok(o) => o,
            Err(e) => return fail_code(EXIT_STORE, &format!("{store_path}: {e}")),
        };
        if let Err(e) = checker.flush() {
            return fail_code(EXIT_STORE, &format!("{store_path}: {e}"));
        }
        eprintln!("herd-rs: store {store_path}: {}", outcome.provenance);
        GovernedOutcome { model_name: model.name().to_string(), outcome: outcome.outcome }
    } else {
        let mut herd = Herd::new(cli.model)
            .with_jobs(cli.jobs)
            .with_early_exit(cli.early_exit)
            .with_budget(cli.budget(true));
        if let Some(depth) = cli.queue_depth {
            herd = herd.with_queue_depth(depth);
        }
        let governed = herd.check_governed(&test);
        GovernedOutcome { model_name: governed.model_name, outcome: governed.outcome }
    };

    let result = match outcome.outcome {
        CheckOutcome::Complete(result) => result,
        CheckOutcome::Inconclusive { reason, partial } => {
            return fail_code(
                EXIT_INCONCLUSIVE,
                &format!(
                    "{path}: inconclusive: {reason} (partial: candidates={}, allowed={}, \
                     witnesses={})",
                    partial.candidates, partial.allowed, partial.witnesses
                ),
            );
        }
    };
    let report = Report {
        test_name: test.name.clone(),
        model_name: outcome.model_name,
        result,
    };

    println!("{report}");
    if cli.states {
        match collect_states(cli.model.model().as_ref(), &test, &EnumOptions::default()) {
            Ok(summary) => println!("\n{summary}"),
            Err(e) => eprintln!("states: {e}"),
        }
    }
    if cli.dot {
        if let Ok(execs) = enumerate(&test, &EnumOptions::default()) {
            if let Some(x) = execs.iter().find(|x| x.satisfies_prop(&test.condition.prop)) {
                println!("\n// witness candidate execution\n{}", x.to_dot());
            }
        }
    }
    ExitCode::SUCCESS
}

/// The single-file checking paths (store and storeless) converge here.
struct GovernedOutcome {
    model_name: String,
    outcome: CheckOutcome,
}

/// `--models a,b,c FILE`: decide every listed model from one enumeration
/// pass. Stdout is byte-identical to running `--model a FILE`,
/// `--model b FILE`, ... in sequence; a budget trip makes *all* models
/// inconclusive together (their partial tallies cover the same
/// candidates) and exits 6. With `--enum-stats` the shared pass's
/// pruning counters go to stderr — one set for all N models, which is
/// the point of the single-enumeration path.
fn multi_mode(
    cli: &Cli,
    models: &[ModelChoice],
    test: &lkmm_litmus::Test,
    path: &str,
) -> ExitCode {
    let stats = cli
        .enum_stats
        .then(|| std::sync::Arc::new(lkmm_exec::EnumStats::default()));
    let dp_stats = cli
        .enum_stats
        .then(|| std::sync::Arc::new(lkmm_exec::DataPlaneStats::default()));
    let mut herd = Herd::new_multi(models)
        .with_options(EnumOptions { stats: stats.clone(), ..EnumOptions::default() })
        .with_pipeline_stats(dp_stats.clone())
        .with_jobs(cli.jobs)
        .with_budget(cli.budget(true));
    if let Some(depth) = cli.queue_depth {
        herd = herd.with_queue_depth(depth);
    }
    let governed = herd.check_multi_governed(test);
    match &governed.outcome {
        MultiCheckOutcome::Complete(_) => {
            for report in governed.reports().expect("outcome is Complete") {
                println!("{report}");
            }
            if let Some(stats) = &stats {
                let e = stats.snapshot();
                eprintln!(
                    "herd-rs: enumeration: {} rf prefixes pruned, {} co pairs saturated, \
                     {} branched, {} leaves tested, {} candidates emitted",
                    e.rf_prefixes_pruned,
                    e.co_pairs_saturated,
                    e.co_pairs_branched,
                    e.co_leaves_tested,
                    e.candidates_emitted
                );
            }
            if let Some(dp) = &dp_stats {
                eprintln!("herd-rs: {}", data_plane_line(&dp.snapshot()));
            }
            ExitCode::SUCCESS
        }
        MultiCheckOutcome::Inconclusive { reason, partials } => {
            for (name, partial) in governed.model_names.iter().zip(partials) {
                eprintln!(
                    "herd-rs: {path}: {name}: inconclusive: {reason} (partial: candidates={}, \
                     allowed={}, witnesses={})",
                    partial.candidates, partial.allowed, partial.witnesses
                );
            }
            ExitCode::from(EXIT_INCONCLUSIVE)
        }
    }
}

/// `herd-rs conformance`: run a differential campaign and report.
/// The report (stdout) is deterministic; cache observability goes to
/// stderr. Exit 7 when any oracle found a discrepancy.
fn conformance_mode(cli: &Cli) -> ExitCode {
    use linux_kernel_memory_model::conformance::{
        human_table, json_report, observability_lines, run_campaign, CampaignConfig,
        CampaignError, ResilienceConfig, SimConfig,
    };
    let resilience_defaults = ResilienceConfig::default();
    let cfg = CampaignConfig {
        max_cycle_len: cli.max_cycle_len.unwrap_or(4),
        contended: cli.contended,
        include_library: !cli.no_library,
        salt: cli.salt.clone(),
        jobs: cli.jobs,
        queue_depth: cli.queue_depth.unwrap_or(256),
        budget: cli.budget(true),
        store_path: cli.store.as_ref().map(std::path::PathBuf::from),
        sim: SimConfig {
            iterations: cli.sim_iterations,
            seed: cli.sim_seed,
            stride: cli.sim_stride,
        },
        shrink: !cli.no_shrink,
        enum_stats: cli
            .enum_stats
            .then(|| std::sync::Arc::new(lkmm_exec::EnumStats::default())),
        data_plane: cli
            .enum_stats
            .then(|| std::sync::Arc::new(lkmm_exec::DataPlaneStats::default())),
        resilience: ResilienceConfig {
            checkpoint: cli.checkpoint.as_ref().map(std::path::PathBuf::from),
            checkpoint_every: cli.checkpoint_every.unwrap_or(resilience_defaults.checkpoint_every),
            max_retries: cli.max_retries.unwrap_or(resilience_defaults.max_retries),
            retry_base_ms: cli.retry_base_ms.unwrap_or(resilience_defaults.retry_base_ms),
            resume: cli.resume,
            stop_after: cli.stop_after,
            ..resilience_defaults
        },
    };
    let report = match run_campaign(&cfg) {
        Ok(r) => r,
        Err(e @ CampaignError::Suspended { .. }) => {
            eprintln!("herd-rs: conformance: {e}");
            return ExitCode::SUCCESS;
        }
        Err(e @ CampaignError::Locked { .. }) => {
            return fail_code(EXIT_LOCKED, &format!("conformance: {e}"));
        }
        Err(e @ CampaignError::CheckpointMismatch { .. }) => {
            return fail_code(EXIT_USAGE, &format!("conformance: {e}"));
        }
        Err(CampaignError::Store(e)) => {
            return fail_code(EXIT_STORE, &format!("conformance: {e}"));
        }
        Err(CampaignError::Checkpoint(e)) => {
            return fail_code(EXIT_STORE, &format!("conformance: checkpoint: {e}"));
        }
        Err(e) => return fail_code(EXIT_INTERNAL, &format!("conformance: {e}")),
    };
    eprint!("{}", observability_lines(&report));
    if cli.json {
        println!("{}", json_report(&report, &cfg));
    } else {
        print!("{}", human_table(&report));
    }
    if !report.clean() {
        ExitCode::from(EXIT_DISCREPANCY)
    } else if report.degraded() {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}

/// `herd-rs conformance --algorithms`: the real-algorithm family
/// campaign. Same output discipline as the cycle campaign: the report
/// (stdout) is deterministic, cache observability goes to stderr, exit
/// 7 when any per-family oracle found a discrepancy.
fn algo_conformance_mode(cli: &Cli) -> ExitCode {
    use linux_kernel_memory_model::algorithms::FamilyParams;
    use linux_kernel_memory_model::conformance::{
        algo_human_table, algo_json_report, algo_observability_lines, run_algo_campaign,
        AlgoConfig, CampaignError, SimConfig,
    };
    let defaults = FamilyParams::default();
    let cfg = AlgoConfig {
        families: cli.families.clone(),
        params: FamilyParams {
            threads: cli.algo_threads.unwrap_or(defaults.threads),
            sections: cli.algo_sections.unwrap_or(defaults.sections),
            retries: cli.algo_retries.unwrap_or(defaults.retries),
        },
        salt: cli.salt.clone(),
        jobs: cli.jobs,
        queue_depth: cli.queue_depth.unwrap_or(256),
        budget: cli.budget(true),
        store_path: cli.store.as_ref().map(std::path::PathBuf::from),
        sim: SimConfig {
            iterations: cli.sim_iterations,
            seed: cli.sim_seed,
            ..SimConfig::default()
        },
        shrink: !cli.no_shrink,
        enum_stats: cli
            .enum_stats
            .then(|| std::sync::Arc::new(lkmm_exec::EnumStats::default())),
        data_plane: cli
            .enum_stats
            .then(|| std::sync::Arc::new(lkmm_exec::DataPlaneStats::default())),
        ..AlgoConfig::default()
    };
    let report = match run_algo_campaign(&cfg) {
        Ok(r) => r,
        Err(CampaignError::Store(e)) => {
            return fail_code(EXIT_STORE, &format!("conformance: {e}"));
        }
        Err(e) => return fail_code(EXIT_INTERNAL, &format!("conformance: {e}")),
    };
    eprint!("{}", algo_observability_lines(&report));
    if cli.json {
        println!("{}", algo_json_report(&report, &cfg));
    } else {
        print!("{}", algo_human_table(&report));
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_DISCREPANCY)
    }
}

/// `herd-rs --list-algorithms`: the family catalogue, one block per
/// family — the names `--families` accepts, each family's safety
/// invariant, and what its programs exercise.
fn list_algorithms_mode() -> ExitCode {
    for family in FamilyId::ALL {
        println!("{:<10} invariant: {}", family.name(), family.invariant());
        println!("{:<10} {}", "", family.description());
    }
    ExitCode::SUCCESS
}

fn serve_mode(cli: &Cli) -> ExitCode {
    let model = cli.model.model();
    let store = match open_store(cli.store.as_deref()) {
        Ok(s) => s,
        Err((code, e)) => return fail_code(code, &e),
    };
    // The wall-clock axis is per *request* in serve mode (a batch request
    // checks many tests), so it lives in ServeOptions, not the budget.
    let mut checker = BatchChecker::new(model.as_ref(), store, &cli.salt)
        .with_jobs(cli.jobs)
        .with_queue_depth(cli.queue_depth.unwrap_or(256))
        .with_budget(cli.budget(false));
    let opts = ServeOptions {
        max_request_bytes: cli.max_request_bytes.unwrap_or(ServeOptions::default().max_request_bytes),
        request_time_limit: cli.budget_ms.map(Duration::from_millis),
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve_with(&mut checker, stdin.lock(), stdout.lock(), &opts) {
        Ok(summary) => {
            let inconclusive = checker.session_inconclusive();
            eprintln!(
                "herd-rs serve: {} requests ({} errors), {} computed, {} cache hits{}",
                summary.requests,
                summary.errors,
                checker.session_computed(),
                checker.session_hits(),
                if inconclusive > 0 { format!(", {inconclusive} inconclusive") } else { String::new() }
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail_code(EXIT_INTERNAL, &format!("serve: {e}")),
    }
}

/// `serve --listen`: the multi-client TCP verdict service. Protocol,
/// salt, and cache keys are identical to stdio `serve`; the bound
/// address is announced on stderr *first*, so scripts can bind port 0
/// and discover what they got. The store holds every shard's advisory
/// lock for the server's whole lifetime — offline `store` verbs on the
/// same family exit 9 until shutdown.
fn serve_tcp_mode(cli: &Cli, addr: &str) -> ExitCode {
    let shards = cli.shards.unwrap_or(1);
    let store = match cli.store.as_deref() {
        Some(path) => match ShardedStore::open(path, shards) {
            Ok(s) => {
                report_recovery(path, &s.recovery());
                s
            }
            Err(e) => {
                let code = match &e {
                    lkmm_service::StoreError::Locked { .. } => EXIT_LOCKED,
                    lkmm_service::StoreError::Io(_) => EXIT_STORE,
                };
                return fail_code(code, &format!("{path}: {e}"));
            }
        },
        None => ShardedStore::in_memory(shards),
    };
    let store = Arc::new(store.durable(cli.durable));
    let defaults = ServerConfig::default();
    let mut quota = ClientQuota::default().with_budget(cli.budget(false));
    if let Some(n) = cli.quota_requests {
        quota = quota.with_max_requests(n);
    }
    if let Some(n) = cli.max_pending {
        quota = quota.with_max_pending(n);
    }
    let config = ServerConfig {
        workers: cli.server_workers.unwrap_or(defaults.workers),
        jobs: cli.jobs,
        quota,
        serve: ServeOptions {
            max_request_bytes: cli
                .max_request_bytes
                .unwrap_or(ServeOptions::default().max_request_bytes),
            request_time_limit: cli.budget_ms.map(Duration::from_millis),
        },
        max_conns: cli.max_conns.unwrap_or(defaults.max_conns),
        idle_timeout: match cli.idle_timeout_ms {
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => defaults.idle_timeout,
        },
    };
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => return fail_code(EXIT_INTERNAL, &format!("serve: bind {addr}: {e}")),
    };
    match listener.local_addr() {
        Ok(bound) => eprintln!("herd-rs: listening on {bound}"),
        Err(e) => return fail_code(EXIT_INTERNAL, &format!("serve: {e}")),
    }
    let choice = cli.model;
    match serve_tcp(listener, &move || choice.model(), &cli.salt, store.clone(), &config) {
        Ok(summary) => {
            for st in store.stats() {
                if let Some(why) = &st.poisoned {
                    eprintln!(
                        "herd-rs: shard {} poisoned: {why} ({} appends dropped)",
                        st.shard, st.dropped
                    );
                }
            }
            eprintln!(
                "herd-rs serve: {} connections, {} requests, {} over-quota, {} overloaded",
                summary.connections, summary.requests, summary.over_quota, summary.overloaded
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail_code(EXIT_INTERNAL, &format!("serve: {e}")),
    }
}

/// `client --connect`: forward stdin request lines to a server, print
/// its responses, and surface typed rejections in the exit code (10
/// over-quota, 11 overloaded; the numerically worst seen wins).
fn client_mode(addr: &str) -> ExitCode {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{Shutdown, TcpStream};
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return fail_code(EXIT_INTERNAL, &format!("client: connect {addr}: {e}")),
    };
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => return fail_code(EXIT_INTERNAL, &format!("client: {e}")),
    };
    let writer = std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut out = std::io::BufWriter::new(&write_half);
        for line in stdin.lock().lines().map_while(Result::ok) {
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
        drop(out);
        // Half-close tells the server we are done; responses to
        // everything already sent keep flowing back.
        let _ = write_half.shutdown(Shutdown::Write);
    });
    let mut worst = 0u8;
    for line in BufReader::new(&stream).lines().map_while(Result::ok) {
        match Json::parse(&line).ok().as_ref().and_then(|r| r.get("code")).and_then(Json::as_str) {
            Some("over-quota") => worst = worst.max(EXIT_OVER_QUOTA),
            Some("overloaded") => worst = worst.max(EXIT_OVERLOADED),
            _ => {}
        }
        println!("{line}");
    }
    let _ = writer.join();
    if worst == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(worst)
    }
}

/// `herd-rs store VERB PATH...`: offline verdict-store maintenance.
/// Every verb takes the store's advisory lock, so it cannot race a
/// live campaign (a held lock exits 9). `scrub` without `--repair` is
/// a check: it exits 5 when the log has defects a repair would heal,
/// so CI can assert a store is pristine.
fn store_cmd_mode(cli: &Cli) -> ExitCode {
    use lkmm_service::StoreError;
    use std::path::Path;
    fn store_fail(context: &str, e: StoreError) -> ExitCode {
        let code = match &e {
            StoreError::Locked { .. } => EXIT_LOCKED,
            StoreError::Io(_) => EXIT_STORE,
        };
        fail_code(code, &format!("store {context}: {e}"))
    }
    /// Scrub one family member; the caller folds the worst exit code.
    fn scrub_one(path: &str, repair: bool) -> Result<u8, StoreError> {
        let r = VerdictStore::scrub(path, repair)?;
        if r.wrong_magic {
            println!("{path}: wrong magic — nothing in the file is a verdict log");
        } else {
            println!(
                "{path}: {} records, {} distinct keys, {} superseded; \
                 {} torn bytes, {} corrupt frames ({} bytes)",
                r.records,
                r.distinct_keys,
                r.superseded,
                r.torn_bytes,
                r.corrupt_frames,
                r.corrupt_bytes
            );
        }
        if r.repaired {
            println!("{path}: repaired");
            Ok(0)
        } else if r.defects() {
            eprintln!("herd-rs: store scrub: {path} has defects (rerun with --repair)");
            Ok(EXIT_STORE)
        } else {
            println!("{path}: clean");
            Ok(0)
        }
    }
    let (verb, paths) = cli.store_args.split_first().expect("parse_args requires a verb");
    match (verb.as_str(), paths) {
        ("scrub", [path]) => {
            let shards = ShardedStore::discover(Path::new(path));
            let mut worst = 0u8;
            for member in ShardedStore::shard_paths(Path::new(path), shards) {
                if shards > 1 && !member.exists() {
                    continue;
                }
                match scrub_one(&member.display().to_string(), cli.repair) {
                    Ok(code) => worst = worst.max(code),
                    Err(e) => return store_fail("scrub", e),
                }
            }
            ExitCode::from(worst)
        }
        ("compact", [path]) => {
            let shards = ShardedStore::discover(Path::new(path));
            for member in ShardedStore::shard_paths(Path::new(path), shards) {
                if shards > 1 && !member.exists() {
                    continue;
                }
                let member = member.display().to_string();
                match VerdictStore::compact(&member) {
                    Ok(r) => println!(
                        "{member}: {} records -> {} ({} superseded dropped, {} defect bytes); \
                         {} bytes -> {}",
                        r.records_in,
                        r.records_out,
                        r.superseded,
                        r.defect_bytes,
                        r.bytes_before,
                        r.bytes_after
                    ),
                    Err(e) => return store_fail("compact", e),
                }
            }
            ExitCode::SUCCESS
        }
        ("stats", [path]) => {
            let shards = ShardedStore::discover(Path::new(path));
            if shards == 1 && !Path::new(path).exists() {
                return fail_code(EXIT_STORE, &format!("store stats: {path}: no such store"));
            }
            let store = match ShardedStore::open(path, shards) {
                Ok(s) => s,
                Err(e) => return store_fail("stats", e),
            };
            let (mut records, mut superseded, mut quarantined) = (0usize, 0usize, 0usize);
            for st in store.stats() {
                records += st.records;
                superseded += st.superseded;
                quarantined += st.quarantined as usize;
                let member = st
                    .path
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| path.clone());
                println!(
                    "{member}: shard {} of {}: {} records, {} superseded{}",
                    st.shard,
                    shards,
                    st.records,
                    st.superseded,
                    if st.quarantined { ", quarantined contents" } else { "" }
                );
            }
            println!(
                "{path}: {shards} shard(s), {records} distinct keys in the index, \
                 {superseded} superseded frames, {quarantined} quarantined"
            );
            ExitCode::SUCCESS
        }
        ("export", [src, dst]) => {
            let shards = ShardedStore::discover(Path::new(src));
            let result = if shards > 1 {
                ShardedStore::export_merged(src, dst)
            } else {
                VerdictStore::export(src, dst)
            };
            match result {
                Ok(r) => {
                    println!(
                        "{src} -> {dst}: {} records -> {} ({} superseded dropped, \
                         {} defect bytes); {} bytes -> {}",
                        r.records_in,
                        r.records_out,
                        r.superseded,
                        r.defect_bytes,
                        r.bytes_before,
                        r.bytes_after
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => store_fail("export", e),
            }
        }
        ("merge", [dst, sources @ ..]) if !sources.is_empty() => {
            let shards =
                cli.shards.unwrap_or_else(|| ShardedStore::discover(Path::new(dst)));
            for src in sources {
                let result = if shards > 1 {
                    ShardedStore::merge_into_shards(dst, shards, src)
                } else {
                    VerdictStore::merge(dst, src)
                };
                match result {
                    Ok(r) => println!(
                        "{src} -> {dst}: {} source keys, {} merged, {} unchanged",
                        r.source_keys, r.merged, r.unchanged
                    ),
                    Err(e) => return store_fail("merge", e),
                }
            }
            ExitCode::SUCCESS
        }
        ("scrub" | "compact" | "stats", _) => {
            usage_fail(&format!("store {verb} takes exactly one PATH"))
        }
        ("export", _) => usage_fail("store export takes SRC and DST"),
        ("merge", _) => usage_fail("store merge takes DST and at least one SRC"),
        (other, _) => usage_fail(&format!(
            "unknown store verb `{other}` (scrub, compact, export, merge, stats)"
        )),
    }
}

fn library_plain(cli: &Cli) -> ExitCode {
    let mut herd = Herd::new(cli.model)
        .with_jobs(cli.jobs)
        .with_early_exit(cli.early_exit)
        .with_budget(cli.budget(true));
    if let Some(depth) = cli.queue_depth {
        herd = herd.with_queue_depth(depth);
    }
    let mut inconclusive = 0usize;
    for pt in lkmm_litmus::library::all() {
        match herd.check_governed(&pt.test()).outcome {
            CheckOutcome::Complete(result) => println!("{}", library_line(pt.name, &result)),
            CheckOutcome::Inconclusive { reason: InconclusiveReason::Enum(e), .. } => {
                eprintln!("{}: {e}", pt.name);
            }
            CheckOutcome::Inconclusive { reason, partial } => {
                inconclusive += 1;
                println!("{}", inconclusive_line(pt.name, &reason, &partial));
            }
        }
    }
    if inconclusive > 0 {
        eprintln!("herd-rs: {inconclusive} tests inconclusive under the given budget");
    }
    ExitCode::SUCCESS
}

/// `--library --store`: identical stdout to [`library_plain`], with cache
/// observability on stderr. A fully warm store answers the whole library
/// without enumerating a single candidate execution.
fn library_via_store(cli: &Cli, store_path: &str) -> ExitCode {
    let model = cli.model.model();
    let store = match open_store(Some(store_path)) {
        Ok(s) => s,
        Err((code, e)) => return fail_code(code, &e),
    };
    let stats = cli
        .enum_stats
        .then(|| std::sync::Arc::new(lkmm_exec::EnumStats::default()));
    let dp_stats = cli
        .enum_stats
        .then(|| std::sync::Arc::new(lkmm_exec::DataPlaneStats::default()));
    let mut checker = BatchChecker::new(model.as_ref(), store, &cli.salt)
        .with_options(EnumOptions { stats: stats.clone(), ..EnumOptions::default() })
        .with_pipeline_stats(dp_stats.clone())
        .with_jobs(cli.jobs)
        .with_queue_depth(cli.queue_depth.unwrap_or(256))
        .with_budget(cli.budget(true));
    let report = match checker.check_library() {
        Ok(r) => r,
        Err(e) => return fail_code(EXIT_STORE, &e.to_string()),
    };
    debug_assert_eq!(report.outcomes.len(), lkmm_litmus::library::all().len());
    for outcome in &report.outcomes {
        match &outcome.outcome {
            CheckOutcome::Complete(result) => println!("{}", library_line(&outcome.name, result)),
            CheckOutcome::Inconclusive { reason, partial } => {
                println!("{}", inconclusive_line(&outcome.name, reason, partial));
            }
        }
    }
    eprintln!(
        "herd-rs: store {store_path}: {} hits, {} computed, {} deduped, {}{} candidates enumerated, {} us",
        report.hits,
        report.computed,
        report.deduped,
        if report.inconclusive > 0 { format!("{} inconclusive, ", report.inconclusive) } else { String::new() },
        report.candidates_enumerated,
        report.micros
    );
    if let Some(stats) = &stats {
        let e = stats.snapshot();
        eprintln!(
            "herd-rs: enumeration: {} rf prefixes pruned, {} co pairs saturated, {} branched, \
             {} leaves tested, {} candidates emitted",
            e.rf_prefixes_pruned,
            e.co_pairs_saturated,
            e.co_pairs_branched,
            e.co_leaves_tested,
            e.candidates_emitted
        );
    }
    if let Some(dp) = &dp_stats {
        eprintln!("herd-rs: {}", data_plane_line(&dp.snapshot()));
    }
    ExitCode::SUCCESS
}

/// The `--enum-stats` data-plane stderr line: how the batched pipeline
/// behaved. A fully warm store forms no batches and acquires nothing —
/// all-zero counters are the cache working as intended.
fn data_plane_line(d: &lkmm_exec::DataPlaneSnapshot) -> String {
    format!(
        "data-plane: {} batches carrying {} candidates (mean occupancy {:.1}), \
         {} arena acquires ({} reused)",
        d.batches_formed,
        d.batch_candidates,
        d.mean_batch_occupancy(),
        d.arena_acquires,
        d.arena_reuses
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Cli>, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn models_list_parses_in_order() {
        let cli = parse(&["--models", "sc,tso,c11", "t.litmus"]).unwrap().unwrap();
        assert_eq!(
            cli.models,
            Some(vec![ModelChoice::Sc, ModelChoice::Tso, ModelChoice::C11])
        );
        assert_eq!(cli.file.as_deref(), Some("t.litmus"));
    }

    #[test]
    fn models_accepts_aliases_and_spaces() {
        let cli = parse(&["--models", "x86, aarch64 ,cat", "t.litmus"]).unwrap().unwrap();
        assert_eq!(
            cli.models,
            Some(vec![ModelChoice::Tso, ModelChoice::Armv8, ModelChoice::LkmmCat])
        );
    }

    #[test]
    fn models_rejects_unknown_names_at_parse_time() {
        let err = parse(&["--models", "sc,bogus", "t.litmus"]).err().unwrap();
        assert!(err.contains("unknown model `bogus`"), "{err}");
        let err = parse(&["--models", "sc,,tso", "t.litmus"]).err().unwrap();
        assert!(err.contains("empty model name"), "{err}");
    }

    #[test]
    fn models_rejects_incompatible_flags() {
        assert!(parse(&["--models", "sc", "--model", "tso", "t.litmus"]).is_err());
        assert!(parse(&["--models", "sc", "--store", "s.log", "t.litmus"]).is_err());
        assert!(parse(&["--models", "sc", "--early-exit", "t.litmus"]).is_err());
        assert!(parse(&["--models", "sc", "--dot", "t.litmus"]).is_err());
        assert!(parse(&["--models", "sc", "--states", "t.litmus"]).is_err());
        assert!(parse(&["--models", "sc", "--library"]).is_err());
        assert!(parse(&["--models", "sc", "serve"]).is_err());
        assert!(parse(&["--models", "sc", "conformance"]).is_err());
    }

    #[test]
    fn enum_stats_needs_a_mode_that_enumerates() {
        let cli = parse(&["--enum-stats", "conformance"]).unwrap().unwrap();
        assert!(cli.enum_stats && cli.conformance_mode);
        let cli = parse(&["--enum-stats", "--library", "--store", "s.log"]).unwrap().unwrap();
        assert!(cli.enum_stats && cli.run_library);
        // The multi-model path enumerates once for all N models; its
        // shared counters are reportable too.
        let cli = parse(&["--enum-stats", "--models", "sc,tso", "t.litmus"]).unwrap().unwrap();
        assert!(cli.enum_stats && cli.models.is_some());
        // Library without a store, or a single file, has nothing to attach
        // the counters to.
        assert!(parse(&["--enum-stats", "--library"]).is_err());
        assert!(parse(&["--enum-stats", "t.litmus"]).is_err());
    }

    #[test]
    fn algorithms_campaign_flags_parse() {
        let cli = parse(&[
            "--algorithms",
            "--families",
            "ticket, deque",
            "--algo-threads",
            "3",
            "--algo-sections",
            "2",
            "--json",
            "conformance",
        ])
        .unwrap()
        .unwrap();
        assert!(cli.conformance_mode && cli.algorithms && cli.json);
        assert_eq!(cli.families, vec![FamilyId::Ticket, FamilyId::Deque]);
        assert_eq!(cli.algo_threads, Some(3));
        assert_eq!(cli.algo_sections, Some(2));
        assert_eq!(cli.algo_retries, None);
    }

    #[test]
    fn unknown_family_names_fail_at_parse_time() {
        let err = parse(&["--algorithms", "--families", "ticket,bogus", "conformance"])
            .err()
            .unwrap();
        assert!(err.contains("unknown algorithm family `bogus`"), "{err}");
        assert!(err.contains("ticket"), "error must list the known families: {err}");
        let err = parse(&["--algorithms", "--families", "ticket,,deque", "conformance"])
            .err()
            .unwrap();
        assert!(err.contains("empty family name"), "{err}");
        // Sizes must be positive; 0 is the generator's degenerate error,
        // not a CLI input.
        assert!(parse(&["--algorithms", "--algo-threads", "0", "conformance"]).is_err());
    }

    #[test]
    fn algorithms_flags_demand_the_right_mode() {
        // --algorithms needs `conformance`.
        assert!(parse(&["--algorithms"]).is_err());
        // The family/size flags need --algorithms, not just `conformance`.
        assert!(parse(&["--families", "ticket", "conformance"]).is_err());
        assert!(parse(&["--algo-threads", "3", "conformance"]).is_err());
        // Cycle-corpus flags contradict --algorithms.
        assert!(parse(&["--algorithms", "--max-cycle-len", "4", "conformance"]).is_err());
        assert!(parse(&["--algorithms", "--contended", "conformance"]).is_err());
        assert!(parse(&["--algorithms", "--no-library", "conformance"]).is_err());
        assert!(parse(&["--algorithms", "--sim-stride", "2", "conformance"]).is_err());
        // Shared conformance flags still compose.
        assert!(parse(&["--algorithms", "--no-shrink", "--enum-stats", "conformance"]).is_ok());
        assert!(parse(&["--algorithms", "--sim-iterations", "50", "conformance"]).is_ok());
    }

    #[test]
    fn list_algorithms_stands_alone() {
        let cli = parse(&["--list-algorithms"]).unwrap().unwrap();
        assert!(cli.list_algorithms);
        assert!(parse(&["--list-algorithms", "conformance"]).is_err());
        assert!(parse(&["--list-algorithms", "--library"]).is_err());
        assert!(parse(&["--list-algorithms", "t.litmus"]).is_err());
        assert!(parse(&["--list-algorithms", "--algorithms"]).is_err());
    }

    #[test]
    fn resilience_flags_parse_with_conformance() {
        let cli = parse(&[
            "--checkpoint",
            "c.ck",
            "--checkpoint-every",
            "8",
            "--max-retries",
            "0",
            "--retry-base-ms",
            "0",
            "--stop-after",
            "5",
            "--resume",
            "conformance",
        ])
        .unwrap()
        .unwrap();
        assert!(cli.conformance_mode && cli.resume);
        assert_eq!(cli.checkpoint.as_deref(), Some("c.ck"));
        assert_eq!(cli.checkpoint_every, Some(8));
        assert_eq!(cli.max_retries, Some(0));
        assert_eq!(cli.retry_base_ms, Some(0));
        assert_eq!(cli.stop_after, Some(5));
    }

    #[test]
    fn resilience_flags_demand_the_right_mode() {
        // They are conformance flags.
        assert!(parse(&["--checkpoint", "c.ck"]).is_err());
        assert!(parse(&["--max-retries", "1", "t.litmus"]).is_err());
        // --resume and --checkpoint-every are meaningless without a manifest.
        assert!(parse(&["--resume", "conformance"]).is_err());
        assert!(parse(&["--checkpoint-every", "8", "conformance"]).is_err());
        // The algorithm campaign runs in one piece.
        assert!(parse(&["--algorithms", "--checkpoint", "c.ck", "conformance"]).is_err());
        assert!(parse(&["--algorithms", "--stop-after", "3", "conformance"]).is_err());
    }

    #[test]
    fn store_subcommand_collects_verb_and_paths() {
        let cli = parse(&["store", "scrub", "--repair", "s.log"]).unwrap().unwrap();
        assert!(cli.store_cmd && cli.repair);
        assert_eq!(cli.store_args, vec!["scrub", "s.log"]);
        let cli = parse(&["store", "merge", "dst.log", "a.log", "b.log"]).unwrap().unwrap();
        assert_eq!(cli.store_args, vec!["merge", "dst.log", "a.log", "b.log"]);
    }

    #[test]
    fn store_subcommand_stands_alone() {
        assert!(parse(&["store"]).is_err());
        assert!(parse(&["store", "scrub", "s.log", "--store", "x.log"]).is_err());
        assert!(parse(&["store", "compact", "s.log", "--json"]).is_err());
        assert!(parse(&["--library", "store", "scrub", "s.log"]).is_err());
        // --repair belongs to scrub only.
        assert!(parse(&["store", "compact", "--repair", "s.log"]).is_err());
        assert!(parse(&["--repair", "t.litmus"]).is_err());
    }

    #[test]
    fn server_flags_parse_with_serve_listen() {
        let cli = parse(&[
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "4",
            "--server-workers",
            "8",
            "--durable",
            "--quota-requests",
            "100",
            "--max-pending",
            "16",
            "--max-conns",
            "32",
            "--idle-timeout-ms",
            "0",
            "serve",
        ])
        .unwrap()
        .unwrap();
        assert!(cli.serve_mode && cli.durable);
        assert_eq!(cli.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cli.shards, Some(4));
        assert_eq!(cli.server_workers, Some(8));
        assert_eq!(cli.quota_requests, Some(100));
        assert_eq!(cli.max_pending, Some(16));
        assert_eq!(cli.max_conns, Some(32));
        assert_eq!(cli.idle_timeout_ms, Some(0));
    }

    #[test]
    fn server_flags_demand_serve_listen() {
        // --listen needs `serve`; the server tuning flags need --listen.
        assert!(parse(&["--listen", "127.0.0.1:0"]).is_err());
        assert!(parse(&["--listen", "127.0.0.1:0", "t.litmus"]).is_err());
        assert!(parse(&["--server-workers", "2", "serve"]).is_err());
        assert!(parse(&["--durable", "serve"]).is_err());
        assert!(parse(&["--quota-requests", "5", "serve"]).is_err());
        assert!(parse(&["--max-conns", "2", "conformance"]).is_err());
        // --shards belongs to `serve --listen` and `store merge` only.
        assert!(parse(&["--shards", "4", "serve"]).is_err());
        assert!(parse(&["--shards", "4", "t.litmus"]).is_err());
        assert!(parse(&["store", "merge", "--shards", "4", "dst.log", "src.log"]).is_ok());
        assert!(parse(&["store", "scrub", "--shards", "4", "s.log"]).is_err());
        // Bounds: shards 1..=64.
        assert!(parse(&["--shards", "0", "--listen", "x:0", "serve"]).is_err());
        assert!(parse(&["--shards", "65", "--listen", "x:0", "serve"]).is_err());
    }

    #[test]
    fn client_takes_only_connect() {
        let cli = parse(&["client", "--connect", "127.0.0.1:9"]).unwrap().unwrap();
        assert!(cli.client_mode);
        assert_eq!(cli.connect.as_deref(), Some("127.0.0.1:9"));
        // Flag order does not matter.
        assert!(parse(&["--connect", "127.0.0.1:9", "client"]).is_ok());
        assert!(parse(&["client"]).is_err(), "client needs --connect");
        assert!(parse(&["--connect", "127.0.0.1:9"]).is_err(), "--connect needs client");
        assert!(parse(&["client", "--connect", "a:1", "--model", "sc"]).is_err());
        assert!(parse(&["client", "--connect", "a:1", "--store", "s.log"]).is_err());
        assert!(parse(&["client", "--connect", "a:1", "t.litmus"]).is_err());
        assert!(parse(&["client", "--connect", "a:1", "serve"]).is_err());
    }

    #[test]
    fn store_stats_verb_parses() {
        let cli = parse(&["store", "stats", "s.log"]).unwrap().unwrap();
        assert!(cli.store_cmd);
        assert_eq!(cli.store_args, vec!["stats", "s.log"]);
    }

    #[test]
    fn models_allows_jobs_and_budgets() {
        let cli = parse(&["--models", "lkmm,sc", "-j", "4", "--budget-candidates", "100", "t.litmus"])
            .unwrap()
            .unwrap();
        assert_eq!(cli.jobs, 4);
        assert_eq!(cli.budget_candidates, Some(100));
    }
}
