//! `herd-rs` — check litmus tests against a consistency model.
//!
//! ```text
//! herd-rs [OPTIONS] FILE.litmus     # check one test
//! herd-rs [OPTIONS] --library      # run every built-in paper test
//! herd-rs [OPTIONS] serve          # JSON-lines service on stdin/stdout
//! ```
//!
//! `--jobs N` (`-j N`) checks candidate executions on `N` worker threads;
//! the default `0` means one per available hardware thread. Output is
//! byte-identical for every job count. `--early-exit` stops each check as
//! soon as its verdict is decided (counts become lower bounds).
//!
//! `--store PATH` routes checking through the persistent verdict store:
//! results already cached are replayed without enumerating anything, and
//! stdout stays byte-identical to a storeless run (cache observability
//! goes to stderr). `--salt STR` versions the cache keys — bump it when
//! checking semantics change. `--early-exit` is rejected alongside
//! `--store`, since its lower-bound counts must never be cached as exact.

use linux_kernel_memory_model::service::{serve, BatchChecker, VerdictStore};
use linux_kernel_memory_model::{Herd, ModelChoice, Report};
use lkmm_exec::enumerate::{enumerate, EnumOptions};
use lkmm_exec::states::collect_states;
use std::process::ExitCode;

const USAGE: &str = "usage: herd-rs [--model lkmm|lkmm-cat|sc|tso|armv8|power|c11] [--jobs N] [--early-exit] [--dot] [--states] [--store PATH] [--salt STR] FILE.litmus\n\
     \x20      herd-rs [--model M] [--jobs N] [--store PATH] [--salt STR] --library\n\
     \x20      herd-rs [--model M] [--jobs N] [--store PATH] [--salt STR] serve\n\
     \x20 --jobs N, -j N   worker threads (0 = all hardware threads; output is identical for any N)\n\
     \x20 --early-exit     stop each check once its verdict is decided (not with --store)\n\
     \x20 --store PATH     answer from / append to a persistent verdict store\n\
     \x20 --salt STR       version salt folded into every cache key\n\
     \x20 serve            answer JSON-lines requests on stdin (check/batch/stats/flush)";

struct Cli {
    model: ModelChoice,
    file: Option<String>,
    serve_mode: bool,
    run_library: bool,
    dot: bool,
    states: bool,
    jobs: usize,
    early_exit: bool,
    store: Option<String>,
    salt: String,
}

fn fail(message: &str) -> ExitCode {
    eprintln!("herd-rs: {message} (try --help)");
    ExitCode::FAILURE
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        model: ModelChoice::Lkmm,
        file: None,
        serve_mode: false,
        run_library: false,
        dot: false,
        states: false,
        jobs: 0, // 0 = available parallelism
        early_exit: false,
        store: None,
        salt: String::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let n = it.next().ok_or("--jobs needs an argument")?;
                cli.jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs needs a non-negative integer, got `{n}`"))?;
            }
            "--early-exit" => cli.early_exit = true,
            "--model" | "-m" => {
                let name = it.next().ok_or("--model needs an argument")?;
                cli.model = ModelChoice::parse_name(name).ok_or_else(|| {
                    format!("unknown model `{name}` (lkmm, lkmm-cat, sc, tso, armv8, power, c11)")
                })?;
            }
            "--store" => {
                let path = it.next().ok_or("--store needs a path argument")?;
                cli.store = Some(path.clone());
            }
            "--salt" => {
                let salt = it.next().ok_or("--salt needs an argument")?;
                cli.salt = salt.clone();
            }
            "--library" | "-l" => cli.run_library = true,
            "--dot" => cli.dot = true,
            "--states" | "-s" => cli.states = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            "serve" if !cli.serve_mode && cli.file.is_none() => cli.serve_mode = true,
            other => {
                if cli.serve_mode {
                    return Err(format!("unexpected argument `{other}` after `serve`"));
                }
                if let Some(first) = &cli.file {
                    return Err(format!("unexpected second input file `{other}` (after `{first}`)"));
                }
                cli.file = Some(other.to_string());
            }
        }
    }
    if cli.serve_mode && (cli.run_library || cli.dot || cli.states || cli.early_exit) {
        return Err("`serve` takes only --model, --jobs, --store, and --salt".to_string());
    }
    if cli.run_library && cli.file.is_some() {
        return Err("--library does not take an input file".to_string());
    }
    if cli.store.is_some() && cli.early_exit {
        return Err(
            "--early-exit cannot be combined with --store (its counts are lower bounds and \
             must not be cached as exact)"
                .to_string(),
        );
    }
    Ok(Some(cli))
}

/// Open the store named by `--store` (or an in-memory one for `serve`
/// without persistence), reporting recovery events on stderr.
fn open_store(path: Option<&str>) -> Result<VerdictStore, String> {
    let Some(path) = path else {
        return Ok(VerdictStore::in_memory());
    };
    let store = VerdictStore::open(path).map_err(|e| format!("{path}: {e}"))?;
    let recovery = store.recovery();
    if recovery.quarantined {
        eprintln!("herd-rs: store {path}: unrecognized contents quarantined to {path}.corrupt");
    } else if recovery.truncated_bytes > 0 {
        eprintln!(
            "herd-rs: store {path}: recovered {} records, dropped {} trailing bytes",
            recovery.records, recovery.truncated_bytes
        );
    }
    Ok(store)
}

fn library_line(name: &str, result: &lkmm_exec::TestResult) -> String {
    format!(
        "{:26} {:8} (candidates={}, allowed={}, witnesses={})",
        name,
        result.verdict.to_string(),
        result.candidates,
        result.allowed,
        result.witnesses
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => return fail(&e),
    };

    if cli.serve_mode {
        let model = cli.model.model();
        let store = match open_store(cli.store.as_deref()) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        let mut checker = BatchChecker::new(model.as_ref(), store, &cli.salt).with_jobs(cli.jobs);
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return match serve(&mut checker, stdin.lock(), stdout.lock()) {
            Ok(summary) => {
                eprintln!(
                    "herd-rs serve: {} requests ({} errors), {} computed, {} cache hits",
                    summary.requests,
                    summary.errors,
                    checker.session_computed(),
                    checker.session_hits()
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("serve: {e}")),
        };
    }

    if cli.run_library {
        return if let Some(store_path) = cli.store.as_deref() {
            library_via_store(&cli, store_path)
        } else {
            library_plain(&cli)
        };
    }

    let Some(path) = cli.file.clone() else {
        return fail("no input file");
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    let test = match lkmm_litmus::parse(&source) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{path}: {e}")),
    };

    let report = if let Some(store_path) = cli.store.as_deref() {
        let model = cli.model.model();
        let store = match open_store(Some(store_path)) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        let mut checker = BatchChecker::new(model.as_ref(), store, &cli.salt).with_jobs(cli.jobs);
        let outcome = match checker.check_one(&test) {
            Ok(o) => o,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        if let Err(e) = checker.flush() {
            return fail(&format!("{store_path}: {e}"));
        }
        eprintln!("herd-rs: store {store_path}: {}", outcome.provenance);
        Report {
            test_name: test.name.clone(),
            model_name: model.name().to_string(),
            result: outcome.result,
        }
    } else {
        let herd = Herd::new(cli.model).with_jobs(cli.jobs).with_early_exit(cli.early_exit);
        match herd.check(&test) {
            Ok(report) => report,
            Err(e) => return fail(&format!("{path}: {e}")),
        }
    };

    println!("{report}");
    if cli.states {
        match collect_states(cli.model.model().as_ref(), &test, &EnumOptions::default()) {
            Ok(summary) => println!("\n{summary}"),
            Err(e) => eprintln!("states: {e}"),
        }
    }
    if cli.dot {
        if let Ok(execs) = enumerate(&test, &EnumOptions::default()) {
            if let Some(x) = execs.iter().find(|x| x.satisfies_prop(&test.condition.prop)) {
                println!("\n// witness candidate execution\n{}", x.to_dot());
            }
        }
    }
    ExitCode::SUCCESS
}

fn library_plain(cli: &Cli) -> ExitCode {
    let herd = Herd::new(cli.model).with_jobs(cli.jobs).with_early_exit(cli.early_exit);
    for pt in lkmm_litmus::library::all() {
        match herd.check(&pt.test()) {
            Ok(report) => println!("{}", library_line(pt.name, &report.result)),
            Err(e) => eprintln!("{}: {e}", pt.name),
        }
    }
    ExitCode::SUCCESS
}

/// `--library --store`: identical stdout to [`library_plain`], with cache
/// observability on stderr. A fully warm store answers the whole library
/// without enumerating a single candidate execution.
fn library_via_store(cli: &Cli, store_path: &str) -> ExitCode {
    let model = cli.model.model();
    let store = match open_store(Some(store_path)) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let mut checker = BatchChecker::new(model.as_ref(), store, &cli.salt).with_jobs(cli.jobs);
    let report = match checker.check_library() {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    debug_assert_eq!(report.outcomes.len(), lkmm_litmus::library::all().len());
    for outcome in &report.outcomes {
        println!("{}", library_line(&outcome.name, &outcome.result));
    }
    eprintln!(
        "herd-rs: store {store_path}: {} hits, {} computed, {} deduped, {} candidates enumerated, {} us",
        report.hits, report.computed, report.deduped, report.candidates_enumerated, report.micros
    );
    ExitCode::SUCCESS
}
