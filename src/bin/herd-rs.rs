//! `herd-rs` — check a litmus test against a consistency model.
//!
//! ```text
//! herd-rs [--model lkmm|lkmm-cat|sc|tso|armv8|power|c11] [--jobs N] [--dot] FILE.litmus
//! herd-rs --library            # run every built-in paper test
//! ```
//!
//! `--jobs N` (`-j N`) checks candidate executions on `N` worker threads;
//! the default `0` means one per available hardware thread. Output is
//! byte-identical for every job count. `--early-exit` stops each check as
//! soon as its verdict is decided (counts become lower bounds).

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::enumerate::{enumerate, EnumOptions};
use lkmm_exec::states::collect_states;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut model = ModelChoice::Lkmm;
    let mut file: Option<String> = None;
    let mut run_library = false;
    let mut dot = false;
    let mut states = false;
    let mut jobs = 0usize; // 0 = available parallelism
    let mut early_exit = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let Some(n) = it.next() else {
                    eprintln!("--jobs needs an argument");
                    return ExitCode::FAILURE;
                };
                match n.parse::<usize>() {
                    Ok(n) => jobs = n,
                    Err(_) => {
                        eprintln!("--jobs needs a non-negative integer, got `{n}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--early-exit" => early_exit = true,
            "--model" | "-m" => {
                let Some(name) = it.next() else {
                    eprintln!("--model needs an argument");
                    return ExitCode::FAILURE;
                };
                match ModelChoice::parse_name(name) {
                    Some(m) => model = m,
                    None => {
                        eprintln!("unknown model `{name}` (lkmm, lkmm-cat, sc, tso, armv8, power, c11)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--library" | "-l" => run_library = true,
            "--dot" => dot = true,
            "--states" | "-s" => states = true,
            "--help" | "-h" => {
                println!(
                    "usage: herd-rs [--model lkmm|lkmm-cat|sc|tso|armv8|power|c11] [--jobs N] [--early-exit] [--dot] [--states] FILE.litmus\n\
                     \x20      herd-rs --library\n\
                     \x20 --jobs N, -j N   worker threads (0 = all hardware threads; output is identical for any N)\n\
                     \x20 --early-exit     stop each check once its verdict is decided"
                );
                return ExitCode::SUCCESS;
            }
            other => file = Some(other.to_string()),
        }
    }

    let herd = Herd::new(model).with_jobs(jobs).with_early_exit(early_exit);
    if run_library {
        for pt in lkmm_litmus::library::all() {
            match herd.check(&pt.test()) {
                Ok(report) => println!(
                    "{:26} {:8} (candidates={}, allowed={}, witnesses={})",
                    pt.name,
                    report.result.verdict.to_string(),
                    report.result.candidates,
                    report.result.allowed,
                    report.result.witnesses
                ),
                Err(e) => eprintln!("{}: {e}", pt.name),
            }
        }
        return ExitCode::SUCCESS;
    }

    let Some(path) = file else {
        eprintln!("no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match herd.check_source(&source) {
        Ok(report) => {
            println!("{report}");
            if states {
                if let Ok(test) = lkmm_litmus::parse(&source) {
                    match collect_states(model.model().as_ref(), &test, &EnumOptions::default()) {
                        Ok(summary) => println!("\n{summary}"),
                        Err(e) => eprintln!("states: {e}"),
                    }
                }
            }
            if dot {
                if let Ok(test) = lkmm_litmus::parse(&source) {
                    if let Ok(execs) = enumerate(&test, &EnumOptions::default()) {
                        if let Some(x) =
                            execs.iter().find(|x| x.satisfies_prop(&test.condition.prop))
                        {
                            println!("\n// witness candidate execution\n{}", x.to_dot());
                        }
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}
