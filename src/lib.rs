//! # linux-kernel-memory-model
//!
//! A from-scratch Rust reproduction of *"Frightening Small Children and
//! Disconcerting Grown-ups: Concurrency in the Linux Kernel"* (Alglave,
//! Maranget, McKenney, Parri, Stern — ASPLOS 2018): the Linux-kernel
//! memory model (LKMM) as an executable artifact, together with every
//! substrate the paper's evaluation depends on.
//!
//! The individual crates:
//!
//! * [`relation`] — bitset relation algebra over events;
//! * [`litmus`] — the LK litmus dialect: AST, parser, printer, and the
//!   paper's named test library;
//! * [`exec`] — candidate-execution semantics and exhaustive enumeration;
//! * [`cat`] — an interpreter for the cat modelling language, with the
//!   LKMM embedded as a cat file;
//! * [`model`] (crate `lkmm`) — the native LKMM: Figure 3/8 axioms plus
//!   the Figure 12 RCU axiom, with every intermediate relation exposed;
//! * [`models`] — comparison models: SC, x86-TSO, original C11;
//! * [`rcu`] — the fundamental law, Theorem 1 equivalence checking, the
//!   Figure 15 implementation (axiomatic expansion and a real threaded
//!   runtime);
//! * [`sim`] — operational hardware simulators (x86 / ARMv8 / ARMv7 /
//!   Power8) standing in for the paper's testbeds;
//! * [`generator`] — diy-style critical-cycle test generation;
//! * [`klitmus`] — a host runner on real threads and atomics;
//! * [`service`] — content-addressed verdict store, batch checking
//!   through the cache, and the JSON-lines serve mode behind
//!   `herd-rs serve`;
//! * [`conformance`] — the differential conformance engine behind
//!   `herd-rs conformance`: campaign driver, verdict matrix, oracle
//!   invariants (native≡cat, the SC ⊆ TSO ⊆ LKMM envelope, simulator
//!   soundness, the §5.2 C11 divergence whitelist), and a
//!   delta-debugging discrepancy shrinker;
//! * [`algorithms`] — the real-algorithm verification tier behind
//!   `herd-rs conformance --algorithms`: parameterised litmus-program
//!   families (hierarchical RCU, Arc-style refcount, ticket/CLH locks,
//!   seqlock, Chase-Lev deque) with per-family safety invariants,
//!   loom-style exhaustive interleaving, and threaded reference
//!   implementations.
//!
//! # Quickstart
//!
//! ```
//! use linux_kernel_memory_model::{Herd, ModelChoice};
//!
//! let herd = Herd::new(ModelChoice::Lkmm);
//! let report = herd.check_source(r#"
//! C MP+wmb+rmb
//! { x=0; y=0; }
//! P0(int *x, int *y) { WRITE_ONCE(*x, 1); smp_wmb(); WRITE_ONCE(*y, 1); }
//! P1(int *x, int *y) {
//!     int r0; int r1;
//!     r0 = READ_ONCE(*y); smp_rmb(); r1 = READ_ONCE(*x);
//! }
//! exists (1:r0=1 /\ 1:r1=0)
//! "#).unwrap();
//! assert!(!report.allowed()); // Figure 2: forbidden
//! ```

pub use lkmm as model;
pub use lkmm_algorithms as algorithms;
pub use lkmm_cat as cat;
pub use lkmm_conformance as conformance;
pub use lkmm_exec as exec;
pub use lkmm_generator as generator;
pub use lkmm_klitmus as klitmus;
pub use lkmm_litmus as litmus;
pub use lkmm_models as models;
pub use lkmm_rcu as rcu;
pub use lkmm_relation as relation;
pub use lkmm_server as server;
pub use lkmm_service as service;
pub use lkmm_sim as sim;

pub use lkmm_exec::{
    Budget, BudgetKind, CancelToken, CheckOutcome, InconclusiveReason, MultiCheckOutcome, Tally,
};

use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{
    check_test_governed, check_test_multi, check_test_multi_governed, check_test_pipelined,
    ConsistencyModel, EnumError, PipelineOptions, TestResult, Verdict,
};
use lkmm_litmus::{parse, ParseError, Test};
use std::fmt;

/// Which consistency model to check against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelChoice {
    /// The native LKMM (core + RCU axioms).
    Lkmm,
    /// The LKMM interpreted from its embedded cat file.
    LkmmCat,
    /// Sequential consistency.
    Sc,
    /// x86-TSO.
    Tso,
    /// Simplified ARMv8 (ordered-before style).
    Armv8,
    /// IBM Power (herding-cats style).
    Power,
    /// Original C11 under the P0124 mapping.
    C11,
}

impl ModelChoice {
    /// Instantiate the model.
    pub fn model(self) -> Box<dyn ConsistencyModel> {
        match self {
            ModelChoice::Lkmm => Box::new(lkmm::Lkmm::new()),
            ModelChoice::LkmmCat => Box::new(lkmm_cat::linux_kernel_model()),
            ModelChoice::Sc => Box::new(lkmm_models::Sc),
            ModelChoice::Tso => Box::new(lkmm_models::X86Tso),
            ModelChoice::Armv8 => Box::new(lkmm_models::Armv8),
            ModelChoice::Power => Box::new(lkmm_models::Power),
            ModelChoice::C11 => Box::new(lkmm_models::OriginalC11),
        }
    }

    /// Parse a command-line name (`lkmm`, `lkmm-cat`, `sc`, `tso`, `armv8`, `power`, `c11`).
    pub fn parse_name(name: &str) -> Option<ModelChoice> {
        Some(match name.to_ascii_lowercase().as_str() {
            "lkmm" => ModelChoice::Lkmm,
            "lkmm-cat" | "cat" => ModelChoice::LkmmCat,
            "sc" => ModelChoice::Sc,
            "tso" | "x86" | "x86-tso" => ModelChoice::Tso,
            "armv8" | "arm" | "aarch64" => ModelChoice::Armv8,
            "power" | "ppc" | "power8" => ModelChoice::Power,
            "c11" => ModelChoice::C11,
            _ => return None,
        })
    }
}

/// High-level checker: the herd7 work-flow in one object.
///
/// A `Herd` can hold one model ([`Herd::new`]) or several
/// ([`Herd::new_multi`]). With several, [`Herd::check_multi`] and
/// [`Herd::check_multi_governed`] decide every model from **one**
/// enumeration pass over the test's candidate executions — each
/// candidate's derived relations are computed once into a shared facts
/// layer and borrowed by all the checkers. The single-model methods
/// always act on the first model.
pub struct Herd {
    models: Vec<Box<dyn ConsistencyModel>>,
    options: EnumOptions,
    pipeline: PipelineOptions,
}

/// Everything [`Herd::check`] reports about one test.
#[derive(Clone, Debug)]
pub struct Report {
    /// The checked test's name.
    pub test_name: String,
    /// The model's name.
    pub model_name: String,
    /// Raw verdict data.
    pub result: TestResult,
}

impl Report {
    /// Whether the condition's outcome is observable under the model
    /// (the paper's Allow).
    pub fn allowed(&self) -> bool {
        self.result.verdict == Verdict::Allowed
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Test {} ({})", self.test_name, self.model_name)?;
        writeln!(
            f,
            "  candidates={} allowed={} witnesses={}",
            self.result.candidates, self.result.allowed, self.result.witnesses
        )?;
        write!(
            f,
            "  verdict: {} (condition {})",
            self.result.verdict,
            if self.result.condition_holds { "holds" } else { "does not hold" }
        )
    }
}

/// Everything [`Herd::check_governed`] reports about one test.
///
/// Unlike [`Report`] this may be inconclusive: a check stopped by its
/// [`Budget`] (or a contained worker panic) carries the stop reason and
/// the exact partial tallies instead of a verdict.
#[derive(Clone, Debug)]
pub struct GovernedReport {
    /// The checked test's name.
    pub test_name: String,
    /// The model's name.
    pub model_name: String,
    /// Verdict or structured stop reason.
    pub outcome: CheckOutcome,
}

impl GovernedReport {
    /// The completed [`Report`], if the check finished.
    pub fn report(&self) -> Option<Report> {
        self.outcome.result().map(|result| Report {
            test_name: self.test_name.clone(),
            model_name: self.model_name.clone(),
            result: result.clone(),
        })
    }
}

/// Everything [`Herd::check_multi_governed`] reports about one test.
///
/// One enumeration pass decided every model, so either all models get a
/// verdict ([`MultiCheckOutcome::Complete`], in [`Herd::new_multi`]
/// order) or none do and the partial tallies all cover the same
/// candidate prefix.
#[derive(Clone, Debug)]
pub struct MultiGovernedReport {
    /// The checked test's name.
    pub test_name: String,
    /// The models' names, in [`Herd::new_multi`] order.
    pub model_names: Vec<String>,
    /// Per-model verdicts or a shared structured stop reason.
    pub outcome: MultiCheckOutcome,
}

impl MultiGovernedReport {
    /// The completed per-model [`Report`]s, if the check finished.
    pub fn reports(&self) -> Option<Vec<Report>> {
        match &self.outcome {
            MultiCheckOutcome::Complete(results) => Some(
                self.model_names
                    .iter()
                    .zip(results)
                    .map(|(name, result)| Report {
                        test_name: self.test_name.clone(),
                        model_name: name.clone(),
                        result: result.clone(),
                    })
                    .collect(),
            ),
            MultiCheckOutcome::Inconclusive { .. } => None,
        }
    }
}

/// Errors from the high-level API.
#[derive(Debug)]
pub enum HerdError {
    /// Litmus parse failure.
    Parse(ParseError),
    /// Enumeration failure.
    Enumerate(EnumError),
}

impl fmt::Display for HerdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HerdError::Parse(e) => write!(f, "{e}"),
            HerdError::Enumerate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HerdError {}

impl From<ParseError> for HerdError {
    fn from(e: ParseError) -> Self {
        HerdError::Parse(e)
    }
}

impl From<EnumError> for HerdError {
    fn from(e: EnumError) -> Self {
        HerdError::Enumerate(e)
    }
}

impl Herd {
    /// A checker for the chosen model with default enumeration options,
    /// checking sequentially (`jobs = 1`).
    pub fn new(choice: ModelChoice) -> Self {
        Herd::new_multi(&[choice])
    }

    /// A checker deciding every chosen model from a single enumeration
    /// pass per test.
    ///
    /// # Panics
    ///
    /// Panics on an empty choice list.
    pub fn new_multi(choices: &[ModelChoice]) -> Self {
        assert!(!choices.is_empty(), "Herd needs at least one model");
        Herd {
            models: choices.iter().map(|c| c.model()).collect(),
            options: EnumOptions::default(),
            pipeline: PipelineOptions { jobs: 1, ..PipelineOptions::default() },
        }
    }

    fn model(&self) -> &dyn ConsistencyModel {
        self.models[0].as_ref()
    }

    fn model_refs(&self) -> Vec<&dyn ConsistencyModel> {
        self.models.iter().map(Box::as_ref).collect()
    }

    /// Override the enumeration options.
    pub fn with_options(mut self, options: EnumOptions) -> Self {
        self.options = options;
        self
    }

    /// Check candidates on `jobs` worker threads (`0` = one per hardware
    /// thread). Verdicts and counts are identical for every job count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.pipeline.jobs = jobs;
        self
    }

    /// Stop each check as soon as the quantified verdict is decided. The
    /// verdict and `condition_holds` are unaffected; the reported counts
    /// become lower bounds.
    pub fn with_early_exit(mut self, early_exit: bool) -> Self {
        self.pipeline.early_exit = early_exit;
        self
    }

    /// Bound each worker's candidate queue (clamped to ≥ 1 downstream).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.pipeline.queue_depth = depth;
        self
    }

    /// Record batch-occupancy and arena-reuse counters into `stats`
    /// while checking. Observability only — never affects verdicts or
    /// counts.
    pub fn with_pipeline_stats(
        mut self,
        stats: Option<std::sync::Arc<lkmm_exec::DataPlaneStats>>,
    ) -> Self {
        self.pipeline.stats = stats;
        self
    }

    /// Bound every check by `budget`. A check that exceeds it reports
    /// [`CheckOutcome::Inconclusive`] through [`Herd::check_governed`]
    /// (plain [`Herd::check`] surfaces it as an enumeration error). A
    /// budget never changes a completed verdict.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.options.budget = budget;
        self
    }

    /// Check a parsed test.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors.
    pub fn check(&self, test: &Test) -> Result<Report, HerdError> {
        let result = check_test_pipelined(self.model(), test, &self.options, &self.pipeline)?;
        Ok(Report {
            test_name: test.name.clone(),
            model_name: self.model().name().to_string(),
            result,
        })
    }

    /// Check a parsed test against every configured model in one
    /// enumeration pass. Reports come back in [`Herd::new_multi`] order
    /// and are identical to what N separate [`Herd::check`] calls would
    /// produce.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors.
    pub fn check_multi(&self, test: &Test) -> Result<Vec<Report>, HerdError> {
        let models = self.model_refs();
        let results = check_test_multi(&models, test, &self.options, &self.pipeline)?;
        Ok(models
            .iter()
            .zip(results)
            .map(|(m, result)| Report {
                test_name: test.name.clone(),
                model_name: m.name().to_string(),
                result,
            })
            .collect())
    }

    /// Check a parsed test against every configured model in one
    /// *governed* enumeration pass. Never errors and never panics; a
    /// budget stop yields [`MultiCheckOutcome::Inconclusive`] with one
    /// partial tally per model, all covering the same candidates.
    pub fn check_multi_governed(&self, test: &Test) -> MultiGovernedReport {
        let models = self.model_refs();
        let outcome = check_test_multi_governed(&models, test, &self.options, &self.pipeline);
        MultiGovernedReport {
            test_name: test.name.clone(),
            model_names: models.iter().map(|m| m.name().to_string()).collect(),
            outcome,
        }
    }

    /// Check a parsed test under the configured [`Budget`]. Never errors
    /// and never panics: enumeration failures, exhausted budgets, and
    /// panics inside model evaluation all come back as structured
    /// [`CheckOutcome::Inconclusive`] outcomes with partial tallies.
    pub fn check_governed(&self, test: &Test) -> GovernedReport {
        let outcome = check_test_governed(self.model(), test, &self.options, &self.pipeline);
        GovernedReport {
            test_name: test.name.clone(),
            model_name: self.model().name().to_string(),
            outcome,
        }
    }

    /// Parse and check litmus source.
    ///
    /// # Errors
    ///
    /// Returns parse or enumeration errors.
    pub fn check_source(&self, source: &str) -> Result<Report, HerdError> {
        let test = parse(source)?;
        self.check(&test)
    }

    /// herd-style final-state histogram for a test.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors.
    pub fn states(&self, test: &Test) -> Result<lkmm_exec::StateSummary, HerdError> {
        Ok(lkmm_exec::collect_states(self.model(), test, &self.options)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn herd_checks_library_tests() {
        let herd = Herd::new(ModelChoice::Lkmm);
        let t = lkmm_litmus::library::by_name("SB+mbs").unwrap().test();
        let report = herd.check(&t).unwrap();
        assert!(!report.allowed());
        assert!(report.to_string().contains("Forbid"));
    }

    #[test]
    fn model_choice_parsing() {
        assert_eq!(ModelChoice::parse_name("LKMM"), Some(ModelChoice::Lkmm));
        assert_eq!(ModelChoice::parse_name("x86"), Some(ModelChoice::Tso));
        assert_eq!(ModelChoice::parse_name("bogus"), None);
    }

    #[test]
    fn parse_errors_surface() {
        let herd = Herd::new(ModelChoice::Sc);
        assert!(matches!(herd.check_source("not litmus"), Err(HerdError::Parse(_))));
    }

    #[test]
    fn multi_check_matches_single_model_runs() {
        let choices = [ModelChoice::Lkmm, ModelChoice::Sc, ModelChoice::Tso];
        let herd = Herd::new_multi(&choices);
        let t = lkmm_litmus::library::by_name("SB").unwrap().test();
        let reports = herd.check_multi(&t).unwrap();
        assert_eq!(reports.len(), 3);
        for (choice, multi) in choices.iter().zip(&reports) {
            let single = Herd::new(*choice).check(&t).unwrap();
            assert_eq!(multi.model_name, single.model_name);
            assert_eq!(multi.result, single.result);
        }

        let governed = herd.check_multi_governed(&t);
        let govs = governed.reports().expect("no budget configured");
        for (multi, gov) in reports.iter().zip(&govs) {
            assert_eq!(multi.result, gov.result);
        }
    }
}
