//! Minimal deterministic PRNG for the Monte-Carlo scheduler.
//!
//! The simulators only need a seedable, reproducible stream of small
//! bounded integers to pick the next enabled action. SplitMix64 (Steele,
//! Lea & Flood 2014) is more than adequate for that — it passes BigCrush
//! when used as a 64-bit generator — and keeps the workspace free of
//! registry dependencies, which an offline build cannot fetch.

/// SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from `0..bound` (`bound > 0`), by rejection so the
    /// distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        let bound = bound as u64;
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % bound) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_index_in_bounds_and_covers() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let i = rng.gen_index(5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
