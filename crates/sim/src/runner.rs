//! Monte-Carlo litmus harness: the klitmus-style experiment loop.

use crate::machine::{Arch, Machine, MachineError};
use lkmm_exec::{LocId, Val};
use lkmm_litmus::ast::{InitVal, Test};
use lkmm_litmus::cond::{CondVal, StateTerm};
use crate::rng::SplitMix64;
use std::collections::BTreeMap;

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Number of independent runs.
    pub iterations: u64,
    /// RNG seed (each run derives its own stream).
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { iterations: 10_000, seed: 0xB1F0 }
    }
}

/// Aggregated results of running a test on one simulated architecture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Runs whose final state satisfied the test's `exists` proposition.
    pub observed: u64,
    /// Total runs.
    pub total: u64,
    /// Histogram of final states, keyed by a canonical rendering of the
    /// state terms appearing in the condition.
    pub histogram: BTreeMap<String, u64>,
}

impl RunStats {
    /// `observed/total` in the paper's Table 5 notation (`0/33G` style,
    /// with k/M/G suffixes).
    pub fn table_cell(&self) -> String {
        fn human(n: u64) -> String {
            match n {
                0 => "0".to_string(),
                n if n >= 1_000_000_000 => format!("{:.1}G", n as f64 / 1e9),
                n if n >= 1_000_000 => format!("{:.1}M", n as f64 / 1e6),
                n if n >= 1_000 => format!("{:.0}k", n as f64 / 1e3),
                n => n.to_string(),
            }
        }
        format!("{}/{}", human(self.observed), human(self.total))
    }
}

/// Run `test` `config.iterations` times on the simulated `arch`.
///
/// # Errors
///
/// Returns [`MachineError`] for unsupported constructs (`__assume`) or a
/// scheduler deadlock (a bug or a never-terminating program).
///
/// # Examples
///
/// ```
/// use lkmm_sim::{run_test, Arch, RunConfig};
///
/// let mp = lkmm_litmus::library::by_name("MP").unwrap().test();
/// // Message passing is never observable on the x86 simulator…
/// let x86 = run_test(&mp, Arch::X86, &RunConfig { iterations: 1_000, seed: 7 }).unwrap();
/// assert_eq!(x86.observed, 0);
/// ```
pub fn run_test(test: &Test, arch: Arch, config: &RunConfig) -> Result<RunStats, MachineError> {
    let locs = test.shared_locations();
    let init: Vec<Val> = locs
        .iter()
        .map(|name| match test.init.get(name) {
            Some(InitVal::Int(i)) => Val::Int(*i),
            Some(InitVal::Ptr(t)) => {
                Val::Loc(LocId(locs.iter().position(|l| l == t).expect("ptr target")))
            }
            None => Val::Int(0),
        })
        .collect();

    let terms: Vec<&StateTerm> = test.condition.prop.terms();
    let mut stats =
        RunStats { observed: 0, total: config.iterations, histogram: BTreeMap::new() };
    for i in 0..config.iterations {
        let mut rng = SplitMix64::seed_from_u64(config.seed.wrapping_add(i));
        let mut m = Machine::new(test, &locs, &init, arch);
        m.run(&mut rng)?;

        let final_mem = m.final_memory();
        let lookup = |term: &StateTerm| -> Option<CondVal> {
            let val = match term {
                StateTerm::Reg { thread, reg } => m.final_reg(*thread, reg)?,
                StateTerm::Loc(name) => final_mem[locs.iter().position(|l| l == name)?],
            };
            Some(match val {
                Val::Int(v) => CondVal::Int(v),
                Val::Loc(l) => CondVal::LocRef(locs[l.0].clone()),
            })
        };
        if test.condition.prop.eval(&lookup) {
            stats.observed += 1;
        }
        let key = terms
            .iter()
            .map(|t| {
                let v = lookup(t)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "?".to_string());
                format!("{t}={v}")
            })
            .collect::<Vec<_>>()
            .join(" ");
        *stats.histogram.entry(key).or_insert(0) += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::library;

    const N: u64 = 4_000;

    fn observed(name: &str, arch: Arch) -> u64 {
        let t = library::by_name(name).unwrap().test();
        run_test(&t, arch, &RunConfig { iterations: N, seed: 42 }).unwrap().observed
    }

    #[test]
    fn sb_observed_everywhere() {
        for arch in Arch::ALL {
            assert!(observed("SB", arch) > 0, "{}", arch.name());
        }
    }

    #[test]
    fn mp_observed_only_on_weak_machines() {
        assert!(observed("MP", Arch::Power) > 0);
        assert!(observed("MP", Arch::Armv8) > 0);
        assert_eq!(observed("MP", Arch::X86), 0);
    }

    #[test]
    fn wrc_observed_on_power_via_non_mca() {
        assert!(observed("WRC", Arch::Power) > 0);
        assert_eq!(observed("WRC", Arch::X86), 0);
    }

    #[test]
    fn lb_never_observed_without_speculation() {
        // Matches §5.1: LB was not observed on any of the paper's systems.
        for arch in Arch::ALL {
            assert_eq!(observed("LB", arch), 0, "{}", arch.name());
        }
    }

    #[test]
    fn fenced_tests_never_observed() {
        for name in ["SB+mbs", "MP+wmb+rmb", "WRC+po-rel+rmb", "LB+ctrl+mb", "PeterZ"] {
            for arch in Arch::ALL {
                assert_eq!(observed(name, arch), 0, "{name} on {}", arch.name());
            }
        }
    }

    #[test]
    fn rcu_tests_never_observed() {
        for name in ["RCU-MP", "RCU-deferred-free"] {
            for arch in Arch::ALL {
                assert_eq!(observed(name, arch), 0, "{name} on {}", arch.name());
            }
        }
    }

    #[test]
    fn peterz_no_synchro_observed_on_x86() {
        assert!(observed("PeterZ-No-Synchro", Arch::X86) > 0);
    }

    #[test]
    fn histogram_partitions_runs() {
        let t = library::by_name("SB").unwrap().test();
        let stats = run_test(&t, Arch::X86, &RunConfig { iterations: 500, seed: 3 }).unwrap();
        assert_eq!(stats.histogram.values().sum::<u64>(), 500);
        assert!(stats.table_cell().contains('/'));
    }

    /// Soundness (the experiment of §5.1): nothing forbidden by the LKMM
    /// is ever observed on any simulated architecture.
    #[test]
    fn simulators_are_sound_wrt_lkmm() {
        use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
        let model = lkmm::Lkmm::new();
        for pt in library::all() {
            let t = pt.test();
            let verdict = check_test(&model, &t, &EnumOptions::default()).unwrap().verdict;
            if verdict == Verdict::Forbidden {
                for arch in Arch::ALL {
                    let stats =
                        run_test(&t, arch, &RunConfig { iterations: 2_000, seed: 99 }).unwrap();
                    assert_eq!(
                        stats.observed,
                        0,
                        "{} observed on {} but LKMM forbids it",
                        pt.name,
                        arch.name()
                    );
                }
            }
        }
    }
}
