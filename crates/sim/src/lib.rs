//! Operational hardware simulators — the stand-in for the paper's
//! Power8 / ARMv8 / ARMv7 / x86 testbeds (§5.1, Table 5).
//!
//! The paper runs litmus tests as kernel modules on real machines and
//! counts how often each outcome is observed. We do not have those
//! machines, so this crate provides *operational* models that exercise the
//! same code path — run a test many times under randomised scheduling,
//! histogram the outcomes — while exhibiting each architecture's
//! documented relaxations:
//!
//! * **x86** ([`Arch::X86`]): in-order execution with a FIFO store buffer
//!   (TSO). The only relaxation is write→read; `smp_mb` drains the
//!   buffer.
//! * **ARMv8 / ARMv7** ([`Arch::Armv8`], [`Arch::Armv7`]): out-of-order
//!   performs from a bounded window over a *single-copy* (multi-copy
//!   atomic) memory; dependencies and fences restrict reordering. ARMv7
//!   implements acquire/release with full `dmb` fences, ARMv8 with native
//!   one-directional ld.acq/st.rel (§3.2.2 of the paper).
//! * **Power8** ([`Arch::Power`]): additionally *non-multi-copy-atomic* —
//!   a committed write propagates to each other hardware thread at an
//!   independent random time; release stores and `smp_mb`/`sync` impose
//!   (A-)cumulative propagation constraints.
//!
//! `synchronize_rcu` is modelled operationally (full fence, then wait
//! until every thread is outside the read-side critical section it was in
//! when the grace period began, then full fence), matching a correct
//! kernel RCU implementation on each machine.
//!
//! The simulators are deliberately *stronger* than the LKMM in places
//! where real pipelines are too (no store speculation: stores retire only after
//! program-order-earlier loads complete, so `LB` is never observed —
//! just as the paper's machines never produced it). The
//! soundness property that matters, and that the test suite enforces, is
//! Table 5's: **no outcome forbidden by the LKMM is ever observed**.
//!
//! # Examples
//!
//! ```
//! use lkmm_sim::{run_test, Arch, RunConfig};
//!
//! let sb = lkmm_litmus::library::by_name("SB").unwrap().test();
//! let stats = run_test(&sb, Arch::X86, &RunConfig { iterations: 2_000, seed: 1 }).unwrap();
//! assert!(stats.observed > 0, "store buffering is visible on x86");
//! ```

pub mod exhaustive;
pub mod machine;
pub mod rng;
pub mod runner;

pub use exhaustive::{explore, ExploreResult};
pub use machine::{Arch, MachineError};
pub use runner::{run_test, RunConfig, RunStats};
