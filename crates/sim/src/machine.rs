//! The parametric operational machine.
//!
//! One machine skeleton covers all four architectures:
//!
//! * threads *issue* statements in program order (no branch speculation —
//!   control dependencies stall issue until the branch inputs are ready);
//! * issued operations sit in a bounded window and *perform* out of order,
//!   subject to per-architecture readiness rules (same-location program
//!   order, dependencies, fences, acquire/release);
//! * on x86 the window is in-order and stores retire into a FIFO *store
//!   buffer* drained asynchronously (TSO);
//! * on Power a performed store is appended to its location's coherence
//!   list and *propagates* to each other thread at an independent random
//!   time, subject to cumulativity constraints carried as per-write
//!   dependency sets (release: everything observed; after `smp_wmb`: own
//!   earlier stores).
//!
//! Registers are SSA-renamed at issue so reused register names never
//! alias across loop-free program order.

use lkmm_exec::{LocId, Val};
use lkmm_litmus::ast::{AddrExpr, BinOp, Expr, FenceKind, RmwOrder, Stmt, Test};
use crate::rng::SplitMix64;
use std::collections::HashMap;
use std::fmt;

/// A simulated architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arch {
    /// In-order + FIFO store buffer (TSO).
    X86,
    /// Out-of-order, multi-copy atomic, native acquire/release.
    Armv8,
    /// Out-of-order, multi-copy atomic, acquire/release via full `dmb`.
    Armv7,
    /// Out-of-order, non-multi-copy-atomic store propagation.
    Power,
    /// DEC Alpha: like Power, but with banked caches — a load may return
    /// a *stale* coherence version unless `smp_read_barrier_depends` (or
    /// a stronger barrier) has synchronised the banks. The only machine
    /// on which a dependent read can bypass its producer's ordering
    /// (§3.2.2: the reason `strong-rrdep` needs the barrier).
    Alpha,
}

impl Arch {
    /// The paper's Table 5 testbeds, in column order.
    pub const ALL: [Arch; 4] = [Arch::Power, Arch::Armv8, Arch::Armv7, Arch::X86];

    /// All simulated architectures including Alpha.
    pub const ALL_WITH_ALPHA: [Arch; 5] =
        [Arch::Power, Arch::Armv8, Arch::Armv7, Arch::X86, Arch::Alpha];

    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            Arch::X86 => "X86",
            Arch::Armv8 => "ARMv8",
            Arch::Armv7 => "ARMv7",
            Arch::Power => "Power8",
            Arch::Alpha => "Alpha",
        }
    }

    fn in_order(self) -> bool {
        self == Arch::X86
    }

    fn store_buffer(self) -> bool {
        self == Arch::X86
    }

    fn multi_copy_atomic(self) -> bool {
        !matches!(self, Arch::Power | Arch::Alpha)
    }

    fn stale_dependent_reads(self) -> bool {
        self == Arch::Alpha
    }

    /// ARMv7 maps acquire/release to `dmb`-based full fences (§3.2.2).
    fn full_barrier_acq_rel(self) -> bool {
        self == Arch::Armv7
    }
}

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// `__assume` is an axiomatic-modelling construct; the operational
    /// machine does not support it.
    Unsupported(&'static str),
    /// No action is enabled but threads are unfinished (e.g. a grace
    /// period waiting on a never-closed critical section).
    Deadlock,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Unsupported(what) => write!(f, "unsupported in simulation: {what}"),
            MachineError::Deadlock => write!(f, "simulation deadlock"),
        }
    }
}

impl std::error::Error for MachineError {}

/// In-window operation.
#[derive(Clone, Debug)]
enum Op {
    Load { dst: String, loc: usize, acquire: bool },
    Store { loc: usize, value: Expr, release: bool },
    /// Atomic read-modify-write. `expected` of `Some` makes it a
    /// compare-and-swap whose success is decided at perform time;
    /// `must_succeed` additionally delays scheduling until it would
    /// succeed (spin_lock: spin until the lock is free).
    Rmw {
        dst: String,
        loc: usize,
        value: Expr,
        expected: Option<Expr>,
        acquire: bool,
        release: bool,
        must_succeed: bool,
        /// Arithmetic RMW: final value = old `op` eval(value); `dst_new`
        /// selects whether `dst` receives the new value instead of the old.
        compute: Option<BinOp>,
        dst_new: bool,
    },
    Fence(SimFence),
    RcuLock,
    RcuUnlock,
    /// SRCU section markers for one domain (a location index).
    SrcuLock { domain: usize },
    SrcuUnlock { domain: usize },
    /// Grace-period wait; `domain` of `None` is RCU, `Some(d)` is the
    /// SRCU domain `d`. The epoch snapshot is taken when the op reaches
    /// the head of the window.
    GpWait { domain: Option<usize>, snapshot: Option<Vec<u64>> },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimFence {
    Rmb,
    Wmb,
    Mb,
    /// Alpha bank synchronisation (`smp_read_barrier_depends`).
    RbDep,
}

#[derive(Clone, Debug)]
struct WindowEntry {
    op: Op,
    performed: bool,
}

/// One coherence-ordered write version (Power memory system).
#[derive(Clone, Debug)]
struct Version {
    val: Val,
    /// Visibility prerequisites: `(loc, pos)` pairs that must already be
    /// visible to a thread before this version may propagate to it.
    deps: Vec<(usize, usize)>,
}

#[derive(Clone)]
struct ThreadState<'a> {
    /// Statement cursor: stack of (block, next index).
    frames: Vec<(&'a [Stmt], usize)>,
    window: Vec<WindowEntry>,
    /// SSA register values (filled at perform).
    regs: HashMap<String, Val>,
    /// Source register name → current SSA name.
    rename: HashMap<String, String>,
    ssa_counter: usize,
    /// x86 store buffer: FIFO of (loc, val).
    buffer: Vec<(usize, Val)>,
    /// Own latest committed coherence position per location (Power).
    own_latest: HashMap<usize, usize>,
    /// Coherence positions snapshotted at the last `smp_wmb` (Power).
    wmb_snapshot: Vec<(usize, usize)>,
    /// Alpha: per-location lower bound on the version a load may return
    /// (raised by own accesses and by `smp_read_barrier_depends`/`smp_mb`;
    /// staleness below the *view* is otherwise allowed — banked caches).
    read_floor: Vec<usize>,
}

impl<'a> ThreadState<'a> {
    fn done(&self) -> bool {
        self.frames.is_empty() && self.window.iter().all(|e| e.performed)
    }
}

/// The whole machine for one run.
#[derive(Clone)]
pub(crate) struct Machine<'a> {
    arch: Arch,
    locs: Vec<String>,
    threads: Vec<ThreadState<'a>>,
    /// MCA global memory.
    mem: Vec<Val>,
    /// Power: coherence version lists per location (index 0 = initial).
    versions: Vec<Vec<Version>>,
    /// Power: per thread, per location, visible version index.
    view: Vec<Vec<usize>>,
    /// RCU bookkeeping.
    nesting: Vec<u64>,
    lock_epoch: Vec<u64>,
    /// Per-thread, per-SRCU-domain nesting and epochs.
    srcu_nesting: Vec<HashMap<usize, u64>>,
    srcu_epoch: Vec<HashMap<usize, u64>>,
    window_cap: usize,
}

/// An enabled scheduler action.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Action {
    Issue(usize),
    /// Perform window op `1` of thread `0`; on Alpha, loads carry the
    /// coherence version the (possibly stale) bank returns.
    Perform(usize, usize, Option<usize>),
    Drain(usize),
    Propagate { dst: usize, loc: usize },
}

impl<'a> Machine<'a> {
    pub(crate) fn new(
        test: &'a Test,
        locs: &[String],
        init: &[Val],
        arch: Arch,
    ) -> Machine<'a> {
        let n = test.threads.len();
        Machine {
            arch,
            locs: locs.to_vec(),
            threads: test
                .threads
                .iter()
                .map(|t| ThreadState {
                    frames: vec![(t.body.as_slice(), 0)],
                    window: Vec::new(),
                    regs: HashMap::new(),
                    rename: HashMap::new(),
                    ssa_counter: 0,
                    buffer: Vec::new(),
                    own_latest: HashMap::new(),
                    wmb_snapshot: Vec::new(),
                    read_floor: vec![0; init.len()],
                })
                .collect(),
            mem: init.to_vec(),
            versions: init.iter().map(|&v| vec![Version { val: v, deps: Vec::new() }]).collect(),
            view: vec![vec![0; init.len()]; n],
            nesting: vec![0; n],
            lock_epoch: vec![0; n],
            srcu_nesting: vec![HashMap::new(); n],
            srcu_epoch: vec![HashMap::new(); n],
            window_cap: if arch == Arch::Armv7 { 4 } else { 8 },
        }
    }

    /// Run to completion under the given RNG.
    pub(crate) fn run(&mut self, rng: &mut SplitMix64) -> Result<(), MachineError> {
        loop {
            let actions = self.enabled_actions();
            if actions.is_empty() {
                if self.threads.iter().all(|t| t.done())
                    && self.threads.iter().all(|t| t.buffer.is_empty())
                {
                    return Ok(());
                }
                return Err(MachineError::Deadlock);
            }
            let a = actions[rng.gen_index(actions.len())];
            self.execute(a)?;
        }
    }

    /// Final value of each location.
    pub(crate) fn final_memory(&self) -> Vec<Val> {
        if self.arch.multi_copy_atomic() {
            self.mem.clone()
        } else {
            self.versions.iter().map(|v| v.last().unwrap().val).collect()
        }
    }

    /// Final value of a source-level register in a thread.
    pub(crate) fn final_reg(&self, thread: usize, reg: &str) -> Option<Val> {
        let t = &self.threads[thread];
        let ssa = t.rename.get(reg)?;
        t.regs.get(ssa).copied()
    }

    pub(crate) fn enabled_actions(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        for tid in 0..self.threads.len() {
            if self.can_issue(tid) {
                out.push(Action::Issue(tid));
            }
            for i in 0..self.threads[tid].window.len() {
                if !self.threads[tid].window[i].performed && self.op_ready(tid, i) {
                    match &self.threads[tid].window[i].op {
                        Op::Load { loc, .. } if self.arch.stale_dependent_reads() => {
                            // Each coherent-but-possibly-stale bank version
                            // is a distinct schedule.
                            let floor = self.threads[tid].read_floor[*loc];
                            for v in floor..=self.view[tid][*loc] {
                                out.push(Action::Perform(tid, i, Some(v)));
                            }
                        }
                        _ => out.push(Action::Perform(tid, i, None)),
                    }
                    if self.arch.in_order() {
                        break; // only the oldest ready op on x86
                    }
                }
            }
            if self.arch.store_buffer() && !self.threads[tid].buffer.is_empty() {
                out.push(Action::Drain(tid));
            }
        }
        if !self.arch.multi_copy_atomic() {
            for dst in 0..self.threads.len() {
                for loc in 0..self.locs.len() {
                    if self.can_propagate(dst, loc) {
                        out.push(Action::Propagate { dst, loc });
                    }
                }
            }
        }
        out
    }

    pub(crate) fn execute(&mut self, a: Action) -> Result<(), MachineError> {
        match a {
            Action::Issue(t) => self.issue(t),
            Action::Perform(t, i, stale) => {
                self.perform(t, i, stale);
                // Trim performed prefix to bound the window scan.
                while self.threads[t]
                    .window
                    .first()
                    .is_some_and(|e| e.performed)
                {
                    self.threads[t].window.remove(0);
                }
                Ok(())
            }
            Action::Drain(t) => {
                let (loc, val) = self.threads[t].buffer.remove(0);
                self.mem[loc] = val;
                Ok(())
            }
            Action::Propagate { dst, loc } => {
                self.view[dst][loc] += 1;
                Ok(())
            }
        }
    }

    fn can_propagate(&self, dst: usize, loc: usize) -> bool {
        let cur = self.view[dst][loc];
        let Some(next) = self.versions[loc].get(cur + 1) else { return false };
        next.deps.iter().all(|&(l, p)| self.view[dst][l] >= p)
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn next_stmt(&self, tid: usize) -> Option<&'a Stmt> {
        let t = &self.threads[tid];
        let &(block, idx) = t.frames.last()?;
        block.get(idx)
    }

    /// Resolve a source expression to SSA names at issue time.
    fn resolve_expr(&self, tid: usize, e: &Expr) -> Expr {
        match e {
            Expr::Const(c) => Expr::Const(*c),
            Expr::LocRef(n) => Expr::LocRef(n.clone()),
            Expr::Reg(r) => {
                let t = &self.threads[tid];
                Expr::Reg(t.rename.get(r).cloned().unwrap_or_else(|| r.clone()))
            }
            Expr::Bin(op, a, b) => Expr::bin(
                *op,
                self.resolve_expr(tid, a),
                self.resolve_expr(tid, b),
            ),
            Expr::Not(inner) => Expr::Not(Box::new(self.resolve_expr(tid, inner))),
        }
    }

    /// Evaluate a (resolved) expression; `None` while inputs are pending.
    fn eval_expr(&self, tid: usize, e: &Expr) -> Option<Val> {
        let regs = &self.threads[tid].regs;
        Some(match e {
            Expr::Const(c) => Val::Int(*c),
            Expr::LocRef(n) => Val::Loc(LocId(self.locs.iter().position(|l| l == n)?)),
            Expr::Reg(r) => *regs.get(r)?,
            Expr::Not(inner) => Val::Int(i64::from(!self.eval_expr(tid, inner)?.truthy())),
            Expr::Bin(op, a, b) => {
                let va = self.eval_expr(tid, a)?;
                let vb = self.eval_expr(tid, b)?;
                match op {
                    BinOp::Eq => Val::Int(i64::from(va == vb)),
                    BinOp::Ne => Val::Int(i64::from(va != vb)),
                    BinOp::Add if matches!((va, vb), (Val::Loc(_), Val::Int(0))) => va,
                    BinOp::Add if matches!((va, vb), (Val::Int(0), Val::Loc(_))) => vb,
                    _ => {
                        let (x, y) = (va.as_int()?, vb.as_int()?);
                        Val::Int(match op {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::Xor => x ^ y,
                            BinOp::And => x & y,
                            BinOp::Or => x | y,
                            BinOp::Lt => i64::from(x < y),
                            BinOp::Le => i64::from(x <= y),
                            BinOp::Gt => i64::from(x > y),
                            BinOp::Ge => i64::from(x >= y),
                            BinOp::Eq | BinOp::Ne => unreachable!(),
                        })
                    }
                }
            }
        })
    }

    /// Resolve a memory address; `None` while the pointer is pending.
    fn resolve_addr(&self, tid: usize, a: &AddrExpr) -> Option<usize> {
        match a {
            AddrExpr::Var(name) => self.locs.iter().position(|l| l == name),
            AddrExpr::Reg(r) => {
                let t = &self.threads[tid];
                let ssa = t.rename.get(r)?;
                match t.regs.get(ssa)? {
                    Val::Loc(l) => Some(l.0),
                    Val::Int(_) => None,
                }
            }
        }
    }

    fn fresh_ssa(&mut self, tid: usize, reg: &str) -> String {
        let t = &mut self.threads[tid];
        let name = format!("{reg}@{}", t.ssa_counter);
        t.ssa_counter += 1;
        t.rename.insert(reg.to_string(), name.clone());
        name
    }

    fn can_issue(&mut self, tid: usize) -> bool {
        if self.threads[tid].window.len() >= self.window_cap {
            return false;
        }
        // Pop exhausted frames.
        while let Some(&(block, idx)) = self.threads[tid].frames.last() {
            if idx >= block.len() {
                self.threads[tid].frames.pop();
            } else {
                break;
            }
        }
        let Some(stmt) = self.next_stmt(tid) else { return false };
        match stmt {
            Stmt::ReadOnce { addr, .. }
            | Stmt::LoadAcquire { addr, .. }
            | Stmt::RcuDereference { addr, .. } => self.resolve_addr(tid, addr).is_some(),
            Stmt::WriteOnce { addr, .. }
            | Stmt::StoreRelease { addr, .. }
            | Stmt::RcuAssignPointer { addr, .. }
            | Stmt::Xchg { addr, .. }
            | Stmt::CmpXchg { addr, .. }
            | Stmt::AtomicOp { addr, .. }
            | Stmt::SpinLock { addr }
            | Stmt::SpinUnlock { addr } => self.resolve_addr(tid, addr).is_some(),
            Stmt::SrcuReadLock { domain }
            | Stmt::SrcuReadUnlock { domain }
            | Stmt::SynchronizeSrcu { domain } => self.resolve_addr(tid, domain).is_some(),
            Stmt::If { cond, .. } => {
                let resolved = self.resolve_expr(tid, cond);
                self.eval_expr(tid, &resolved).is_some()
            }
            Stmt::Assign { value, .. } => {
                let resolved = self.resolve_expr(tid, value);
                self.eval_expr(tid, &resolved).is_some()
            }
            Stmt::Fence(_) | Stmt::Assume(_) => true,
        }
    }

    fn push_op(&mut self, tid: usize, op: Op) {
        self.threads[tid].window.push(WindowEntry { op, performed: false });
    }

    fn advance(&mut self, tid: usize) {
        if let Some(frame) = self.threads[tid].frames.last_mut() {
            frame.1 += 1;
        }
    }

    fn issue(&mut self, tid: usize) -> Result<(), MachineError> {
        let stmt = self.next_stmt(tid).expect("can_issue checked");
        self.advance(tid);
        match stmt {
            Stmt::ReadOnce { dst, addr }
            | Stmt::LoadAcquire { dst, addr }
            | Stmt::RcuDereference { dst, addr } => {
                let loc = self.resolve_addr(tid, addr).unwrap();
                let acquire = matches!(stmt, Stmt::LoadAcquire { .. });
                let ssa = self.fresh_ssa(tid, dst);
                self.push_op(tid, Op::Load { dst: ssa, loc, acquire });
                // Table 4: rcu_dereference carries the Alpha read barrier.
                if matches!(stmt, Stmt::RcuDereference { .. })
                    && self.arch.stale_dependent_reads()
                {
                    self.push_op(tid, Op::Fence(SimFence::RbDep));
                }
            }
            Stmt::WriteOnce { addr, value }
            | Stmt::StoreRelease { addr, value }
            | Stmt::RcuAssignPointer { addr, value } => {
                let loc = self.resolve_addr(tid, addr).unwrap();
                let release = !matches!(stmt, Stmt::WriteOnce { .. });
                let value = self.resolve_expr(tid, value);
                self.push_op(tid, Op::Store { loc, value, release });
            }
            Stmt::Fence(kind) => match kind {
                FenceKind::Rmb => self.push_op(tid, Op::Fence(SimFence::Rmb)),
                FenceKind::Wmb => self.push_op(tid, Op::Fence(SimFence::Wmb)),
                FenceKind::Mb => self.push_op(tid, Op::Fence(SimFence::Mb)),
                FenceKind::RbDep => {
                    if self.arch.stale_dependent_reads() {
                        self.push_op(tid, Op::Fence(SimFence::RbDep));
                    }
                    // A no-op on every other architecture (§3.2.2).
                }
                FenceKind::RcuLock => self.push_op(tid, Op::RcuLock),
                FenceKind::RcuUnlock => self.push_op(tid, Op::RcuUnlock),
                FenceKind::SyncRcu => {
                    self.push_op(tid, Op::Fence(SimFence::Mb));
                    self.push_op(tid, Op::GpWait { domain: None, snapshot: None });
                    self.push_op(tid, Op::Fence(SimFence::Mb));
                }
            },
            Stmt::Xchg { order, dst, addr, value } => {
                let loc = self.resolve_addr(tid, addr).unwrap();
                let value = self.resolve_expr(tid, value);
                let (acquire, release, full) = rmw_flags(*order);
                if full {
                    self.push_op(tid, Op::Fence(SimFence::Mb));
                }
                let ssa = self.fresh_ssa(tid, dst);
                self.push_op(tid, Op::Rmw {
                    dst: ssa,
                    loc,
                    value,
                    expected: None,
                    acquire,
                    release,
                    must_succeed: false,
                    compute: None,
                    dst_new: false,
                });
                if full {
                    self.push_op(tid, Op::Fence(SimFence::Mb));
                }
            }
            Stmt::CmpXchg { order, dst, addr, expected, new } => {
                let loc = self.resolve_addr(tid, addr).unwrap();
                let expected = self.resolve_expr(tid, expected);
                let new = self.resolve_expr(tid, new);
                let (acquire, release, full) = rmw_flags(*order);
                if full {
                    self.push_op(tid, Op::Fence(SimFence::Mb));
                }
                let ssa = self.fresh_ssa(tid, dst);
                self.push_op(tid, Op::Rmw {
                    dst: ssa,
                    loc,
                    value: new,
                    expected: Some(expected),
                    acquire,
                    release,
                    must_succeed: false,
                    compute: None,
                    dst_new: false,
                });
                if full {
                    self.push_op(tid, Op::Fence(SimFence::Mb));
                }
            }
            Stmt::SrcuReadLock { domain } | Stmt::SrcuReadUnlock { domain } => {
                let d = self.resolve_addr(tid, domain).unwrap();
                if matches!(stmt, Stmt::SrcuReadLock { .. }) {
                    self.push_op(tid, Op::SrcuLock { domain: d });
                } else {
                    self.push_op(tid, Op::SrcuUnlock { domain: d });
                }
            }
            Stmt::SynchronizeSrcu { domain } => {
                let d = self.resolve_addr(tid, domain).unwrap();
                self.push_op(tid, Op::Fence(SimFence::Mb));
                self.push_op(tid, Op::GpWait { domain: Some(d), snapshot: None });
                self.push_op(tid, Op::Fence(SimFence::Mb));
            }
            Stmt::AtomicOp { order, dst, addr, op, operand } => {
                let loc = self.resolve_addr(tid, addr).unwrap();
                let operand = self.resolve_expr(tid, operand);
                let (acquire, release, full) = rmw_flags(*order);
                if full {
                    self.push_op(tid, Op::Fence(SimFence::Mb));
                }
                let (ssa, dst_new) = match dst {
                    Some((d, kind)) => (
                        self.fresh_ssa(tid, d),
                        *kind == lkmm_litmus::ast::AtomicDst::New,
                    ),
                    None => (self.fresh_ssa(tid, &format!("__void{loc}")), false),
                };
                self.push_op(tid, Op::Rmw {
                    dst: ssa,
                    loc,
                    value: operand,
                    expected: None,
                    acquire,
                    release,
                    must_succeed: false,
                    compute: Some(*op),
                    dst_new,
                });
                if full {
                    self.push_op(tid, Op::Fence(SimFence::Mb));
                }
            }
            Stmt::SpinLock { addr } => {
                let loc = self.resolve_addr(tid, addr).unwrap();
                // Acquire-RMW spinning until it reads 0; modelled by a
                // cmpxchg_acquire(0 → 1) that is only ready when the lock
                // word is free (see op_ready).
                let ssa = self.fresh_ssa(tid, &format!("__lock{loc}"));
                self.push_op(tid, Op::Rmw {
                    dst: ssa,
                    loc,
                    value: Expr::Const(1),
                    expected: Some(Expr::Const(0)),
                    acquire: true,
                    release: false,
                    must_succeed: true,
                    compute: None,
                    dst_new: false,
                });
            }
            Stmt::SpinUnlock { addr } => {
                let loc = self.resolve_addr(tid, addr).unwrap();
                self.push_op(tid, Op::Store { loc, value: Expr::Const(0), release: true });
            }
            Stmt::Assign { dst, value } => {
                let resolved = self.resolve_expr(tid, value);
                let v = self.eval_expr(tid, &resolved).expect("can_issue checked");
                let ssa = self.fresh_ssa(tid, dst);
                self.threads[tid].regs.insert(ssa, v);
            }
            Stmt::If { cond, then_, else_ } => {
                let resolved = self.resolve_expr(tid, cond);
                let c = self.eval_expr(tid, &resolved).expect("can_issue checked");
                let branch = if c.truthy() { then_ } else { else_ };
                self.threads[tid].frames.push((branch.as_slice(), 0));
            }
            Stmt::Assume(_) => return Err(MachineError::Unsupported("__assume")),
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Perform
    // ------------------------------------------------------------------

    fn op_loc(op: &Op) -> Option<usize> {
        match op {
            Op::Load { loc, .. } | Op::Store { loc, .. } | Op::Rmw { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// Is every write this thread has observed visible to all threads?
    /// (Power `sync` condition; trivially true on MCA machines.)
    fn fully_propagated(&self, tid: usize) -> bool {
        if self.arch.multi_copy_atomic() {
            return true;
        }
        (0..self.locs.len()).all(|loc| {
            let mine = self.view[tid][loc];
            (0..self.threads.len()).all(|t| self.view[t][loc] >= mine)
        })
    }

    fn op_ready(&self, tid: usize, i: usize) -> bool {
        let t = &self.threads[tid];
        let entry = &t.window[i];
        let earlier = &t.window[..i];
        let all_earlier_done = earlier.iter().all(|e| e.performed);
        if self.arch.in_order() && !all_earlier_done {
            return false;
        }
        // Full barriers (and RCU markers) block everything after them.
        // On Power, smp_wmb/smp_rmb are both lwsync, which orders all
        // local pairs except store→load visibility — so they block too.
        let blocked_by_barrier = earlier.iter().any(|e| {
            !e.performed
                && match e.op {
                    Op::Fence(SimFence::Mb)
                    | Op::GpWait { .. }
                    | Op::RcuLock
                    | Op::RcuUnlock
                    | Op::SrcuLock { .. }
                    | Op::SrcuUnlock { .. } => true,
                    Op::Fence(SimFence::Wmb | SimFence::Rmb) => self.arch == Arch::Power,
                    _ => false,
                }
        });
        if blocked_by_barrier {
            return false;
        }
        // Earlier unperformed acquire loads block everything after.
        let blocked_by_acquire = earlier.iter().any(|e| {
            !e.performed
                && match &e.op {
                    Op::Load { acquire, .. } | Op::Rmw { acquire, .. } => *acquire,
                    _ => false,
                }
        });
        if blocked_by_acquire {
            return false;
        }
        // ARMv7: acquire/release are dmb-based — a pending *release* also
        // blocks later ops (dmb ; str orders both directions).
        if self.arch.full_barrier_acq_rel() {
            let blocked = earlier.iter().any(|e| {
                !e.performed
                    && match &e.op {
                        Op::Store { release, .. } | Op::Rmw { release, .. } => *release,
                        _ => false,
                    }
            });
            if blocked {
                return false;
            }
        }
        // Same-location program order.
        if let Some(loc) = Self::op_loc(&entry.op) {
            if earlier.iter().any(|e| !e.performed && Self::op_loc(&e.op) == Some(loc)) {
                return false;
            }
        }
        // Stores are irrevocable: they retire only after program-order-
        // earlier loads have completed (no store speculation). This is why
        // none of the paper's machines ever exhibited LB (§5.1).
        if matches!(entry.op, Op::Store { .. } | Op::Rmw { .. }) {
            let pending_load = earlier
                .iter()
                .any(|e| !e.performed && matches!(e.op, Op::Load { .. } | Op::Rmw { .. }));
            if pending_load {
                return false;
            }
        }
        match &entry.op {
            Op::Load { acquire, .. } => {
                // Loads wait for earlier unperformed Rmb/rb-dep fences.
                if earlier.iter().any(|e| {
                    !e.performed
                        && matches!(e.op, Op::Fence(SimFence::Rmb | SimFence::RbDep))
                }) {
                    return false;
                }
                // ARMv8's release/acquire are RCsc: LDAR waits for every
                // earlier STLR ([L]; po; [A] in bob). Power's
                // lwsync-based mapping has no such ordering.
                if *acquire && self.arch != Arch::Power {
                    let pending_release = earlier.iter().any(|e| {
                        !e.performed
                            && matches!(
                                e.op,
                                Op::Store { release: true, .. }
                                    | Op::Rmw { release: true, .. }
                            )
                    });
                    if pending_release {
                        return false;
                    }
                }
                true
            }
            Op::Store { value, release, .. } => {
                if self.eval_expr(tid, value).is_none() {
                    return false;
                }
                if *release && !all_earlier_done {
                    return false;
                }
                // Stores wait for earlier unperformed Wmb fences.
                !earlier.iter().any(|e| {
                    !e.performed && matches!(e.op, Op::Fence(SimFence::Wmb))
                })
            }
            Op::Rmw { value, expected, release, loc, must_succeed, .. } => {
                if self.eval_expr(tid, value).is_none() {
                    return false;
                }
                if let Some(exp) = expected {
                    let Some(e) = self.eval_expr(tid, exp) else { return false };
                    // spin_lock: only schedulable once the lock word's
                    // globally-latest value lets the acquisition succeed.
                    if *must_succeed && self.rmw_current(tid, *loc) != e {
                        return false;
                    }
                }
                if *release && !all_earlier_done {
                    return false;
                }
                // RMWs act on the coherence point: on Power they wait
                // until the location is fully propagated to this thread.
                if !self.arch.multi_copy_atomic()
                    && self.view[tid][*loc] != self.versions[*loc].len() - 1
                {
                    return false;
                }
                !earlier.iter().any(|e| {
                    !e.performed && matches!(e.op, Op::Fence(SimFence::Wmb | SimFence::Rmb))
                })
            }
            Op::Fence(SimFence::RbDep) => earlier
                .iter()
                .all(|e| e.performed || !matches!(e.op, Op::Load { .. } | Op::Rmw { .. })),
            Op::Fence(SimFence::Rmb) => {
                if self.arch == Arch::Power {
                    all_earlier_done // lwsync
                } else {
                    earlier.iter().all(|e| {
                        e.performed || !matches!(e.op, Op::Load { .. } | Op::Rmw { .. })
                    })
                }
            }
            Op::Fence(SimFence::Wmb) => {
                if self.arch == Arch::Power {
                    all_earlier_done // lwsync
                } else {
                    earlier.iter().all(|e| {
                        e.performed || !matches!(e.op, Op::Store { .. } | Op::Rmw { .. })
                    })
                }
            }
            Op::Fence(SimFence::Mb) => {
                if !all_earlier_done {
                    return false;
                }
                if self.arch.store_buffer() && !t.buffer.is_empty() {
                    return false;
                }
                self.fully_propagated(tid)
            }
            Op::RcuLock | Op::RcuUnlock | Op::SrcuLock { .. } | Op::SrcuUnlock { .. } => {
                all_earlier_done
            }
            Op::GpWait { domain, snapshot } => {
                if !all_earlier_done {
                    return false;
                }
                match snapshot {
                    // First evaluation: becomes schedulable to take the
                    // snapshot (perform() handles both steps).
                    None => true,
                    Some(snap) => (0..self.threads.len()).all(|t2| match domain {
                        None => self.nesting[t2] == 0 || self.lock_epoch[t2] > snap[t2],
                        Some(d) => {
                            let nest =
                                self.srcu_nesting[t2].get(d).copied().unwrap_or(0);
                            let epoch = self.srcu_epoch[t2].get(d).copied().unwrap_or(0);
                            nest == 0 || epoch > snap[t2]
                        }
                    }),
                }
            }
        }
    }

    /// The value an RMW would read: the coherence-globally-latest value
    /// (accounting for this thread's own buffered stores on x86).
    fn rmw_current(&self, tid: usize, loc: usize) -> Val {
        if self.arch.store_buffer() {
            if let Some(&(_, v)) =
                self.threads[tid].buffer.iter().rev().find(|&&(l, _)| l == loc)
            {
                return v;
            }
            return self.mem[loc];
        }
        if self.arch.multi_copy_atomic() {
            self.mem[loc]
        } else {
            self.versions[loc].last().unwrap().val
        }
    }

    /// The latest coherent value of `loc` visible to `tid`.
    fn coherent_latest(&self, tid: usize, loc: usize) -> Option<Val> {
        if self.arch.store_buffer() {
            // Own buffer first (store forwarding), then memory.
            if let Some(&(_, v)) =
                self.threads[tid].buffer.iter().rev().find(|&&(l, _)| l == loc)
            {
                return Some(v);
            }
            return Some(self.mem[loc]);
        }
        if self.arch.multi_copy_atomic() {
            Some(self.mem[loc])
        } else {
            Some(self.versions[loc][self.view[tid][loc]].val)
        }
    }

    fn commit_store(&mut self, tid: usize, loc: usize, val: Val, release: bool) {
        if self.arch.store_buffer() {
            self.threads[tid].buffer.push((loc, val));
            return;
        }
        if self.arch.multi_copy_atomic() {
            self.mem[loc] = val;
            return;
        }
        // Power: append a coherence version with cumulativity deps.
        let deps = if release {
            // A-cumulative: everything this thread has observed.
            (0..self.locs.len())
                .filter(|&l| self.view[tid][l] > 0)
                .map(|l| (l, self.view[tid][l]))
                .collect()
        } else {
            self.threads[tid].wmb_snapshot.clone()
        };
        self.versions[loc].push(Version { val, deps });
        let pos = self.versions[loc].len() - 1;
        self.view[tid][loc] = pos;
        self.threads[tid].own_latest.insert(loc, pos);
        self.threads[tid].read_floor[loc] = pos;
    }

    fn perform(&mut self, tid: usize, i: usize, stale: Option<usize>) {
        let op = self.threads[tid].window[i].op.clone();
        match op {
            Op::Load { dst, loc, acquire } => {
                let v = match stale {
                    Some(pos) => {
                        // CoRR: later reads may not go further back.
                        self.threads[tid].read_floor[loc] = pos;
                        self.versions[loc][pos].val
                    }
                    None => self.coherent_latest(tid, loc).expect("readiness checked"),
                };
                // Alpha: smp_load_acquire is ld;mb — the mb syncs banks.
                if acquire && self.arch.stale_dependent_reads() {
                    let view = self.view[tid].clone();
                    self.threads[tid].read_floor = view;
                }
                self.threads[tid].regs.insert(dst, v);
            }
            Op::Store { loc, value, release } => {
                let v = self.eval_expr(tid, &value).expect("readiness checked");
                self.commit_store(tid, loc, v, release);
            }
            Op::Rmw { dst, loc, value, expected, compute, dst_new, .. } => {
                // Atomic at the coherence point: read the globally latest
                // value and (conditionally) write in one step. On x86 a
                // LOCK'd operation drains the store buffer first.
                if self.arch.store_buffer() {
                    let pending: Vec<(usize, Val)> =
                        self.threads[tid].buffer.drain(..).collect();
                    for (l, bv) in pending {
                        self.mem[l] = bv;
                    }
                }
                let cur = if self.arch.multi_copy_atomic() {
                    self.mem[loc]
                } else {
                    self.versions[loc].last().unwrap().val
                };
                let succeed = match &expected {
                    None => true,
                    Some(e) => self.eval_expr(tid, e).expect("readiness checked") == cur,
                };
                if succeed {
                    let operand = self.eval_expr(tid, &value).expect("readiness checked");
                    let v = match compute {
                        None => operand,
                        Some(op) => {
                            let (x, y) = (
                                cur.as_int().expect("atomic arithmetic on pointer"),
                                operand.as_int().expect("atomic operand must be int"),
                            );
                            Val::Int(match op {
                                BinOp::Add => x.wrapping_add(y),
                                BinOp::Sub => x.wrapping_sub(y),
                                BinOp::And => x & y,
                                BinOp::Or => x | y,
                                BinOp::Xor => x ^ y,
                                _ => x,
                            })
                        }
                    };
                    self.threads[tid].regs.insert(dst, if dst_new { v } else { cur });
                    if self.arch.multi_copy_atomic() {
                        self.mem[loc] = v;
                    } else {
                        // Fully-propagated precondition makes this the
                        // coherence-latest position.
                        let deps: Vec<(usize, usize)> = (0..self.locs.len())
                            .filter(|&l| self.view[tid][l] > 0)
                            .map(|l| (l, self.view[tid][l]))
                            .collect();
                        self.versions[loc].push(Version { val: v, deps });
                        let pos = self.versions[loc].len() - 1;
                        self.view[tid][loc] = pos;
                        self.threads[tid].own_latest.insert(loc, pos);
                    }
                }
            }
            Op::Fence(SimFence::Wmb) => {
                // On Power, smp_wmb is lwsync, which is A-cumulative:
                // later stores may not propagate to a thread before
                // everything this thread has *observed* (its own stores
                // and any foreign stores it has read) is visible there.
                let snap: Vec<(usize, usize)> = (0..self.locs.len())
                    .filter(|&l| self.view[tid][l] > 0)
                    .map(|l| (l, self.view[tid][l]))
                    .collect();
                self.threads[tid].wmb_snapshot = snap;
            }
            Op::Fence(SimFence::RbDep) => {
                // Bank sync: subsequent loads see at least the current view.
                let view = self.view[tid].clone();
                self.threads[tid].read_floor = view;
            }
            Op::Fence(SimFence::Rmb) if self.arch == Arch::Power => {
                // lwsync: same cumulativity as the Wmb case.
                let snap: Vec<(usize, usize)> = (0..self.locs.len())
                    .filter(|&l| self.view[tid][l] > 0)
                    .map(|l| (l, self.view[tid][l]))
                    .collect();
                self.threads[tid].wmb_snapshot = snap;
            }
            Op::Fence(SimFence::Mb | SimFence::Rmb) if self.arch.stale_dependent_reads() => {
                // Alpha mb/rmb also synchronise the banks.
                let view = self.view[tid].clone();
                self.threads[tid].read_floor = view;
            }
            Op::Fence(_) => {}
            Op::RcuLock => {
                self.nesting[tid] += 1;
                self.lock_epoch[tid] += 1;
                // On Alpha, participating in the grace-period protocol
                // implies a bank synchronisation (the quiescent-state
                // machinery executes full barriers on every CPU).
                if self.arch.stale_dependent_reads() {
                    let view = self.view[tid].clone();
                    self.threads[tid].read_floor = view;
                }
            }
            Op::RcuUnlock => {
                self.nesting[tid] = self.nesting[tid].saturating_sub(1);
                if self.arch.stale_dependent_reads() {
                    let view = self.view[tid].clone();
                    self.threads[tid].read_floor = view;
                }
            }
            Op::SrcuLock { domain } => {
                *self.srcu_nesting[tid].entry(domain).or_insert(0) += 1;
                *self.srcu_epoch[tid].entry(domain).or_insert(0) += 1;
                if self.arch.stale_dependent_reads() {
                    let view = self.view[tid].clone();
                    self.threads[tid].read_floor = view;
                }
            }
            Op::SrcuUnlock { domain } => {
                let n = self.srcu_nesting[tid].entry(domain).or_insert(0);
                *n = n.saturating_sub(1);
                if self.arch.stale_dependent_reads() {
                    let view = self.view[tid].clone();
                    self.threads[tid].read_floor = view;
                }
            }
            Op::GpWait { domain, snapshot } => {
                if snapshot.is_none() {
                    // First scheduling: take the epoch snapshot; the wait
                    // itself happens via op_ready on later turns.
                    let snap: Vec<u64> = match domain {
                        None => self.lock_epoch.clone(),
                        Some(d) => (0..self.threads.len())
                            .map(|t2| self.srcu_epoch[t2].get(&d).copied().unwrap_or(0))
                            .collect(),
                    };
                    if let Op::GpWait { snapshot, .. } = &mut self.threads[tid].window[i].op
                    {
                        *snapshot = Some(snap);
                    }
                    return; // not performed yet
                }
            }
        }
        self.threads[tid].window[i].performed = true;
    }
}

impl Machine<'_> {
    /// Whether every thread has finished and all buffers drained.
    pub(crate) fn finished(&self) -> bool {
        self.threads.iter().all(|t| t.done() && t.buffer.is_empty())
    }

    /// A canonical fingerprint of the whole machine state, used by the
    /// exhaustive explorer's memoisation. Two states with equal
    /// fingerprints have identical future behaviour.
    pub(crate) fn fingerprint(&self) -> String {
        use std::collections::BTreeMap;
        use std::fmt::Write;
        let mut out = String::new();
        for t in &self.threads {
            let frames: Vec<(usize, usize)> =
                t.frames.iter().map(|&(b, i)| (b.as_ptr() as usize, i)).collect();
            let regs: BTreeMap<&String, &Val> = t.regs.iter().collect();
            let own: BTreeMap<&usize, &usize> = t.own_latest.iter().collect();
            let _ = write!(
                out,
                "T{{f:{frames:?} w:{:?} r:{regs:?} b:{:?} o:{own:?} s:{:?}}}",
                t.window, t.buffer, t.wmb_snapshot
            );
        }
        type SortedCounters<'a> = Vec<(&'a usize, &'a u64)>;
        let srcu: Vec<(SortedCounters, SortedCounters)> = self
            .srcu_nesting
            .iter()
            .zip(&self.srcu_epoch)
            .map(|(n, e)| {
                let mut nv: Vec<_> = n.iter().collect();
                nv.sort();
                let mut ev: Vec<_> = e.iter().collect();
                ev.sort();
                (nv, ev)
            })
            .collect();
        let _ = write!(
            out,
            "M{{m:{:?} v:{:?} vw:{:?} n:{:?} e:{:?} s:{srcu:?}}}",
            self.mem, self.versions, self.view, self.nesting, self.lock_epoch
        );
        out
    }
}

fn rmw_flags(order: RmwOrder) -> (bool, bool, bool) {
    match order {
        RmwOrder::Relaxed => (false, false, false),
        RmwOrder::Acquire => (true, false, false),
        RmwOrder::Release => (false, true, false),
        RmwOrder::Full => (false, false, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_properties() {
        assert!(Arch::X86.in_order() && Arch::X86.store_buffer());
        assert!(!Arch::Power.multi_copy_atomic());
        assert!(Arch::Armv8.multi_copy_atomic());
        assert!(Arch::Armv7.full_barrier_acq_rel());
        assert_eq!(Arch::Power.name(), "Power8");
    }
}
