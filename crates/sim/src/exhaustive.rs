//! Exhaustive operational exploration: every scheduler interleaving.
//!
//! The Monte-Carlo [runner](crate::runner) samples schedules; this module
//! *enumerates* them — a depth-first search over all enabled actions with
//! memoisation on machine-state fingerprints. For litmus-scale tests this
//! terminates quickly and yields the **exact** set of operationally
//! reachable final states, which the test suite compares against the
//! axiomatic models (the Owens-style TSO equivalence, done empirically).

use crate::machine::{Arch, Machine, MachineError};
use lkmm_exec::{LocId, Val};
use lkmm_litmus::ast::{InitVal, Test};
use lkmm_litmus::cond::StateTerm;
use std::collections::{BTreeSet, HashSet};

/// Result of exhaustive exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreResult {
    /// Every reachable final state, rendered over the condition's terms
    /// (same format as [`lkmm_exec::states`]).
    pub outcomes: BTreeSet<String>,
    /// Whether any reachable final state satisfies the condition.
    pub observable: bool,
    /// Distinct machine states visited.
    pub states_visited: usize,
    /// True if the search hit `max_states` and stopped early.
    pub truncated: bool,
}

/// Exhaustively explore `test` on `arch`, visiting at most `max_states`
/// distinct machine states.
///
/// # Errors
///
/// Returns [`MachineError`] for unsupported constructs or deadlocks.
///
/// # Examples
///
/// ```
/// use lkmm_sim::{explore, Arch};
///
/// let sb = lkmm_litmus::library::by_name("SB").unwrap().test();
/// let r = explore(&sb, Arch::X86, 100_000).unwrap();
/// assert!(r.observable); // all four SB states reachable under TSO
/// assert_eq!(r.outcomes.len(), 4);
/// ```
pub fn explore(test: &Test, arch: Arch, max_states: usize) -> Result<ExploreResult, MachineError> {
    let locs = test.shared_locations();
    let init: Vec<Val> = locs
        .iter()
        .map(|name| match test.init.get(name) {
            Some(InitVal::Int(i)) => Val::Int(*i),
            Some(InitVal::Ptr(t)) => {
                Val::Loc(LocId(locs.iter().position(|l| l == t).expect("ptr target")))
            }
            None => Val::Int(0),
        })
        .collect();
    let terms: Vec<&StateTerm> = test.condition.prop.terms();

    let mut result = ExploreResult {
        outcomes: BTreeSet::new(),
        observable: false,
        states_visited: 0,
        truncated: false,
    };
    let mut visited: HashSet<String> = HashSet::new();
    let mut stack: Vec<Machine> = vec![Machine::new(test, &locs, &init, arch)];

    while let Some(mut m) = stack.pop() {
        let key = m.fingerprint();
        if !visited.insert(key) {
            continue;
        }
        result.states_visited += 1;
        if result.states_visited >= max_states {
            result.truncated = true;
            break;
        }
        let actions = m.enabled_actions();
        if actions.is_empty() {
            if !m.finished() {
                return Err(MachineError::Deadlock);
            }
            let final_mem = m.final_memory();
            let rendered = render_outcome(&m, &locs, &final_mem, &terms);
            if eval_outcome(test, &m, &locs, &final_mem) {
                result.observable = true;
            }
            result.outcomes.insert(rendered);
            continue;
        }
        for a in actions {
            let mut next = m.clone();
            next.execute(a)?;
            stack.push(next);
        }
    }
    Ok(result)
}

fn render_outcome(
    m: &Machine,
    locs: &[String],
    final_mem: &[Val],
    terms: &[&StateTerm],
) -> String {
    let render = |v: Val| match v {
        Val::Int(i) => i.to_string(),
        Val::Loc(l) => format!("&{}", locs[l.0]),
    };
    terms
        .iter()
        .map(|t| {
            let v = match t {
                StateTerm::Reg { thread, reg } => m.final_reg(*thread, reg),
                StateTerm::Loc(name) => {
                    locs.iter().position(|l| l == name).map(|i| final_mem[i])
                }
            };
            match v {
                None => format!("{t}=?"),
                Some(v) => format!("{t}={}", render(v)),
            }
        })
        .collect::<Vec<_>>()
        .join("; ")
}

fn eval_outcome(test: &Test, m: &Machine, locs: &[String], final_mem: &[Val]) -> bool {
    use lkmm_litmus::cond::CondVal;
    let lookup = |term: &StateTerm| -> Option<CondVal> {
        let v = match term {
            StateTerm::Reg { thread, reg } => m.final_reg(*thread, reg)?,
            StateTerm::Loc(name) => final_mem[locs.iter().position(|l| l == name)?],
        };
        Some(match v {
            Val::Int(i) => CondVal::Int(i),
            Val::Loc(l) => CondVal::LocRef(locs[l.0].clone()),
        })
    };
    test.condition.prop.eval(&lookup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::library;

    const CAP: usize = 2_000_000;

    fn outcomes(name: &str, arch: Arch) -> ExploreResult {
        let t = library::by_name(name).unwrap().test();
        let r = explore(&t, arch, CAP).unwrap();
        assert!(!r.truncated, "{name} truncated at {} states", r.states_visited);
        r
    }

    #[test]
    fn sb_x86_reaches_all_four_states() {
        let r = outcomes("SB", Arch::X86);
        assert_eq!(r.outcomes.len(), 4);
        assert!(r.observable);
    }

    #[test]
    fn mp_x86_reaches_exactly_the_tso_states() {
        let r = outcomes("MP", Arch::X86);
        // The weak state (r0=1, r1=0) is unreachable under TSO.
        assert!(!r.observable);
        assert_eq!(r.outcomes.len(), 3);
    }

    #[test]
    fn lb_unreachable_everywhere_exhaustively() {
        for arch in Arch::ALL {
            let r = outcomes("LB", arch);
            assert!(!r.observable, "{}", arch.name());
        }
    }

    #[test]
    fn wrc_weak_state_exhaustively_reachable_on_power() {
        let r = outcomes("WRC", Arch::Power);
        assert!(r.observable, "non-MCA must expose WRC");
        let r86 = outcomes("WRC", Arch::X86);
        assert!(!r86.observable);
    }

    #[test]
    fn rcu_tests_exhaustively_unobservable() {
        for arch in [Arch::X86, Arch::Armv8] {
            for name in ["RCU-MP", "RCU-deferred-free"] {
                let r = outcomes(name, arch);
                assert!(!r.observable, "{name} on {}", arch.name());
            }
        }
    }
}
