//! The Alpha story (§3.2.2): `smp_read_barrier_depends` exists solely
//! because Alpha's banked caches let a *dependent* read return stale
//! data. The Alpha machine is the only one that exhibits
//! `MP+wmb+addr` — and the barrier (or `rcu_dereference`) repairs it.

use lkmm_sim::{explore, run_test, Arch, RunConfig};

const MP_WMB_ADDR: &str = r"C MP+wmb+addr-chase
{ w=0; y=&z; z=0; }
P0(int *w, int **y) { WRITE_ONCE(*w, 1); smp_wmb(); WRITE_ONCE(*y, &w); }
P1(int **y) { int *r1; int r2; r1 = READ_ONCE(*y); r2 = READ_ONCE(*r1); }
exists (1:r1=&w /\ 1:r2=0)";

const MP_WMB_DEREF: &str = r"C MP+wmb+deref-chase
{ w=0; y=&z; z=0; }
P0(int *w, int **y) { WRITE_ONCE(*w, 1); smp_wmb(); WRITE_ONCE(*y, &w); }
P1(int **y) { int *r1; int r2; r1 = rcu_dereference(*y); r2 = READ_ONCE(*r1); }
exists (1:r1=&w /\ 1:r2=0)";

#[test]
fn stale_dependent_read_only_on_alpha() {
    let test = lkmm_litmus::parse(MP_WMB_ADDR).unwrap();
    // Exhaustively: reachable on Alpha, unreachable everywhere else.
    let alpha = explore(&test, Arch::Alpha, 2_000_000).unwrap();
    assert!(alpha.observable, "Alpha must read stale data through the pointer");
    for arch in Arch::ALL {
        let other = explore(&test, arch, 2_000_000).unwrap();
        assert!(!other.observable, "{} respects address dependencies", arch.name());
    }
}

#[test]
fn rcu_dereference_repairs_alpha() {
    let test = lkmm_litmus::parse(MP_WMB_DEREF).unwrap();
    let alpha = explore(&test, Arch::Alpha, 2_000_000).unwrap();
    assert!(
        !alpha.observable,
        "rcu_dereference carries smp_read_barrier_depends (Table 4)"
    );
}

#[test]
fn alpha_is_sound_wrt_lkmm() {
    // The LKMM was weakened (strong-rrdep) exactly to cover Alpha: the
    // machine must stay inside the model on the whole library.
    use lkmm_exec::enumerate::EnumOptions;
    use lkmm_exec::{check_test, Verdict};
    let model = lkmm::Lkmm::new();
    for pt in lkmm_litmus::library::all() {
        let test = pt.test();
        let verdict = check_test(&model, &test, &EnumOptions::default()).unwrap().verdict;
        if verdict == Verdict::Forbidden {
            let stats =
                run_test(&test, Arch::Alpha, &RunConfig { iterations: 2_000, seed: 31 })
                    .unwrap();
            assert_eq!(stats.observed, 0, "{} observed on Alpha", pt.name);
        }
    }
}

#[test]
fn alpha_coherence_still_holds() {
    // Staleness never violates per-location coherence: CoRR stays
    // unobservable even on Alpha.
    let test = lkmm_litmus::library::by_name("CoRR").unwrap().test();
    let r = explore(&test, Arch::Alpha, 1_000_000).unwrap();
    assert!(!r.observable, "two same-location reads went backwards");
}
