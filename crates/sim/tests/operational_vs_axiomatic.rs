//! Empirical Owens-style equivalence: the exhaustive store-buffer machine
//! and the axiomatic x86-TSO model must agree *exactly* on the reachable
//! final states of every (non-RCU) library test — operational soundness
//! and completeness, not just sampled soundness.

use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::states::collect_states;
use lkmm_models::X86Tso;
use lkmm_sim::{explore, Arch};
use lkmm_litmus::library;
use std::collections::BTreeSet;

fn axiomatic_states(test: &lkmm_litmus::Test) -> BTreeSet<String> {
    collect_states(&X86Tso, test, &EnumOptions::default())
        .unwrap()
        .states
        .into_iter()
        .filter(|(_, c)| c.allowed > 0)
        .map(|(s, _)| s.0)
        .collect()
}

#[test]
fn x86_operational_equals_axiomatic_tso_statewise() {
    for pt in library::all() {
        if pt.name.starts_with("RCU") {
            continue; // the axiomatic TSO model does not know grace periods
        }
        let test = pt.test();
        let operational = explore(&test, Arch::X86, 4_000_000).unwrap();
        assert!(!operational.truncated, "{}", pt.name);
        let axiomatic = axiomatic_states(&test);
        assert_eq!(
            operational.outcomes, axiomatic,
            "{}: operational x86 and axiomatic TSO disagree",
            pt.name
        );
    }
}

#[test]
fn arm_operational_within_axiomatic_armv8() {
    // The ARM machine is pipeline-realistic (no store speculation), so it
    // is *stronger* than the architecture: every operationally reachable
    // state must be allowed by the axiomatic ARMv8 model.
    use lkmm_models::Armv8;
    for pt in library::all() {
        if pt.name.starts_with("RCU") {
            continue;
        }
        let test = pt.test();
        let op = explore(&test, Arch::Armv8, 4_000_000).unwrap();
        if op.truncated {
            continue;
        }
        let ax: BTreeSet<String> = collect_states(&Armv8, &test, &EnumOptions::default())
            .unwrap()
            .states
            .into_iter()
            .filter(|(_, c)| c.allowed > 0)
            .map(|(s, _)| s.0)
            .collect();
        assert!(
            op.outcomes.is_subset(&ax),
            "{}: ARM operational reaches {:?} beyond axiomatic ARMv8",
            pt.name,
            op.outcomes.difference(&ax).collect::<Vec<_>>()
        );
    }
}

#[test]
fn power_operational_within_axiomatic_power() {
    // The non-multi-copy-atomic machine must stay within the herding-cats
    // Power model (it is stronger: no store speculation).
    use lkmm_models::Power;
    for pt in library::all() {
        if pt.name.starts_with("RCU") {
            continue;
        }
        let test = pt.test();
        let op = explore(&test, Arch::Power, 4_000_000).unwrap();
        if op.truncated {
            continue;
        }
        let ax: BTreeSet<String> = collect_states(&Power, &test, &EnumOptions::default())
            .unwrap()
            .states
            .into_iter()
            .filter(|(_, c)| c.allowed > 0)
            .map(|(s, _)| s.0)
            .collect();
        assert!(
            op.outcomes.is_subset(&ax),
            "{}: Power operational reaches {:?} beyond axiomatic Power",
            pt.name,
            op.outcomes.difference(&ax).collect::<Vec<_>>()
        );
    }
}

#[test]
fn weak_machines_reach_at_least_the_tso_states() {
    // ARM and Power are weaker than TSO: everything TSO reaches, they
    // reach (on these fence-free tests).
    for name in ["SB", "MP", "LB", "WRC", "RWC", "S", "R", "2+2W"] {
        let test = library::by_name(name).unwrap().test();
        let tso = explore(&test, Arch::X86, 4_000_000).unwrap();
        for arch in [Arch::Armv8, Arch::Power] {
            let weak = explore(&test, arch, 4_000_000).unwrap();
            assert!(
                tso.outcomes.is_subset(&weak.outcomes),
                "{name}: {} missing TSO-reachable states: {:?}",
                arch.name(),
                tso.outcomes.difference(&weak.outcomes).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn exhaustive_observability_is_within_lkmm() {
    // Exact version of Table 5 soundness: the full reachable state set of
    // each simulator is a subset of the LKMM-allowed state set.
    use lkmm::Lkmm;
    for pt in library::all() {
        let test = pt.test();
        let lkmm_states: BTreeSet<String> =
            collect_states(&Lkmm::new(), &test, &EnumOptions::default())
                .unwrap()
                .states
                .into_iter()
                .filter(|(_, c)| c.allowed > 0)
                .map(|(s, _)| s.0)
                .collect();
        for arch in Arch::ALL {
            let op = explore(&test, arch, 4_000_000).unwrap();
            if op.truncated {
                continue;
            }
            assert!(
                op.outcomes.is_subset(&lkmm_states),
                "{} on {}: operational states {:?} ⊄ LKMM states {:?}",
                pt.name,
                arch.name(),
                op.outcomes.difference(&lkmm_states).collect::<Vec<_>>(),
                lkmm_states
            );
        }
    }
}

/// The Monte-Carlo runner is deterministic in its seed.
#[test]
fn runner_is_deterministic_per_seed() {
    use lkmm_sim::{run_test, RunConfig};
    let t = library::by_name("SB").unwrap().test();
    let a = run_test(&t, Arch::Power, &RunConfig { iterations: 500, seed: 42 }).unwrap();
    let b = run_test(&t, Arch::Power, &RunConfig { iterations: 500, seed: 42 }).unwrap();
    assert_eq!(a, b);
    let c = run_test(&t, Arch::Power, &RunConfig { iterations: 500, seed: 43 }).unwrap();
    assert_eq!(c.total, 500); // different seed may differ in counts
}
