//! # lkmm-server
//!
//! Sharded multi-client verdict service: the `herd-rs serve --listen`
//! backend. Three pieces, each reusing an existing layer rather than
//! reinventing it:
//!
//! * **listener** — a `std::net` TCP accept loop (the workspace is
//!   dependency-free; no async runtime). Each connection gets a reader
//!   thread (line framing, byte cap, UTF-8 check, admission) and a
//!   writer thread (responses flow back through a per-connection
//!   channel, re-sequenced so they leave in request order);
//! * **worker pool** — N workers, each owning its *own* model instance
//!   and a [`lkmm_service::BatchChecker`] over a *shared*
//!   [`lkmm_service::ShardedStore`] handle, pulling requests from the
//!   fair [`admission::Admission`] queue and answering them with the
//!   stdio serve loop's own [`lkmm_service::serve::answer`] — the
//!   protocol, cache keys, and verdicts are identical to
//!   `herd-rs serve` on stdin/stdout by construction;
//! * **admission control** — per-client [`lkmm_core::quota`] quotas:
//!   a lifetime request allowance (over-quota rejections), a bounded
//!   pending queue (overload rejections), round-robin dequeue across
//!   clients, and a per-request absolute deadline armed from the quota
//!   budget at dispatch.
//!
//! ## Shutdown
//!
//! `{"op":"shutdown"}` from any client stops the accept loop (a
//! self-connection wakes it), lets admitted work drain, and closes
//! every connection. The store shards are flushed before
//! [`serve_tcp`] returns.
//!
//! ## Fault tolerance
//!
//! A connection failing mid-request costs only that connection. A
//! panic while answering is contained per-request (the worker and its
//! store handle survive). A failed `accept` (or the `server.accept`
//! faultpoint) drops that one connection attempt. A poisoned store
//! shard quarantines inside [`lkmm_service::ShardedStore`] — verdicts
//! keep flowing, appends to the sick shard are dropped and counted.

pub mod admission;

use admission::{Admission, Job};
use lkmm_core::faultpoint;
use lkmm_core::quota::{ClientQuota, QuotaMeter, RejectKind};
use lkmm_service::json::Json;
use lkmm_service::serve::{answer, ServeOptions};
use lkmm_service::{BatchChecker, ShardedStore};
use lkmm_exec::ConsistencyModel;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A model constructor the worker pool can call once per worker: each
/// worker owns its model instance, so nothing in the checking path is
/// shared but the store.
pub type ModelFactory<'f> = dyn Fn() -> Box<dyn ConsistencyModel> + Sync + 'f;

/// Tuning for one [`serve_tcp`] session.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads answering requests (≥ 1).
    pub workers: usize,
    /// Pipeline jobs *per worker* for cold checks (0 = one per
    /// hardware thread; never part of cache keys).
    pub jobs: usize,
    /// Per-client allowance; `budget` is the per-request governance
    /// template, its `time_limit` armed as an absolute deadline at
    /// dispatch.
    pub quota: ClientQuota,
    /// Line-level hardening, shared with the stdio serve loop.
    pub serve: ServeOptions,
    /// Concurrent connections accepted; one past the cap is answered
    /// with a single overload line and closed.
    pub max_conns: usize,
    /// Inter-byte read timeout: a connection that keeps a request line
    /// unfinished longer than this is dropped (slowloris defense —
    /// each arriving byte resets it, so it bounds silence, not total
    /// request time).
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            jobs: 1,
            quota: ClientQuota::default(),
            serve: ServeOptions::default(),
            max_conns: 64,
            idle_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Counters for one [`serve_tcp`] session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted and served (not counting over-cap drops).
    pub connections: usize,
    /// Request lines answered, rejections included.
    pub requests: usize,
    /// Requests rejected over-quota.
    pub over_quota: usize,
    /// Requests rejected for overload (full backlog or over-cap
    /// connections).
    pub overloaded: usize,
}

/// Shared mutable server state, all lock-free counters except the
/// connection registry.
struct Shared {
    admission: Admission,
    stop: AtomicBool,
    requests: AtomicUsize,
    over_quota: AtomicUsize,
    overloaded: AtomicUsize,
    connections: AtomicUsize,
    active_conns: AtomicUsize,
    next_client: AtomicU64,
    /// Write halves of every live connection, for shutdown.
    registry: Mutex<HashMap<u64, TcpStream>>,
}

/// Serve clients on `listener` until a `{"op":"shutdown"}` request.
///
/// Every worker builds its checker with `factory()` and `salt`, writing
/// through the shared `store` — the same salt the sequential
/// `herd-rs --store` path uses, so verdict logs are interchangeable.
///
/// # Errors
///
/// Only listener-level failures; per-connection and per-request
/// failures are contained.
pub fn serve_tcp(
    listener: TcpListener,
    factory: &ModelFactory<'_>,
    salt: &str,
    store: Arc<ShardedStore>,
    config: &ServerConfig,
) -> io::Result<ServerSummary> {
    assert!(config.workers >= 1, "the pool needs at least one worker");
    let local_addr = listener.local_addr()?;
    let shared = Shared {
        admission: Admission::new(),
        stop: AtomicBool::new(false),
        requests: AtomicUsize::new(0),
        over_quota: AtomicUsize::new(0),
        overloaded: AtomicUsize::new(0),
        connections: AtomicUsize::new(0),
        active_conns: AtomicUsize::new(0),
        next_client: AtomicU64::new(0),
        registry: Mutex::new(HashMap::new()),
    };

    thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| worker_loop(factory, salt, store.clone(), config, &shared));
        }

        for stream in listener.incoming() {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // A failed accept (transient resource exhaustion, or a
                // connection gone before we picked it up) costs only
                // that attempt.
                Err(_) => continue,
            };
            if faultpoint::should_fail("server.accept") {
                drop(stream);
                continue;
            }
            if shared.active_conns.load(Ordering::SeqCst) >= config.max_conns {
                let _ = reject_connection(&stream);
                shared.overloaded.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let client = shared.next_client.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                shared.registry.lock().unwrap_or_else(|e| e.into_inner()).insert(client, clone);
            }
            shared.active_conns.fetch_add(1, Ordering::SeqCst);
            shared.connections.fetch_add(1, Ordering::Relaxed);
            let shared = &shared;
            scope.spawn(move || {
                connection_loop(client, stream, config, shared, local_addr);
                shared.registry.lock().unwrap_or_else(|e| e.into_inner()).remove(&client);
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            });
        }

        // Accept loop is done (shutdown requested): unblock every
        // reader, let the backlog drain, stop the workers.
        for (_, stream) in shared.registry.lock().unwrap_or_else(|e| e.into_inner()).drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        shared.admission.close();
    });

    // Workers flush on exit, but a shard poisoned *by* that flush only
    // shows in stats; one more explicit flush keeps the final state as
    // durable as a clean stdio session's.
    store.flush();
    Ok(ServerSummary {
        connections: shared.connections.load(Ordering::Relaxed),
        requests: shared.requests.load(Ordering::Relaxed),
        over_quota: shared.over_quota.load(Ordering::Relaxed),
        overloaded: shared.overloaded.load(Ordering::Relaxed),
    })
}

/// One worker: own model, own checker, shared store; pulls until the
/// admission queue closes.
fn worker_loop(
    factory: &ModelFactory<'_>,
    salt: &str,
    store: Arc<ShardedStore>,
    config: &ServerConfig,
    shared: &Shared,
) {
    let model = factory();
    let mut checker = BatchChecker::new(model.as_ref(), store, salt)
        .with_jobs(config.jobs)
        .with_budget(config.quota.budget.clone());
    while let Some(job) = shared.admission.next() {
        let response = answer_isolated(&mut checker, &job.line, config);
        // A dead writer (client gone) is the writer thread's problem,
        // not ours.
        let _ = job.reply.send((job.seq, response));
        shared.admission.done(job.client);
    }
    let _ = checker.flush();
}

/// Answer one line with per-request governance: the absolute deadline
/// is re-armed per request, and a panic is contained into an error
/// response (the worker's next request starts clean).
fn answer_isolated(
    checker: &mut BatchChecker<'_, Arc<ShardedStore>>,
    line: &str,
    config: &ServerConfig,
) -> String {
    let limit = config.quota.budget.time_limit.or(config.serve.request_time_limit);
    if let Some(limit) = limit {
        checker.set_deadline(Some(Instant::now() + limit));
    }
    catch_unwind(AssertUnwindSafe(|| answer(checker, line).to_string())).unwrap_or_else(|_| {
        error_line("internal error: request handler panicked", None)
    })
}

fn error_line(message: &str, code: Option<&str>) -> String {
    let mut fields = vec![("ok", Json::Bool(false)), ("error", Json::str(message))];
    if let Some(code) = code {
        fields.push(("code", Json::str(code)));
    }
    Json::obj(fields).to_string()
}

fn reject_line(kind: RejectKind) -> String {
    error_line(&kind.to_string(), Some(kind.code()))
}

/// Over-cap connections get one overload line, then the door.
fn reject_connection(stream: &TcpStream) -> io::Result<()> {
    let mut w = stream.try_clone()?;
    writeln!(w, "{}", reject_line(RejectKind::Overloaded))?;
    w.flush()?;
    stream.shutdown(Shutdown::Both)
}

/// Reader side of one connection: frame lines, enforce the byte cap and
/// quota, submit admitted work, and hand rejections straight to the
/// writer (sequence-tagged, so they interleave correctly with worker
/// responses).
fn connection_loop(
    client: u64,
    stream: TcpStream,
    config: &ServerConfig,
    shared: &Shared,
    local_addr: std::net::SocketAddr,
) {
    let _ = stream.set_read_timeout(config.idle_timeout);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = channel::<(u64, String)>();
    shared.admission.register(client, config.quota.max_pending);
    let mut quota = QuotaMeter::new(&config.quota);

    thread::scope(|scope| {
        let writer = scope.spawn(move || writer_loop(write_half, reply_rx));

        let mut input = BufReader::new(&stream);
        let max = config.serve.max_request_bytes;
        let mut seq = 0u64;
        let mut buf = Vec::new();
        loop {
            buf.clear();
            // Same capped framing as the stdio loop: at most max+1
            // bytes of one line are ever buffered.
            let n = match io::Read::take(&mut input, max as u64 + 1).read_until(b'\n', &mut buf) {
                Ok(n) => n,
                // Idle timeout, reset, or shutdown: this connection is
                // done (a half-read line dies with it — mid-request
                // disconnect costs the client its own request only).
                Err(_) => break,
            };
            if n == 0 {
                break;
            }
            if buf.last() == Some(&b'\n') {
                buf.pop();
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
            }
            if buf.len() > max {
                if drain_line(&mut input).is_err() {
                    break;
                }
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let msg = format!("request line exceeds {max} bytes");
                let _ = reply_tx.send((seq, error_line(&msg, None)));
                seq += 1;
                continue;
            }
            let line = match std::str::from_utf8(&buf) {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => line,
                Err(_) => {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    let _ = reply_tx.send((seq, error_line("request line is not valid UTF-8", None)));
                    seq += 1;
                    continue;
                }
            };
            shared.requests.fetch_add(1, Ordering::Relaxed);
            if is_shutdown(line) {
                let _ = reply_tx.send((
                    seq,
                    Json::obj(vec![("ok", Json::Bool(true)), ("op", Json::str("shutdown"))])
                        .to_string(),
                ));
                shared.stop.store(true, Ordering::SeqCst);
                // The accept loop blocks in `accept`; a throwaway
                // self-connection wakes it to observe `stop`.
                let _ = TcpStream::connect(local_addr);
                break;
            }
            if let Err(kind) = quota.admit() {
                shared.over_quota.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send((seq, reject_line(kind)));
                seq += 1;
                continue;
            }
            let job = Job { client, seq, line: line.to_string(), reply: reply_tx.clone() };
            if let Err(kind) = shared.admission.submit(job) {
                shared.overloaded.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send((seq, reject_line(kind)));
            }
            seq += 1;
        }
        // A clean half-close means "answer what I sent": the admitted
        // backlog keeps draining after EOF. Dropping our sender lets
        // the writer exit once the last in-flight job has replied;
        // only then is the client's admission state torn down.
        drop(reply_tx);
        let _ = writer.join();
        shared.admission.unregister(client);
    });
    let _ = stream.shutdown(Shutdown::Both);
}

/// Writer side: responses arrive tagged with their request sequence
/// number (workers and the reader interleave freely) and leave in
/// order.
fn writer_loop(stream: TcpStream, replies: Receiver<(u64, String)>) {
    let mut out = io::BufWriter::new(stream);
    let mut next = 0u64;
    let mut held: HashMap<u64, String> = HashMap::new();
    let mut dead = false;
    for (seq, line) in replies {
        held.insert(seq, line);
        while let Some(line) = held.remove(&next) {
            next += 1;
            if dead {
                continue;
            }
            // A client that disconnected mid-request stops reading
            // responses; keep draining the channel so workers never
            // block on us (they don't — the channel is unbounded — but
            // the reorder buffer must stay coherent).
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                dead = true;
            }
        }
    }
}

/// A literal shutdown request, detected in the reader so it works even
/// with every worker busy.
fn is_shutdown(line: &str) -> bool {
    Json::parse(line)
        .ok()
        .and_then(|req| req.get("op").and_then(Json::as_str).map(|op| op == "shutdown"))
        .unwrap_or(false)
}

/// Discard input up to and including the next newline (or EOF).
fn drain_line(input: &mut impl BufRead) -> io::Result<()> {
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                input.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                input.consume(len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::model::AllowAll;
    use std::net::TcpListener;

    fn start(
        config: ServerConfig,
        shards: usize,
    ) -> (std::net::SocketAddr, thread::JoinHandle<ServerSummary>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let store = Arc::new(ShardedStore::in_memory(shards));
            serve_tcp(listener, &|| Box::new(AllowAll), "tcp-test", store, &config)
                .expect("server runs")
        });
        (addr, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        for line in lines {
            // The server may close on us (connection cap): read
            // whatever it said anyway.
            let _ = writeln!(stream, "{line}");
        }
        let _ = stream.shutdown(Shutdown::Write);
        let reader = BufReader::new(&stream);
        reader.lines().map_while(Result::ok).collect()
    }

    #[test]
    fn serves_checks_and_shuts_down() {
        let (addr, handle) = start(ServerConfig::default(), 2);
        let responses = roundtrip(
            addr,
            &[r#"{"op":"check","name":"SB"}"#, r#"{"op":"check","name":"SB"}"#, r#"{"op":"stats"}"#],
        );
        assert_eq!(responses.len(), 3);
        assert!(responses[0].contains("\"cache\":\"computed\""), "{}", responses[0]);
        assert!(responses[1].contains("\"cache\":\"hit\""), "{}", responses[1]);
        assert!(responses[2].contains("\"shards\""), "sharded stats: {}", responses[2]);
        let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        let summary = handle.join().unwrap();
        assert_eq!(summary.connections, 2);
        assert!(summary.requests >= 4);
    }

    #[test]
    fn responses_keep_request_order_per_connection() {
        let (addr, handle) = start(ServerConfig { workers: 4, ..ServerConfig::default() }, 4);
        let lines: Vec<String> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    r#"{"op":"check","name":"SB"}"#.to_string()
                } else {
                    format!(r#"{{"op":"check","name":"no-such-test-{i}"}}"#)
                }
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let responses = roundtrip(addr, &refs);
        assert_eq!(responses.len(), 8);
        for (i, r) in responses.iter().enumerate() {
            if i % 2 == 0 {
                assert!(r.contains("\"ok\":true"), "slot {i}: {r}");
            } else {
                assert!(r.contains(&format!("no-such-test-{i}")), "slot {i}: {r}");
            }
        }
        let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        handle.join().unwrap();
    }

    #[test]
    fn over_quota_client_gets_typed_rejections() {
        let config = ServerConfig {
            quota: ClientQuota::default().with_max_requests(2),
            ..ServerConfig::default()
        };
        let (addr, handle) = start(config, 1);
        let responses = roundtrip(
            addr,
            &[r#"{"op":"stats"}"#, r#"{"op":"stats"}"#, r#"{"op":"stats"}"#, r#"{"op":"stats"}"#],
        );
        assert_eq!(responses.len(), 4);
        assert!(responses[1].contains("\"ok\":true"));
        assert!(responses[2].contains("\"code\":\"over-quota\""), "{}", responses[2]);
        assert!(responses[3].contains("\"code\":\"over-quota\""));
        // A fresh connection has a fresh quota.
        let fresh = roundtrip(addr, &[r#"{"op":"stats"}"#]);
        assert!(fresh[0].contains("\"ok\":true"));
        let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        let summary = handle.join().unwrap();
        assert_eq!(summary.over_quota, 2);
    }

    #[test]
    fn connection_cap_rejects_with_overload_line() {
        let config = ServerConfig { max_conns: 1, ..ServerConfig::default() };
        let (addr, handle) = start(config, 1);
        // Hold one connection open…
        let held = TcpStream::connect(addr).unwrap();
        // …wait for the server to register it…
        std::thread::sleep(Duration::from_millis(100));
        // …and watch the next one bounce.
        let responses = roundtrip(addr, &[r#"{"op":"stats"}"#]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].contains("\"code\":\"overloaded\""), "{}", responses[0]);
        drop(held);
        std::thread::sleep(Duration::from_millis(100));
        let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        handle.join().unwrap();
    }
}
