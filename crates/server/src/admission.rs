//! Fair admission queue: bounded per-client backlogs, round-robin
//! dequeue across clients.
//!
//! The server's workers all pull from one [`Admission`] queue. Fairness
//! comes from two rules:
//!
//! * **bounded backlog** — each client may hold at most `max_pending`
//!   admitted-but-unstarted requests; a submission past that bound is
//!   rejected [`RejectKind::Overloaded`] instead of buffered, so one
//!   firehose client cannot grow the queue without limit;
//! * **one in flight per client, round-robin between them** — a client
//!   joins the ready ring when it has work and none running, and
//!   rejoins at the *back* when its current request finishes. With N
//!   active clients each gets every Nth dequeue slot no matter how deep
//!   anyone's backlog is — and responses within one connection stay in
//!   request order for free, because no two of its requests ever run
//!   concurrently.
//!
//! Closing the queue lets in-flight and already-admitted work drain:
//! [`Admission::next`] hands out the backlog then returns `None`, and
//! late submissions bounce with `Overloaded`.

use lkmm_core::quota::RejectKind;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

/// One admitted request, carrying everything a worker needs to answer
/// it: the raw line and the owning connection's reply channel (tagged
/// with the request's per-connection sequence number so the writer can
/// interleave worker responses with reader-side rejections in order).
pub struct Job {
    /// Owning connection id.
    pub client: u64,
    /// Per-connection response sequence number.
    pub seq: u64,
    /// The raw request line (validated UTF-8).
    pub line: String,
    /// Where the response line goes.
    pub reply: Sender<(u64, String)>,
}

struct ClientQ {
    pending: VecDeque<Job>,
    in_flight: bool,
    max_pending: usize,
}

struct State {
    clients: HashMap<u64, ClientQ>,
    /// Clients with pending work and nothing in flight, in dequeue
    /// order.
    ready: VecDeque<u64>,
    closed: bool,
}

/// The shared worker-feeding queue. All methods are safe to call from
/// any thread.
pub struct Admission {
    state: Mutex<State>,
    work: Condvar,
}

impl Admission {
    /// An open queue with no clients.
    pub fn new() -> Admission {
        Admission {
            state: Mutex::new(State {
                clients: HashMap::new(),
                ready: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A worker panic while holding the lock leaves consistent state
        // (every mutation below is complete before unlock): keep going.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a connection before its first submission.
    pub fn register(&self, client: u64, max_pending: usize) {
        let mut s = self.lock();
        s.clients.insert(
            client,
            ClientQ { pending: VecDeque::new(), in_flight: false, max_pending: max_pending.max(1) },
        );
    }

    /// Drop a connection: its unstarted backlog is discarded (the reply
    /// senders go with it, letting the connection's writer exit). A
    /// request already running finishes; its late [`Admission::done`] is
    /// a no-op.
    pub fn unregister(&self, client: u64) {
        let mut s = self.lock();
        s.clients.remove(&client);
        s.ready.retain(|&c| c != client);
        // Workers draining a closed queue may have been waiting on this
        // client's backlog: let them re-check.
        if s.closed {
            self.work.notify_all();
        }
    }

    /// Queue one request for its client. Rejects `Overloaded` when the
    /// client's backlog is full, the client is unknown (already
    /// unregistered), or the queue is closed.
    pub fn submit(&self, job: Job) -> Result<(), RejectKind> {
        let mut s = self.lock();
        if s.closed {
            return Err(RejectKind::Overloaded);
        }
        let client = job.client;
        let q = s.clients.get_mut(&client).ok_or(RejectKind::Overloaded)?;
        if q.pending.len() >= q.max_pending {
            return Err(RejectKind::Overloaded);
        }
        let was_idle = q.pending.is_empty() && !q.in_flight;
        q.pending.push_back(job);
        if was_idle {
            s.ready.push_back(client);
            self.work.notify_one();
        }
        Ok(())
    }

    /// Dequeue the next request, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed *and* drained.
    /// The client is marked in flight; the worker must call
    /// [`Admission::done`] when finished.
    pub fn next(&self) -> Option<Job> {
        let mut s = self.lock();
        loop {
            while let Some(client) = s.ready.pop_front() {
                // The client may have unregistered after joining the
                // ring; skip its stale entry.
                let Some(q) = s.clients.get_mut(&client) else { continue };
                let Some(job) = q.pending.pop_front() else { continue };
                q.in_flight = true;
                return Some(job);
            }
            // A closed queue is only exhausted once no client holds
            // backlog: an in-flight client's remaining requests are not
            // in the ready ring yet, and its `done` will surface them.
            if s.closed && s.clients.values().all(|q| q.pending.is_empty()) {
                return None;
            }
            s = self.work.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Mark `client`'s running request finished; with backlog remaining
    /// it rejoins the ready ring at the back (round-robin).
    pub fn done(&self, client: u64) {
        let mut s = self.lock();
        if let Some(q) = s.clients.get_mut(&client) {
            q.in_flight = false;
            if !q.pending.is_empty() {
                s.ready.push_back(client);
                self.work.notify_one();
            }
        }
        // Draining workers block while an in-flight client might still
        // surface backlog; every completion re-checks that condition.
        if s.closed {
            self.work.notify_all();
        }
    }

    /// Close the queue: admitted work drains, new submissions are
    /// rejected, and idle workers wake up to exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.work.notify_all();
    }
}

impl Default for Admission {
    fn default() -> Self {
        Admission::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn job(client: u64, seq: u64, reply: &Sender<(u64, String)>) -> Job {
        Job { client, seq, line: format!("line-{client}-{seq}"), reply: reply.clone() }
    }

    #[test]
    fn round_robin_interleaves_clients() {
        let a = Admission::new();
        let (tx, _rx) = channel();
        a.register(1, 16);
        a.register(2, 16);
        // Client 1 floods first; client 2 queues two behind it.
        for seq in 0..3 {
            a.submit(job(1, seq, &tx)).unwrap();
        }
        for seq in 0..2 {
            a.submit(job(2, seq, &tx)).unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..5 {
            let j = a.next().unwrap();
            order.push(j.client);
            a.done(j.client);
        }
        assert_eq!(order, vec![1, 2, 1, 2, 1], "every client gets every other slot");
    }

    #[test]
    fn backlog_bound_rejects_overloaded() {
        let a = Admission::new();
        let (tx, _rx) = channel();
        a.register(1, 2);
        a.submit(job(1, 0, &tx)).unwrap();
        a.submit(job(1, 1, &tx)).unwrap();
        assert_eq!(a.submit(job(1, 2, &tx)).unwrap_err(), RejectKind::Overloaded);
        // Draining one admits one more.
        let j = a.next().unwrap();
        a.submit(job(1, 2, &tx)).unwrap();
        a.done(j.client);
    }

    #[test]
    fn close_drains_backlog_then_stops() {
        let a = Admission::new();
        let (tx, _rx) = channel();
        a.register(1, 16);
        a.submit(job(1, 0, &tx)).unwrap();
        a.submit(job(1, 1, &tx)).unwrap();
        a.close();
        assert_eq!(a.submit(job(1, 2, &tx)).unwrap_err(), RejectKind::Overloaded);
        let j = a.next().unwrap();
        assert_eq!(j.seq, 0);
        a.done(1);
        let j = a.next().unwrap();
        assert_eq!(j.seq, 1);
        a.done(1);
        assert!(a.next().is_none(), "closed and drained");
    }

    #[test]
    fn one_request_per_client_in_flight() {
        let a = Admission::new();
        let (tx, _rx) = channel();
        a.register(1, 16);
        a.submit(job(1, 0, &tx)).unwrap();
        a.submit(job(1, 1, &tx)).unwrap();
        let first = a.next().unwrap();
        assert_eq!(first.seq, 0);
        // Seq 1 must wait for done(): the queue is non-empty but the
        // client is in flight, so a closed queue drains to None only
        // after the running request finishes.
        a.close();
        std::thread::scope(|s| {
            let handle = s.spawn(|| a.next());
            std::thread::sleep(std::time::Duration::from_millis(20));
            a.done(1);
            let second = handle.join().unwrap().unwrap();
            assert_eq!(second.seq, 1);
            a.done(1);
        });
        assert!(a.next().is_none());
    }

    #[test]
    fn unregister_discards_backlog() {
        let a = Admission::new();
        let (tx, rx) = channel();
        a.register(1, 16);
        a.submit(job(1, 0, &tx)).unwrap();
        a.unregister(1);
        drop(tx);
        // The job's reply sender died with the backlog.
        assert!(rx.recv().is_err());
        a.close();
        assert!(a.next().is_none());
    }
}
