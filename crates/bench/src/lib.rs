//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one artefact of the paper's evaluation
//! (see EXPERIMENTS.md for the index) and *asserts* the expected verdicts
//! while measuring how fast the toolkit produces them.

use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, ConsistencyModel, Verdict};
use lkmm_litmus::library::{Expect, PaperTest};

/// Check a paper test and assert it matches the paper's expectation.
///
/// # Panics
///
/// Panics when the verdict diverges from the paper — a bench run is also
/// a correctness run.
pub fn check_expect(model: &dyn ConsistencyModel, pt: &PaperTest, expect: Expect) -> Verdict {
    let verdict = check_test(model, &pt.test(), &EnumOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", pt.name))
        .verdict;
    let expected = match expect {
        Expect::Allowed => Verdict::Allowed,
        Expect::Forbidden => Verdict::Forbidden,
    };
    assert_eq!(verdict, expected, "{}", pt.name);
    verdict
}
