//! Enumerator pruning micro-bench: naive generate-then-judge vs the
//! consistency-driven strategy.
//!
//! Dependency-free (no criterion): enumerates every candidate execution
//! of the contended conformance corpus (paper library + every generated
//! diy cycle + each cycle's contended twin) at cycle length 4 and then
//! 6, once per strategy, and compares
//!
//! * `co_leaves_tested` — full `(rf, co)` candidates actually built and
//!   judged (the naive path builds every coherence permutation for every
//!   reads-from combination and filters afterwards; the pruned path
//!   abandons doomed rf prefixes, saturates forced `co` edges, and only
//!   branches on genuinely unconstrained write pairs, so it builds
//!   exactly the candidates it emits);
//! * `rf_prefixes_pruned` — partial reads-from assignments the pruned
//!   strategy abandoned before touching `co` at all;
//! * wall-clock seconds.
//!
//! Both strategies are asserted to emit the identical candidate count —
//! a bench run doubles as an equivalence check over the full corpus —
//! and the length-4 sweep is asserted to show at least a 5x reduction in
//! candidates tested. Writes `BENCH_PRUNE.json` in the working
//! directory.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin prune [-- --iters N] [--max-cycle-len L]
//! ```

use lkmm_conformance::campaign::{corpus, CampaignConfig};
use lkmm_exec::{enumerate, EnumOptions, EnumSnapshot, EnumStats, EnumStrategy};
use lkmm_litmus::Test;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Measurement {
    max_cycle_len: usize,
    strategy: &'static str,
    seconds: f64,
    tests: usize,
    snap: EnumSnapshot,
}

fn corpus_tests(max_cycle_len: usize) -> Vec<Test> {
    let cfg = CampaignConfig { max_cycle_len, contended: true, ..CampaignConfig::default() };
    corpus(&cfg)
        .expect("default-alphabet corpus generates")
        .into_iter()
        .map(|entry| entry.test)
        .collect()
}

fn sweep(tests: &[Test], strategy: EnumStrategy, iters: usize) -> (f64, EnumSnapshot) {
    let mut seconds = 0.0;
    let mut snap = EnumSnapshot::default();
    for i in 0..iters {
        let stats = Arc::new(EnumStats::default());
        let opts = EnumOptions { strategy, stats: Some(Arc::clone(&stats)), ..Default::default() };
        let start = Instant::now();
        for t in tests {
            let _ = enumerate(t, &opts).expect("corpus test enumerates");
        }
        seconds += start.elapsed().as_secs_f64();
        if i == 0 {
            snap = stats.snapshot();
        }
    }
    (seconds / iters as f64, snap)
}

fn main() {
    let mut iters = 3usize;
    let mut max_cycle_len = 6usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--max-cycle-len" => {
                max_cycle_len = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-cycle-len needs an integer >= 4");
            }
            "--help" | "-h" => {
                println!(
                    "usage: prune [--iters N] [--max-cycle-len L]   \
                     (timed repetitions per config, default 3; deepest sweep, default 6)"
                );
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    assert!(max_cycle_len >= 4, "--max-cycle-len must be at least 4");

    let mut measurements: Vec<Measurement> = Vec::new();
    for len in [4, max_cycle_len] {
        // The deep sweep subsumes the shallow one when the requested
        // maximum is already 4.
        if measurements.iter().any(|m| m.max_cycle_len == len) {
            continue;
        }
        let tests = corpus_tests(len);
        let (naive_secs, naive_snap) = sweep(&tests, EnumStrategy::Naive, iters);
        let (pruned_secs, pruned_snap) = sweep(&tests, EnumStrategy::Pruned, iters);
        assert_eq!(
            pruned_snap.candidates_emitted, naive_snap.candidates_emitted,
            "strategies disagree on the emitted candidate set at cycle length {len}"
        );
        assert_eq!(
            pruned_snap.co_leaves_tested, pruned_snap.candidates_emitted,
            "pruned path built candidates it did not emit at cycle length {len}"
        );
        if len == 4 {
            let reduction =
                naive_snap.co_leaves_tested as f64 / pruned_snap.co_leaves_tested as f64;
            assert!(
                reduction >= 5.0,
                "cycle length 4: only {reduction:.2}x candidate reduction (need >= 5x)"
            );
        }
        measurements.push(Measurement {
            max_cycle_len: len,
            strategy: "naive",
            seconds: naive_secs,
            tests: tests.len(),
            snap: naive_snap,
        });
        measurements.push(Measurement {
            max_cycle_len: len,
            strategy: "pruned",
            seconds: pruned_secs,
            tests: tests.len(),
            snap: pruned_snap,
        });
    }

    println!(
        "{:>3} {:8} {:>10} {:>7} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "len", "strategy", "secs", "tests", "leaves", "emitted", "rf-pruned", "reduction", "speedup"
    );
    let mut json_entries = String::new();
    for m in &measurements {
        let naive = measurements
            .iter()
            .find(|n| n.max_cycle_len == m.max_cycle_len && n.strategy == "naive")
            .expect("naive twin");
        let reduction = naive.snap.co_leaves_tested as f64 / m.snap.co_leaves_tested as f64;
        let speedup = naive.seconds / m.seconds;
        println!(
            "{:>3} {:8} {:>10.4} {:>7} {:>12} {:>12} {:>12} {:>8.2}x {:>7.2}x",
            m.max_cycle_len,
            m.strategy,
            m.seconds,
            m.tests,
            m.snap.co_leaves_tested,
            m.snap.candidates_emitted,
            m.snap.rf_prefixes_pruned,
            reduction,
            speedup
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"max_cycle_len\": {}, \"strategy\": \"{}\", \"seconds\": {:.6}, \
             \"tests\": {}, \"co_leaves_tested\": {}, \"candidates_emitted\": {}, \
             \"rf_prefixes_pruned\": {}, \"co_pairs_saturated\": {}, \"co_pairs_branched\": {}, \
             \"candidate_reduction_vs_naive\": {:.3}, \"speedup_vs_naive\": {:.3}}}",
            m.max_cycle_len,
            m.strategy,
            m.seconds,
            m.tests,
            m.snap.co_leaves_tested,
            m.snap.candidates_emitted,
            m.snap.rf_prefixes_pruned,
            m.snap.co_pairs_saturated,
            m.snap.co_pairs_branched,
            reduction,
            speedup
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"enumerator-pruning\",\n  \"corpus\": \"library + diy cycles + \
         contended twins\",\n  \"iters\": {iters},\n  \
         \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_PRUNE.json", &json).expect("write BENCH_PRUNE.json");
    println!("\nwrote BENCH_PRUNE.json");
}
