//! Cold-vs-warm throughput micro-bench for the verdict store.
//!
//! Dependency-free (no criterion): times three configurations of the
//! batch checker over two corpora (the paper's litmus library and a
//! generated MP-family sweep, both under the native LKMM) —
//!
//! * `uncached`  — every test checked from scratch, no store;
//! * `cold`      — a fresh on-disk store: canonicalize + hash + check +
//!                 append, i.e. the cache's write-path overhead;
//! * `warm`      — the same store reopened: pure replay, zero candidate
//!                 enumerations;
//!
//! then writes `BENCH_CACHE.json` in the working directory and prints a
//! summary table. Results are asserted identical across configurations
//! while timing, and the warm pass is asserted to compute nothing, so a
//! bench run doubles as a cache-correctness check.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin cache [-- --iters N]
//! ```

use lkmm::Lkmm;
use lkmm_exec::TestResult;
use lkmm_litmus::ast::Test;
use lkmm_service::{BatchChecker, VerdictStore};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Workload {
    name: &'static str,
    tests: Vec<Test>,
}

fn workloads() -> Vec<Workload> {
    let library: Vec<Test> =
        lkmm_litmus::library::all().iter().map(lkmm_litmus::library::PaperTest::test).collect();
    let mp = lkmm_generator::parse_cycle("PodWW Rfe PodRR Fre").expect("MP cycle parses");
    let family = lkmm_generator::family::family_tests(&mp).expect("MP base is valid");
    vec![
        Workload { name: "table5-library", tests: library },
        Workload { name: "mp-family-sweep", tests: family },
    ]
}

struct Measurement {
    workload: &'static str,
    config: &'static str,
    seconds: f64,
    tests: usize,
    candidates_enumerated: usize,
    hits: usize,
    deduped: usize,
}

/// One timed pass over `tests` through a fresh checker on `store`.
fn run_store_pass(
    store: VerdictStore,
    tests: &[Test],
) -> (f64, usize, usize, usize, Vec<TestResult>) {
    let model = Lkmm::new();
    let mut checker = BatchChecker::new(&model, store, "bench");
    let start = Instant::now();
    let report = checker.check_corpus(tests).expect("corpus checks");
    let seconds = start.elapsed().as_secs_f64();
    let results = report.outcomes.iter().map(|o| o.result().expect("unbudgeted check completes").clone()).collect();
    (seconds, report.candidates_enumerated, report.hits, report.deduped, results)
}

fn bench_workload(w: &Workload, iters: usize, store_path: &Path) -> Vec<Measurement> {
    let mut out = Vec::new();

    // Baseline: no store at all (the pre-cache code path).
    let model = Lkmm::new();
    let herd_results: Vec<TestResult> = {
        let mut checker = BatchChecker::new(&model, VerdictStore::in_memory(), "bench");
        checker
            .check_corpus(&w.tests)
            .unwrap()
            .outcomes
            .iter()
            .map(|o| o.result().expect("unbudgeted check completes").clone())
            .collect()
    };
    let start = Instant::now();
    for _ in 0..iters {
        let mut checker = BatchChecker::new(&model, VerdictStore::in_memory(), "bench");
        // A throwaway in-memory store per iteration: every test is a miss,
        // so this measures canonicalize + hash + check with no replay.
        let report = checker.check_corpus(&w.tests).unwrap();
        assert_eq!(report.hits, 0);
        std::hint::black_box(report);
    }
    out.push(Measurement {
        workload: w.name,
        config: "uncached",
        seconds: start.elapsed().as_secs_f64() / iters as f64,
        tests: w.tests.len(),
        candidates_enumerated: herd_results.iter().map(|r| r.candidates).sum(),
        hits: 0,
        deduped: 0,
    });

    // Cold: fresh on-disk store each iteration (write-path overhead).
    let mut cold_seconds = 0.0;
    let mut cold_results = Vec::new();
    for i in 0..iters {
        let _ = std::fs::remove_file(store_path);
        let store = VerdictStore::open(store_path).expect("store opens");
        let (s, _, hits, _, results) = run_store_pass(store, &w.tests);
        assert_eq!(hits, 0, "{}: cold pass hit a fresh store", w.name);
        cold_seconds += s;
        if i == 0 {
            cold_results = results;
        }
    }
    assert_eq!(cold_results, herd_results, "{}: store changed results", w.name);
    out.push(Measurement {
        workload: w.name,
        config: "cold",
        seconds: cold_seconds / iters as f64,
        tests: w.tests.len(),
        candidates_enumerated: herd_results.iter().map(|r| r.candidates).sum(),
        hits: 0,
        deduped: 0,
    });

    // Warm: reopen the populated store each iteration (pure replay).
    let mut warm_seconds = 0.0;
    let mut warm_hits = 0;
    let mut warm_deduped = 0;
    for _ in 0..iters {
        let store = VerdictStore::open(store_path).expect("store reopens");
        let (s, enumerated, hits, deduped, results) = run_store_pass(store, &w.tests);
        assert_eq!(enumerated, 0, "{}: warm pass enumerated candidates", w.name);
        assert_eq!(results, herd_results, "{}: warm results differ", w.name);
        warm_seconds += s;
        warm_hits = hits;
        warm_deduped = deduped;
    }
    out.push(Measurement {
        workload: w.name,
        config: "warm",
        seconds: warm_seconds / iters as f64,
        tests: w.tests.len(),
        candidates_enumerated: 0,
        hits: warm_hits,
        deduped: warm_deduped,
    });
    let _ = std::fs::remove_file(store_path);
    out
}

fn main() {
    let mut iters = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--help" | "-h" => {
                println!("usage: cache [--iters N]   (timed repetitions per config, default 5)");
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let store_path: PathBuf =
        std::env::temp_dir().join(format!("lkmm-bench-cache-{}.bin", std::process::id()));

    let mut measurements = Vec::new();
    for w in workloads() {
        measurements.extend(bench_workload(&w, iters, &store_path));
    }

    println!(
        "{:18} {:10} {:>10} {:>12} {:>9} {:>7} {:>9}",
        "workload", "config", "secs", "tests/sec", "cands", "hits", "speedup"
    );
    let mut json_entries = String::new();
    for m in &measurements {
        let baseline = measurements
            .iter()
            .find(|b| b.workload == m.workload && b.config == "uncached")
            .expect("uncached baseline exists");
        let speedup = baseline.seconds / m.seconds;
        let throughput = m.tests as f64 / m.seconds;
        println!(
            "{:18} {:10} {:>10.5} {:>12.0} {:>9} {:>7} {:>8.2}x",
            m.workload, m.config, m.seconds, throughput, m.candidates_enumerated, m.hits, speedup
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"seconds\": {:.6}, \
             \"tests\": {}, \"tests_per_sec\": {:.1}, \"candidates_enumerated\": {}, \
             \"hits\": {}, \"deduped\": {}, \"speedup_vs_uncached\": {:.3}}}",
            m.workload,
            m.config,
            m.seconds,
            m.tests,
            throughput,
            m.candidates_enumerated,
            m.hits,
            m.deduped,
            speedup
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"verdict-cache\",\n  \"model\": \"LKMM\",\n  \
         \"iters\": {iters},\n  \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_CACHE.json", &json).expect("write BENCH_CACHE.json");
    println!("\nwrote BENCH_CACHE.json");
}
