//! Cold-vs-warm throughput micro-bench for the conformance engine.
//!
//! Dependency-free (no criterion): times a full differential campaign
//! (library + generated cycles, all seven checkers, all oracles) in two
//! configurations —
//!
//! * `cold` — a fresh on-disk verdict store: every cell of the verdict
//!   matrix is enumerated and checked, then persisted;
//! * `warm` — the same store reopened: every cell replays from cache and
//!   nothing is enumerated, so the remaining time is corpus generation
//!   plus oracle evaluation;
//!
//! then writes `BENCH_CONFORMANCE.json` in the working directory and
//! prints a summary table. The simulator soundness pass is disabled
//! while timing (simulator runs are never cached, so they would blur the
//! cold/warm comparison). Both passes are asserted discrepancy-free and
//! report-identical, and the warm pass is asserted to enumerate zero
//! candidates, so a bench run doubles as a conformance check.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin conformance [-- --iters N] [--max-cycle-len L]
//! ```

use lkmm_conformance::{json_report, run_campaign, CampaignConfig, CampaignReport, SimConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Measurement {
    config: &'static str,
    seconds: f64,
    tests: usize,
    cells: usize,
    candidates_enumerated: usize,
    hits: usize,
}

fn campaign_config(max_cycle_len: usize, store_path: &Path) -> CampaignConfig {
    CampaignConfig {
        max_cycle_len,
        store_path: Some(store_path.to_path_buf()),
        sim: SimConfig { iterations: 0, ..SimConfig::default() },
        ..CampaignConfig::default()
    }
}

fn pass_stats(report: &CampaignReport) -> (usize, usize, usize) {
    let cells = report.models.iter().map(|m| m.pass.checked).sum();
    let enumerated = report.models.iter().map(|m| m.pass.candidates_enumerated).sum();
    let hits = report.models.iter().map(|m| m.pass.hits).sum();
    (cells, enumerated, hits)
}

/// Cells answered without touching the store: duplicates of another
/// corpus test with the same canonical form.
fn deduped(report: &CampaignReport) -> usize {
    report.models.iter().map(|m| m.pass.deduped).sum()
}

fn main() {
    let mut iters = 3usize;
    let mut max_cycle_len = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--max-cycle-len" => {
                max_cycle_len = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-cycle-len needs a non-negative integer");
            }
            "--help" | "-h" => {
                println!(
                    "usage: conformance [--iters N] [--max-cycle-len L]   \
                     (timed repetitions per config, default 3; cycle length, default 4)"
                );
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let store_path: PathBuf = std::env::temp_dir()
        .join(format!("lkmm-bench-conformance-{}.bin", std::process::id()));
    let cfg = campaign_config(max_cycle_len, &store_path);

    // Cold: fresh store each iteration (full enumeration + write path).
    let mut cold_seconds = 0.0;
    let mut cold_json = String::new();
    let mut cold_stats = (0usize, 0usize, 0usize);
    let mut tests = 0usize;
    for i in 0..iters {
        let _ = std::fs::remove_file(&store_path);
        let start = Instant::now();
        let report = run_campaign(&cfg).expect("cold campaign runs");
        cold_seconds += start.elapsed().as_secs_f64();
        assert!(report.clean(), "cold campaign found discrepancies");
        let (cells, enumerated, hits) = pass_stats(&report);
        assert_eq!(hits, 0, "cold pass hit a fresh store");
        assert!(enumerated > 0, "cold pass enumerated nothing");
        if i == 0 {
            cold_json = json_report(&report, &cfg).to_string();
            cold_stats = (cells, enumerated, hits);
            tests = report.corpus_total();
        }
    }

    // Warm: reopen the populated store each iteration (pure replay).
    let mut warm_seconds = 0.0;
    let mut warm_stats = (0usize, 0usize, 0usize);
    for _ in 0..iters {
        let start = Instant::now();
        let report = run_campaign(&cfg).expect("warm campaign runs");
        warm_seconds += start.elapsed().as_secs_f64();
        assert!(report.clean(), "warm campaign found discrepancies");
        let (cells, enumerated, hits) = pass_stats(&report);
        assert_eq!(enumerated, 0, "warm pass enumerated candidates");
        // Every cell is either a store hit or an in-corpus duplicate.
        assert_eq!(hits + deduped(&report), cells, "warm pass missed the store somewhere");
        let warm_json = json_report(&report, &cfg).to_string();
        assert_eq!(warm_json, cold_json, "warm report differs from cold");
        warm_stats = (cells, enumerated, hits);
    }
    let _ = std::fs::remove_file(&store_path);

    let measurements = [
        Measurement {
            config: "cold",
            seconds: cold_seconds / iters as f64,
            tests,
            cells: cold_stats.0,
            candidates_enumerated: cold_stats.1,
            hits: cold_stats.2,
        },
        Measurement {
            config: "warm",
            seconds: warm_seconds / iters as f64,
            tests,
            cells: warm_stats.0,
            candidates_enumerated: warm_stats.1,
            hits: warm_stats.2,
        },
    ];

    println!(
        "{:8} {:>10} {:>12} {:>8} {:>9} {:>7} {:>9}",
        "config", "secs", "tests/sec", "cells", "cands", "hits", "speedup"
    );
    let mut json_entries = String::new();
    for m in &measurements {
        let speedup = measurements[0].seconds / m.seconds;
        let throughput = m.tests as f64 / m.seconds;
        println!(
            "{:8} {:>10.5} {:>12.0} {:>8} {:>9} {:>7} {:>8.2}x",
            m.config, m.seconds, throughput, m.cells, m.candidates_enumerated, m.hits, speedup
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"config\": \"{}\", \"seconds\": {:.6}, \"tests\": {}, \
             \"tests_per_sec\": {:.1}, \"matrix_cells\": {}, \"candidates_enumerated\": {}, \
             \"hits\": {}, \"speedup_vs_cold\": {:.3}}}",
            m.config,
            m.seconds,
            m.tests,
            throughput,
            m.cells,
            m.candidates_enumerated,
            m.hits,
            speedup
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"conformance-campaign\",\n  \"max_cycle_len\": {max_cycle_len},\n  \
         \"iters\": {iters},\n  \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_CONFORMANCE.json", &json).expect("write BENCH_CONFORMANCE.json");
    println!("\nwrote BENCH_CONFORMANCE.json");
}
