//! Relation kernel micro-bench: naive bit-at-a-time operators vs the
//! word-parallel in-place kernels the checkers' hot paths use.
//!
//! Dependency-free (no criterion): times `union`/`seq`/`transitive
//! closure` in both styles at universes 8, 64 and 256 — the library
//! tests, a roomy execution, and a deliberately oversized stress shape —
//! then writes `BENCH_RELATION.json` in the working directory and
//! prints a summary table. The naive side is what a pair-by-pair
//! implementation costs (`iter`/`contains`/`insert` loops, one fresh
//! relation per op); the in-place side is the word-parallel kernel
//! writing into a reused buffer, exactly as the fixpoints run it. Each
//! (op, universe) cell is the best of several repetitions, so scheduler
//! noise shrinks the measured gap rather than inflating it.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin relation [-- --reps N]
//! ```
//!
//! The run asserts two things while timing: both styles produce
//! identical relations, and the word-parallel in-place style is never
//! slower — it packs 64 pair-tests into each `u64` op and skips the
//! allocator, so losing to the scalar loop at any universe size would
//! mean the kernels regressed.

use lkmm_relation::Relation;
use std::fmt::Write as _;
use std::time::Instant;

/// Universes to measure. 8 covers the paper's library tests, 64 a
/// roomy generated execution, 256 an oversized stress shape (relations
/// are not bounded by the execution event cap).
const UNIVERSES: [usize; 3] = [8, 64, 256];

/// Deterministic pseudo-random pair stream (SplitMix64) so every run
/// measures identical inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A po-like forward order: each event points at a handful of later
/// ones — sparse, acyclic, the shape the checkers sequence against.
fn order_like(n: usize) -> Relation {
    let mut r = Relation::empty(n);
    for i in 0..n {
        for step in [1usize, 3, 7] {
            if i + step < n {
                r.insert(i, i + step);
            }
        }
    }
    r
}

/// A communication-like scatter: ~4·n pseudo-random pairs.
fn scatter(n: usize, seed: u64) -> Relation {
    let mut rng = Rng(seed);
    let mut r = Relation::empty(n);
    for _ in 0..4 * n {
        let a = (rng.next() as usize) % n;
        let b = (rng.next() as usize) % n;
        r.insert(a, b);
    }
    r
}

struct Row {
    op: &'static str,
    universe: usize,
    iters: usize,
    naive_ns: f64,
    inplace_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.inplace_ns
    }
}

/// Best-of-`reps` time for `iters` runs of `f`, in ns per iteration.
fn best_of(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    best
}

/// Pair-by-pair union: clone the left operand, insert the right's
/// pairs one at a time.
fn naive_union(a: &Relation, b: &Relation) -> Relation {
    let mut out = a.clone();
    for (x, y) in b.iter() {
        out.insert(x, y);
    }
    out
}

/// Pair-by-pair composition: for every `(x, y)` in `a`, walk `y`'s
/// successors in `b` and insert each `(x, z)`.
fn naive_seq(a: &Relation, b: &Relation) -> Relation {
    let mut out = Relation::empty(a.universe());
    for (x, y) in a.iter() {
        for z in b.successors(y) {
            out.insert(x, z);
        }
    }
    out
}

/// Bit-at-a-time Floyd–Warshall: the textbook triple loop over
/// `contains`/`insert`.
fn naive_closure(r: &Relation) -> Relation {
    let n = r.universe();
    let mut out = r.clone();
    for k in 0..n {
        for i in 0..n {
            if !out.contains(i, k) {
                continue;
            }
            for j in 0..n {
                if out.contains(k, j) {
                    out.insert(i, j);
                }
            }
        }
    }
    out
}

fn bench_universe(n: usize, reps: usize, rows: &mut Vec<Row>) {
    // Iteration counts scale with the O(n²) row footprint so every cell
    // measures a comparable amount of work.
    let iters = (2_000_000 / (n * n)).max(64);
    let a = order_like(n);
    let b = scatter(n, 42);

    // union: scalar insert loop vs one OR pass over the rows. The
    // in-place side accumulates into a buffer that already holds the
    // left operand (idempotent, so re-running it per iteration measures
    // exactly one accumulate pass — the shape the fixpoints run).
    let expected = naive_union(&a, &b);
    let mut out = Relation::empty(n);
    out.copy_from(&a);
    out.union_in_place(&b);
    assert_eq!(out, expected, "union styles disagree at n={n}");
    let naive = best_of(reps, iters, || {
        std::hint::black_box(naive_union(&a, &b));
    });
    let inplace = best_of(reps, iters, || {
        out.union_in_place(&b);
        std::hint::black_box(&out);
    });
    rows.push(Row { op: "union", universe: n, iters, naive_ns: naive, inplace_ns: inplace });

    // seq: successor walks vs the O(n³/64) row-OR composition every
    // fixpoint is made of.
    let expected = naive_seq(&a, &b);
    a.seq_into(&b, &mut out);
    assert_eq!(out, expected, "seq styles disagree at n={n}");
    let seq_iters = iters / 8 + 8;
    let naive = best_of(reps, seq_iters, || {
        std::hint::black_box(naive_seq(&a, &b));
    });
    let inplace = best_of(reps, seq_iters, || {
        a.seq_into(&b, &mut out);
        std::hint::black_box(&out);
    });
    rows.push(Row { op: "seq", universe: n, iters: seq_iters, naive_ns: naive, inplace_ns: inplace });

    // transitive closure: bit-level Warshall vs the row-OR kernel with
    // a reused scratch row — the hb*/pb*/rcu fixpoint workhorse.
    let expected = naive_closure(&b);
    let mut scratch: Vec<u64> = Vec::new();
    out.copy_from(&b);
    out.transitive_close_with(&mut scratch);
    assert_eq!(out, expected, "closure styles disagree at n={n}");
    let close_iters = iters / 16 + 4;
    let naive = best_of(reps, close_iters, || {
        std::hint::black_box(naive_closure(&b));
    });
    let inplace = best_of(reps, close_iters, || {
        out.copy_from(&b);
        out.transitive_close_with(&mut scratch);
        std::hint::black_box(&out);
    });
    rows.push(Row {
        op: "closure",
        universe: n,
        iters: close_iters,
        naive_ns: naive,
        inplace_ns: inplace,
    });
}

fn main() {
    let mut reps = 7usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            "--help" | "-h" => {
                println!("usage: relation [--reps N]   (best-of repetitions per cell, default 7)");
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let mut rows = Vec::new();
    for n in UNIVERSES {
        bench_universe(n, reps, &mut rows);
    }

    println!("{:10} {:>9} {:>12} {:>14} {:>9}", "op", "universe", "naive ns/op", "inplace ns/op", "speedup");
    let mut json_entries = String::new();
    let mut slower = Vec::new();
    for r in &rows {
        println!(
            "{:10} {:>9} {:>12.1} {:>14.1} {:>8.2}x",
            r.op,
            r.universe,
            r.naive_ns,
            r.inplace_ns,
            r.speedup()
        );
        if r.speedup() < 1.0 {
            slower.push(format!("{} at n={} ({:.2}x)", r.op, r.universe, r.speedup()));
        }
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"op\": \"{}\", \"universe\": {}, \"iters\": {}, \
             \"naive_ns_per_op\": {:.1}, \"inplace_ns_per_op\": {:.1}, \"speedup\": {:.3}}}",
            r.op, r.universe, r.iters, r.naive_ns, r.inplace_ns, r.speedup()
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"relation-kernels\",\n  \"reps\": {reps},\n  \
         \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_RELATION.json", &json).expect("write BENCH_RELATION.json");
    println!("\nwrote BENCH_RELATION.json");

    assert!(
        slower.is_empty(),
        "in-place kernels measured slower than allocating ones: {}",
        slower.join(", ")
    );
}
