//! Sequential-vs-parallel throughput micro-bench for the check pipeline.
//!
//! Dependency-free (no criterion): times `check_test` against
//! `check_test_pipelined` at several job counts over three workloads —
//! the paper's Table 5 litmus library under the native LKMM, a generated
//! MP-family sweep, and a model-eval-heavy stress workload under the
//! interpreted cat LKMM — then writes `BENCH_PIPELINE.json` in the
//! working directory and prints a summary table.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin sweep [-- --iters N] [--assert-bar X]
//! ```
//!
//! `--assert-bar X` turns the run into a perf gate: after writing the
//! JSON it fails (exit 1) if any workload's `pipeline-j2` speedup fell
//! below `X` — CI uses `--assert-bar 1.0` to pin "two workers are never
//! slower than sequential" now that small checks collapse inline and
//! batches amortise the queue traffic.
//!
//! Verdicts are asserted identical across all configurations while
//! timing, so a bench run doubles as a cross-check. The timing
//! methodology is built for a noisy shared host: every workload pass
//! (a few milliseconds) cycles through all configurations with a
//! rotating start, a repetition accumulates enough cycles to span
//! ~100ms per configuration, and the reported speedup is the **median
//! of paired ratios** — each repetition's per-config total divided by
//! the same repetition's sequential total. Pass-level pairing cancels
//! host drift at every timescale coarser than one pass, instead of
//! letting it systematically favour whichever config runs first or
//! last.
//!
//! Reading the numbers: the pipeline's producer (candidate enumeration)
//! is serial, so speedup is bounded by the model-evaluation share of each
//! test (Amdahl), and each check pays a worker spawn/join. The library
//! tests have single-digit candidate counts, so they measure that fixed
//! overhead; the stress workload is where a multi-core machine shows the
//! scaling (interpreted model ≈ 50 µs/candidate dwarfs the per-candidate
//! enumeration cost). On a single-hardware-thread host every speedup
//! clamps to ≈1×; the JSON records `hardware_threads` so results are
//! interpretable.

use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, check_test_pipelined, effective_jobs, PipelineOptions, TestResult};
use lkmm_litmus::ast::Test;
use std::fmt::Write as _;
use std::time::Instant;

enum BenchModel {
    NativeLkmm,
    CatLkmm,
}

struct Workload {
    name: &'static str,
    model: BenchModel,
    tests: Vec<Test>,
}

/// A wide single-location test: `threads` writers × `reads` reads each,
/// giving a combinatorial rf/co space with cheap per-candidate
/// enumeration — the shape where the worker pool pays off.
fn stress_test(threads: usize, reads: usize) -> Test {
    let mut src = format!("C stress-{threads}w{reads}r\n{{ x=0; }}\n");
    for i in 0..threads {
        let mut decls = String::new();
        let mut body = format!("WRITE_ONCE(*x, {}); ", i + 1);
        for r in 0..reads {
            decls.push_str(&format!("int r{r}; "));
            body.push_str(&format!("r{r} = READ_ONCE(*x); "));
        }
        src.push_str(&format!("P{i}(int *x) {{ {decls}{body}}}\n"));
    }
    src.push_str("exists (0:r0=1)\n");
    lkmm_litmus::parse(&src).expect("stress test parses")
}

struct Measurement {
    workload: &'static str,
    config: String,
    jobs: usize,
    /// Median seconds per workload pass across repetitions.
    seconds: f64,
    /// Median of the per-repetition paired ratios against sequential
    /// (so `sequential` itself reports exactly 1.0).
    speedup: f64,
    candidates: usize,
}

fn workloads() -> Vec<Workload> {
    let library: Vec<Test> =
        lkmm_litmus::library::all().iter().map(lkmm_litmus::library::PaperTest::test).collect();
    let mp = [
        lkmm_generator::Edge::internal(
            lkmm_generator::InternalKind::Po,
            lkmm_generator::Extremity::W,
            lkmm_generator::Extremity::W,
        ),
        lkmm_generator::Edge::Rfe,
        lkmm_generator::Edge::internal(
            lkmm_generator::InternalKind::Po,
            lkmm_generator::Extremity::R,
            lkmm_generator::Extremity::R,
        ),
        lkmm_generator::Edge::Fre,
    ];
    let family = lkmm_generator::family::family_tests(&mp).expect("MP base is valid");
    vec![
        Workload { name: "table5-library", model: BenchModel::NativeLkmm, tests: library },
        Workload { name: "mp-family-sweep", model: BenchModel::NativeLkmm, tests: family },
        Workload {
            name: "stress-cat",
            model: BenchModel::CatLkmm,
            tests: vec![stress_test(3, 1), stress_test(3, 2), stress_test(2, 2)],
        },
    ]
}

/// Time `passes` back-to-back runs of the workload and report the mean
/// seconds per pass. Litmus workloads finish in single-digit
/// milliseconds, which is below the noise floor of a shared host — the
/// caller picks `passes` so one sample spans long enough to measure.
fn time_config(
    model: &dyn lkmm_exec::ConsistencyModel,
    tests: &[Test],
    opts: &EnumOptions,
    pipe: Option<&PipelineOptions>,
    passes: usize,
) -> (f64, Vec<TestResult>) {
    let mut results = Vec::new();
    let start = Instant::now();
    for _ in 0..passes {
        results = tests
            .iter()
            .map(|t| match pipe {
                None => check_test(model, t, opts).expect("enumeration"),
                Some(p) => check_test_pipelined(model, t, opts, p).expect("enumeration"),
            })
            .collect();
    }
    (start.elapsed().as_secs_f64() / passes as f64, results)
}

/// Seconds one timed sample should span: long enough that scheduler
/// jitter and timer granularity stop dominating sub-10ms workloads.
const SAMPLE_TARGET_SECS: f64 = 0.1;

fn main() {
    let mut iters = 3usize;
    let mut assert_bar: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--assert-bar" => {
                assert_bar = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--assert-bar needs a number"),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: sweep [--iters N] [--assert-bar X]\n  \
                     --iters N       best-of repetitions per config (default 3)\n  \
                     --assert-bar X  exit 1 if any pipeline-j2 speedup < X"
                );
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let opts = EnumOptions::default();
    let hw = effective_jobs(0);
    let job_counts: Vec<usize> = {
        let mut v = vec![1, 2, 4];
        if !v.contains(&hw) {
            v.push(hw);
        }
        v.retain(|&j| j <= hw.max(4));
        v
    };

    let mut measurements: Vec<Measurement> = Vec::new();
    for w in workloads() {
        let native;
        let cat;
        let model: &dyn lkmm_exec::ConsistencyModel = match &w.model {
            BenchModel::NativeLkmm => {
                native = Lkmm::new();
                &native
            }
            BenchModel::CatLkmm => {
                cat = lkmm_cat::linux_kernel_model();
                &cat
            }
        };
        let configs: Vec<(String, usize, Option<PipelineOptions>)> =
            std::iter::once(("sequential".to_string(), 1, None))
                .chain(job_counts.iter().map(|&jobs| {
                    let pipe = PipelineOptions { jobs, ..Default::default() };
                    (format!("pipeline-j{jobs}"), jobs, Some(pipe))
                }))
                .collect();
        // Warm-up pass per config (also captures the reference results,
        // cross-checks every configuration against sequential, and
        // sizes the per-sample pass count so each timed sample spans
        // roughly SAMPLE_TARGET_SECS).
        let (warm_secs, seq_results) = time_config(model, &w.tests, &opts, None, 1);
        let candidates: usize = seq_results.iter().map(|r| r.candidates).sum();
        for (name, _, pipe) in &configs {
            let (_, results) = time_config(model, &w.tests, &opts, pipe.as_ref(), 1);
            assert_eq!(results, seq_results, "{}: results drifted at {name}", w.name);
        }
        let passes = ((SAMPLE_TARGET_SECS / warm_secs.max(1e-9)).ceil() as usize).clamp(1, 1000);
        // Paired, pass-level interleaved repetitions: within each
        // repetition every single workload pass (a few milliseconds)
        // cycles through *all* configurations, rotating the starting
        // configuration so none systematically rides the front or back
        // of a cycle, and each configuration's speedup is the ratio
        // against the *same repetition's* sequential total — the median
        // of those paired ratios is reported. Fine-grained pairing
        // cancels host drift (a noisy-neighbour VM, thermal throttling)
        // at every timescale coarser than one pass, which best-of-N
        // cannot: best-of picks each config's luckiest window, and luck
        // differs.
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
        for _ in 0..iters {
            let mut totals = vec![0.0f64; configs.len()];
            for pass in 0..passes {
                for k in 0..configs.len() {
                    let i = (k + pass) % configs.len();
                    let (s, r) = time_config(model, &w.tests, &opts, configs[i].2.as_ref(), 1);
                    std::hint::black_box(r);
                    totals[i] += s;
                }
            }
            for (sample, total) in samples.iter_mut().zip(&totals) {
                sample.push(total / passes as f64);
            }
        }
        let median = |xs: &[f64]| -> f64 {
            let mut v = xs.to_vec();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let seq_samples = samples[0].clone();
        for ((name, jobs, _), config_samples) in configs.iter().zip(&samples) {
            let ratios: Vec<f64> = seq_samples
                .iter()
                .zip(config_samples)
                .map(|(seq, s)| seq / s)
                .collect();
            measurements.push(Measurement {
                workload: w.name,
                config: name.clone(),
                jobs: *jobs,
                seconds: median(config_samples),
                speedup: median(&ratios),
                candidates,
            });
        }
    }

    // Human-readable table.
    println!("{:18} {:14} {:>10} {:>14} {:>9}", "workload", "config", "secs", "cands/sec", "speedup");
    let mut json_entries = String::new();
    for m in &measurements {
        let speedup = m.speedup;
        let throughput = m.candidates as f64 / m.seconds;
        println!(
            "{:18} {:14} {:>10.4} {:>14.0} {:>8.2}x",
            m.workload, m.config, m.seconds, throughput, speedup
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"jobs\": {}, \
             \"seconds\": {:.6}, \"candidates\": {}, \"candidates_per_sec\": {:.1}, \
             \"speedup_vs_sequential\": {:.3}}}",
            m.workload, m.config, m.jobs, m.seconds, m.candidates, throughput, speedup
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"pipeline-sweep\",\n  \"model\": \"LKMM\",\n  \
         \"hardware_threads\": {hw},\n  \"iters\": {iters},\n  \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_PIPELINE.json", &json).expect("write BENCH_PIPELINE.json");
    println!("\nwrote BENCH_PIPELINE.json");

    if let Some(bar) = assert_bar {
        let mut below = Vec::new();
        for m in measurements.iter().filter(|m| m.config == "pipeline-j2") {
            if m.speedup < bar {
                below.push(format!("{} ({:.3}x)", m.workload, m.speedup));
            }
        }
        if !below.is_empty() {
            eprintln!("sweep: pipeline-j2 speedup below the {bar} bar: {}", below.join(", "));
            std::process::exit(1);
        }
        println!("assert-bar {bar}: every pipeline-j2 row passed");
    }
}
