//! Sequential-vs-parallel throughput micro-bench for the check pipeline.
//!
//! Dependency-free (no criterion): times `check_test` against
//! `check_test_pipelined` at several job counts over three workloads —
//! the paper's Table 5 litmus library under the native LKMM, a generated
//! MP-family sweep, and a model-eval-heavy stress workload under the
//! interpreted cat LKMM — then writes `BENCH_PIPELINE.json` in the
//! working directory and prints a summary table.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin sweep [-- --iters N]
//! ```
//!
//! Verdicts are asserted identical across all configurations while
//! timing, so a bench run doubles as a cross-check.
//!
//! Reading the numbers: the pipeline's producer (candidate enumeration)
//! is serial, so speedup is bounded by the model-evaluation share of each
//! test (Amdahl), and each check pays a worker spawn/join. The library
//! tests have single-digit candidate counts, so they measure that fixed
//! overhead; the stress workload is where a multi-core machine shows the
//! scaling (interpreted model ≈ 50 µs/candidate dwarfs the per-candidate
//! enumeration cost). On a single-hardware-thread host every speedup
//! clamps to ≈1×; the JSON records `hardware_threads` so results are
//! interpretable.

use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, check_test_pipelined, effective_jobs, PipelineOptions, TestResult};
use lkmm_litmus::ast::Test;
use std::fmt::Write as _;
use std::time::Instant;

enum BenchModel {
    NativeLkmm,
    CatLkmm,
}

struct Workload {
    name: &'static str,
    model: BenchModel,
    tests: Vec<Test>,
}

/// A wide single-location test: `threads` writers × `reads` reads each,
/// giving a combinatorial rf/co space with cheap per-candidate
/// enumeration — the shape where the worker pool pays off.
fn stress_test(threads: usize, reads: usize) -> Test {
    let mut src = format!("C stress-{threads}w{reads}r\n{{ x=0; }}\n");
    for i in 0..threads {
        let mut decls = String::new();
        let mut body = format!("WRITE_ONCE(*x, {}); ", i + 1);
        for r in 0..reads {
            decls.push_str(&format!("int r{r}; "));
            body.push_str(&format!("r{r} = READ_ONCE(*x); "));
        }
        src.push_str(&format!("P{i}(int *x) {{ {decls}{body}}}\n"));
    }
    src.push_str("exists (0:r0=1)\n");
    lkmm_litmus::parse(&src).expect("stress test parses")
}

struct Measurement {
    workload: &'static str,
    config: String,
    jobs: usize,
    seconds: f64,
    candidates: usize,
}

fn workloads() -> Vec<Workload> {
    let library: Vec<Test> =
        lkmm_litmus::library::all().iter().map(lkmm_litmus::library::PaperTest::test).collect();
    let mp = [
        lkmm_generator::Edge::internal(
            lkmm_generator::InternalKind::Po,
            lkmm_generator::Extremity::W,
            lkmm_generator::Extremity::W,
        ),
        lkmm_generator::Edge::Rfe,
        lkmm_generator::Edge::internal(
            lkmm_generator::InternalKind::Po,
            lkmm_generator::Extremity::R,
            lkmm_generator::Extremity::R,
        ),
        lkmm_generator::Edge::Fre,
    ];
    let family = lkmm_generator::family::family_tests(&mp).expect("MP base is valid");
    vec![
        Workload { name: "table5-library", model: BenchModel::NativeLkmm, tests: library },
        Workload { name: "mp-family-sweep", model: BenchModel::NativeLkmm, tests: family },
        Workload {
            name: "stress-cat",
            model: BenchModel::CatLkmm,
            tests: vec![stress_test(3, 1), stress_test(3, 2), stress_test(2, 2)],
        },
    ]
}

fn run_config(
    model: &BenchModel,
    tests: &[Test],
    opts: &EnumOptions,
    pipe: Option<&PipelineOptions>,
    iters: usize,
) -> (f64, usize, Vec<TestResult>) {
    let native;
    let cat;
    let model: &dyn lkmm_exec::ConsistencyModel = match model {
        BenchModel::NativeLkmm => {
            native = Lkmm::new();
            &native
        }
        BenchModel::CatLkmm => {
            cat = lkmm_cat::linux_kernel_model();
            &cat
        }
    };
    // Warm-up pass (also captures the reference results).
    let results: Vec<TestResult> = tests
        .iter()
        .map(|t| match pipe {
            None => check_test(model, t, opts).expect("enumeration"),
            Some(p) => check_test_pipelined(model, t, opts, p).expect("enumeration"),
        })
        .collect();
    let candidates: usize = results.iter().map(|r| r.candidates).sum();
    let start = Instant::now();
    for _ in 0..iters {
        for t in tests {
            let r = match pipe {
                None => check_test(model, t, opts).expect("enumeration"),
                Some(p) => check_test_pipelined(model, t, opts, p).expect("enumeration"),
            };
            std::hint::black_box(r);
        }
    }
    let seconds = start.elapsed().as_secs_f64() / iters as f64;
    (seconds, candidates, results)
}

fn main() {
    let mut iters = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--help" | "-h" => {
                println!("usage: sweep [--iters N]   (timed repetitions per config, default 3)");
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let opts = EnumOptions::default();
    let hw = effective_jobs(0);
    let job_counts: Vec<usize> = {
        let mut v = vec![1, 2, 4];
        if !v.contains(&hw) {
            v.push(hw);
        }
        v.retain(|&j| j <= hw.max(4));
        v
    };

    let mut measurements: Vec<Measurement> = Vec::new();
    for w in workloads() {
        let (seq_s, candidates, seq_results) = run_config(&w.model, &w.tests, &opts, None, iters);
        measurements.push(Measurement {
            workload: w.name,
            config: "sequential".to_string(),
            jobs: 1,
            seconds: seq_s,
            candidates,
        });
        for &jobs in &job_counts {
            let pipe = PipelineOptions { jobs, ..Default::default() };
            let (s, c, results) = run_config(&w.model, &w.tests, &opts, Some(&pipe), iters);
            assert_eq!(c, candidates, "{}: candidate count drifted at jobs={jobs}", w.name);
            assert_eq!(results, seq_results, "{}: results drifted at jobs={jobs}", w.name);
            measurements.push(Measurement {
                workload: w.name,
                config: format!("pipeline-j{jobs}"),
                jobs,
                seconds: s,
                candidates,
            });
        }
    }

    // Human-readable table.
    println!("{:18} {:14} {:>10} {:>14} {:>9}", "workload", "config", "secs", "cands/sec", "speedup");
    let mut json_entries = String::new();
    for m in &measurements {
        let baseline = measurements
            .iter()
            .find(|b| b.workload == m.workload && b.config == "sequential")
            .expect("sequential baseline exists");
        let speedup = baseline.seconds / m.seconds;
        let throughput = m.candidates as f64 / m.seconds;
        println!(
            "{:18} {:14} {:>10.4} {:>14.0} {:>8.2}x",
            m.workload, m.config, m.seconds, throughput, speedup
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"jobs\": {}, \
             \"seconds\": {:.6}, \"candidates\": {}, \"candidates_per_sec\": {:.1}, \
             \"speedup_vs_sequential\": {:.3}}}",
            m.workload, m.config, m.jobs, m.seconds, m.candidates, throughput, speedup
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"pipeline-sweep\",\n  \"model\": \"LKMM\",\n  \
         \"hardware_threads\": {hw},\n  \"iters\": {iters},\n  \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_PIPELINE.json", &json).expect("write BENCH_PIPELINE.json");
    println!("\nwrote BENCH_PIPELINE.json");
}
