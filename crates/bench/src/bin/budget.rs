//! Budget-governance overhead micro-bench.
//!
//! Dependency-free (no criterion): times three configurations of the
//! same checking work over the pipeline-sweep workloads —
//!
//! * `ungoverned`   — `check_test_pipelined` with the default (unlimited)
//!   budget: the pre-governance fast path;
//! * `passive`      — `check_test_governed` with the default budget: the
//!   meter exists but every poll is a no-op branch;
//! * `metered`      — `check_test_governed` under a generous explicit
//!   budget on every axis: strided fuel countdowns and deadline polls are
//!   live but never trip.
//!
//! Verdicts are asserted identical across all three while timing, then
//! `BENCH_BUDGET.json` is written in the working directory with the
//! overhead of each governed configuration relative to `ungoverned`. The
//! acceptance bar for this repo is `metered` overhead ≤ 3 %.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin budget [-- --iters N]
//! ```

use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{
    check_test_governed, check_test_pipelined, effective_jobs, Budget, CheckOutcome,
    PipelineOptions, TestResult,
};
use lkmm_litmus::ast::Test;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

enum BenchModel {
    NativeLkmm,
    CatLkmm,
}

struct Workload {
    name: &'static str,
    model: BenchModel,
    tests: Vec<Test>,
}

/// Same shape as the sweep bench's stress workload: wide rf/co space,
/// cheap enumeration, expensive interpreted evaluation.
fn stress_test(threads: usize, reads: usize) -> Test {
    let mut src = format!("C stress-{threads}w{reads}r\n{{ x=0; }}\n");
    for i in 0..threads {
        let mut decls = String::new();
        let mut body = format!("WRITE_ONCE(*x, {}); ", i + 1);
        for r in 0..reads {
            decls.push_str(&format!("int r{r}; "));
            body.push_str(&format!("r{r} = READ_ONCE(*x); "));
        }
        src.push_str(&format!("P{i}(int *x) {{ {decls}{body}}}\n"));
    }
    src.push_str("exists (0:r0=1)\n");
    lkmm_litmus::parse(&src).expect("stress test parses")
}

fn workloads() -> Vec<Workload> {
    let library: Vec<Test> =
        lkmm_litmus::library::all().iter().map(lkmm_litmus::library::PaperTest::test).collect();
    vec![
        Workload { name: "table5-library", model: BenchModel::NativeLkmm, tests: library },
        Workload {
            name: "stress-cat",
            model: BenchModel::CatLkmm,
            tests: vec![stress_test(3, 1), stress_test(3, 2), stress_test(2, 2)],
        },
    ]
}

/// A budget that polls on every axis but can never trip on this workload.
fn generous() -> Budget {
    Budget::default()
        .with_max_candidates(1_000_000_000)
        .with_max_eval_steps(1_000_000_000_000)
        .with_time_limit(Duration::from_secs(24 * 3600))
}

enum Config {
    Ungoverned,
    Passive,
    Metered,
}

fn run_config(
    model: &BenchModel,
    tests: &[Test],
    pipe: &PipelineOptions,
    config: &Config,
    iters: usize,
) -> (f64, usize, Vec<TestResult>) {
    let native;
    let cat;
    let model: &dyn lkmm_exec::ConsistencyModel = match model {
        BenchModel::NativeLkmm => {
            native = Lkmm::new();
            &native
        }
        BenchModel::CatLkmm => {
            cat = lkmm_cat::linux_kernel_model();
            &cat
        }
    };
    let opts = match config {
        Config::Ungoverned | Config::Passive => EnumOptions::default(),
        Config::Metered => EnumOptions { budget: generous(), ..EnumOptions::default() },
    };
    let check = |t: &Test| -> TestResult {
        match config {
            Config::Ungoverned => {
                check_test_pipelined(model, t, &opts, pipe).expect("enumeration")
            }
            Config::Passive | Config::Metered => {
                match check_test_governed(model, t, &opts, pipe) {
                    CheckOutcome::Complete(r) => r,
                    CheckOutcome::Inconclusive { reason, .. } => {
                        panic!("generous budget went inconclusive: {reason}")
                    }
                }
            }
        }
    };
    // Warm-up pass (also captures the reference results).
    let results: Vec<TestResult> = tests.iter().map(check).collect();
    let candidates: usize = results.iter().map(|r| r.candidates).sum();
    let start = Instant::now();
    for _ in 0..iters {
        for t in tests {
            std::hint::black_box(check(t));
        }
    }
    let seconds = start.elapsed().as_secs_f64() / iters as f64;
    (seconds, candidates, results)
}

fn main() {
    let mut iters = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--help" | "-h" => {
                println!("usage: budget [--iters N]   (timed repetitions per config, default 5)");
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let pipe = PipelineOptions { jobs: 1, ..Default::default() };
    let configs: [(&str, Config); 3] = [
        ("ungoverned", Config::Ungoverned),
        ("passive", Config::Passive),
        ("metered", Config::Metered),
    ];

    println!("{:18} {:12} {:>10} {:>14} {:>10}", "workload", "config", "secs", "cands/sec", "overhead");
    let mut json_entries = String::new();
    for w in workloads() {
        // Alternate configs across rounds and keep each config's best
        // time: scheduler noise inflates individual rounds but never
        // deflates one, so minima compare the configs' true costs.
        const ROUNDS: usize = 5;
        let mut best: Vec<(f64, usize, Vec<TestResult>)> = Vec::new();
        for round in 0..ROUNDS {
            for (i, (_, config)) in configs.iter().enumerate() {
                let m = run_config(&w.model, &w.tests, &pipe, config, iters);
                if round == 0 {
                    best.push(m);
                } else if m.0 < best[i].0 {
                    best[i] = m;
                }
            }
        }
        let mut baseline_seconds = 0.0;
        let mut baseline_results: Vec<TestResult> = Vec::new();
        for ((name, config), (seconds, candidates, results)) in configs.iter().zip(best) {
            if matches!(config, Config::Ungoverned) {
                baseline_seconds = seconds;
                baseline_results = results;
            } else {
                assert_eq!(
                    results, baseline_results,
                    "{}: {name} results differ from ungoverned",
                    w.name
                );
            }
            let overhead_percent = (seconds / baseline_seconds - 1.0) * 100.0;
            let throughput = candidates as f64 / seconds;
            println!(
                "{:18} {:12} {:>10.4} {:>14.0} {:>9.2}%",
                w.name, name, seconds, throughput, overhead_percent
            );
            if !json_entries.is_empty() {
                json_entries.push_str(",\n");
            }
            write!(
                json_entries,
                "    {{\"workload\": \"{}\", \"config\": \"{name}\", \
                 \"seconds\": {seconds:.6}, \"candidates\": {candidates}, \
                 \"candidates_per_sec\": {throughput:.1}, \
                 \"overhead_percent\": {overhead_percent:.2}}}",
                w.name
            )
            .expect("write to string");
        }
    }

    let hw = effective_jobs(0);
    let json = format!(
        "{{\n  \"bench\": \"budget-overhead\",\n  \"model\": \"LKMM\",\n  \
         \"hardware_threads\": {hw},\n  \"iters\": {iters},\n  \
         \"acceptance\": \"metered overhead_percent <= 3.0 on each workload\",\n  \
         \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_BUDGET.json", &json).expect("write BENCH_BUDGET.json");
    println!("\nwrote BENCH_BUDGET.json");
}
