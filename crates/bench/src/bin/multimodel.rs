//! Single-enumeration multi-model checking vs N sequential passes.
//!
//! Dependency-free (no criterion): runs the seven-column conformance
//! corpus (library + generated cycles) through
//!
//! * `sequential` — seven dedicated `BatchChecker`s, one cold pass per
//!   column: every column enumerates every supported test itself;
//! * `multi` — one `MultiBatchChecker` over the same columns and masks:
//!   each test is enumerated **once** and every column's verdict is
//!   decided from that shared pass;
//!
//! asserts the two paths produce identical verdicts cell by cell,
//! asserts the enumeration reduction is at least 3x (the PR's
//! acceptance bar for a seven-column campaign), then writes
//! `BENCH_MULTIMODEL.json` in the working directory and prints a
//! summary table.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin multimodel [-- --iters N] [--max-cycle-len L]
//! ```

use lkmm_conformance::campaign::corpus;
use lkmm_conformance::{CampaignConfig, ModelId};
use lkmm_litmus::ast::Test;
use lkmm_service::{BatchChecker, MultiBatchChecker, MultiColumn, VerdictStore};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    config: &'static str,
    seconds: f64,
    enumeration_passes: usize,
    candidates_enumerated: usize,
}

fn main() {
    let mut iters = 3usize;
    let mut max_cycle_len = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--max-cycle-len" => {
                max_cycle_len = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-cycle-len needs a non-negative integer");
            }
            "--help" | "-h" => {
                println!(
                    "usage: multimodel [--iters N] [--max-cycle-len L]   \
                     (timed repetitions per config, default 3; cycle length, default 4)"
                );
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let cfg = CampaignConfig { max_cycle_len, ..CampaignConfig::default() };
    let entries = corpus(&cfg).expect("corpus generation");
    let tests: Vec<Test> = entries.iter().map(|e| e.test.clone()).collect();
    let models: Vec<_> = ModelId::ALL.iter().map(|id| id.instantiate()).collect();
    let mask: Vec<Vec<bool>> = ModelId::ALL
        .iter()
        .map(|id| tests.iter().map(|t| id.supports(t)).collect())
        .collect();
    let salts: Vec<String> =
        ModelId::ALL.iter().map(|id| format!("bench|col:{}", id.column())).collect();

    // Sequential: one cold dedicated pass per column over the tests that
    // column supports.
    let per_column: Vec<Vec<Test>> = mask
        .iter()
        .map(|row| {
            tests
                .iter()
                .zip(row)
                .filter(|(_, &on)| on)
                .map(|(t, _)| t.clone())
                .collect()
        })
        .collect();
    let mut seq_seconds = 0.0;
    let mut seq_candidates = 0usize;
    let mut seq_passes = 0usize;
    let mut seq_verdicts: Vec<Vec<_>> = Vec::new();
    for i in 0..iters {
        let start = Instant::now();
        let mut candidates = 0usize;
        let mut passes = 0usize;
        let mut verdicts = Vec::new();
        for (c, model) in models.iter().enumerate() {
            let mut checker =
                BatchChecker::new(model.as_ref(), VerdictStore::in_memory(), &salts[c])
                    .with_jobs(1);
            let report = checker.check_corpus(&per_column[c]).expect("sequential pass");
            assert_eq!(report.inconclusive, 0, "unbudgeted pass stopped early");
            candidates += report.candidates_enumerated;
            passes += report.computed;
            verdicts.push(
                report.outcomes.iter().map(|o| o.outcome.result().cloned()).collect::<Vec<_>>(),
            );
        }
        seq_seconds += start.elapsed().as_secs_f64();
        if i == 0 {
            seq_candidates = candidates;
            seq_passes = passes;
            seq_verdicts = verdicts;
        }
    }

    // Multi: one cold shared-enumeration pass over all seven columns.
    let mut multi_seconds = 0.0;
    let mut multi_candidates = 0usize;
    let mut multi_passes = 0usize;
    for i in 0..iters {
        let columns: Vec<MultiColumn<'_>> = models
            .iter()
            .zip(&salts)
            .map(|(m, salt)| MultiColumn { model: m.as_ref(), salt: salt.clone() })
            .collect();
        let mut checker =
            MultiBatchChecker::new(columns, VerdictStore::in_memory()).with_jobs(1);
        let start = Instant::now();
        let report = checker.check_corpus(&tests, &mask).expect("multi pass");
        multi_seconds += start.elapsed().as_secs_f64();
        if i == 0 {
            multi_candidates = report.candidates_actual;
            multi_passes = report.enumeration_passes;
            // Cell-by-cell identity with the sequential path.
            for (c, col) in report.columns.iter().enumerate() {
                let got: Vec<_> = col
                    .outcomes
                    .iter()
                    .flatten()
                    .map(|o| o.outcome.result().cloned())
                    .collect();
                assert_eq!(
                    got, seq_verdicts[c],
                    "column {} diverges from its dedicated pass",
                    salts[c]
                );
            }
        }
    }

    let reduction = seq_candidates as f64 / multi_candidates.max(1) as f64;
    assert!(
        reduction >= 3.0,
        "single-enumeration saving below the 3x bar: {seq_candidates} -> {multi_candidates} \
         ({reduction:.2}x)"
    );

    let measurements = [
        Measurement {
            config: "sequential",
            seconds: seq_seconds / iters as f64,
            enumeration_passes: seq_passes,
            candidates_enumerated: seq_candidates,
        },
        Measurement {
            config: "multi",
            seconds: multi_seconds / iters as f64,
            enumeration_passes: multi_passes,
            candidates_enumerated: multi_candidates,
        },
    ];

    println!(
        "{:12} {:>10} {:>8} {:>12} {:>10}",
        "config", "secs", "passes", "candidates", "reduction"
    );
    let mut json_entries = String::new();
    for m in &measurements {
        println!(
            "{:12} {:>10.5} {:>8} {:>12} {:>9.2}x",
            m.config,
            m.seconds,
            m.enumeration_passes,
            m.candidates_enumerated,
            seq_candidates as f64 / m.candidates_enumerated.max(1) as f64
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"config\": \"{}\", \"seconds\": {:.6}, \"enumeration_passes\": {}, \
             \"candidates_enumerated\": {}}}",
            m.config, m.seconds, m.enumeration_passes, m.candidates_enumerated
        )
        .expect("write to string");
    }
    let json = format!(
        "{{\n  \"bench\": \"multimodel-single-enumeration\",\n  \
         \"max_cycle_len\": {max_cycle_len},\n  \"iters\": {iters},\n  \
         \"columns\": {},\n  \"corpus_tests\": {},\n  \
         \"candidates_reduction\": {reduction:.3},\n  \"measurements\": [\n{json_entries}\n  ]\n}}\n",
        ModelId::ALL.len(),
        tests.len()
    );
    std::fs::write("BENCH_MULTIMODEL.json", &json).expect("write BENCH_MULTIMODEL.json");
    println!("\nwrote BENCH_MULTIMODEL.json");
}
