//! Multi-client verdict-server shard-scaling bench (the ISSUE 9 bar).
//!
//! Dependency-free (std::net only): generates a corpus of tiny,
//! pairwise-distinct litmus tests whose enumeration cost is small, so a
//! **durable** store (fsync per appended verdict) carries as much of
//! the round as the host allows. The corpus is then served three ways:
//!
//! * `sequential` — the plain single-threaded `--store` pipeline
//!   ([`BatchChecker`] over a [`VerdictStore`]); its key-ordered export
//!   is the reference byte string;
//! * `serve-1shard` — a TCP server with 4 workers and one durable
//!   store shard, driven by 4 concurrent clients: every append (and
//!   its fsync) serialises on the single shard lock;
//! * `serve-4shard` — the same server and clients over a 4-way
//!   [`ShardedStore`] family: appends spread across four independent
//!   logs, so up to four fsyncs are in flight at once.
//!
//! Two store-only legs (`store-1shard`/`store-4shard`: four writer
//! threads putting the same number of verdicts straight into a durable
//! [`ShardedStore`], no checking or TCP) isolate the storage layer:
//! their ratio is the host's ceiling on shard scaling, independent of
//! model-checking CPU cost.
//!
//! Every server round asserts that the merged family export is
//! byte-identical to the sequential reference, so the bench doubles as
//! the end-to-end equivalence check while timing. The headline number
//! is `scaling_1_to_4_shards` = t(1 shard) / t(4 shards) at 4 clients,
//! with a target of ≥ 2.5×.
//!
//! **Host sensitivity.** Shard scaling needs either spare cores (so
//! lock-free checking overlaps) or independent flush domains (so
//! fsyncs overlap). A single-CPU container whose shards share one
//! ext4 journal serialises both: concurrent fsyncs to *different*
//! files still funnel through one jbd2 commit pipeline, which batches
//! roughly 2× at 4 streams (the bench measures and records this as
//! `fsync_stream_scaling`). On such hosts the honest ceiling is ~2×
//! and the JSON reports `"met": false` with the measured ceiling
//! alongside; on a multi-core machine the same binary reports the
//! real scaling. Byte-identity and a shards-must-not-hurt sanity
//! floor are asserted unconditionally.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin serve \
//!     [-- --iters N] [--tests N] [--clients N]
//! ```

use lkmm::Lkmm;
use lkmm_exec::{TestResult, Verdict};
use lkmm_litmus::parse;
use lkmm_server::{serve_tcp, ServerConfig};
use lkmm_service::{BatchChecker, ShardedStore, VerdictStore};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Cache keys fold the salt in; both paths must agree on it.
const SALT: &str = "bench-serve";

/// The acceptance target; met where the host can overlap fsyncs.
const TARGET_SCALING: f64 = 2.5;

struct Measurement {
    config: &'static str,
    shards: usize,
    clients: usize,
    seconds: f64,
    tests: usize,
}

/// One tiny single-thread test. The store key hashes the *canonical*
/// form (names are alpha-renamed away), so distinctness comes from the
/// written value, not the test name.
fn source(i: usize) -> String {
    let v = i + 1;
    format!(
        "C BW{i:04}\n{{ x=0; }}\nP0(int *x)\n{{\n    int r0;\n    \
         WRITE_ONCE(*x, {v});\n    r0 = READ_ONCE(*x);\n}}\nexists (0:r0={v})\n"
    )
}

fn temp_base(tag: &str) -> PathBuf {
    let base = std::env::temp_dir().join(format!("lkmm-bench-serve-{tag}-{}", std::process::id()));
    cleanup(&base);
    base
}

fn cleanup(base: &Path) {
    for n in 1..=8 {
        for path in ShardedStore::shard_paths(base, n) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// The sequential `--store` pipeline over the corpus: reference bytes
/// (key-ordered export) plus its wall-clock time.
fn sequential(sources: &[String]) -> (Vec<u8>, f64) {
    let tests: Vec<_> = sources.iter().map(|s| parse(s).expect("bench corpus parses")).collect();
    let base = temp_base("seq");
    let model = Lkmm::new();
    let start = Instant::now();
    let mut checker = BatchChecker::new(&model, VerdictStore::open(&base).unwrap(), SALT);
    let report = checker.check_corpus(&tests).expect("sequential pass runs");
    checker.flush().expect("sequential flush");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(report.computed, sources.len(), "bench corpus has a key collision");
    drop(checker);
    let out = temp_base("seq-export");
    VerdictStore::export(&base, &out).unwrap();
    let bytes = std::fs::read(&out).unwrap();
    cleanup(&base);
    cleanup(&out);
    (bytes, seconds)
}

/// One client connection: the whole partition as a single batch.
fn batch_client(addr: SocketAddr, sources: &[&String]) -> String {
    let quoted: Vec<String> =
        sources.iter().map(|s| format!("\"{}\"", s.replace('\n', "\\n"))).collect();
    let req = format!("{{\"op\":\"batch\",\"sources\":[{}]}}", quoted.join(","));
    let mut stream = TcpStream::connect(addr).unwrap();
    writeln!(stream, "{req}").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut lines = BufReader::new(stream).lines().map_while(Result::ok);
    let response = lines.next().expect("batch response");
    assert!(lines.next().is_none(), "one batch, one response");
    response
}

fn shutdown_server(addr: SocketAddr) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let _ = writeln!(stream, "{}", r#"{"op":"shutdown"}"#);
    let _ = stream.shutdown(Shutdown::Write);
    let _ = BufReader::new(stream).lines().map_while(Result::ok).count();
}

/// One timed server round: fresh durable family, `clients` concurrent
/// connections splitting the corpus round-robin, export checked against
/// the sequential reference.
fn server_round(sources: &[String], shards: usize, clients: usize, want: &[u8]) -> f64 {
    let base = temp_base(&format!("round-{shards}"));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let base = base.clone();
        thread::spawn(move || {
            // The store lives inside the server thread so its locks are
            // released by the time `join` returns.
            let store = Arc::new(ShardedStore::open(&base, shards).unwrap().durable(true));
            let config = ServerConfig { workers: 4, ..ServerConfig::default() };
            serve_tcp(listener, &|| Box::new(Lkmm::new()), SALT, store, &config).unwrap()
        })
    };
    let mut parts: Vec<Vec<&String>> = vec![Vec::new(); clients];
    for (i, s) in sources.iter().enumerate() {
        parts[i % clients].push(s);
    }
    let start = Instant::now();
    thread::scope(|scope| {
        let handles: Vec<_> =
            parts.iter().map(|part| scope.spawn(move || batch_client(addr, part))).collect();
        for (i, h) in handles.into_iter().enumerate() {
            let response = h.join().unwrap();
            assert!(response.contains("\"ok\":true"), "client {i}: {response}");
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    shutdown_server(addr);
    let summary = server.join().unwrap();
    assert_eq!(summary.over_quota, 0, "bench clients tripped the quota");
    let out = temp_base(&format!("round-{shards}-export"));
    ShardedStore::export_merged(&base, &out).unwrap();
    assert_eq!(
        std::fs::read(&out).unwrap(),
        want,
        "{shards}-shard serve path diverged from the sequential store"
    );
    cleanup(&base);
    cleanup(&out);
    seconds
}

/// Storage layer in isolation: `writers` threads putting `n` distinct
/// verdicts straight into a fresh durable family. No checking, no TCP —
/// the 1-vs-4-shard ratio here is the host's shard-scaling ceiling.
fn store_round(n: usize, shards: usize, writers: usize) -> f64 {
    let base = temp_base(&format!("storeonly-{shards}"));
    let store = ShardedStore::open(&base, shards).unwrap().durable(true);
    let start = Instant::now();
    thread::scope(|scope| {
        for t in 0..writers {
            let store = &store;
            scope.spawn(move || {
                for i in 0..n / writers {
                    let seed = (t * n + i) as u64;
                    let key = splitmix(seed) as u128 | ((splitmix(seed ^ 0x5bd1e995) as u128) << 64);
                    store
                        .put(
                            key,
                            TestResult {
                                verdict: Verdict::Allowed,
                                condition_holds: true,
                                candidates: i,
                                allowed: 1,
                                witnesses: 1,
                            },
                        )
                        .unwrap();
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    cleanup(&base);
    seconds
}

/// Raw fsync-stream batching on this host: aggregate put rate of `k`
/// independent single-shard stores, each fed by its own writer. Records
/// how far concurrent flush streams get past one stream at all — the
/// physical input to any shard-scaling number.
fn fsync_stream_rate(streams: usize, per_stream: usize) -> f64 {
    let bases: Vec<PathBuf> =
        (0..streams).map(|t| temp_base(&format!("stream-{streams}-{t}"))).collect();
    let start = Instant::now();
    thread::scope(|scope| {
        for (t, base) in bases.iter().enumerate() {
            scope.spawn(move || {
                let store = ShardedStore::open(base, 1).unwrap().durable(true);
                for i in 0..per_stream {
                    let seed = (t * per_stream + i) as u64;
                    let key = splitmix(seed) as u128 | ((splitmix(seed ^ 0xc2b2ae35) as u128) << 64);
                    store
                        .put(
                            key,
                            TestResult {
                                verdict: Verdict::Forbidden,
                                condition_holds: false,
                                candidates: i,
                                allowed: 0,
                                witnesses: 0,
                            },
                        )
                        .unwrap();
                }
            });
        }
    });
    let rate = (streams * per_stream) as f64 / start.elapsed().as_secs_f64();
    for base in &bases {
        cleanup(base);
    }
    rate
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn main() {
    let mut iters = 3usize;
    let mut tests = 512usize;
    let mut clients = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut count = |flag: &str| {
            args.next()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or_else(|| panic!("{flag} wants a positive integer"))
        };
        match arg.as_str() {
            "--iters" => iters = count("--iters"),
            "--tests" => tests = count("--tests"),
            "--clients" => clients = count("--clients"),
            "--help" | "-h" => {
                println!(
                    "usage: serve [--iters N] [--tests N] [--clients N]   \
                     (timed repetitions, default 3; corpus size, default 512; \
                     concurrent clients, default 4)"
                );
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let cpus = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sources: Vec<String> = (0..tests).map(source).collect();
    let (want, seq_seconds) = sequential(&sources);

    // Best-of-N per configuration: fsync latency is at the mercy of the
    // host's journal, and scaling is a statement about floors.
    let mut serve_secs = Vec::new();
    let mut store_secs = Vec::new();
    for &shards in &[1usize, 4] {
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            best = best.min(server_round(&sources, shards, clients, &want));
        }
        serve_secs.push(best);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            best = best.min(store_round(tests, shards, clients));
        }
        store_secs.push(best);
    }
    let scaling = serve_secs[0] / serve_secs[1];
    let store_scaling = store_secs[0] / store_secs[1];

    // The host's flush-domain physics, for the record: how concurrent
    // fsync streams batch past a single stream.
    let stream_counts = [1usize, 2, 4];
    let stream_rates: Vec<f64> =
        stream_counts.iter().map(|&k| fsync_stream_rate(k, 128)).collect();

    let measurements = [
        Measurement { config: "sequential", shards: 0, clients: 1, seconds: seq_seconds, tests },
        Measurement { config: "serve-1shard", shards: 1, clients, seconds: serve_secs[0], tests },
        Measurement { config: "serve-4shard", shards: 4, clients, seconds: serve_secs[1], tests },
        Measurement { config: "store-1shard", shards: 1, clients, seconds: store_secs[0], tests },
        Measurement { config: "store-4shard", shards: 4, clients, seconds: store_secs[1], tests },
    ];

    println!(
        "{:14} {:>7} {:>8} {:>10} {:>12} {:>9}",
        "config", "shards", "clients", "secs", "tests/sec", "scaling"
    );
    let mut json_entries = String::new();
    for m in &measurements {
        let throughput = m.tests as f64 / m.seconds;
        let vs_1shard = match m.config {
            "serve-4shard" => scaling,
            "store-4shard" => store_scaling,
            _ => 1.0,
        };
        println!(
            "{:14} {:>7} {:>8} {:>10.5} {:>12.0} {:>8.2}x",
            m.config, m.shards, m.clients, m.seconds, throughput, vs_1shard
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"config\": \"{}\", \"shards\": {}, \"clients\": {}, \
             \"seconds\": {:.6}, \"tests\": {}, \"tests_per_sec\": {:.1}, \
             \"scaling_vs_1shard\": {:.3}}}",
            m.config, m.shards, m.clients, m.seconds, m.tests, throughput, vs_1shard
        )
        .expect("write to string");
    }

    let mut streams_json = String::new();
    for (k, rate) in stream_counts.iter().zip(&stream_rates) {
        if !streams_json.is_empty() {
            streams_json.push_str(", ");
        }
        write!(
            streams_json,
            "{{\"streams\": {k}, \"puts_per_sec\": {rate:.0}, \"vs_1_stream\": {:.3}}}",
            rate / stream_rates[0]
        )
        .expect("write to string");
    }

    // Sharding must never cost throughput (beyond timing noise: on a
    // 1-CPU host with a small corpus, compute dominates and the true
    // ratio is ~1.0); byte-identity was asserted inside every round.
    // The 2.5× target additionally needs the host to overlap work
    // across shards (cores, or flush domains that don't share a
    // journal) — report honestly either way.
    assert!(
        scaling >= 0.90,
        "sharding lost throughput: {scaling:.2}x (1 shard {:.4}s, 4 shards {:.4}s)",
        serve_secs[0],
        serve_secs[1]
    );
    let met = scaling >= TARGET_SCALING;
    let fsync_ceiling = stream_rates[2] / stream_rates[0];
    if !met {
        println!(
            "\nNOTE: target {TARGET_SCALING}x not reachable on this host \
             ({cpus} CPU(s); 4 concurrent fsync streams aggregate only \
             {fsync_ceiling:.2}x over 1 — shared journal). Measured: end-to-end \
             {scaling:.2}x, store-only {store_scaling:.2}x."
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"tests\": {tests},\n  \"clients\": {clients},\n  \
         \"workers\": 4,\n  \"iters\": {iters},\n  \"durable\": true,\n  \
         \"byte_identical_to_sequential\": true,\n  \
         \"scaling_1_to_4_shards\": {scaling:.3},\n  \
         \"store_scaling_1_to_4_shards\": {store_scaling:.3},\n  \
         \"bar\": {{\"target_scaling\": {TARGET_SCALING}, \"met\": {met}, \
         \"host_cpus\": {cpus}, \
         \"host_fsync_stream_scaling_at_4\": {fsync_ceiling:.3}}},\n  \
         \"fsync_stream_scaling\": [{streams_json}],\n  \
         \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_SERVE.json", &json).expect("write BENCH_SERVE.json");
    println!("\nwrote BENCH_SERVE.json");
}
