//! Cold-vs-warm throughput micro-bench for the algorithm-family tier.
//!
//! Dependency-free (no criterion): times a full `conformance
//! --algorithms` campaign — every family expanded at the configured
//! size, all seven axiomatic columns, family safety, and the exhaustive
//! interleave-agreement pass — in two configurations:
//!
//! * `cold` — a fresh on-disk verdict store: every matrix cell is
//!   enumerated, checked, and persisted;
//! * `warm` — the same store reopened: every cell replays from cache,
//!   so the remaining time is family expansion, oracle evaluation, and
//!   the interleaving exploration (which is deterministic recomputation
//!   by design — machine reachability is never cached).
//!
//! The simulator and host passes are disabled while timing (neither is
//! cached, and host runs schedule real threads, so both would blur the
//! cold/warm comparison). Both passes are asserted discrepancy-free and
//! report-identical, and the warm pass is asserted to enumerate zero
//! candidates, so a bench run doubles as an algorithm-tier conformance
//! check. Writes `BENCH_ALGOS.json` in the working directory.
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin algorithms \
//!     [-- --iters N] [--threads T] [--sections S] [--retries R]
//! ```

use lkmm_algorithms::FamilyParams;
use lkmm_conformance::{algo_json_report, run_algo_campaign, AlgoConfig, AlgoReport, SimConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Measurement {
    config: &'static str,
    seconds: f64,
    programs: usize,
    cells: usize,
    candidates_enumerated: usize,
    hits: usize,
}

fn algo_config(params: FamilyParams, store_path: &Path) -> AlgoConfig {
    AlgoConfig {
        params,
        store_path: Some(store_path.to_path_buf()),
        sim: SimConfig { iterations: 0, ..SimConfig::default() },
        host_iterations: 0,
        ..AlgoConfig::default()
    }
}

fn pass_stats(report: &AlgoReport) -> (usize, usize, usize) {
    let cells = report.models.iter().map(|m| m.pass.checked).sum();
    let enumerated = report.models.iter().map(|m| m.pass.candidates_enumerated).sum();
    let hits = report.models.iter().map(|m| m.pass.hits).sum();
    (cells, enumerated, hits)
}

/// Cells answered without touching the store: duplicates of another
/// program with the same canonical form.
fn deduped(report: &AlgoReport) -> usize {
    report.models.iter().map(|m| m.pass.deduped).sum()
}

fn main() {
    let mut iters = 3usize;
    let mut params = FamilyParams::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut count = |flag: &str| {
            args.next()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or_else(|| panic!("{flag} needs a positive integer"))
        };
        match a.as_str() {
            "--iters" => iters = count("--iters"),
            "--threads" => params.threads = count("--threads"),
            "--sections" => params.sections = count("--sections"),
            "--retries" => params.retries = count("--retries"),
            "--help" | "-h" => {
                println!(
                    "usage: algorithms [--iters N] [--threads T] [--sections S] [--retries R]   \
                     (timed repetitions per config, default 3; family size, default 2/1/1)"
                );
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let store_path: PathBuf =
        std::env::temp_dir().join(format!("lkmm-bench-algorithms-{}.bin", std::process::id()));
    let cfg = algo_config(params, &store_path);

    // Cold: fresh store each iteration (full enumeration + write path).
    let mut cold_seconds = 0.0;
    let mut cold_json = String::new();
    let mut cold_stats = (0usize, 0usize, 0usize);
    let mut programs = 0usize;
    let mut families = String::new();
    for i in 0..iters {
        let _ = std::fs::remove_file(&store_path);
        let start = Instant::now();
        let report = run_algo_campaign(&cfg).expect("cold campaign runs");
        cold_seconds += start.elapsed().as_secs_f64();
        assert!(report.clean(), "cold campaign found discrepancies");
        let (cells, enumerated, hits) = pass_stats(&report);
        assert_eq!(hits, 0, "cold pass hit a fresh store");
        assert!(enumerated > 0, "cold pass enumerated nothing");
        if i == 0 {
            cold_json = algo_json_report(&report, &cfg).to_string();
            cold_stats = (cells, enumerated, hits);
            programs = report.programs();
            for f in &report.families {
                if !families.is_empty() {
                    families.push_str(",\n");
                }
                write!(
                    families,
                    "    {{\"family\": \"{}\", \"programs\": {}, \"interleave_checked\": {}}}",
                    f.family.name(),
                    f.programs,
                    f.interleave.checked
                )
                .expect("write to string");
            }
        }
    }

    // Warm: reopen the populated store each iteration (matrix replay;
    // the interleave pass recomputes by design).
    let mut warm_seconds = 0.0;
    let mut warm_stats = (0usize, 0usize, 0usize);
    for _ in 0..iters {
        let start = Instant::now();
        let report = run_algo_campaign(&cfg).expect("warm campaign runs");
        warm_seconds += start.elapsed().as_secs_f64();
        assert!(report.clean(), "warm campaign found discrepancies");
        let (cells, enumerated, hits) = pass_stats(&report);
        assert_eq!(enumerated, 0, "warm pass enumerated candidates");
        assert_eq!(hits + deduped(&report), cells, "warm pass missed the store somewhere");
        let warm_json = algo_json_report(&report, &cfg).to_string();
        assert_eq!(warm_json, cold_json, "warm report differs from cold");
        warm_stats = (cells, enumerated, hits);
    }
    let _ = std::fs::remove_file(&store_path);

    let measurements = [
        Measurement {
            config: "cold",
            seconds: cold_seconds / iters as f64,
            programs,
            cells: cold_stats.0,
            candidates_enumerated: cold_stats.1,
            hits: cold_stats.2,
        },
        Measurement {
            config: "warm",
            seconds: warm_seconds / iters as f64,
            programs,
            cells: warm_stats.0,
            candidates_enumerated: warm_stats.1,
            hits: warm_stats.2,
        },
    ];

    println!(
        "{:8} {:>10} {:>12} {:>8} {:>9} {:>7} {:>9}",
        "config", "secs", "progs/sec", "cells", "cands", "hits", "speedup"
    );
    let mut json_entries = String::new();
    for m in &measurements {
        let speedup = measurements[0].seconds / m.seconds;
        let throughput = m.programs as f64 / m.seconds;
        println!(
            "{:8} {:>10.5} {:>12.0} {:>8} {:>9} {:>7} {:>8.2}x",
            m.config, m.seconds, throughput, m.cells, m.candidates_enumerated, m.hits, speedup
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"config\": \"{}\", \"seconds\": {:.6}, \"programs\": {}, \
             \"programs_per_sec\": {:.1}, \"matrix_cells\": {}, \"candidates_enumerated\": {}, \
             \"hits\": {}, \"speedup_vs_cold\": {:.3}}}",
            m.config,
            m.seconds,
            m.programs,
            throughput,
            m.cells,
            m.candidates_enumerated,
            m.hits,
            speedup
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"algorithm-families\",\n  \"threads\": {},\n  \"sections\": {},\n  \
         \"retries\": {},\n  \"iters\": {iters},\n  \"families\": [\n{families}\n  ],\n  \
         \"measurements\": [\n{json_entries}\n  ]\n}}\n",
        params.threads, params.sections, params.retries
    );
    std::fs::write("BENCH_ALGOS.json", &json).expect("write BENCH_ALGOS.json");
    println!("\nwrote BENCH_ALGOS.json");
}
