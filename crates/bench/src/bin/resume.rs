//! Checkpoint/resume overhead micro-bench for the conformance driver.
//!
//! Dependency-free (no criterion): times the crash-recovery story the
//! resilience layer promises —
//!
//! * `cold` — a full campaign from nothing: fresh verdict store, fresh
//!   checkpoint file, every matrix cell enumerated;
//! * `resume` — the same campaign suspended at ~90% completion (the
//!   deterministic `stop_after` suspend), then resumed: the completed
//!   prefix restores from the checkpoint's aggregates (no generation,
//!   no store replay) while only the tail is computed;
//!
//! then writes `BENCH_RESUME.json` in the working directory and prints
//! a summary table. The suspended leg is setup, not measurement: only
//! the resumed invocation is timed. The run doubles as a correctness
//! check — the resumed report must be byte-identical to the cold one,
//! and the resume must cost at most 15% of a cold campaign (the whole
//! point of checkpointing is that a crash near the end is cheap).
//!
//! ```text
//! cargo run --release -p lkmm-bench --bin resume [-- --iters N] [--max-cycle-len L]
//! ```

use lkmm_conformance::{
    corpus_stream, json_report, run_campaign, CampaignConfig, CampaignError, ResilienceConfig,
    SimConfig,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Measurement {
    config: &'static str,
    seconds: f64,
    tests: usize,
    hits: usize,
    candidates_enumerated: usize,
}

fn campaign_config(max_cycle_len: usize, store: &Path, ckpt: &Path) -> CampaignConfig {
    CampaignConfig {
        max_cycle_len,
        store_path: Some(store.to_path_buf()),
        sim: SimConfig { iterations: 0, ..SimConfig::default() },
        resilience: ResilienceConfig {
            checkpoint: Some(ckpt.to_path_buf()),
            checkpoint_every: 8,
            ..ResilienceConfig::default()
        },
        ..CampaignConfig::default()
    }
}

fn main() {
    let mut iters = 3usize;
    let mut max_cycle_len = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--max-cycle-len" => {
                max_cycle_len = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-cycle-len needs a non-negative integer");
            }
            "--help" | "-h" => {
                println!(
                    "usage: resume [--iters N] [--max-cycle-len L]   \
                     (timed repetitions per config, default 3; cycle length, default 4)"
                );
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let cold_store: PathBuf = tmp.join(format!("lkmm-bench-resume-cold-{pid}.bin"));
    let cold_ckpt: PathBuf = tmp.join(format!("lkmm-bench-resume-cold-{pid}.ck"));
    let part_store: PathBuf = tmp.join(format!("lkmm-bench-resume-part-{pid}.bin"));
    let part_ckpt: PathBuf = tmp.join(format!("lkmm-bench-resume-part-{pid}.ck"));

    let cold_cfg = campaign_config(max_cycle_len, &cold_store, &cold_ckpt);
    let total = corpus_stream(&cold_cfg).total();
    let suspend_at = (total * 9) / 10;
    assert!(suspend_at > 0 && suspend_at < total, "corpus too small to suspend at 90%");

    // Cold: everything from nothing, checkpointing all the way.
    let mut cold_seconds = 0.0;
    let mut cold_json = String::new();
    let mut cold_hits = 0usize;
    let mut cold_enumerated = 0usize;
    for i in 0..iters {
        let _ = std::fs::remove_file(&cold_store);
        let _ = std::fs::remove_file(&cold_ckpt);
        let start = Instant::now();
        let report = run_campaign(&cold_cfg).expect("cold campaign runs");
        cold_seconds += start.elapsed().as_secs_f64();
        assert!(report.clean(), "cold campaign found discrepancies");
        assert!(!report.degraded(), "cold campaign quarantined units");
        if i == 0 {
            cold_json = json_report(&report, &cold_cfg).to_string();
            cold_hits = report.models.iter().map(|m| m.pass.hits).sum();
            cold_enumerated =
                report.models.iter().map(|m| m.pass.candidates_enumerated).sum();
        }
    }

    // Resume: suspend at ~90% (setup, untimed), then time the resumed
    // invocation that replays the prefix and computes the tail.
    let mut resume_seconds = 0.0;
    let mut resume_hits = 0usize;
    let mut resume_enumerated = 0usize;
    for _ in 0..iters {
        let _ = std::fs::remove_file(&part_store);
        let _ = std::fs::remove_file(&part_ckpt);
        let mut suspend_cfg = campaign_config(max_cycle_len, &part_store, &part_ckpt);
        suspend_cfg.resilience.stop_after = Some(suspend_at);
        match run_campaign(&suspend_cfg) {
            Err(CampaignError::Suspended { cursor, .. }) => assert_eq!(cursor, suspend_at),
            other => panic!("expected suspension, got {other:?}"),
        }

        let mut resume_cfg = campaign_config(max_cycle_len, &part_store, &part_ckpt);
        resume_cfg.resilience.resume = true;
        let start = Instant::now();
        let report = run_campaign(&resume_cfg).expect("resumed campaign runs");
        resume_seconds += start.elapsed().as_secs_f64();
        assert_eq!(report.resumed_at, Some(suspend_at), "resume missed the checkpoint");
        let resume_json = json_report(&report, &resume_cfg).to_string();
        assert_eq!(resume_json, cold_json, "resumed report differs from cold");
        resume_hits = report.models.iter().map(|m| m.pass.hits).sum();
        resume_enumerated =
            report.models.iter().map(|m| m.pass.candidates_enumerated).sum();
        assert!(resume_enumerated > 0, "the tail must compute fresh");
        assert!(
            resume_enumerated < cold_enumerated / 2,
            "resume re-enumerated most of the corpus ({resume_enumerated} of {cold_enumerated})"
        );
    }
    for p in [&cold_store, &cold_ckpt, &part_store, &part_ckpt] {
        let _ = std::fs::remove_file(p);
    }

    let cold_avg = cold_seconds / iters as f64;
    let resume_avg = resume_seconds / iters as f64;
    let ratio = resume_avg / cold_avg;
    assert!(
        ratio <= 0.15,
        "resume at {:.0}% completion cost {:.1}% of a cold campaign (budget: 15%)",
        100.0 * suspend_at as f64 / total as f64,
        100.0 * ratio
    );

    let measurements = [
        Measurement {
            config: "cold",
            seconds: cold_avg,
            tests: total,
            hits: cold_hits,
            candidates_enumerated: cold_enumerated,
        },
        Measurement {
            config: "resume",
            seconds: resume_avg,
            tests: total,
            hits: resume_hits,
            candidates_enumerated: resume_enumerated,
        },
    ];

    println!(
        "{:8} {:>10} {:>8} {:>8} {:>9} {:>13}",
        "config", "secs", "tests", "hits", "cands", "frac-of-cold"
    );
    let mut json_entries = String::new();
    for m in &measurements {
        let frac = m.seconds / cold_avg;
        println!(
            "{:8} {:>10.5} {:>8} {:>8} {:>9} {:>12.1}%",
            m.config, m.seconds, m.tests, m.hits, m.candidates_enumerated, 100.0 * frac
        );
        if !json_entries.is_empty() {
            json_entries.push_str(",\n");
        }
        write!(
            json_entries,
            "    {{\"config\": \"{}\", \"seconds\": {:.6}, \"tests\": {}, \"hits\": {}, \
             \"candidates_enumerated\": {}, \"fraction_of_cold\": {:.4}}}",
            m.config, m.seconds, m.tests, m.hits, m.candidates_enumerated, frac
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"conformance-resume\",\n  \"max_cycle_len\": {max_cycle_len},\n  \
         \"iters\": {iters},\n  \"corpus_total\": {total},\n  \"suspended_at\": {suspend_at},\n  \
         \"resume_budget_fraction\": 0.15,\n  \"measurements\": [\n{json_entries}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_RESUME.json", &json).expect("write BENCH_RESUME.json");
    println!("\nwrote BENCH_RESUME.json");
}
