//! RCU benchmarks: the axiom vs the fundamental law (Theorem 1), the
//! Figure 15 implementation expansion (Theorem 2, Figure 16), the
//! single-phase ablation, and the runtime urcu's grace-period cost.

use criterion::{criterion_group, criterion_main, Criterion};
use lkmm::Lkmm;
use lkmm_exec::enumerate::{enumerate, EnumOptions};
use lkmm_exec::{check_test, Verdict};
use lkmm_litmus::library;
use lkmm_rcu::impl_verify::ExpandOptions;
use lkmm_rcu::{check_equivalence, expand_rcu, satisfies_fundamental_law, Urcu};
use std::hint::black_box;

fn bench_axiom_vs_law(c: &mut Criterion) {
    let test = library::by_name("RCU-MP").unwrap().test();
    let execs = enumerate(&test, &EnumOptions::default()).unwrap();
    let mut group = c.benchmark_group("rcu/theorem1");
    group.bench_function("axiom-side", |b| {
        b.iter(|| {
            for x in &execs {
                let r = lkmm::LkmmRelations::compute(x);
                black_box(r.pb.is_acyclic() && r.rcu_path.is_irreflexive());
            }
        })
    });
    group.bench_function("law-side", |b| {
        b.iter(|| {
            for x in &execs {
                black_box(satisfies_fundamental_law(x).holds());
            }
        })
    });
    group.bench_function("equivalence", |b| {
        b.iter(|| {
            for x in &execs {
                assert!(check_equivalence(x).agree());
            }
        })
    });
    group.finish();
}

fn bench_theorem2_expansion(c: &mut Criterion) {
    let lkmm = Lkmm::new();
    let mut group = c.benchmark_group("rcu/theorem2");
    group.sample_size(10);
    for name in ["RCU-MP", "RCU-deferred-free"] {
        let test = library::by_name(name).unwrap().test();
        let expanded = expand_rcu(&test, &ExpandOptions::default()).unwrap();
        group.bench_function(format!("figure15-{name}"), |b| {
            b.iter(|| {
                let r = check_test(&lkmm, &expanded, &EnumOptions::default()).unwrap();
                assert_eq!(r.verdict, Verdict::Forbidden);
                black_box(r.candidates)
            })
        });
    }
    // Ablation: a single update_counter_and_wait phase. The verdict is
    // *reported*, not asserted — the point of the two-phase design.
    let test = library::by_name("RCU-MP").unwrap().test();
    let one_phase = expand_rcu(&test, &ExpandOptions { phases: 1 }).unwrap();
    group.bench_function("figure15-RCU-MP-1phase-ablation", |b| {
        b.iter(|| {
            let r = check_test(&lkmm, &one_phase, &EnumOptions::default()).unwrap();
            black_box(r.verdict)
        })
    });
    group.finish();
}

fn bench_runtime_urcu(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcu/runtime");
    group.bench_function("read-lock-unlock", |b| {
        let rcu = Urcu::new(1);
        b.iter(|| {
            rcu.read_lock(0);
            rcu.read_unlock(0);
        })
    });
    group.bench_function("uncontended-grace-period", |b| {
        let rcu = Urcu::new(4);
        b.iter(|| rcu.synchronize_rcu())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_axiom_vs_law, bench_theorem2_expansion, bench_runtime_urcu
}
criterion_main!(benches);
