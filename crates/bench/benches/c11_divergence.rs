//! §5.2: quantify the LKMM/C11 divergence. Re-checks the four diverging
//! tests (Figures 4, 7, 13, 14) against both models per iteration and
//! asserts the paper's verdicts.

use criterion::{criterion_group, criterion_main, Criterion};
use lkmm::Lkmm;
use lkmm_bench::check_expect;
use lkmm_litmus::library;
use lkmm_models::OriginalC11;
use std::hint::black_box;

fn bench_divergence(c: &mut Criterion) {
    let lkmm = Lkmm::new();
    let c11 = OriginalC11;
    // §5.2's four Table 5 divergences plus the extended library's two
    // (dependency ordering and A-cumulativity).
    let diverging: Vec<_> = library::all()
        .iter()
        .filter(|pt| pt.c11.is_some() && pt.c11 != Some(pt.lkmm))
        .collect();
    assert_eq!(diverging.len(), 6, "expected the six LKMM/C11 divergences");
    let mut group = c.benchmark_group("c11-divergence");
    for pt in diverging {
        group.bench_function(pt.name, |b| {
            b.iter(|| {
                black_box(check_expect(&lkmm, pt, pt.lkmm));
                black_box(check_expect(&c11, pt, pt.c11.unwrap()));
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_divergence
}
criterion_main!(benches);
