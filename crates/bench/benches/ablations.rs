//! Ablations of the design decisions DESIGN.md stars:
//!
//! * enumeration with vs without Scpv pruning;
//! * bitset transitive closure vs a naive pair-set closure;
//! * the native LKMM vs the interpreted cat LKMM.

use criterion::{criterion_group, criterion_main, Criterion};
use lkmm::Lkmm;
use lkmm_cat::linux_kernel_model;
use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
use lkmm_exec::ConsistencyModel;
use lkmm_litmus::library;
use lkmm_relation::Relation;
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/scpv-pruning");
    let test = library::by_name("PeterZ").unwrap().test();
    for (label, prune) in [("pruned", true), ("raw", false)] {
        let opts = EnumOptions { prune_scpv: prune, ..Default::default() };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut n = 0usize;
                for_each_execution(&test, &opts, &mut |_| n += 1).unwrap();
                black_box(n)
            })
        });
    }
    group.finish();
}

/// Naive transitive closure over a pair set, as the baseline the bitset
/// representation is measured against.
fn naive_closure(pairs: &BTreeSet<(usize, usize)>) -> BTreeSet<(usize, usize)> {
    let mut out = pairs.clone();
    loop {
        let mut added = Vec::new();
        for &(a, b) in &out {
            for &(c, d) in &out {
                if b == c && !out.contains(&(a, d)) {
                    added.push((a, d));
                }
            }
        }
        if added.is_empty() {
            return out;
        }
        out.extend(added);
    }
}

fn bench_relation_repr(c: &mut Criterion) {
    // A 24-event chain + random extra edges.
    let n = 24;
    let mut pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    pairs.extend((0..n).step_by(3).map(|i| (i, (i * 7 + 5) % n)));
    let rel = Relation::from_pairs(n, pairs.iter().copied());
    let set: BTreeSet<(usize, usize)> = pairs.iter().copied().collect();

    let mut group = c.benchmark_group("ablation/relation-repr");
    group.bench_function("bitset-closure", |b| {
        b.iter(|| black_box(rel.transitive_closure().len()))
    });
    group.bench_function("pairset-closure", |b| {
        b.iter(|| black_box(naive_closure(&set).len()))
    });
    // Sanity: identical results.
    assert_eq!(
        rel.transitive_closure().iter().collect::<BTreeSet<_>>(),
        naive_closure(&set)
    );
    group.finish();
}

fn bench_native_vs_cat(c: &mut Criterion) {
    let native = Lkmm::new();
    let cat = linux_kernel_model();
    let opts = EnumOptions::default();
    let mut group = c.benchmark_group("ablation/native-vs-cat");
    group.sample_size(10);
    for (label, model) in
        [("native", &native as &dyn ConsistencyModel), ("cat", &cat as &dyn ConsistencyModel)]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut allowed = 0usize;
                for pt in library::table5() {
                    for_each_execution(&pt.test(), &opts, &mut |x| {
                        if model.allows(x) {
                            allowed += 1;
                        }
                    })
                    .unwrap();
                }
                black_box(allowed)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pruning, bench_relation_repr, bench_native_vs_cat
}
criterion_main!(benches);
