//! Table 5: the central evaluation artefact.
//!
//! Benchmarks (and asserts) the full Table 5 pipeline: the LKMM verdict
//! of every row, the C11 verdict of every non-RCU row, and the
//! Monte-Carlo hardware-simulator columns. `examples/table5.rs` prints
//! the table itself; this target measures how fast it regenerates and
//! re-asserts every verdict on each iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use lkmm::Lkmm;
use lkmm_bench::check_expect;
use lkmm_litmus::library;
use lkmm_models::OriginalC11;
use lkmm_sim::{run_test, Arch, RunConfig};
use std::hint::black_box;

fn bench_model_column(c: &mut Criterion) {
    let lkmm = Lkmm::new();
    c.bench_function("table5/model-column", |b| {
        b.iter(|| {
            for pt in library::table5() {
                black_box(check_expect(&lkmm, pt, pt.lkmm));
            }
        })
    });
}

fn bench_c11_column(c: &mut Criterion) {
    let c11 = OriginalC11;
    c.bench_function("table5/c11-column", |b| {
        b.iter(|| {
            for pt in library::table5() {
                if let Some(expect) = pt.c11 {
                    black_box(check_expect(&c11, pt, expect));
                }
            }
        })
    });
}

fn bench_hardware_columns(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5/hardware");
    group.sample_size(10);
    for arch in Arch::ALL {
        group.bench_function(arch.name(), |b| {
            b.iter(|| {
                for pt in library::table5() {
                    let test = pt.test();
                    let stats = run_test(
                        &test,
                        arch,
                        &RunConfig { iterations: 200, seed: 0xA5F0 },
                    )
                    .unwrap();
                    black_box(stats.observed);
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_model_column, bench_c11_column, bench_hardware_columns
}
criterion_main!(benches);
