//! The §5 "vast library" sweep: generate critical cycles, check the LKMM
//! verdict of each, and validate simulator soundness on a sample.

use criterion::{criterion_group, criterion_main, Criterion};
use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, Verdict};
use lkmm_generator::{cycles_up_to, default_alphabet, generate};
use lkmm_sim::{run_test, Arch, RunConfig};
use std::hint::black_box;

fn bench_generated_sweep(c: &mut Criterion) {
    let cycles = cycles_up_to(4, &default_alphabet());
    let tests: Vec<_> = cycles.iter().map(|cy| generate(cy).unwrap()).collect();
    let lkmm = Lkmm::new();
    let opts = EnumOptions::default();

    let mut group = c.benchmark_group("generated");
    group.sample_size(10);
    group.bench_function(format!("lkmm-sweep-{}-tests", tests.len()), |b| {
        b.iter(|| {
            let mut forbidden = 0usize;
            for t in &tests {
                if check_test(&lkmm, t, &opts).unwrap().verdict == Verdict::Forbidden {
                    forbidden += 1;
                }
            }
            black_box(forbidden)
        })
    });

    // Simulator soundness on the forbidden subset (sampled).
    let forbidden: Vec<_> = tests
        .iter()
        .filter(|t| check_test(&lkmm, t, &opts).unwrap().verdict == Verdict::Forbidden)
        .step_by(8)
        .collect();
    group.bench_function(
        format!("sim-soundness-{}-forbidden-tests", forbidden.len()),
        |b| {
            b.iter(|| {
                for t in &forbidden {
                    for arch in Arch::ALL {
                        let stats =
                            run_test(t, arch, &RunConfig { iterations: 50, seed: 5 }).unwrap();
                        assert_eq!(stats.observed, 0, "{} on {}", t.name, arch.name());
                    }
                }
            })
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generated_sweep
}
criterion_main!(benches);
