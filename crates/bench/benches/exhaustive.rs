//! Exhaustive operational exploration benchmarks: full interleaving
//! coverage per architecture, and the operational-vs-axiomatic TSO
//! state-set equivalence re-verified per iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::states::collect_states;
use lkmm_litmus::library;
use lkmm_models::X86Tso;
use lkmm_sim::{explore, Arch};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive/explore");
    group.sample_size(10);
    for arch in Arch::ALL {
        group.bench_function(format!("{}-SB", arch.name()), |b| {
            let t = library::by_name("SB").unwrap().test();
            b.iter(|| black_box(explore(&t, arch, 1_000_000).unwrap().states_visited))
        });
    }
    group.bench_function("Power8-WRC", |b| {
        let t = library::by_name("WRC").unwrap().test();
        b.iter(|| black_box(explore(&t, Arch::Power, 1_000_000).unwrap().states_visited))
    });
    group.finish();
}

fn bench_tso_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive/tso-equivalence");
    group.sample_size(10);
    for name in ["SB", "MP", "R", "2+2W"] {
        group.bench_function(name, |b| {
            let t = library::by_name(name).unwrap().test();
            b.iter(|| {
                let op = explore(&t, Arch::X86, 1_000_000).unwrap();
                let ax: BTreeSet<String> =
                    collect_states(&X86Tso, &t, &EnumOptions::default())
                        .unwrap()
                        .states
                        .into_iter()
                        .filter(|(_, c)| c.allowed > 0)
                        .map(|(s, _)| s.0)
                        .collect();
                assert_eq!(op.outcomes, ax, "{name}");
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_explore, bench_tso_equivalence
}
criterion_main!(benches);
