//! Per-figure benchmarks: each forbidden-execution figure of the paper
//! (2, 4, 5, 6, 7, 9, 10, 11, 13, 14) is re-checked per iteration, with
//! the verdict asserted against the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use lkmm::Lkmm;
use lkmm_bench::check_expect;
use lkmm_litmus::library;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let lkmm = Lkmm::new();
    let figures: Vec<_> = library::all().iter().filter(|pt| pt.figure.is_some()).collect();
    assert!(figures.len() >= 10, "missing figures in the library");
    let mut group = c.benchmark_group("figures");
    for pt in figures {
        let label = format!("fig{}-{}", pt.figure.unwrap(), pt.name);
        group.bench_function(&label, |b| {
            b.iter(|| black_box(check_expect(&lkmm, pt, pt.lkmm)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(benches);
