//! Binary relations over a fixed universe of events.
//!
//! # Bounds policy
//!
//! Every structure in this crate ([`Relation`], [`EventSet`],
//! [`IncrementalOrder`](crate::IncrementalOrder)) follows one rule for
//! out-of-universe indices: **mutators panic, queries are total**.
//! `insert`/`remove` on an index `>= universe()` is always a caller bug
//! — silently ignoring it would hide miscomputed event indices — so
//! both panic. Pure queries (`contains`) treat out-of-universe indices
//! as simply *absent* and return `false`, which lets callers probe
//! speculative indices without pre-checking the universe.

use crate::{iter_bits, kernel, word_and_bit, words_for, EventSet};
use std::fmt;

/// A binary relation over a universe of `n` events, stored as a bitset
/// adjacency matrix (`rows[i]` is the successor set of event `i`).
///
/// All the operators used by cat models are provided: union, intersection,
/// difference, complement, inverse, relational sequence, reflexive /
/// transitive / reflexive-transitive closures, restriction by domain/range
/// sets, and the acyclicity / irreflexivity / emptiness checks that form
/// model axioms.
///
/// # Examples
///
/// ```
/// use lkmm_relation::Relation;
///
/// let r = Relation::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
/// assert!(r.transitive_closure().contains(0, 3));
/// assert!(r.is_acyclic());
/// assert!(!r.union(&Relation::from_pairs(4, [(3, 0)])).is_acyclic());
/// ```
/// `Default` is the empty relation over the empty universe — the
/// natural seed for reusable scratch that is [`Relation::reset`] (or
/// [`Relation::copy_from`]) into shape before first use.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Relation {
    n: usize,
    row_words: usize,
    rows: Vec<u64>,
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Self {
        let row_words = words_for(n);
        Relation { n, row_words, rows: vec![0; row_words * n] }
    }

    /// The identity relation `{(e, e)}` over `n` events.
    pub fn identity(n: usize) -> Self {
        let mut r = Self::empty(n);
        for i in 0..n {
            r.insert(i, i);
        }
        r
    }

    /// The full relation `n × n`.
    pub fn full(n: usize) -> Self {
        EventSet::full(n).cross(&EventSet::full(n))
    }

    /// Build a relation from `(from, to)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut r = Self::empty(n);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Add the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= universe()` or `b >= universe()`.
    pub fn insert(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "pair ({a},{b}) out of universe {}", self.n);
        let (w, bit) = word_and_bit(b);
        self.rows[a * self.row_words + w] |= bit;
    }

    /// Remove the pair `(a, b)` if present.
    ///
    /// # Panics
    ///
    /// Panics if `a >= universe()` or `b >= universe()` (mutators are
    /// strict; see the module-level bounds policy).
    pub fn remove(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "pair ({a},{b}) out of universe {}", self.n);
        let (w, bit) = word_and_bit(b);
        self.rows[a * self.row_words + w] &= !bit;
    }

    /// Whether `(a, b)` is in the relation. Out-of-universe pairs are
    /// absent by definition, so this is total (queries never panic; see
    /// the module-level bounds policy).
    pub fn contains(&self, a: usize, b: usize) -> bool {
        if a >= self.n || b >= self.n {
            return false;
        }
        let (w, bit) = word_and_bit(b);
        self.rows[a * self.row_words + w] & bit != 0
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|&w| w == 0)
    }

    /// Iterate all pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| self.successors(a).map(move |b| (a, b)))
    }

    /// Iterate the successors of `a`.
    pub fn successors(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        iter_bits(self.row(a), self.n)
    }

    fn row(&self, a: usize) -> &[u64] {
        &self.rows[a * self.row_words..(a + 1) * self.row_words]
    }

    /// Reshape into the empty relation over `n` events, reusing the row
    /// storage. This is what lets a [`RelationArena`](crate::RelationArena)
    /// recycle relations across candidates (and universes) without
    /// round-tripping through the allocator, and what lets checking
    /// sessions keep long-lived scratch relations that are reshaped per
    /// candidate instead of reacquired.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.row_words = words_for(n);
        let words = self.row_words * n;
        // `fill` compiles to one memset over the reused buffer; the
        // clear-then-resize shape re-grows element by element, which is
        // measurably slower at arena-recycling rates.
        if self.rows.len() == words {
            self.rows.fill(0);
        } else {
            self.rows.clear();
            self.rows.resize(words, 0);
        }
    }

    /// Become a copy of `other`, reusing this relation's storage
    /// (reshaping to `other`'s universe if needed).
    pub fn copy_from(&mut self, other: &Relation) {
        self.n = other.n;
        self.row_words = other.row_words;
        self.rows.clear();
        self.rows.extend_from_slice(&other.rows);
    }

    /// Union of two relations.
    pub fn union(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a | b)
    }

    /// Intersection of two relations.
    pub fn intersection(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a & b)
    }

    /// Difference `self \ other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a & !b)
    }

    /// In-place union: `self ∪= other`, through the 4×`u64`-unrolled
    /// [`kernel::or_assign`]. Avoids allocating a result relation in hot
    /// loops (model fixpoints, per-candidate pruning).
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn union_in_place(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "universe mismatch");
        kernel::or_assign(&mut self.rows, &other.rows);
    }

    /// In-place intersection: `self ∩= other`, through
    /// [`kernel::and_assign`].
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn intersection_in_place(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "universe mismatch");
        kernel::and_assign(&mut self.rows, &other.rows);
    }

    /// In-place difference: `self \= other`, through
    /// [`kernel::andnot_assign`].
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn difference_in_place(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "universe mismatch");
        kernel::andnot_assign(&mut self.rows, &other.rows);
    }

    /// Whether the two relations share at least one pair, without
    /// materialising the intersection.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn intersects(&self, other: &Relation) -> bool {
        assert_eq!(self.n, other.n, "universe mismatch");
        kernel::intersects(&self.rows, &other.rows)
    }

    /// Complement with respect to `n × n`.
    pub fn complement(&self) -> Relation {
        let mut out = self.clone();
        out.complement_in_place();
        out
    }

    /// In-place complement with respect to `n × n`.
    pub fn complement_in_place(&mut self) {
        for w in &mut self.rows {
            *w = !*w;
        }
        self.mask_tails();
    }

    /// Inverse relation `r⁻¹ = {(b, a) | (a, b) ∈ r}`.
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        self.inverse_into(&mut out);
        out
    }

    /// Inverse writing into a caller-provided relation, reusing its
    /// allocation (`out` is overwritten).
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn inverse_into(&self, out: &mut Relation) {
        assert_eq!(self.n, out.n, "output universe mismatch");
        out.rows.fill(0);
        for (a, b) in self.iter() {
            let (w, bit) = word_and_bit(a);
            out.rows[b * out.row_words + w] |= bit;
        }
    }

    /// Relational sequence `self ; other`.
    ///
    /// `(a, c)` is in the result iff there is `b` with `(a, b) ∈ self` and
    /// `(b, c) ∈ other`.
    pub fn seq(&self, other: &Relation) -> Relation {
        let mut out = Relation::empty(self.n);
        self.seq_into(other, &mut out);
        out
    }

    /// Relational sequence writing into a caller-provided relation,
    /// reusing its allocation (`out` is overwritten, not accumulated
    /// into). The borrow checker rules out aliasing with `self`/`other`.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch (including `out`).
    pub fn seq_into(&self, other: &Relation, out: &mut Relation) {
        assert_eq!(self.n, other.n, "universe mismatch");
        assert_eq!(self.n, out.n, "output universe mismatch");
        for a in 0..self.n {
            let base = a * self.row_words;
            out.rows[base..base + self.row_words].fill(0);
            for b in self.successors(a) {
                kernel::or_assign(
                    &mut out.rows[base..base + self.row_words],
                    &other.rows[b * other.row_words..(b + 1) * other.row_words],
                );
            }
        }
    }

    /// Reflexive closure `r?`.
    pub fn reflexive(&self) -> Relation {
        let mut out = self.clone();
        out.reflexive_in_place();
        out
    }

    /// In-place reflexive closure: add every `(e, e)` pair.
    pub fn reflexive_in_place(&mut self) {
        for i in 0..self.n {
            let (w, bit) = word_and_bit(i);
            self.rows[i * self.row_words + w] |= bit;
        }
    }

    /// Transitive closure `r⁺` (Floyd–Warshall over bitset rows).
    pub fn transitive_closure(&self) -> Relation {
        let mut out = self.clone();
        out.transitive_close();
        out
    }

    /// In-place transitive closure, with a single scratch row reused
    /// across Floyd–Warshall rounds instead of one allocation per pivot.
    pub fn transitive_close(&mut self) {
        let mut row_k = vec![0u64; self.row_words];
        self.transitive_close_with(&mut row_k);
    }

    /// [`Relation::transitive_close`] with a caller-provided scratch
    /// row, so arena-backed hot loops avoid even the single per-call
    /// allocation. The scratch is resized as needed.
    pub fn transitive_close_with(&mut self, row_k: &mut Vec<u64>) {
        row_k.clear();
        row_k.resize(self.row_words, 0);
        for k in 0..self.n {
            row_k.copy_from_slice(self.row(k));
            for a in 0..self.n {
                if a != k && self.contains(a, k) {
                    let base = a * self.row_words;
                    kernel::or_assign(&mut self.rows[base..base + self.row_words], row_k);
                }
            }
        }
    }

    /// Reflexive-transitive closure `r*`.
    pub fn reflexive_transitive_closure(&self) -> Relation {
        self.transitive_closure().reflexive()
    }

    /// Restrict the domain to `s`: `[s] ; r`.
    pub fn restrict_domain(&self, s: &EventSet) -> Relation {
        assert_eq!(self.n, s.universe(), "universe mismatch");
        let mut out = self.clone();
        for a in 0..self.n {
            if !s.contains(a) {
                let base = a * self.row_words;
                out.rows[base..base + self.row_words].fill(0);
            }
        }
        out
    }

    /// Restrict the range to `s`: `r ; [s]`.
    pub fn restrict_range(&self, s: &EventSet) -> Relation {
        assert_eq!(self.n, s.universe(), "universe mismatch");
        let mut out = self.clone();
        for a in 0..self.n {
            let base = a * self.row_words;
            for (w, &mask) in s.words().iter().enumerate() {
                out.rows[base + w] &= mask;
            }
        }
        out
    }

    /// In-place [`Relation::restrict_domain`]: zero every row whose
    /// event is outside `s`.
    pub fn restrict_domain_in_place(&mut self, s: &EventSet) {
        assert_eq!(self.n, s.universe(), "universe mismatch");
        for a in 0..self.n {
            if !s.contains(a) {
                let base = a * self.row_words;
                self.rows[base..base + self.row_words].fill(0);
            }
        }
    }

    /// In-place [`Relation::restrict_range`]: mask every row by `s`.
    pub fn restrict_range_in_place(&mut self, s: &EventSet) {
        assert_eq!(self.n, s.universe(), "universe mismatch");
        for a in 0..self.n {
            let base = a * self.row_words;
            kernel::and_assign(&mut self.rows[base..base + self.row_words], s.words());
        }
    }

    /// Subtract the Cartesian product `dom × ran` in place — one masked
    /// row operation per event of `dom`, never materialising the
    /// product relation.
    pub fn subtract_cross(&mut self, dom: &EventSet, ran: &EventSet) {
        assert_eq!(self.n, dom.universe(), "universe mismatch");
        assert_eq!(self.n, ran.universe(), "universe mismatch");
        for a in dom.iter() {
            let base = a * self.row_words;
            kernel::andnot_assign(&mut self.rows[base..base + self.row_words], ran.words());
        }
    }

    /// The set of events with at least one successor.
    pub fn domain(&self) -> EventSet {
        let mut out = EventSet::empty(self.n);
        self.domain_into(&mut out);
        out
    }

    /// Compute [`Relation::domain`] into `out` (reshaped to this
    /// universe).
    pub fn domain_into(&self, out: &mut EventSet) {
        out.reset(self.n);
        for a in 0..self.n {
            if self.row(a).iter().any(|&w| w != 0) {
                out.insert(a);
            }
        }
    }

    /// The set of events with at least one predecessor.
    pub fn range(&self) -> EventSet {
        let mut out = EventSet::empty(self.n);
        self.range_into(&mut out);
        out
    }

    /// Compute [`Relation::range`] into `out` (reshaped to this
    /// universe): the union of all rows, one word-parallel `or` per row.
    pub fn range_into(&self, out: &mut EventSet) {
        out.reset(self.n);
        for a in 0..self.n {
            kernel::or_assign(out.words_mut(), self.row(a));
        }
    }

    /// Whether the relation contains no pair `(e, e)`.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.contains(i, i))
    }

    /// Whether the relation is acyclic (its transitive closure is
    /// irreflexive).
    pub fn is_acyclic(&self) -> bool {
        // DFS three-colour cycle detection: cheaper than full closure.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.n];
        // Iterative DFS with explicit stack of (node, successor iterator position).
        for start in 0..self.n {
            if colour[start] != Colour::White {
                continue;
            }
            let mut stack: Vec<(usize, Vec<usize>, usize)> =
                vec![(start, self.successors(start).collect(), 0)];
            colour[start] = Colour::Grey;
            while let Some((node, succs, idx)) = stack.last_mut() {
                if *idx < succs.len() {
                    let next = succs[*idx];
                    *idx += 1;
                    match colour[next] {
                        Colour::Grey => return false,
                        Colour::White => {
                            colour[next] = Colour::Grey;
                            let nsuccs: Vec<usize> = self.successors(next).collect();
                            stack.push((next, nsuccs, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[*node] = Colour::Black;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Find one cycle, as a sequence of events `e0 → e1 → … → e0`, if any.
    ///
    /// Useful for explaining *why* a model forbids an execution.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        // DFS with an explicit path stack: a back-edge to a node on the
        // current path closes a cycle; return the stack suffix from it.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.n];
        for start in 0..self.n {
            if colour[start] != Colour::White {
                continue;
            }
            let mut path: Vec<usize> = vec![start];
            let mut iters: Vec<Vec<usize>> = vec![self.successors(start).collect()];
            let mut pos: Vec<usize> = vec![0];
            colour[start] = Colour::Grey;
            while let Some(&node) = path.last() {
                let top = path.len() - 1;
                if pos[top] < iters[top].len() {
                    let next = iters[top][pos[top]];
                    pos[top] += 1;
                    match colour[next] {
                        Colour::Grey => {
                            let from = path.iter().position(|&p| p == next).expect("grey on path");
                            return Some(path[from..].to_vec());
                        }
                        Colour::White => {
                            colour[next] = Colour::Grey;
                            path.push(next);
                            iters.push(self.successors(next).collect());
                            pos.push(0);
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[node] = Colour::Black;
                    path.pop();
                    iters.pop();
                    pos.pop();
                }
            }
        }
        None
    }

    /// Cartesian product of two event sets as a relation.
    pub fn cross_sets(a: &EventSet, b: &EventSet) -> Relation {
        a.cross(b)
    }

    fn zip(&self, other: &Relation, f: impl Fn(u64, u64) -> u64) -> Relation {
        assert_eq!(self.n, other.n, "universe mismatch");
        let rows = self.rows.iter().zip(&other.rows).map(|(&a, &b)| f(a, b)).collect();
        let mut r = Relation { n: self.n, row_words: self.row_words, rows };
        r.mask_tails();
        r
    }

    fn mask_tails(&mut self) {
        let rem = self.n % crate::WORD_BITS;
        if rem != 0 && self.row_words > 0 {
            let mask = (1u64 << rem) - 1;
            for a in 0..self.n {
                self.rows[a * self.row_words + self.row_words - 1] &= mask;
            }
        }
    }
}

impl EventSet {
    /// Cartesian product `self × other` as a relation.
    pub fn cross(&self, other: &EventSet) -> Relation {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        let mut r = Relation::empty(self.universe());
        for a in self.iter() {
            for b in other.iter() {
                r.insert(a, b);
            }
        }
        r
    }

    /// The identity relation restricted to this set: `[S]`.
    pub fn as_identity(&self) -> Relation {
        let mut r = Relation::empty(self.universe());
        for a in self.iter() {
            r.insert(a, a);
        }
        r
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut r = Relation::empty(70);
        r.insert(0, 69);
        r.insert(69, 0);
        assert!(r.contains(0, 69) && r.contains(69, 0) && !r.contains(0, 0));
        assert_eq!(r.len(), 2);
        r.remove(0, 69);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn seq_composes() {
        let r = Relation::from_pairs(4, [(0, 1), (1, 2)]);
        let s = Relation::from_pairs(4, [(1, 3), (2, 3)]);
        let rs = r.seq(&s);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(0, 3), (1, 3)]);
    }

    #[test]
    fn closure_and_acyclicity() {
        let chain = Relation::from_pairs(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let tc = chain.transitive_closure();
        assert!(tc.contains(0, 4));
        assert!(chain.is_acyclic());
        let cyc = chain.union(&Relation::from_pairs(5, [(4, 0)]));
        assert!(!cyc.is_acyclic());
        assert!(!cyc.transitive_closure().is_irreflexive());
    }

    #[test]
    fn find_cycle_returns_valid_cycle() {
        let r = Relation::from_pairs(6, [(0, 1), (1, 2), (2, 0), (3, 4)]);
        let cycle = r.find_cycle().unwrap();
        assert!(cycle.len() >= 2);
        for w in cycle.windows(2) {
            assert!(r.contains(w[0], w[1]));
        }
        assert!(r.contains(*cycle.last().unwrap(), cycle[0]));
        assert!(Relation::from_pairs(6, [(0, 1)]).find_cycle().is_none());
    }

    #[test]
    fn inverse_and_identity() {
        let r = Relation::from_pairs(3, [(0, 2)]);
        assert!(r.inverse().contains(2, 0));
        let id = Relation::identity(3);
        assert_eq!(r.seq(&id), r);
        assert_eq!(id.seq(&r), r);
    }

    #[test]
    fn restriction_and_domain_range() {
        let r = Relation::from_pairs(4, [(0, 1), (2, 3)]);
        let evens = EventSet::from_iter(4, [0, 2]);
        assert_eq!(r.restrict_domain(&evens), r);
        assert_eq!(r.restrict_range(&evens).len(), 0);
        assert_eq!(r.domain(), evens);
        assert_eq!(r.range(), EventSet::from_iter(4, [1, 3]));
    }

    #[test]
    fn cross_and_set_identity() {
        let a = EventSet::from_iter(4, [0, 1]);
        let b = EventSet::from_iter(4, [3]);
        let r = a.cross(&b);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(0, 3), (1, 3)]);
        assert_eq!(a.as_identity().len(), 2);
    }

    #[test]
    fn complement_respects_universe() {
        let r = Relation::empty(3);
        assert_eq!(r.complement().len(), 9);
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        // Cross a word boundary (70 > 64) to exercise tail masking.
        let r = Relation::from_pairs(70, [(0, 69), (69, 0), (1, 2), (5, 5)]);
        let s = Relation::from_pairs(70, [(0, 69), (2, 3), (5, 5), (68, 69)]);

        let mut u = r.clone();
        u.union_in_place(&s);
        assert_eq!(u, r.union(&s));

        let mut i = r.clone();
        i.intersection_in_place(&s);
        assert_eq!(i, r.intersection(&s));

        let mut d = r.clone();
        d.difference_in_place(&s);
        assert_eq!(d, r.difference(&s));

        let mut out = Relation::full(70); // seq_into must overwrite stale contents
        r.seq_into(&s, &mut out);
        assert_eq!(out, r.seq(&s));

        let chain = Relation::from_pairs(70, [(0, 1), (1, 2), (2, 69), (69, 3), (3, 3)]);
        let mut tc = chain.clone();
        tc.transitive_close();
        assert_eq!(tc, chain.transitive_closure());
        assert!(tc.contains(0, 3));

        let mut inv = Relation::full(70); // inverse_into must overwrite
        r.inverse_into(&mut inv);
        assert_eq!(inv, r.inverse());

        let mut comp = r.clone();
        comp.complement_in_place();
        assert_eq!(comp, r.complement());

        let mut refl = r.clone();
        refl.reflexive_in_place();
        assert_eq!(refl, r.reflexive());

        let mut scratch = Vec::new();
        let mut tc2 = chain.clone();
        tc2.transitive_close_with(&mut scratch);
        assert_eq!(tc2, chain.transitive_closure());

        let dom = EventSet::from_iter(70, [0, 1, 68]);
        let ran = EventSet::from_iter(70, [2, 69]);
        let mut rd = r.clone();
        rd.restrict_domain_in_place(&dom);
        assert_eq!(rd, r.restrict_domain(&dom));
        let mut rr = r.clone();
        rr.restrict_range_in_place(&ran);
        assert_eq!(rr, r.restrict_range(&ran));
        let mut sc = r.clone();
        sc.subtract_cross(&dom, &ran);
        assert_eq!(sc, r.difference(&dom.cross(&ran)));

        let mut dset = EventSet::full(3); // *_into must reshape and overwrite
        r.domain_into(&mut dset);
        assert_eq!(dset, r.domain());
        let mut rset = EventSet::full(3);
        r.range_into(&mut rset);
        assert_eq!(rset, r.range());
    }

    #[test]
    fn copy_from_reshapes_and_reuses_storage() {
        let src = Relation::from_pairs(70, [(0, 69), (5, 5)]);
        let mut dst = Relation::full(3);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        // Shrinking works too, and the result behaves like a fresh clone.
        let small = Relation::from_pairs(2, [(1, 0)]);
        dst.copy_from(&small);
        assert_eq!(dst, small);
        assert_eq!(dst.universe(), 2);
    }

    #[test]
    fn intersects_matches_materialised_intersection() {
        let a = Relation::from_pairs(70, [(0, 69), (1, 2)]);
        let b = Relation::from_pairs(70, [(69, 0), (1, 2)]);
        let c = Relation::from_pairs(70, [(69, 0)]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
        assert_eq!(a.intersects(&c), !a.intersection(&c).is_empty());
    }

    // Bounds policy: mutators panic, queries are total.

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        Relation::empty(4).insert(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn remove_out_of_universe_panics() {
        Relation::empty(4).remove(4, 0);
    }

    #[test]
    fn contains_is_total_over_out_of_universe_queries() {
        let r = Relation::from_pairs(4, [(0, 1)]);
        assert!(!r.contains(0, 4));
        assert!(!r.contains(4, 0));
        assert!(!r.contains(usize::MAX, usize::MAX));
    }
}
