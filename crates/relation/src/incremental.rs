//! Online cycle detection with in-place undo.
//!
//! The consistency-driven enumerator grows a constraint graph edge by
//! edge (po-loc, a trial `rf` assignment, the coherence edges it
//! forces) and needs to know *immediately* whether the latest edge
//! closed a cycle — running a fresh O(V+E) acyclicity check per edge
//! would undo the whole point of pruning. [`IncrementalOrder`]
//! maintains a topological order of the graph under edge insertion
//! using the Pearce–Kelly algorithm (*A Dynamic Topological Sort
//! Algorithm for Directed Acyclic Graphs*, JEA 2006): an insertion
//! that respects the current order is O(1); one that inverts it only
//! reorders the nodes between the endpoints; one that would create a
//! cycle is rejected *without modifying anything*.
//!
//! Backtracking search needs the mirror operation: abandoning a branch
//! must restore the graph cheaply. Every accepted insertion pushes onto
//! a trail; [`IncrementalOrder::undo_to`] pops back to a checkpoint.
//! Edge *removal* never invalidates a topological order, so undo is
//! O(1) per edge — the node order is simply left where the deepest
//! point of the search moved it. Edges carry multiplicities because the
//! enumerator derives the same constraint from several rules (the same
//! coherence edge may be forced by a write-write program-order pair
//! *and* by an observing read); the bit clears only when the last
//! derivation is undone.

use crate::{iter_bits, word_and_bit, words_for};

/// A directed graph maintained acyclic under edge insertion, with a
/// trail-based undo for backtracking search.
///
/// # Examples
///
/// ```
/// use lkmm_relation::IncrementalOrder;
///
/// let mut g = IncrementalOrder::new(3);
/// assert!(g.add_edge(0, 1));
/// assert!(g.add_edge(1, 2));
/// let mark = g.checkpoint();
/// assert!(!g.add_edge(2, 0)); // would close a cycle; graph unchanged
/// assert!(g.add_edge(0, 2));
/// g.undo_to(mark);
/// assert!(!g.contains(0, 2));
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalOrder {
    n: usize,
    row_words: usize,
    /// Forward adjacency bitsets, row per node.
    succ: Vec<u64>,
    /// Backward adjacency bitsets, row per node.
    pred: Vec<u64>,
    /// Per-pair insertion multiplicity (`count[a * n + b]`).
    count: Vec<u32>,
    /// Node → position in the maintained topological order.
    ord: Vec<u32>,
    /// Position → node (inverse of `ord`).
    pos: Vec<u32>,
    /// Accepted insertions, in order; the undo trail.
    trail: Vec<(u32, u32)>,
    /// DFS scratch: visited bitset.
    visited: Vec<u64>,
    /// DFS scratch: stack.
    stack: Vec<u32>,
}

impl IncrementalOrder {
    /// An edgeless graph over nodes `0..n`.
    pub fn new(n: usize) -> Self {
        let row_words = words_for(n).max(1);
        IncrementalOrder {
            n,
            row_words,
            succ: vec![0; n * row_words],
            pred: vec![0; n * row_words],
            count: vec![0; n * n],
            ord: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            trail: Vec::new(),
            visited: vec![0; row_words],
            stack: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Whether the edge `(a, b)` is currently present. Out-of-universe
    /// pairs are absent by definition, so this is total (queries never
    /// panic; see the crate-level bounds policy).
    pub fn contains(&self, a: usize, b: usize) -> bool {
        if a >= self.n || b >= self.n {
            return false;
        }
        let (w, bit) = word_and_bit(b);
        self.succ[a * self.row_words + w] & bit != 0
    }

    /// The current trail length; pass to [`IncrementalOrder::undo_to`]
    /// to rewind every insertion accepted after this point.
    pub fn checkpoint(&self) -> usize {
        self.trail.len()
    }

    /// Insert the edge `a → b`. Returns `false` — leaving the graph
    /// completely unchanged — if the edge would create a cycle
    /// (including the self-loop `a == b`); returns `true` and records
    /// the insertion on the undo trail otherwise. Re-inserting a present
    /// edge always succeeds and bumps its multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if `a >= universe()` or `b >= universe()` (mutators are
    /// strict; see the crate-level bounds policy).
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "edge ({a},{b}) out of universe {}", self.n);
        if a == b {
            return false;
        }
        if self.count[a * self.n + b] == 0 {
            if self.ord[a] > self.ord[b] && !self.reorder(a, b) {
                return false;
            }
            let (w, bit) = word_and_bit(b);
            self.succ[a * self.row_words + w] |= bit;
            let (w, bit) = word_and_bit(a);
            self.pred[b * self.row_words + w] |= bit;
        }
        self.count[a * self.n + b] += 1;
        self.trail.push((a as u32, b as u32));
        true
    }

    /// Rewind the trail to a [`IncrementalOrder::checkpoint`], removing
    /// every insertion accepted since. The maintained order is left
    /// as-is: removing edges never invalidates a topological order.
    ///
    /// # Panics
    ///
    /// Panics if `mark` exceeds the current trail length.
    pub fn undo_to(&mut self, mark: usize) {
        assert!(mark <= self.trail.len(), "checkpoint is from this graph's past");
        while self.trail.len() > mark {
            let (a, b) = self.trail.pop().expect("len > mark >= 0");
            let (a, b) = (a as usize, b as usize);
            let c = &mut self.count[a * self.n + b];
            *c -= 1;
            if *c == 0 {
                let (w, bit) = word_and_bit(b);
                self.succ[a * self.row_words + w] &= !bit;
                let (w, bit) = word_and_bit(a);
                self.pred[b * self.row_words + w] &= !bit;
            }
        }
    }

    /// Pearce–Kelly discovery and reordering for an order-inverting
    /// insertion `a → b` (`ord[a] > ord[b]`). Returns `false` — with no
    /// state modified — if `a` is forward-reachable from `b`, i.e. the
    /// edge would close a cycle.
    fn reorder(&mut self, a: usize, b: usize) -> bool {
        let lo = self.ord[b];
        let hi = self.ord[a];
        // Forward discovery from b, restricted to ord ≤ hi. Reaching a
        // means b ⇝ a already, so a → b closes a cycle.
        let Some(mut delta_f) = self.collect(b, lo, hi, a, true) else {
            return false;
        };
        // Backward discovery from a, restricted to ord ≥ lo. Cannot hit
        // b: that would be the cycle already found forward.
        let mut delta_b =
            self.collect(a, lo, hi, usize::MAX, false).expect("no sentinel backward");
        // Reassign: the affected nodes keep their relative order, but
        // everything reaching a moves before everything reachable
        // from b, into the sorted pool of their old positions.
        delta_f.sort_unstable_by_key(|&v| self.ord[v]);
        delta_b.sort_unstable_by_key(|&v| self.ord[v]);
        let mut pool: Vec<u32> =
            delta_b.iter().chain(delta_f.iter()).map(|&v| self.ord[v]).collect();
        pool.sort_unstable();
        for (&v, &p) in delta_b.iter().chain(delta_f.iter()).zip(&pool) {
            self.ord[v] = p;
            self.pos[p as usize] = v as u32;
        }
        true
    }

    /// DFS from `start` over `succ` (forward) or `pred` (backward),
    /// visiting only nodes with order in `[lo, hi]`. Returns the visited
    /// nodes, or `None` if `sentinel` was reached (forward only).
    fn collect(
        &mut self,
        start: usize,
        lo: u32,
        hi: u32,
        sentinel: usize,
        forward: bool,
    ) -> Option<Vec<usize>> {
        self.visited.fill(0);
        let mut found = Vec::new();
        self.stack.clear();
        self.stack.push(start as u32);
        let (sw, sbit) = word_and_bit(start);
        self.visited[sw] |= sbit;
        while let Some(v) = self.stack.pop() {
            let v = v as usize;
            found.push(v);
            let rows = if forward { &self.succ } else { &self.pred };
            let row = &rows[v * self.row_words..(v + 1) * self.row_words];
            // iter_bits borrows the row; collect into the stack after
            // filtering so the &mut self borrows do not overlap.
            let mut hit_sentinel = false;
            let base = self.stack.len();
            for u in iter_bits(row, self.n) {
                if self.ord[u] < lo || self.ord[u] > hi {
                    continue;
                }
                if u == sentinel {
                    hit_sentinel = true;
                    break;
                }
                let (w, bit) = word_and_bit(u);
                if self.visited[w] & bit == 0 {
                    self.visited[w] |= bit;
                    self.stack.push(u as u32);
                }
            }
            if hit_sentinel {
                self.stack.truncate(base);
                return None;
            }
        }
        Some(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    #[test]
    fn chain_rejects_closing_edge_and_accepts_shortcuts() {
        let mut g = IncrementalOrder::new(5);
        for i in 0..4 {
            assert!(g.add_edge(i, i + 1));
        }
        assert!(!g.add_edge(4, 0));
        assert!(!g.add_edge(4, 2));
        assert!(!g.add_edge(2, 2), "self loop is a cycle");
        assert!(g.add_edge(0, 4));
        assert!(g.add_edge(1, 3));
    }

    #[test]
    fn rejection_leaves_the_graph_untouched() {
        let mut g = IncrementalOrder::new(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        let mark = g.checkpoint();
        assert!(!g.add_edge(2, 0));
        assert_eq!(g.checkpoint(), mark, "rejected edges never join the trail");
        assert!(!g.contains(2, 0));
        // The surviving structure still behaves: 2 → 3 fine, 3 → 0 not
        // after adding it.
        assert!(g.add_edge(2, 3));
        assert!(!g.add_edge(3, 0));
    }

    #[test]
    fn undo_restores_rejected_edges_to_acceptable() {
        let mut g = IncrementalOrder::new(3);
        assert!(g.add_edge(0, 1));
        let mark = g.checkpoint();
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(2, 0));
        g.undo_to(mark);
        assert!(!g.contains(1, 2));
        assert!(g.add_edge(2, 0), "after undo the once-cyclic edge fits");
        assert!(g.contains(0, 1), "edges before the checkpoint survive");
    }

    #[test]
    fn multiplicity_keeps_edges_until_the_last_undo() {
        let mut g = IncrementalOrder::new(3);
        assert!(g.add_edge(0, 1));
        let mark = g.checkpoint();
        assert!(g.add_edge(0, 1), "re-insertion succeeds");
        assert!(g.add_edge(0, 1));
        g.undo_to(mark);
        assert!(g.contains(0, 1), "first derivation still holds the edge");
        g.undo_to(0);
        assert!(!g.contains(0, 1));
        assert!(g.add_edge(1, 0), "fully undone graph accepts the reverse");
    }

    /// Deterministic pseudo-random stress: mirror every accepted edge in
    /// a [`Relation`] and check that acceptance ⟺ the mirror stays
    /// acyclic, across interleaved checkpoints and undos.
    #[test]
    fn matches_batch_acyclicity_under_random_workload() {
        const N: usize = 12;
        let mut seed: u64 = 0x1234_5678_9abc_def0;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut g = IncrementalOrder::new(N);
        let mut mirror = Relation::empty(N);
        // (checkpoint, mirror snapshot) stack for undo replay.
        let mut marks: Vec<(usize, Relation)> = Vec::new();
        for _ in 0..4000 {
            match rng() % 10 {
                0 => {
                    marks.push((g.checkpoint(), mirror.clone()));
                }
                1 => {
                    if let Some((mark, snapshot)) = marks.pop() {
                        g.undo_to(mark);
                        mirror = snapshot;
                    }
                }
                _ => {
                    let a = (rng() % N as u64) as usize;
                    let b = (rng() % N as u64) as usize;
                    let mut trial = mirror.clone();
                    trial.insert(a, b);
                    let acceptable = a != b && trial.is_acyclic();
                    assert_eq!(
                        g.add_edge(a, b),
                        acceptable,
                        "edge ({a},{b}) acceptance disagrees with batch check"
                    );
                    if acceptable {
                        mirror = trial;
                    }
                }
            }
            // The maintained order is a topological order of the mirror.
            for (x, y) in mirror.iter() {
                assert!(g.contains(x, y));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn add_edge_out_of_universe_panics() {
        IncrementalOrder::new(4).add_edge(0, 4);
    }

    #[test]
    fn contains_is_total_over_out_of_universe_queries() {
        let mut g = IncrementalOrder::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.contains(0, 4));
        assert!(!g.contains(4, 0));
        assert!(!g.contains(usize::MAX, usize::MAX));
    }

    #[test]
    fn dense_universe_spanning_multiple_words() {
        // 80 nodes crosses the 64-bit word boundary in the bitset rows.
        let mut g = IncrementalOrder::new(80);
        for i in (0..79).rev() {
            // Insert back-to-front so every edge inverts the current
            // order and exercises the reorder path.
            assert!(g.add_edge(i, i + 1));
        }
        assert!(!g.add_edge(79, 0));
        assert!(g.add_edge(0, 79));
    }
}
