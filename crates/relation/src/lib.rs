//! Dense relation algebra over litmus-test events.
//!
//! Memory-model axioms are constraints over *relations on events*: unions,
//! intersections, sequences (relational composition), closures, and acyclicity
//! checks. A candidate execution of a litmus test has a small, fixed set of
//! events, so this crate represents a relation as a bitset adjacency matrix
//! over dense event indices `0..n`, which makes every cat operator a handful
//! of word-level operations.
//!
//! The two core types are [`EventSet`] (a set of events) and [`Relation`]
//! (a binary relation on events). Both are sized to a *universe* of `n`
//! events fixed at construction; operations on mismatched universes panic.
//!
//! Every operator bottoms out in the word-parallel slice kernels of
//! [`kernel`]; the in-place variants (`union_in_place`, `seq_into`,
//! `transitive_close`, …) combined with a [`RelationArena`] make
//! per-candidate relation algebra allocation-free in steady state.
//!
//! # Bounds policy
//!
//! One rule for out-of-universe indices across [`Relation`],
//! [`EventSet`], and [`IncrementalOrder`]: **mutators panic, queries
//! are total**. `insert`/`remove`/`add_edge` on an index
//! `>= universe()` is always a caller bug — silently ignoring it would
//! hide miscomputed event indices — so mutators panic. Pure queries
//! (`contains`) treat out-of-universe indices as simply *absent* and
//! return `false`.
//!
//! # Examples
//!
//! ```
//! use lkmm_relation::Relation;
//!
//! // po on three events: 0 -> 1 -> 2
//! let po = Relation::from_pairs(3, [(0, 1), (1, 2)]);
//! let po_plus = po.transitive_closure();
//! assert!(po_plus.contains(0, 2));
//! assert!(po_plus.is_acyclic());
//! ```

mod arena;
mod incremental;
pub mod kernel;
mod relation;
mod set;

pub use arena::{
    acquire_rel, acquire_set, scratch_words, shared_arena, with_scratch, ArenaRel, ArenaSet,
    RelationArena, SharedArena,
};
pub use incremental::IncrementalOrder;
pub use relation::Relation;
pub use set::EventSet;

/// Maximum number of events in one candidate execution.
///
/// Litmus tests are tiny (a handful of events per thread); 128 leaves ample
/// headroom even for the Figure-15 RCU-implementation expansion.
pub const MAX_EVENTS: usize = 128;

/// A word-indexed bitmask helper shared by [`EventSet`] and [`Relation`].
pub(crate) const WORD_BITS: usize = 64;

pub(crate) fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

pub(crate) fn word_and_bit(i: usize) -> (usize, u64) {
    (i / WORD_BITS, 1u64 << (i % WORD_BITS))
}

/// Iterate the indices of set bits in a row of words.
pub(crate) fn iter_bits(words: &[u64], n: usize) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(move |(wi, &w)| {
        let mut w = w;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * WORD_BITS + b)
            }
        })
    })
    .take_while(move |&i| i < n)
}
