//! Sets of events over a fixed universe.

use crate::{iter_bits, word_and_bit, words_for};
use std::fmt;

/// A set of events drawn from a universe of `n` events.
///
/// Backed by a bitmask; all operations are word-parallel. Sets from different
/// universes must not be mixed (checked by `debug_assert`/panic).
///
/// # Examples
///
/// ```
/// use lkmm_relation::EventSet;
///
/// let a = EventSet::from_iter(8, [0, 2, 4]);
/// let b = EventSet::from_iter(8, [2, 3]);
/// assert_eq!(a.intersection(&b), EventSet::from_iter(8, [2]));
/// assert_eq!(a.union(&b).len(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct EventSet {
    n: usize,
    words: Vec<u64>,
}

impl EventSet {
    /// The empty set over a universe of `n` events.
    pub fn empty(n: usize) -> Self {
        EventSet { n, words: vec![0; words_for(n)] }
    }

    /// The full set `{0, …, n-1}`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Build a set from an iterator of event indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_iter(n: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::empty(n);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Universe size this set was created with.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Insert event `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe()`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.n, "event {i} out of universe {}", self.n);
        let (w, b) = word_and_bit(i);
        self.words[w] |= b;
    }

    /// Remove event `i` if present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe()` (mutators are strict; see the
    /// crate-level bounds policy).
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.n, "event {i} out of universe {}", self.n);
        let (w, b) = word_and_bit(i);
        self.words[w] &= !b;
    }

    /// Whether event `i` is in the set. Out-of-universe events are
    /// absent by definition, so this is total (queries never panic).
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.n {
            return false;
        }
        let (w, b) = word_and_bit(i);
        self.words[w] & b != 0
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        iter_bits(&self.words, self.n)
    }

    /// Set union.
    pub fn union(&self, other: &EventSet) -> EventSet {
        self.zip(other, |a, b| a | b)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &EventSet) -> EventSet {
        self.zip(other, |a, b| a & b)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &EventSet) -> EventSet {
        self.zip(other, |a, b| a & !b)
    }

    /// Complement with respect to the universe.
    pub fn complement(&self) -> EventSet {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &EventSet) -> bool {
        assert_eq!(self.n, other.n, "universe mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    fn zip(&self, other: &EventSet, f: impl Fn(u64, u64) -> u64) -> EventSet {
        assert_eq!(self.n, other.n, "universe mismatch");
        let words = self.words.iter().zip(&other.words).map(|(&a, &b)| f(a, b)).collect();
        let mut s = EventSet { n: self.n, words };
        s.mask_tail();
        s
    }

    fn mask_tail(&mut self) {
        let rem = self.n % crate::WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Reshape into the empty set over `n` events, reusing the word
    /// storage (see [`crate::RelationArena`]).
    pub(crate) fn reset(&mut self, n: usize) {
        self.n = n;
        let words = words_for(n);
        // One memset when the shape already matches (the common arena
        // recycling case); see `Relation::reset`.
        if self.words.len() == words {
            self.words.fill(0);
        } else {
            self.words.clear();
            self.words.resize(words, 0);
        }
    }
}

impl fmt::Debug for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for EventSet {
    /// Collects into a set whose universe is `MAX_EVENTS`; prefer
    /// [`EventSet::from_iter`] with an explicit universe when sizes matter.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        EventSet::from_iter(crate::MAX_EVENTS, iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = EventSet::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = EventSet::full(10);
        assert_eq!(f.len(), 10);
        assert!(e.is_subset(&f));
        assert_eq!(f.complement(), e);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = EventSet::empty(70);
        s.insert(0);
        s.insert(65);
        assert!(s.contains(0) && s.contains(65) && !s.contains(64));
        s.remove(65);
        assert!(!s.contains(65));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn algebra() {
        let a = EventSet::from_iter(8, [0, 1, 2]);
        let b = EventSet::from_iter(8, [2, 3]);
        assert_eq!(a.union(&b), EventSet::from_iter(8, [0, 1, 2, 3]));
        assert_eq!(a.intersection(&b), EventSet::from_iter(8, [2]));
        assert_eq!(a.difference(&b), EventSet::from_iter(8, [0, 1]));
        assert_eq!(b.complement(), EventSet::from_iter(8, [0, 1, 4, 5, 6, 7]));
    }

    #[test]
    fn iter_order() {
        let s = EventSet::from_iter(100, [99, 3, 64]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 99]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        EventSet::empty(4).insert(4);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn remove_out_of_universe_panics() {
        EventSet::empty(4).remove(4);
    }

    #[test]
    fn contains_is_total_over_out_of_universe_queries() {
        let s = EventSet::from_iter(4, [0, 3]);
        assert!(!s.contains(4));
        assert!(!s.contains(usize::MAX));
    }
}
