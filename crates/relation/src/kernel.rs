//! Word-parallel bitset kernels.
//!
//! Every relation and set operator in this crate bottoms out in one of
//! three word-wise combines over `u64` rows: `|`, `&`, `& !`. These
//! kernels operate on borrowed row slices and are manually unrolled
//! four words at a time so the compiler reliably keeps four independent
//! accumulators in flight (the autovectorizer then maps them onto
//! whatever SIMD width the target has). Callers never allocate here:
//! the destination slice is always caller-provided storage, which is
//! what lets the [`RelationArena`](crate::RelationArena) reuse rows
//! across candidates instead of round-tripping through the allocator.
//!
//! All kernels require `dst.len() == src.len()` and panic otherwise —
//! rows from mismatched universes must never be combined.

/// `dst[i] |= src[i]` for every word, 4×-unrolled.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dw, sw) in d.by_ref().zip(s.by_ref()) {
        dw[0] |= sw[0];
        dw[1] |= sw[1];
        dw[2] |= sw[2];
        dw[3] |= sw[3];
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw |= *sw;
    }
}

/// `dst[i] &= src[i]` for every word, 4×-unrolled.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dw, sw) in d.by_ref().zip(s.by_ref()) {
        dw[0] &= sw[0];
        dw[1] &= sw[1];
        dw[2] &= sw[2];
        dw[3] &= sw[3];
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw &= *sw;
    }
}

/// `dst[i] &= !src[i]` for every word (set difference), 4×-unrolled.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dw, sw) in d.by_ref().zip(s.by_ref()) {
        dw[0] &= !sw[0];
        dw[1] &= !sw[1];
        dw[2] &= !sw[2];
        dw[3] &= !sw[3];
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw &= !*sw;
    }
}

/// Whether any word position has a common set bit (`a[i] & b[i] != 0`
/// for some `i`), 4×-unrolled with accumulated ORs so the loop body is
/// branch-free.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    assert_eq!(a.len(), b.len(), "row length mismatch");
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    let mut acc = 0u64;
    for (aw, bw) in ac.by_ref().zip(bc.by_ref()) {
        acc |= (aw[0] & bw[0]) | (aw[1] & bw[1]) | (aw[2] & bw[2]) | (aw[3] & bw[3]);
    }
    for (aw, bw) in ac.remainder().iter().zip(bc.remainder()) {
        acc |= aw & bw;
    }
    acc != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[u64], b: &[u64], f: fn(u64, u64) -> u64) -> Vec<u64> {
        a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
    }

    #[test]
    fn kernels_match_wordwise_reference_at_every_remainder_length() {
        // Lengths 0..=9 cover empty slices, pure-remainder slices, one
        // full chunk, and chunk+remainder combinations.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for len in 0..=9 {
            let a: Vec<u64> = (0..len).map(|_| rng()).collect();
            let b: Vec<u64> = (0..len).map(|_| rng()).collect();

            let mut d = a.clone();
            or_assign(&mut d, &b);
            assert_eq!(d, reference(&a, &b, |x, y| x | y), "or len={len}");

            let mut d = a.clone();
            and_assign(&mut d, &b);
            assert_eq!(d, reference(&a, &b, |x, y| x & y), "and len={len}");

            let mut d = a.clone();
            andnot_assign(&mut d, &b);
            assert_eq!(d, reference(&a, &b, |x, y| x & !y), "andnot len={len}");

            assert_eq!(
                intersects(&a, &b),
                a.iter().zip(&b).any(|(x, y)| x & y != 0),
                "intersects len={len}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn length_mismatch_panics() {
        or_assign(&mut [0u64; 3], &[0u64; 4]);
    }
}
