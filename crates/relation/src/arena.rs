//! Reusable pools of relation/set storage for per-candidate hot loops.
//!
//! Checking one candidate execution derives a few dozen intermediate
//! [`Relation`]s and [`EventSet`]s (`fr`, `com`, `ppo`, `hb`, cat
//! fixpoint rounds, …) that all die before the next candidate arrives.
//! Allocating and freeing each of them per candidate is where the
//! parallel pipeline used to spend a large share of its time. A
//! [`RelationArena`] keeps that storage alive between candidates: a
//! worker acquires a handle, computes into it in place, and the handle
//! returns the storage to the pool on drop — *reset, not freed*.
//!
//! The arena is deliberately single-threaded (`Rc<RefCell<…>>` via
//! [`SharedArena`]): the pipeline gives each worker its own arena, the
//! same way each worker owns its model sessions and facts cache, so
//! there is no cross-worker synchronisation and no false sharing of
//! pool storage between threads.
//!
//! # Examples
//!
//! ```
//! use lkmm_relation::{shared_arena, Relation, RelationArena};
//!
//! let arena = shared_arena();
//! let po = Relation::from_pairs(4, [(0, 1), (1, 2)]);
//! {
//!     let mut hb = RelationArena::acquire(&arena, 4);
//!     hb.copy_from(&po);
//!     hb.transitive_close();
//!     assert!(hb.contains(0, 2));
//! } // storage returns to the pool here
//! let again = RelationArena::acquire(&arena, 4);
//! assert!(again.is_empty(), "acquired relations are always reset");
//! assert_eq!(arena.borrow().reuses(), 1);
//! ```

use crate::{words_for, EventSet, Relation};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// A single-owner handle to a [`RelationArena`], cloned into every
/// [`ArenaRel`]/[`ArenaSet`] acquired from it so they can return their
/// storage on drop.
pub type SharedArena = Rc<RefCell<RelationArena>>;

/// A fresh, empty, shareable arena.
pub fn shared_arena() -> SharedArena {
    Rc::new(RefCell::new(RelationArena::new()))
}

/// Per-worker pools of [`Relation`], [`EventSet`], and scratch-row
/// storage, reset (not freed) between candidates.
///
/// The pools are universe-agnostic: returned storage is reshaped to the
/// requested universe on the next acquire, so one arena serves a whole
/// corpus of differently-sized tests. Acquire/reuse totals are tracked
/// for the pipeline's opt-in `--enum-stats` report.
#[derive(Debug, Default)]
pub struct RelationArena {
    rels: Vec<Relation>,
    sets: Vec<EventSet>,
    scratch: Vec<Vec<u64>>,
    acquires: u64,
    reuses: u64,
}

impl RelationArena {
    /// An empty arena with empty pools.
    pub fn new() -> Self {
        RelationArena::default()
    }

    /// Acquire an empty relation over `n` events, reusing pooled storage
    /// when available. The handle returns the storage on drop.
    pub fn acquire(this: &SharedArena, n: usize) -> ArenaRel {
        let rel = {
            let mut pool = this.borrow_mut();
            pool.acquires += 1;
            match pool.rels.pop() {
                Some(mut rel) => {
                    pool.reuses += 1;
                    rel.reset(n);
                    rel
                }
                None => Relation::empty(n),
            }
        };
        ArenaRel { rel, pool: Some(Rc::clone(this)) }
    }

    /// Acquire an empty event set over `n` events, reusing pooled
    /// storage when available.
    pub fn acquire_set(this: &SharedArena, n: usize) -> ArenaSet {
        let set = {
            let mut pool = this.borrow_mut();
            pool.acquires += 1;
            match pool.sets.pop() {
                Some(mut set) => {
                    pool.reuses += 1;
                    set.reset(n);
                    set
                }
                None => EventSet::empty(n),
            }
        };
        ArenaSet { set, pool: Some(Rc::clone(this)) }
    }

    /// Take a zeroed scratch row of at least `words` words (used by
    /// closure kernels); return it with
    /// [`RelationArena::put_scratch`] when done.
    pub fn take_scratch(&mut self, words: usize) -> Vec<u64> {
        self.acquires += 1;
        match self.scratch.pop() {
            Some(mut row) => {
                self.reuses += 1;
                if row.len() == words {
                    row.fill(0); // one memset; see `Relation::reset`
                } else {
                    row.clear();
                    row.resize(words, 0);
                }
                row
            }
            None => vec![0; words],
        }
    }

    /// Return a scratch row taken with [`RelationArena::take_scratch`].
    pub fn put_scratch(&mut self, row: Vec<u64>) {
        self.scratch.push(row);
    }

    /// Total acquisitions (relations, sets, and scratch rows) served.
    /// This is a pure function of the evaluated candidates, so it is
    /// job-count-invariant for a fixed candidate stream.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }

    /// Acquisitions served from the pool instead of the allocator. This
    /// depends on per-worker pool warm-up, so unlike
    /// [`RelationArena::acquires`] it is **not** job-count-invariant.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    fn release_rel(&mut self, rel: Relation) {
        self.rels.push(rel);
    }

    fn release_set(&mut self, set: EventSet) {
        self.sets.push(set);
    }
}

/// Acquire a relation from `pool` when one is available, or allocate a
/// fresh one. Lets arena-aware code serve both the pooled pipeline path
/// and the allocating reference path with a single code path.
pub fn acquire_rel(pool: Option<&SharedArena>, n: usize) -> ArenaRel {
    match pool {
        Some(p) => RelationArena::acquire(p, n),
        None => ArenaRel::fresh(Relation::empty(n)),
    }
}

/// The [`EventSet`] counterpart of [`acquire_rel`].
pub fn acquire_set(pool: Option<&SharedArena>, n: usize) -> ArenaSet {
    match pool {
        Some(p) => RelationArena::acquire_set(p, n),
        None => ArenaSet::fresh(EventSet::empty(n)),
    }
}

/// An owned [`Relation`] that may have been acquired from a
/// [`RelationArena`]; dereferences to the relation and returns its
/// storage to the pool when dropped.
#[derive(Debug)]
pub struct ArenaRel {
    rel: Relation,
    pool: Option<SharedArena>,
}

impl ArenaRel {
    /// Wrap an owned relation with no backing pool: dropping it frees
    /// the storage normally.
    pub fn fresh(rel: Relation) -> Self {
        ArenaRel { rel, pool: None }
    }

    /// Detach the relation from its pool and hand it to the caller.
    /// The storage escapes the arena for good — use only at API
    /// boundaries that must return a plain [`Relation`]; hot paths
    /// should hold the handle and let `Drop` recycle it.
    pub fn take(mut self) -> Relation {
        self.pool = None;
        std::mem::replace(&mut self.rel, Relation::empty(0))
    }
}

impl Deref for ArenaRel {
    type Target = Relation;
    fn deref(&self) -> &Relation {
        &self.rel
    }
}

impl DerefMut for ArenaRel {
    fn deref_mut(&mut self) -> &mut Relation {
        &mut self.rel
    }
}

impl PartialEq for ArenaRel {
    fn eq(&self, other: &Self) -> bool {
        self.rel == other.rel
    }
}

impl Eq for ArenaRel {}

impl Drop for ArenaRel {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            let rel = std::mem::replace(&mut self.rel, Relation::empty(0));
            pool.borrow_mut().release_rel(rel);
        }
    }
}

/// An owned [`EventSet`] counterpart of [`ArenaRel`].
#[derive(Debug)]
pub struct ArenaSet {
    set: EventSet,
    pool: Option<SharedArena>,
}

impl ArenaSet {
    /// Wrap an owned set with no backing pool.
    pub fn fresh(set: EventSet) -> Self {
        ArenaSet { set, pool: None }
    }

    /// Detach the set from its pool; see [`ArenaRel::take`].
    pub fn take(mut self) -> EventSet {
        self.pool = None;
        std::mem::replace(&mut self.set, EventSet::empty(0))
    }
}

impl Deref for ArenaSet {
    type Target = EventSet;
    fn deref(&self) -> &EventSet {
        &self.set
    }
}

impl DerefMut for ArenaSet {
    fn deref_mut(&mut self) -> &mut EventSet {
        &mut self.set
    }
}

impl PartialEq for ArenaSet {
    fn eq(&self, other: &Self) -> bool {
        self.set == other.set
    }
}

impl Eq for ArenaSet {}

impl Drop for ArenaSet {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            let set = std::mem::replace(&mut self.set, EventSet::empty(0));
            pool.borrow_mut().release_set(set);
        }
    }
}

/// Run `f` with a pooled scratch row of `words` zeroed words when a
/// pool is present, or a stack-local allocation otherwise.
pub fn with_scratch<R>(
    pool: Option<&SharedArena>,
    words: usize,
    f: impl FnOnce(&mut Vec<u64>) -> R,
) -> R {
    match pool {
        Some(p) => {
            let mut row = p.borrow_mut().take_scratch(words);
            let out = f(&mut row);
            p.borrow_mut().put_scratch(row);
            out
        }
        None => f(&mut vec![0; words]),
    }
}

/// Words needed for a scratch row over a universe of `n` events.
pub fn scratch_words(n: usize) -> usize {
    words_for(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_released_storage_across_universes() {
        let arena = shared_arena();
        {
            let mut r = RelationArena::acquire(&arena, 70);
            r.insert(0, 69);
        }
        let r = RelationArena::acquire(&arena, 5);
        assert_eq!(r.universe(), 5);
        assert!(r.is_empty(), "reused storage must be reset");
        assert!(!r.contains(0, 69));
        assert_eq!(arena.borrow().acquires(), 2);
        assert_eq!(arena.borrow().reuses(), 1);
    }

    #[test]
    fn sets_and_scratch_pool_independently() {
        let arena = shared_arena();
        {
            let mut s = RelationArena::acquire_set(&arena, 10);
            s.insert(3);
        }
        let s = RelationArena::acquire_set(&arena, 130);
        assert_eq!(s.universe(), 130);
        assert!(s.is_empty());

        let row = arena.borrow_mut().take_scratch(3);
        assert_eq!(row, vec![0; 3]);
        arena.borrow_mut().put_scratch(row);
        let row = arena.borrow_mut().take_scratch(5);
        assert_eq!(row, vec![0; 5], "reused scratch is re-zeroed and resized");
        assert_eq!(arena.borrow().reuses(), 2);
    }

    #[test]
    fn fresh_handles_have_no_pool() {
        let r = ArenaRel::fresh(Relation::from_pairs(3, [(0, 1)]));
        assert!(r.contains(0, 1));
        drop(r); // must not panic / must not touch any pool
        let s = ArenaSet::fresh(EventSet::from_iter(3, [2]));
        assert!(s.contains(2));
    }

    #[test]
    fn acquire_rel_helper_covers_both_paths() {
        let arena = shared_arena();
        drop(acquire_rel(Some(&arena), 4));
        assert_eq!(arena.borrow().acquires(), 1);
        let free = acquire_rel(None, 4);
        assert_eq!(free.universe(), 4);
        assert_eq!(arena.borrow().acquires(), 1, "None path never touches a pool");
    }

    #[test]
    fn with_scratch_pools_when_possible() {
        let arena = shared_arena();
        let sum = with_scratch(Some(&arena), 4, |row| {
            row[0] = 7;
            row.iter().sum::<u64>()
        });
        assert_eq!(sum, 7);
        assert_eq!(with_scratch(None, 2, |row| row.len()), 2);
        assert_eq!(arena.borrow().acquires(), 1);
    }
}
