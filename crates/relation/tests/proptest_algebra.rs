//! NOTE: this suite is gated behind the off-by-default `heavy-tests`
//! feature: its `proptest` dev-dependency cannot be fetched in offline
//! builds. Enable with `--features heavy-tests` after restoring the
//! `proptest` dev-dependency in this crate's Cargo.toml.
#![cfg(feature = "heavy-tests")]

//! Property-based tests: the relation algebra must satisfy the laws the
//! cat language relies on.

use lkmm_relation::{EventSet, Relation};
use proptest::prelude::*;

const N: usize = 10;

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..N, 0..N), 0..25)
        .prop_map(|pairs| Relation::from_pairs(N, pairs))
}

fn arb_set() -> impl Strategy<Value = EventSet> {
    proptest::collection::vec(0..N, 0..N).prop_map(|xs| EventSet::from_iter(N, xs))
}

proptest! {
    #[test]
    fn union_is_commutative_and_associative(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn seq_is_associative(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(a.seq(&b).seq(&c), a.seq(&b.seq(&c)));
    }

    #[test]
    fn seq_distributes_over_union(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(a.seq(&b.union(&c)), a.seq(&b).union(&a.seq(&c)));
        prop_assert_eq!(b.union(&c).seq(&a), b.seq(&a).union(&c.seq(&a)));
    }

    #[test]
    fn identity_is_seq_neutral(a in arb_relation()) {
        let id = Relation::identity(N);
        prop_assert_eq!(a.seq(&id), a.clone());
        prop_assert_eq!(id.seq(&a), a);
    }

    #[test]
    fn inverse_is_involutive_and_antidistributes(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(a.inverse().inverse(), a.clone());
        prop_assert_eq!(a.seq(&b).inverse(), b.inverse().seq(&a.inverse()));
    }

    #[test]
    fn transitive_closure_is_a_closure(a in arb_relation()) {
        let tc = a.transitive_closure();
        // Contains the original, transitive, idempotent.
        prop_assert!(a.difference(&tc).is_empty());
        prop_assert_eq!(tc.seq(&tc).difference(&tc).len(), 0);
        prop_assert_eq!(tc.transitive_closure(), tc);
    }

    #[test]
    fn closure_matches_iterated_sequence(a in arb_relation()) {
        // r+ = r ∪ r;r ∪ r;r;r ∪ … (fixpoint).
        let mut acc = a.clone();
        loop {
            let next = acc.union(&acc.seq(&a));
            if next == acc { break; }
            acc = next;
        }
        prop_assert_eq!(acc, a.transitive_closure());
    }

    #[test]
    fn acyclicity_agrees_with_closure_irreflexivity(a in arb_relation()) {
        prop_assert_eq!(a.is_acyclic(), a.transitive_closure().is_irreflexive());
    }

    #[test]
    fn find_cycle_is_consistent_with_acyclicity(a in arb_relation()) {
        match a.find_cycle() {
            None => prop_assert!(a.is_acyclic()),
            Some(cycle) => {
                prop_assert!(!a.is_acyclic());
                prop_assert!(!cycle.is_empty());
                for w in cycle.windows(2) {
                    prop_assert!(a.contains(w[0], w[1]));
                }
                prop_assert!(a.contains(*cycle.last().unwrap(), cycle[0]));
            }
        }
    }

    #[test]
    fn demorgan_for_relations(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
    }

    #[test]
    fn restriction_equals_identity_composition(a in arb_relation(), s in arb_set(), t in arb_set()) {
        prop_assert_eq!(a.restrict_domain(&s), s.as_identity().seq(&a));
        prop_assert_eq!(a.restrict_range(&t), a.seq(&t.as_identity()));
    }

    #[test]
    fn domain_range_of_cross(s in arb_set(), t in arb_set()) {
        let r = s.cross(&t);
        if !t.is_empty() {
            prop_assert_eq!(r.domain(), s.clone());
        }
        if !s.is_empty() {
            prop_assert_eq!(r.range(), t);
        }
    }

    #[test]
    fn set_algebra_laws(s in arb_set(), t in arb_set()) {
        prop_assert_eq!(s.union(&t), t.union(&s));
        prop_assert_eq!(s.difference(&t), s.intersection(&t.complement()));
        prop_assert!(s.intersection(&t).is_subset(&s));
        prop_assert!(s.is_subset(&s.union(&t)));
        prop_assert_eq!(s.complement().complement(), s);
    }

    #[test]
    fn reflexive_closures_compose(a in arb_relation()) {
        // r* = (r?)⁺ = (r⁺)?
        let star = a.reflexive_transitive_closure();
        prop_assert_eq!(a.reflexive().transitive_closure(), star.clone());
        prop_assert_eq!(a.transitive_closure().reflexive(), star);
    }
}
