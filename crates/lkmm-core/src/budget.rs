//! Resource budgets for checking work.
//!
//! A [`Budget`] bounds one logical check (or a whole corpus run) along
//! four independent axes:
//!
//! * **candidate fuel** — how many candidate executions may be emitted;
//! * **evaluation-step fuel** — how many model-evaluation steps (`cat`
//!   fixpoint instructions, native axiom passes) may run, shared across
//!   all workers via an atomic [`StepFuel`];
//! * **wall clock** — a relative [`Budget::time_limit`] and/or an
//!   absolute [`Budget::deadline`];
//! * **cancellation** — an externally owned [`CancelToken`].
//!
//! The enumerator and worker loops never look at the `Budget` directly;
//! they drive a per-thread [`Meter`], whose hot-path cost is a branch on
//! a boolean (`passive`) when no budget is set, and a strided countdown
//! otherwise, so that `Instant::now()` is consulted only every
//! [`POLL_STRIDE`] polls.
//!
//! The default `Budget` is unlimited: every meter operation is an
//! infallible no-op, which is what keeps the governed pipeline
//! byte-identical to the ungoverned one when nobody asks for limits.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which budget axis ran out. Carried inside `Inconclusive` outcomes so
/// callers can decide whether a retry with a bigger budget makes sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The candidate-execution fuel hit zero.
    Candidates,
    /// The shared model-evaluation step fuel hit zero.
    EvalSteps,
    /// The wall-clock deadline passed.
    WallClock,
    /// The [`CancelToken`] was triggered.
    Cancelled,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetKind::Candidates => "candidate budget exhausted",
            BudgetKind::EvalSteps => "evaluation-step budget exhausted",
            BudgetKind::WallClock => "wall-clock deadline exceeded",
            BudgetKind::Cancelled => "cancelled",
        })
    }
}

/// A shared, clonable cancellation flag. Cloning is cheap (one `Arc`);
/// every clone observes the same flag, so a controller thread can hold
/// one clone and cancel a check running anywhere else.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the flag. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Shared evaluation-step fuel. One tank per check, drained concurrently
/// by every worker's model session; the first consumer to drive it below
/// zero (and everyone after) sees exhaustion.
#[derive(Debug)]
pub struct StepFuel(AtomicI64);

impl StepFuel {
    /// A tank holding `steps` units (saturated to `i64::MAX`).
    pub fn new(steps: u64) -> StepFuel {
        StepFuel(AtomicI64::new(steps.min(i64::MAX as u64) as i64))
    }

    /// Burn `n` units. Returns `false` once the tank is dry; the tank
    /// may go (and stay) negative, which is fine — exhausted is
    /// exhausted.
    pub fn consume(&self, n: u64) -> bool {
        let n = n.min(i64::MAX as u64) as i64;
        self.0.fetch_sub(n, Ordering::Relaxed) > n - 1
    }

    /// Whether the tank has been drained.
    pub fn exhausted(&self) -> bool {
        self.0.load(Ordering::Relaxed) <= 0
    }
}

/// Resource limits for one check. `Default` is unlimited on every axis.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum candidate executions to emit across the whole check.
    pub max_candidates: Option<u64>,
    /// Maximum model-evaluation steps, shared by all workers.
    pub max_eval_steps: Option<u64>,
    /// Relative wall-clock limit, measured from [`Meter::start`].
    pub time_limit: Option<Duration>,
    /// Absolute wall-clock deadline (combined with `time_limit` by
    /// taking whichever comes first).
    pub deadline: Option<Instant>,
    /// External cancellation.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// An unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// True when no axis is bounded: metering is a no-op.
    pub fn is_unlimited(&self) -> bool {
        self.max_candidates.is_none()
            && self.max_eval_steps.is_none()
            && self.time_limit.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }

    /// Bound the number of candidate executions.
    pub fn with_max_candidates(mut self, n: u64) -> Budget {
        self.max_candidates = Some(n);
        self
    }

    /// Bound the number of model-evaluation steps.
    pub fn with_max_eval_steps(mut self, n: u64) -> Budget {
        self.max_eval_steps = Some(n);
        self
    }

    /// Bound wall-clock time relative to the start of the check.
    pub fn with_time_limit(mut self, limit: Duration) -> Budget {
        self.time_limit = Some(limit);
        self
    }

    /// Set an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// A fresh step-fuel tank for this budget, or `None` when eval
    /// steps are unbounded.
    pub fn step_fuel(&self) -> Option<Arc<StepFuel>> {
        self.max_eval_steps.map(|n| Arc::new(StepFuel::new(n)))
    }

    /// Start metering against this budget (resolves `time_limit` to an
    /// absolute deadline *now*).
    pub fn meter(&self) -> Meter {
        Meter::start(self)
    }
}

/// Check the clock / cancel flag only every this many [`Meter::poll`]
/// calls. Candidate fuel is still exact — it is decremented on every
/// [`Meter::spend_candidate`], never strided.
pub const POLL_STRIDE: u32 = 64;

/// Per-thread budget odometer. Cheap to poll from inner loops; see the
/// module docs for the cost model.
#[derive(Clone, Debug)]
pub struct Meter {
    candidates_left: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// True when nothing is bounded: every operation short-circuits.
    passive: bool,
    countdown: u32,
}

impl Meter {
    /// Begin metering. The budget's relative `time_limit` is pinned to
    /// an absolute deadline at this instant.
    pub fn start(budget: &Budget) -> Meter {
        let relative = budget.time_limit.map(|limit| Instant::now() + limit);
        let deadline = match (budget.deadline, relative) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let passive =
            budget.max_candidates.is_none() && deadline.is_none() && budget.cancel.is_none();
        Meter {
            candidates_left: budget.max_candidates,
            deadline,
            cancel: budget.cancel.clone(),
            passive,
            countdown: POLL_STRIDE,
        }
    }

    /// A meter that never trips.
    pub fn unlimited() -> Meter {
        Meter::start(&Budget::default())
    }

    /// Account for one emitted candidate execution; also checks the
    /// clock and cancel flag (strided).
    pub fn spend_candidate(&mut self) -> Result<(), BudgetKind> {
        if self.passive {
            return Ok(());
        }
        if let Some(left) = &mut self.candidates_left {
            if *left == 0 {
                return Err(BudgetKind::Candidates);
            }
            *left -= 1;
        }
        self.poll()
    }

    /// Cheap progress check for loops that do work *between* candidate
    /// emissions (fixpoint rounds, oracle branches, rf/co choices).
    /// Consults the clock and cancel flag once every [`POLL_STRIDE`]
    /// calls.
    #[inline]
    pub fn poll(&mut self) -> Result<(), BudgetKind> {
        if self.passive {
            return Ok(());
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return Ok(());
        }
        self.countdown = POLL_STRIDE;
        self.poll_now()
    }

    /// Unstrided check of the clock and cancel flag. Use at loop
    /// boundaries that are already coarse (per fixpoint round, per
    /// test in a corpus).
    pub fn poll_now(&mut self) -> Result<(), BudgetKind> {
        if self.passive {
            return Ok(());
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetKind::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetKind::WallClock);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_passive() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        let mut m = b.meter();
        for _ in 0..10_000 {
            m.spend_candidate().unwrap();
            m.poll().unwrap();
        }
    }

    #[test]
    fn candidate_fuel_is_exact() {
        let mut m = Budget::default().with_max_candidates(3).meter();
        for _ in 0..3 {
            m.spend_candidate().unwrap();
        }
        assert_eq!(m.spend_candidate(), Err(BudgetKind::Candidates));
        // and it stays tripped
        assert_eq!(m.spend_candidate(), Err(BudgetKind::Candidates));
    }

    #[test]
    fn zero_time_limit_trips_wall_clock() {
        let mut m = Budget::default().with_time_limit(Duration::ZERO).meter();
        assert_eq!(m.poll_now(), Err(BudgetKind::WallClock));
        // strided poll trips within one stride
        let mut m = Budget::default().with_time_limit(Duration::ZERO).meter();
        let mut tripped = false;
        for _ in 0..POLL_STRIDE {
            if m.poll() == Err(BudgetKind::WallClock) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn earliest_deadline_wins() {
        let soon = Instant::now();
        let b = Budget::default()
            .with_deadline(soon)
            .with_time_limit(Duration::from_secs(3600));
        assert_eq!(b.meter().poll_now(), Err(BudgetKind::WallClock));
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let mut m = Budget::default().with_cancel(token.clone()).meter();
        m.poll_now().unwrap();
        token.cancel();
        assert_eq!(m.poll_now(), Err(BudgetKind::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn step_fuel_exhausts_once() {
        let fuel = StepFuel::new(5);
        assert!(fuel.consume(3));
        assert!(fuel.consume(2));
        assert!(!fuel.consume(1));
        assert!(fuel.exhausted());
        // over-consumption from racers also reports exhaustion
        assert!(!fuel.consume(100));
    }

    #[test]
    fn step_fuel_zero_is_immediately_dry() {
        let fuel = StepFuel::new(0);
        assert!(!fuel.consume(1));
        assert!(fuel.exhausted());
    }
}
