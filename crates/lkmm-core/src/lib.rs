//! # lkmm-core
//!
//! Dependency-free runtime substrate shared by every layer of the LKMM
//! toolkit. Two concerns live here, both deliberately below the litmus /
//! execution / model crates so that any of them can use the machinery
//! without dependency cycles:
//!
//! * [`budget`] — resource governance: candidate-count fuel, evaluation
//!   step fuel for `cat` fixpoints, wall-clock deadlines, and shared
//!   cancellation tokens, with a strided [`budget::Meter`] cheap enough
//!   to poll from the innermost enumeration loops;
//! * [`faultpoint`] — a zero-dependency fault-injection harness. Sites
//!   are named strings compiled out entirely unless the
//!   `fault-injection` cargo feature is on, and even then inert until
//!   armed through the `LKMM_FAULTPOINTS` environment variable or the
//!   [`faultpoint::arm`] test guard;
//! * [`quota`] — per-client admission quotas for the multi-client
//!   verdict service, reusing the budget machinery as per-request
//!   governance with typed over-quota / overloaded rejections.

pub mod budget;
pub mod faultpoint;
pub mod quota;
