//! Per-client admission quotas for the multi-client verdict service.
//!
//! A [`ClientQuota`] is the service-side reuse of the [`crate::budget`]
//! machinery: where a [`Budget`] governs one *check*, a quota governs one
//! *client* — how many requests it may submit over its connection's
//! lifetime, how many may sit queued at once, and which per-request
//! budget (deadline, candidate fuel, step fuel) each admitted request
//! runs under. The server consults a per-connection [`QuotaMeter`] before
//! enqueueing work; a request over the limit is answered with a typed
//! [`RejectKind`] instead of being silently dropped or starving others.
//!
//! The two rejection kinds are deliberately distinct: `OverQuota` is the
//! *client's* fault (it exhausted its request allowance — retrying on
//! the same connection cannot help), `Overloaded` is the *server's*
//! state (the client's pending queue is full — backing off and retrying
//! is reasonable). Clients surface them as distinct exit codes.

use crate::budget::Budget;

/// Why a request was rejected at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectKind {
    /// The client exhausted its per-connection request allowance.
    OverQuota,
    /// The client's pending queue is full; retry after responses drain.
    Overloaded,
}

impl RejectKind {
    /// Stable machine-readable code carried in rejection responses.
    pub fn code(self) -> &'static str {
        match self {
            RejectKind::OverQuota => "over-quota",
            RejectKind::Overloaded => "overloaded",
        }
    }
}

impl std::fmt::Display for RejectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectKind::OverQuota => "request quota exhausted for this connection",
            RejectKind::Overloaded => "pending-request queue is full, retry later",
        })
    }
}

/// Service allowance for one client connection.
#[derive(Clone, Debug)]
pub struct ClientQuota {
    /// Total requests the client may submit over the connection's
    /// lifetime (`None` = unlimited).
    pub max_requests: Option<u64>,
    /// Requests that may sit admitted-but-unstarted at once. Submissions
    /// past this bound are rejected `Overloaded` rather than buffered
    /// without limit.
    pub max_pending: usize,
    /// Budget template each admitted request is checked under (fuel and
    /// time axes; the server pins the relative time limit to an absolute
    /// per-request deadline at dequeue).
    pub budget: Budget,
}

impl Default for ClientQuota {
    fn default() -> Self {
        ClientQuota { max_requests: None, max_pending: 64, budget: Budget::default() }
    }
}

impl ClientQuota {
    /// Builder: bound lifetime requests.
    pub fn with_max_requests(mut self, n: u64) -> Self {
        self.max_requests = Some(n);
        self
    }

    /// Builder: bound the pending queue.
    pub fn with_max_pending(mut self, n: usize) -> Self {
        self.max_pending = n;
        self
    }

    /// Builder: set the per-request budget template.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// Per-connection odometer against a [`ClientQuota`].
#[derive(Clone, Debug)]
pub struct QuotaMeter {
    max_requests: Option<u64>,
    used: u64,
}

impl QuotaMeter {
    /// Start metering a fresh connection under `quota`.
    pub fn new(quota: &ClientQuota) -> QuotaMeter {
        QuotaMeter { max_requests: quota.max_requests, used: 0 }
    }

    /// Account for one submitted request. `Err(OverQuota)` once the
    /// allowance is spent; the meter stays tripped (rejected requests do
    /// not burn allowance, but nothing un-trips a spent one).
    pub fn admit(&mut self) -> Result<(), RejectKind> {
        match self.max_requests {
            Some(max) if self.used >= max => Err(RejectKind::OverQuota),
            _ => {
                self.used += 1;
                Ok(())
            }
        }
    }

    /// Requests admitted so far.
    pub fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_quota_always_admits() {
        let mut m = QuotaMeter::new(&ClientQuota::default());
        for _ in 0..10_000 {
            m.admit().unwrap();
        }
        assert_eq!(m.used(), 10_000);
    }

    #[test]
    fn bounded_quota_trips_and_stays_tripped() {
        let quota = ClientQuota::default().with_max_requests(2);
        let mut m = QuotaMeter::new(&quota);
        m.admit().unwrap();
        m.admit().unwrap();
        assert_eq!(m.admit(), Err(RejectKind::OverQuota));
        assert_eq!(m.admit(), Err(RejectKind::OverQuota));
        assert_eq!(m.used(), 2, "rejected requests never count as used");
    }

    #[test]
    fn reject_codes_are_stable() {
        assert_eq!(RejectKind::OverQuota.code(), "over-quota");
        assert_eq!(RejectKind::Overloaded.code(), "overloaded");
        assert!(RejectKind::OverQuota.to_string().contains("quota"));
        assert!(RejectKind::Overloaded.to_string().contains("retry"));
    }

    #[test]
    fn zero_quota_rejects_immediately() {
        let mut m = QuotaMeter::new(&ClientQuota::default().with_max_requests(0));
        assert_eq!(m.admit(), Err(RejectKind::OverQuota));
    }
}
