//! Zero-dependency fault injection.
//!
//! A *fault point* is a named site in production code where a test run
//! can force a failure: an I/O error in the verdict store, a panic in a
//! pipeline worker, a budget trip in the enumerator. Sites are plain
//! `&'static str` names; the convention is `layer.event`
//! (`store.flush`, `worker.panic`, `enum.budget`).
//!
//! Without the `fault-injection` cargo feature (the default) every
//! function here is a `const`-foldable no-op — the harness costs
//! nothing and cannot fire in production builds. With the feature on,
//! sites stay inert until *armed*, either
//!
//! * by the environment: `LKMM_FAULTPOINTS="store.flush,worker.panic=3"`
//!   — a bare name fires on every hit, `name=N` fires only on the Nth
//!   hit of that site (1-based), and `name=N:K` fires on hits
//!   `N..N+K-1` then disarms (a *poisoned* site that fails K times in a
//!   row — enough to exhaust a retry budget — then clears); or
//! * programmatically in tests via [`arm`], which holds a global lock
//!   for its guard's lifetime (serialising fault tests against each
//!   other) and disarms its sites on drop.

#[cfg(feature = "fault-injection")]
mod enabled {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Fast-path gate: false ⇒ nothing is armed anywhere, skip the map.
    static ANY: AtomicBool = AtomicBool::new(false);
    static STATE: OnceLock<Mutex<Config>> = OnceLock::new();
    /// Serialises [`arm`]-based tests; env-var arming does not take it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[derive(Clone, Copy)]
    enum Trigger {
        Always,
        /// Fire on hits `first..first + count - 1` (1-based), then
        /// disarm. `count == 1` is the plain `name=N` Nth-hit form.
        OnHits { first: u64, count: u64 },
    }

    #[derive(Default)]
    struct Config {
        sites: HashMap<String, Trigger>,
        hits: HashMap<String, u64>,
    }

    fn state() -> &'static Mutex<Config> {
        STATE.get_or_init(|| {
            let mut config = Config::default();
            if let Ok(spec) = std::env::var("LKMM_FAULTPOINTS") {
                parse_spec_into(&spec, &mut config);
            }
            if !config.sites.is_empty() {
                ANY.store(true, Ordering::SeqCst);
            }
            Mutex::new(config)
        })
    }

    fn parse_spec_into(spec: &str, config: &mut Config) {
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, trigger) = match part.split_once('=') {
                Some((name, spec)) => {
                    let (first, count) = match spec.split_once(':') {
                        Some((n, k)) => (n.trim().parse::<u64>(), k.trim().parse::<u64>()),
                        None => (spec.trim().parse::<u64>(), Ok(1)),
                    };
                    match (first, count) {
                        (Ok(first), Ok(count)) if first >= 1 && count >= 1 => {
                            (name.trim(), Trigger::OnHits { first, count })
                        }
                        _ => continue, // malformed trigger: ignore, stay safe
                    }
                }
                None => (part, Trigger::Always),
            };
            config.sites.insert(name.to_string(), trigger);
        }
    }

    /// Whether `site` should fail right now. Counts a hit against the
    /// site whenever *any* site is armed.
    pub fn should_fail(site: &str) -> bool {
        if !ANY.load(Ordering::Relaxed) {
            // Force env parsing on first call even when nothing is
            // armed yet, so ANY reflects LKMM_FAULTPOINTS.
            if STATE.get().is_none() {
                state();
                if !ANY.load(Ordering::Relaxed) {
                    return false;
                }
            } else {
                return false;
            }
        }
        let mut config = state().lock().unwrap();
        let Some(&trigger) = config.sites.get(site) else {
            return false;
        };
        let hits = config.hits.entry(site.to_string()).or_insert(0);
        *hits += 1;
        match trigger {
            Trigger::Always => true,
            Trigger::OnHits { first, count } => {
                let hit = *hits;
                if hit + 1 == first + count {
                    config.sites.remove(site);
                }
                hit >= first && hit < first + count
            }
        }
    }

    /// Panic (with a recognisable payload) if `site` is armed.
    pub fn maybe_panic(site: &str) {
        if should_fail(site) {
            panic!("faultpoint: injected panic at `{site}`");
        }
    }

    /// Return an injected `io::Error` if `site` is armed.
    pub fn inject_io(site: &str) -> std::io::Result<()> {
        if should_fail(site) {
            Err(std::io::Error::new(
                std::io::ErrorKind::Other,
                format!("faultpoint: injected I/O error at `{site}`"),
            ))
        } else {
            Ok(())
        }
    }

    /// Guard returned by [`arm`]; disarms its sites (and resets their
    /// hit counters) when dropped.
    pub struct ArmGuard {
        names: Vec<String>,
        _serial: MutexGuard<'static, ()>,
    }

    impl Drop for ArmGuard {
        fn drop(&mut self) {
            let mut config = state().lock().unwrap();
            for name in &self.names {
                config.sites.remove(name);
                config.hits.remove(name);
            }
            if config.sites.is_empty() {
                ANY.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Arm sites from a spec string (same grammar as the env variable)
    /// for the lifetime of the returned guard. Takes a global test
    /// lock, so concurrent `#[test]`s using `arm` serialise instead of
    /// seeing each other's faults.
    pub fn arm(spec: &str) -> ArmGuard {
        let serial = TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut staged = Config::default();
        parse_spec_into(spec, &mut staged);
        let names: Vec<String> = staged.sites.keys().cloned().collect();
        let mut config = state().lock().unwrap();
        for (name, trigger) in staged.sites {
            config.hits.remove(&name);
            config.sites.insert(name, trigger);
        }
        if !config.sites.is_empty() {
            ANY.store(true, Ordering::SeqCst);
        }
        drop(config);
        ArmGuard { names, _serial: serial }
    }
}

#[cfg(feature = "fault-injection")]
pub use enabled::{arm, inject_io, maybe_panic, should_fail, ArmGuard};

#[cfg(not(feature = "fault-injection"))]
mod disabled {
    /// Always `false` without the `fault-injection` feature.
    #[inline(always)]
    pub fn should_fail(_site: &str) -> bool {
        false
    }

    /// No-op without the `fault-injection` feature.
    #[inline(always)]
    pub fn maybe_panic(_site: &str) {}

    /// Always `Ok(())` without the `fault-injection` feature.
    #[inline(always)]
    pub fn inject_io(_site: &str) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(not(feature = "fault-injection"))]
pub use disabled::{inject_io, maybe_panic, should_fail};

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_never_fire() {
        assert!(!should_fail("no.such.site"));
        maybe_panic("no.such.site");
        inject_io("no.such.site").unwrap();
    }

    #[test]
    fn arm_always_fires_until_dropped() {
        let guard = arm("test.alpha");
        assert!(should_fail("test.alpha"));
        assert!(should_fail("test.alpha"));
        assert!(!should_fail("test.other"));
        drop(guard);
        assert!(!should_fail("test.alpha"));
    }

    #[test]
    fn arm_nth_hit_fires_exactly_once() {
        let _guard = arm("test.beta=3");
        assert!(!should_fail("test.beta"));
        assert!(!should_fail("test.beta"));
        assert!(should_fail("test.beta"));
        assert!(!should_fail("test.beta"));
    }

    #[test]
    fn arm_hit_range_fires_k_times_then_disarms() {
        let _guard = arm("test.delta=2:3");
        assert!(!should_fail("test.delta"), "hit 1 is before the window");
        assert!(should_fail("test.delta"));
        assert!(should_fail("test.delta"));
        assert!(should_fail("test.delta"), "hits 2..4 all fire");
        assert!(!should_fail("test.delta"), "window exhausted, disarmed");
        assert!(!should_fail("test.delta"));
    }

    #[test]
    fn malformed_range_is_ignored() {
        let _guard = arm("test.eps=0:3,test.zeta=2:0,test.eta=x:y");
        assert!(!should_fail("test.eps"));
        assert!(!should_fail("test.zeta"));
        assert!(!should_fail("test.eta"));
    }

    #[test]
    fn injected_io_error_is_labelled() {
        let _guard = arm("test.gamma");
        let err = inject_io("test.gamma").unwrap_err();
        assert!(err.to_string().contains("test.gamma"));
    }
}
