//! Delta-debugging minimizer for discrepancies.
//!
//! Given a failing test and a keep-predicate (the discrepancy's
//! [`Recheck`](crate::oracle::Recheck), re-evaluated from scratch), the
//! shrinker repeatedly tries structural *removals* —
//!
//! 1. drop a whole thread (remapping condition thread indices),
//! 2. drop one statement, or flatten an `if` into its branches
//!    (removing the control dependency),
//! 3. drop one conjunct of the final-state condition,
//!
//! — keeping a candidate only when it still validates
//! ([`lkmm_litmus::validate`]) *and* the predicate still fails, and
//! looping to a fixpoint. Because every accepted step removes
//! something, the result is never larger than the input; because the
//! predicate is the exact failing oracle pair, the result still
//! discriminates the same two checkers.
//!
//! Predicate evaluations that come back inconclusive (budget trips)
//! count as "fixed", so the shrinker conservatively keeps the larger,
//! known-failing test instead of walking into unverifiable territory.

use lkmm_litmus::ast::{Stmt, Test};
use lkmm_litmus::cond::{Condition, Prop, StateTerm};
use lkmm_litmus::validate;
use std::collections::BTreeSet;

/// A minimized witness.
#[derive(Clone, Debug)]
pub struct Shrunk {
    /// The minimal discriminating test, in canonical litmus form.
    pub litmus: String,
    /// Structural size of the witness (see [`test_size`]).
    pub size: usize,
    /// Candidate reductions tried.
    pub attempts: usize,
    /// Reductions accepted (each one removed something).
    pub accepted: usize,
}

/// Structural size of a test: statements (nested ones included) plus
/// condition conjuncts. Every shrink step strictly decreases this, which
/// both bounds the loop and underwrites the "no larger than the
/// original" guarantee.
pub fn test_size(test: &Test) -> usize {
    fn stmts(body: &[Stmt]) -> usize {
        body.iter()
            .map(|s| match s {
                Stmt::If { then_, else_, .. } => 1 + stmts(then_) + stmts(else_),
                _ => 1,
            })
            .sum()
    }
    test.threads.iter().map(|t| stmts(&t.body)).sum::<usize>() + conjuncts(&test.condition.prop).len()
}

/// Flatten a top-level `And` chain into its conjuncts (a non-`And` prop
/// is a single conjunct; `True` is none).
fn conjuncts(prop: &Prop) -> Vec<Prop> {
    match prop {
        Prop::True => Vec::new(),
        Prop::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

fn prop_mentions_thread(prop: &Prop, thread: usize) -> bool {
    prop.terms().iter().any(|t| matches!(t, StateTerm::Reg { thread: tid, .. } if *tid == thread))
}

fn remap_term_threads(prop: &Prop, dropped: usize) -> Prop {
    match prop {
        Prop::True => Prop::True,
        Prop::Eq(StateTerm::Reg { thread, reg }, v) => Prop::Eq(
            StateTerm::Reg {
                thread: if *thread > dropped { thread - 1 } else { *thread },
                reg: reg.clone(),
            },
            v.clone(),
        ),
        Prop::Eq(t, v) => Prop::Eq(t.clone(), v.clone()),
        Prop::And(a, b) => Prop::And(
            Box::new(remap_term_threads(a, dropped)),
            Box::new(remap_term_threads(b, dropped)),
        ),
        Prop::Or(a, b) => Prop::Or(
            Box::new(remap_term_threads(a, dropped)),
            Box::new(remap_term_threads(b, dropped)),
        ),
        Prop::Not(p) => Prop::Not(Box::new(remap_term_threads(p, dropped))),
    }
}

/// `test` without thread `i`: condition conjuncts mentioning the thread
/// are dropped, surviving thread indices shifted down.
fn drop_thread(test: &Test, i: usize) -> Test {
    let mut out = test.clone();
    out.threads.remove(i);
    let kept: Vec<Prop> = conjuncts(&test.condition.prop)
        .into_iter()
        .filter(|c| !prop_mentions_thread(c, i))
        .map(|c| remap_term_threads(&c, i))
        .collect();
    out.condition = Condition { quantifier: test.condition.quantifier, prop: Prop::all(kept) };
    out
}

/// Registers assigned anywhere in a statement list.
fn assigned_regs(body: &[Stmt], out: &mut BTreeSet<String>) {
    for s in body {
        match s {
            Stmt::ReadOnce { dst, .. }
            | Stmt::LoadAcquire { dst, .. }
            | Stmt::RcuDereference { dst, .. }
            | Stmt::Xchg { dst, .. }
            | Stmt::CmpXchg { dst, .. }
            | Stmt::Assign { dst, .. } => {
                out.insert(dst.clone());
            }
            Stmt::AtomicOp { dst: Some((d, _)), .. } => {
                out.insert(d.clone());
            }
            Stmt::If { then_, else_, .. } => {
                assigned_regs(then_, out);
                assigned_regs(else_, out);
            }
            _ => {}
        }
    }
}

/// Drop condition conjuncts whose register terms are no longer assigned
/// (after a statement removal), so the reduced test can validate.
fn prune_dangling_conjuncts(test: &mut Test) {
    let per_thread: Vec<BTreeSet<String>> = test
        .threads
        .iter()
        .map(|t| {
            let mut regs = BTreeSet::new();
            assigned_regs(&t.body, &mut regs);
            regs
        })
        .collect();
    let kept: Vec<Prop> = conjuncts(&test.condition.prop)
        .into_iter()
        .filter(|c| {
            c.terms().iter().all(|term| match term {
                StateTerm::Reg { thread, reg } => {
                    per_thread.get(*thread).is_some_and(|regs| regs.contains(reg))
                }
                StateTerm::Loc(_) => true,
            })
        })
        .collect();
    test.condition =
        Condition { quantifier: test.condition.quantifier, prop: Prop::all(kept) };
}

/// Every single-statement removal of `test`: dropping one top-level or
/// nested statement, plus flattening one `if` into its branch bodies
/// (which deletes the control dependency but keeps the branch effects).
fn stmt_reductions(test: &Test) -> Vec<Test> {
    // Paths are (thread, index-path into nested If blocks).
    fn collect_paths(body: &[Stmt], prefix: &[usize], out: &mut Vec<Vec<usize>>) {
        for (i, s) in body.iter().enumerate() {
            let mut path = prefix.to_vec();
            path.push(i);
            out.push(path.clone());
            if let Stmt::If { then_, else_, .. } = s {
                let mut then_path = path.clone();
                then_path.push(0);
                collect_paths(then_, &then_path, out);
                let mut else_path = path;
                else_path.push(1);
                collect_paths(else_, &else_path, out);
            }
        }
    }
    // Apply one edit at `path`: remove the statement, or (If only)
    // splice its branches in place of the If.
    fn edit(body: &mut Vec<Stmt>, path: &[usize], flatten: bool) {
        let i = path[0];
        if path.len() == 1 {
            if flatten {
                if let Stmt::If { then_, else_, .. } = body[i].clone() {
                    let mut spliced = then_;
                    spliced.extend(else_);
                    body.splice(i..=i, spliced);
                }
            } else {
                body.remove(i);
            }
            return;
        }
        if let Stmt::If { then_, else_, .. } = &mut body[i] {
            let branch = if path[1] == 0 { then_ } else { else_ };
            edit(branch, &path[2..], flatten);
        }
    }

    let mut out = Vec::new();
    for (tid, thread) in test.threads.iter().enumerate() {
        let mut paths = Vec::new();
        collect_paths(&thread.body, &[], &mut paths);
        for path in paths {
            // Statement path encoding alternates index / branch-selector,
            // so the statement itself sits at odd path lengths.
            let is_if = {
                fn at<'a>(body: &'a [Stmt], path: &[usize]) -> Option<&'a Stmt> {
                    let s = body.get(path[0])?;
                    if path.len() == 1 {
                        return Some(s);
                    }
                    match s {
                        Stmt::If { then_, else_, .. } => {
                            at(if path[1] == 0 { then_ } else { else_ }, &path[2..])
                        }
                        _ => None,
                    }
                }
                matches!(at(&thread.body, &path), Some(Stmt::If { .. }))
            };
            for flatten in if is_if { vec![false, true] } else { vec![false] } {
                let mut cand = test.clone();
                edit(&mut cand.threads[tid].body, &path, flatten);
                prune_dangling_conjuncts(&mut cand);
                out.push(cand);
            }
        }
    }
    out
}

/// Every single-conjunct removal of the final condition.
fn conjunct_reductions(test: &Test) -> Vec<Test> {
    let cs = conjuncts(&test.condition.prop);
    (0..cs.len())
        .map(|drop| {
            let kept: Vec<Prop> = cs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, c)| c.clone())
                .collect();
            let mut cand = test.clone();
            cand.condition =
                Condition { quantifier: test.condition.quantifier, prop: Prop::all(kept) };
            cand
        })
        .collect()
}

/// Minimize `test` against `still_fails` by greedy removal to fixpoint.
///
/// `still_fails` must return `true` iff the candidate still exhibits
/// the discrepancy; it is only ever called on structurally valid tests
/// with at least one thread. The returned test is `test` itself if no
/// reduction survives.
pub fn shrink(test: &Test, still_fails: &mut dyn FnMut(&Test) -> bool) -> (Test, usize, usize) {
    let mut current = test.clone();
    let mut attempts = 0usize;
    let mut accepted = 0usize;
    loop {
        let mut reduced = false;
        // Threads first: the biggest cuts, and thread removal often
        // unlocks further statement removals.
        let mut candidates: Vec<Test> = Vec::new();
        if current.threads.len() > 1 {
            candidates.extend((0..current.threads.len()).map(|i| drop_thread(&current, i)));
        }
        candidates.extend(stmt_reductions(&current));
        candidates.extend(conjunct_reductions(&current));
        for cand in candidates {
            if cand.threads.is_empty() || test_size(&cand) >= test_size(&current) {
                continue;
            }
            if !validate(&cand).is_empty() {
                continue;
            }
            attempts += 1;
            if still_fails(&cand) {
                current = cand;
                accepted += 1;
                reduced = true;
                break; // restart reduction enumeration from the smaller test
            }
        }
        if !reduced {
            return (current, attempts, accepted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::parse;

    #[test]
    fn size_counts_nested_statements_and_conjuncts() {
        let t = lkmm_litmus::library::by_name("LB+ctrl+mb").unwrap().test();
        // P0: read + if(write) = 3; P1: read + fence + write = 3; 2 conjuncts.
        assert_eq!(test_size(&t), 8);
    }

    #[test]
    fn drop_thread_remaps_condition_indices() {
        let t = lkmm_litmus::library::by_name("MP").unwrap().test();
        let dropped = drop_thread(&t, 0);
        assert_eq!(dropped.threads.len(), 1);
        assert!(validate(&dropped).is_empty(), "{:?}", validate(&dropped));
        // MP's condition only mentions P1, which is now P0.
        assert!(dropped.condition.prop.terms().iter().all(
            |term| matches!(term, StateTerm::Reg { thread: 0, .. })
        ));
    }

    #[test]
    fn statement_removal_prunes_dangling_condition_terms() {
        let t = parse(
            "C t\n{ x=0; }\nP0(int *x) { int r0; r0 = READ_ONCE(*x); WRITE_ONCE(*x, 1); }\nexists (0:r0=1)",
        )
        .unwrap();
        let reductions = stmt_reductions(&t);
        // Dropping the read must also drop the 0:r0=1 conjunct.
        assert!(reductions.iter().all(|cand| validate(cand).is_empty()));
        assert!(reductions.iter().any(|cand| cand.condition.prop == Prop::True));
    }

    #[test]
    fn shrink_reaches_a_small_fixpoint() {
        // Predicate: the test still writes x somewhere. Minimal witness:
        // one thread, one write, true condition.
        let t = lkmm_litmus::library::by_name("MP+wmb+rmb").unwrap().test();
        let writes_x = |cand: &Test| {
            fn has_write(body: &[Stmt]) -> bool {
                body.iter().any(|s| match s {
                    Stmt::WriteOnce { addr: lkmm_litmus::ast::AddrExpr::Var(v), .. } => v == "x",
                    Stmt::If { then_, else_, .. } => has_write(then_) || has_write(else_),
                    _ => false,
                })
            }
            cand.threads.iter().any(|th| has_write(&th.body))
        };
        let mut pred = |cand: &Test| writes_x(cand);
        let (minimal, attempts, accepted) = shrink(&t, &mut pred);
        assert!(writes_x(&minimal));
        assert_eq!(test_size(&minimal), 1);
        assert_eq!(minimal.threads.len(), 1);
        assert!(attempts >= accepted);
        assert!(accepted > 0);
    }

    #[test]
    fn shrink_never_grows_and_flattens_control_dependencies() {
        let t = lkmm_litmus::library::by_name("LB+ctrl+mb").unwrap().test();
        let original = test_size(&t);
        // Keep anything that still has a write to y (the If body's write
        // survives flattening).
        let mut pred = |cand: &Test| {
            fn writes_y(body: &[Stmt]) -> bool {
                body.iter().any(|s| match s {
                    Stmt::WriteOnce { addr: lkmm_litmus::ast::AddrExpr::Var(v), .. } => v == "y",
                    Stmt::If { then_, else_, .. } => writes_y(then_) || writes_y(else_),
                    _ => false,
                })
            }
            cand.threads.iter().any(|th| writes_y(&th.body))
        };
        let (minimal, ..) = shrink(&t, &mut pred);
        assert!(test_size(&minimal) <= original);
        assert_eq!(test_size(&minimal), 1);
        // The surviving write is no longer under an If.
        assert!(minimal
            .threads
            .iter()
            .flat_map(|th| &th.body)
            .all(|s| !matches!(s, Stmt::If { .. })));
    }
}
