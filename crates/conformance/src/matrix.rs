//! The verdict matrix: every corpus test × every checker.
//!
//! A [`ModelId`] names one column of the paper's §5 comparison — the two
//! LKMM formulations, the SC/TSO/ARMv8/Power comparison models, and
//! original C11 under the P0124 mapping. A [`ModelSet`] holds the
//! instantiated checkers (tests swap in deliberately broken mutants via
//! [`ModelSet::replace`]); [`build_matrix`] runs the corpus through the
//! single-enumeration [`MultiBatchChecker`]: each cold test is
//! enumerated **once** and every missing column's verdict is read off
//! that one pass via the shared execution-facts layer. Cache keys are
//! unchanged from the per-column [`lkmm_service::BatchChecker`] era, so
//! a matrix over an on-disk store is incremental: re-running a campaign
//! replays every cached verdict and enumerates nothing.
//!
//! Not every checker covers every test: the hardware models and C11 have
//! no RCU read-side semantics, and C11 has no RCU at all ("–" in
//! Table 5). Unsupported cells are `None` and the oracles skip them.

use lkmm_core::budget::Budget;
use lkmm_exec::{CheckOutcome, ConsistencyModel, EnumOptions, EnumStats, Verdict};
use lkmm_litmus::ast::{Stmt, Test};
use lkmm_litmus::library::Expect;
use lkmm_litmus::FenceKind;
use lkmm_models::OriginalC11;
use lkmm_service::{MultiBatchChecker, MultiColumn, VerdictStore};
use std::io;
use std::path::Path;

/// One column of the verdict matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// The native LKMM (Figure 3/8 axioms plus the Figure 12 RCU axiom).
    LkmmNative,
    /// The LKMM interpreted from its embedded cat file.
    LkmmCat,
    /// Sequential consistency.
    Sc,
    /// x86-TSO.
    Tso,
    /// Simplified ARMv8.
    Armv8,
    /// IBM Power.
    Power,
    /// Original C11 under the P0124 mapping.
    C11,
}

impl ModelId {
    /// Every column, in matrix order.
    pub const ALL: [ModelId; 7] = [
        ModelId::LkmmNative,
        ModelId::LkmmCat,
        ModelId::Sc,
        ModelId::Tso,
        ModelId::Armv8,
        ModelId::Power,
        ModelId::C11,
    ];

    /// Position of this column in [`ModelId::ALL`] (and in every row's
    /// cell vector).
    pub fn index(self) -> usize {
        ModelId::ALL.iter().position(|m| *m == self).expect("ALL is total")
    }

    /// Stable column name used in reports and the CLI.
    pub fn column(self) -> &'static str {
        match self {
            ModelId::LkmmNative => "lkmm",
            ModelId::LkmmCat => "lkmm-cat",
            ModelId::Sc => "sc",
            ModelId::Tso => "tso",
            ModelId::Armv8 => "armv8",
            ModelId::Power => "power",
            ModelId::C11 => "c11",
        }
    }

    /// Instantiate the reference checker for this column.
    pub fn instantiate(self) -> Box<dyn ConsistencyModel> {
        match self {
            ModelId::LkmmNative => Box::new(lkmm::Lkmm::new()),
            ModelId::LkmmCat => Box::new(lkmm_cat::linux_kernel_model()),
            ModelId::Sc => Box::new(lkmm_models::Sc),
            ModelId::Tso => Box::new(lkmm_models::X86Tso),
            ModelId::Armv8 => Box::new(lkmm_models::Armv8),
            ModelId::Power => Box::new(lkmm_models::Power),
            ModelId::C11 => Box::new(lkmm_models::OriginalC11),
        }
    }

    /// Whether this checker's semantics cover `test`. Both LKMM
    /// formulations and SC cover everything; the hardware models have no
    /// RCU read-side or SRCU semantics; C11 additionally excludes every
    /// RCU primitive (see [`OriginalC11::supports`]).
    pub fn supports(self, test: &Test) -> bool {
        match self {
            ModelId::LkmmNative | ModelId::LkmmCat | ModelId::Sc => true,
            ModelId::Tso | ModelId::Armv8 | ModelId::Power => {
                !uses_rcu_read_side(test) && !uses_srcu(test)
            }
            ModelId::C11 => OriginalC11::supports(test) && !uses_srcu(test),
        }
    }
}

/// Whether the test opens an RCU read-side critical section.
pub fn uses_rcu_read_side(test: &Test) -> bool {
    fn in_stmts(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Fence(FenceKind::RcuLock | FenceKind::RcuUnlock) => true,
            Stmt::If { then_, else_, .. } => in_stmts(then_) || in_stmts(else_),
            _ => false,
        })
    }
    test.threads.iter().any(|t| in_stmts(&t.body))
}

/// Whether the test uses any SRCU primitive.
pub fn uses_srcu(test: &Test) -> bool {
    fn in_stmts(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::SrcuReadLock { .. }
            | Stmt::SrcuReadUnlock { .. }
            | Stmt::SynchronizeSrcu { .. } => true,
            Stmt::If { then_, else_, .. } => in_stmts(then_) || in_stmts(else_),
            _ => false,
        })
    }
    test.threads.iter().any(|t| in_stmts(&t.body))
}

/// The instantiated checkers of a campaign, one per [`ModelId`].
///
/// The standard set holds every reference model. Tests exercise the
/// oracle layer by swapping one column for a broken mutant — e.g.
/// `set.replace(ModelId::LkmmCat, Box::new(AllowAll))` makes the
/// native≡cat oracle fire on every test the two disagree about.
pub struct ModelSet {
    entries: Vec<(ModelId, Box<dyn ConsistencyModel>)>,
}

impl ModelSet {
    /// Every reference checker.
    pub fn standard() -> ModelSet {
        ModelSet {
            entries: ModelId::ALL.iter().map(|&id| (id, id.instantiate())).collect(),
        }
    }

    /// Swap the checker behind `id` (mutant injection for tests).
    pub fn replace(&mut self, id: ModelId, model: Box<dyn ConsistencyModel>) {
        let slot = self
            .entries
            .iter_mut()
            .find(|(e, _)| *e == id)
            .expect("ModelSet::standard covers every id");
        slot.1 = model;
    }

    /// The checker behind `id`.
    pub fn get(&self, id: ModelId) -> &dyn ConsistencyModel {
        self.entries
            .iter()
            .find(|(e, _)| *e == id)
            .map(|(_, m)| m.as_ref())
            .expect("ModelSet::standard covers every id")
    }
}

impl Default for ModelSet {
    fn default() -> Self {
        ModelSet::standard()
    }
}

/// Where a corpus test came from — the oracles treat library rows
/// specially (the paper states their expected verdicts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// A named paper test, with its published expectations.
    Library {
        /// Expected LKMM verdict (Table 5 "Model" column).
        lkmm: Expect,
        /// Expected C11 verdict; `None` for RCU rows ("–").
        c11: Option<Expect>,
    },
    /// A diy-generated critical-cycle test.
    Generated,
    /// An algorithm-family program ([`lkmm_algorithms`]), carrying the
    /// family's declared LKMM expectation for the program's
    /// safety-violation condition.
    Algorithm {
        /// Stable family name ([`lkmm_algorithms::FamilyId::name`]).
        family: &'static str,
        /// The invariant the condition encodes (mutual exclusion, no
        /// use-after-free, …) — report text only.
        invariant: &'static str,
        /// Expected LKMM verdict: `Forbidden` for the correctly-ordered
        /// variant, `Allowed` for deliberately weakened twins.
        expect: Verdict,
    },
}

/// One corpus member: the test plus its origin.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    pub test: Test,
    pub origin: Origin,
}

/// One row of the verdict matrix: a test and one cell per [`ModelId`]
/// (`None` where the checker does not cover the test).
#[derive(Clone, Debug)]
pub struct MatrixRow {
    pub test: Test,
    pub origin: Origin,
    /// Indexed by [`ModelId::index`].
    pub cells: Vec<Option<CheckOutcome>>,
}

impl MatrixRow {
    /// The cell for one column.
    pub fn cell(&self, id: ModelId) -> Option<&CheckOutcome> {
        self.cells[id.index()].as_ref()
    }

    /// The completed verdict for one column, if the cell is present and
    /// the check finished.
    pub fn verdict(&self, id: ModelId) -> Option<Verdict> {
        self.cell(id).and_then(CheckOutcome::result).map(|r| r.verdict)
    }
}

/// The full verdict matrix.
#[derive(Clone, Debug, Default)]
pub struct VerdictMatrix {
    pub rows: Vec<MatrixRow>,
}

/// Per-model aggregate counts from one matrix build.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelPass {
    /// Tests this checker covered.
    pub checked: usize,
    /// Completed `Allow` verdicts.
    pub allowed: usize,
    /// Completed `Forbid` verdicts.
    pub forbidden: usize,
    /// Checks stopped by the budget (cells stay present but inconclusive).
    pub inconclusive: usize,
    /// Tests outside the checker's fragment (cells absent).
    pub skipped: usize,
    /// Store hits (observability only — never part of the report JSON,
    /// which must be byte-identical between cold and warm runs).
    pub hits: usize,
    /// Tests enumerated and checked to completion this pass.
    pub computed: usize,
    /// Tests answered by another test in the same corpus with the same
    /// canonical form (neither a store hit nor a fresh computation).
    pub deduped: usize,
    /// Candidate executions enumerated this pass (0 on a warm store).
    pub candidates_enumerated: usize,
}

/// Knobs for one matrix build (a subset of the campaign config).
pub struct MatrixOptions<'a> {
    /// Cache version salt (the per-model component is the model name,
    /// already folded into every key by the batch checker).
    pub salt: &'a str,
    /// Pipeline worker threads per check (0 = all hardware threads).
    pub jobs: usize,
    /// Per-worker candidate queue bound.
    pub queue_depth: usize,
    /// Per-check budget; exceeding it leaves an inconclusive cell.
    pub budget: Budget,
    /// Persistent verdict store; `None` checks in memory.
    pub store_path: Option<&'a Path>,
    /// Shared enumeration pruning counters (observability only — like
    /// store hits, never part of cache keys or the default report JSON).
    pub enum_stats: Option<std::sync::Arc<EnumStats>>,
    /// Shared data-plane counters (batch occupancy, arena reuse) from
    /// the checking pipeline. Observability only, like `enum_stats`.
    pub data_plane: Option<std::sync::Arc<lkmm_exec::DataPlaneStats>>,
}

impl Default for MatrixOptions<'_> {
    fn default() -> Self {
        MatrixOptions {
            salt: "",
            jobs: 0,
            queue_depth: 256,
            budget: Budget::default(),
            store_path: None,
            enum_stats: None,
            data_plane: None,
        }
    }
}

/// Build the verdict matrix for `corpus` under `set`.
///
/// All columns run through one [`MultiBatchChecker`]: per test, every
/// column is first answered from the store, and the columns still
/// missing share a single governed enumeration pass. Per-column cache
/// keys are byte-identical to the old one-`BatchChecker`-per-column
/// scheme (one salt per column: the checker folds the model's *name*
/// into every key, but the native and cat formulations both answer to
/// "LKMM" — without a per-column salt a warm store would replay one
/// column's verdicts for the other, silently blinding the native≡cat
/// oracle). Inconclusive outcomes occupy their cell but are never
/// written back.
///
/// # Errors
///
/// Store I/O failure only — budget trips and enumeration problems
/// surface as inconclusive cells, not errors.
pub fn build_matrix(
    corpus: &[CorpusEntry],
    set: &ModelSet,
    opts: &MatrixOptions<'_>,
) -> io::Result<(VerdictMatrix, Vec<ModelPass>)> {
    let mut rows: Vec<MatrixRow> = corpus
        .iter()
        .map(|e| MatrixRow {
            test: e.test.clone(),
            origin: e.origin.clone(),
            cells: vec![None; ModelId::ALL.len()],
        })
        .collect();
    let tests: Vec<Test> = corpus.iter().map(|e| e.test.clone()).collect();
    let mask: Vec<Vec<bool>> = ModelId::ALL
        .iter()
        .map(|&id| tests.iter().map(|t| id.supports(t)).collect())
        .collect();

    let store = match opts.store_path {
        Some(path) => VerdictStore::open(path)?,
        None => VerdictStore::in_memory(),
    };
    let columns: Vec<MultiColumn<'_>> = ModelId::ALL
        .iter()
        .map(|&id| MultiColumn {
            model: set.get(id),
            salt: format!("{}|col:{}", opts.salt, id.column()),
        })
        .collect();
    let mut checker = MultiBatchChecker::new(columns, store)
        .with_options(EnumOptions { stats: opts.enum_stats.clone(), ..EnumOptions::default() })
        .with_pipeline_stats(opts.data_plane.clone())
        .with_jobs(opts.jobs)
        .with_queue_depth(opts.queue_depth)
        .with_budget(opts.budget.clone());
    let report = match checker.check_corpus(&tests, &mask) {
        Ok(r) => r,
        Err(lkmm_service::BatchError::Io(e)) => return Err(e),
        Err(lkmm_service::BatchError::Generate(e)) => {
            unreachable!("check_corpus does not generate: {e}")
        }
    };

    let mut passes = Vec::with_capacity(ModelId::ALL.len());
    for (col, &id) in report.columns.iter().zip(&ModelId::ALL) {
        let mut pass = ModelPass {
            hits: col.hits,
            computed: col.computed,
            deduped: col.deduped,
            candidates_enumerated: col.candidates_enumerated,
            ..ModelPass::default()
        };
        for (row_idx, outcome) in col.outcomes.iter().enumerate() {
            let Some(outcome) = outcome else {
                pass.skipped += 1;
                continue;
            };
            pass.checked += 1;
            match &outcome.outcome {
                CheckOutcome::Complete(result) => match result.verdict {
                    Verdict::Allowed => pass.allowed += 1,
                    Verdict::Forbidden => pass.forbidden += 1,
                },
                CheckOutcome::Inconclusive { .. } => pass.inconclusive += 1,
            }
            rows[row_idx].cells[id.index()] = Some(outcome.outcome.clone());
        }
        passes.push(pass);
    }

    Ok((VerdictMatrix { rows }, passes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_column_has_a_distinct_name_and_index() {
        for (i, id) in ModelId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        let names: std::collections::BTreeSet<&str> =
            ModelId::ALL.iter().map(|m| m.column()).collect();
        assert_eq!(names.len(), ModelId::ALL.len());
    }

    #[test]
    fn rcu_support_matches_table_5_dashes() {
        let rcu = lkmm_litmus::library::by_name("RCU-MP").unwrap().test();
        assert!(ModelId::LkmmNative.supports(&rcu));
        assert!(ModelId::LkmmCat.supports(&rcu));
        assert!(ModelId::Sc.supports(&rcu));
        assert!(!ModelId::Tso.supports(&rcu));
        assert!(!ModelId::Armv8.supports(&rcu));
        assert!(!ModelId::Power.supports(&rcu));
        assert!(!ModelId::C11.supports(&rcu));
        let plain = lkmm_litmus::library::by_name("MP").unwrap().test();
        assert!(ModelId::ALL.iter().all(|m| m.supports(&plain)));
    }

    #[test]
    fn replaced_model_answers_for_its_column() {
        let mut set = ModelSet::standard();
        // Both LKMM formulations answer to the same name — the reason
        // build_matrix salts each column separately.
        assert_eq!(set.get(ModelId::LkmmCat).name(), "LKMM");
        set.replace(ModelId::LkmmCat, Box::new(lkmm_exec::model::AllowAll));
        assert_eq!(set.get(ModelId::LkmmCat).name(), "allow-all");
        // The other columns are untouched.
        assert_eq!(set.get(ModelId::LkmmNative).name(), "LKMM");
    }

    #[test]
    fn matrix_rows_cover_supported_cells_only() {
        let corpus = vec![
            CorpusEntry {
                test: lkmm_litmus::library::by_name("MP").unwrap().test(),
                origin: Origin::Generated,
            },
            CorpusEntry {
                test: lkmm_litmus::library::by_name("RCU-MP").unwrap().test(),
                origin: Origin::Generated,
            },
        ];
        let set = ModelSet::standard();
        let (matrix, passes) =
            build_matrix(&corpus, &set, &MatrixOptions::default()).unwrap();
        assert_eq!(matrix.rows.len(), 2);
        assert!(matrix.rows[0].cells.iter().all(Option::is_some));
        assert!(matrix.rows[1].cell(ModelId::C11).is_none());
        assert!(matrix.rows[1].cell(ModelId::LkmmNative).is_some());
        assert_eq!(matrix.rows[0].verdict(ModelId::LkmmNative), Some(Verdict::Allowed));
        assert_eq!(matrix.rows[1].verdict(ModelId::LkmmNative), Some(Verdict::Forbidden));
        let c11_pass = &passes[ModelId::C11.index()];
        assert_eq!(c11_pass.skipped, 1);
        assert_eq!(c11_pass.checked, 1);
    }
}
