//! Campaign report rendering: deterministic JSON and a human table.
//!
//! The JSON report is a pure function of the campaign configuration and
//! the checkers' semantics: it contains no timestamps, timings, or cache
//! hit/computed counters, so running the same campaign twice — cold and
//! then warm over a populated verdict store — produces byte-identical
//! bytes. CI relies on this with a plain `cmp`. Observability numbers
//! (hits, computed, candidates enumerated) belong on stderr; see
//! [`observability_lines`].

use crate::campaign::{CampaignConfig, CampaignReport};
use crate::oracle::Recheck;
use lkmm_service::json::Json;
use std::fmt::Write as _;

/// Render the deterministic JSON report.
pub fn json_report(report: &CampaignReport, cfg: &CampaignConfig) -> Json {
    let models = report
        .models
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("model", Json::str(m.id.column())),
                ("checked", Json::num(m.pass.checked as u64)),
                ("allowed", Json::num(m.pass.allowed as u64)),
                ("forbidden", Json::num(m.pass.forbidden as u64)),
                ("inconclusive", Json::num(m.pass.inconclusive as u64)),
                ("skipped", Json::num(m.pass.skipped as u64)),
            ])
        })
        .collect();

    let oracles = report
        .oracles
        .iter()
        .map(|o| {
            Json::obj(vec![
                ("oracle", Json::str(o.kind.name())),
                ("checked", Json::num(o.summary.checked as u64)),
                ("violations", Json::num(o.summary.violations as u64)),
                ("skipped", Json::num(o.summary.skipped as u64)),
            ])
        })
        .collect();

    let discrepancies = report
        .discrepancies
        .iter()
        .map(|d| {
            let mut fields = vec![
                ("test", Json::str(&d.test_name)),
                ("oracle", Json::str(d.oracle.name())),
                ("detail", Json::str(&d.detail)),
                ("check", recheck_json(&d.check)),
                ("witness", Json::str(lkmm_service::canonical_text(&d.test))),
            ];
            if let Some(s) = &d.shrunk {
                fields.push((
                    "shrunk",
                    Json::obj(vec![
                        ("litmus", Json::str(&s.litmus)),
                        ("size", Json::num(s.size as u64)),
                        ("attempts", Json::num(s.attempts as u64)),
                        ("accepted", Json::num(s.accepted as u64)),
                    ]),
                ));
            }
            Json::obj(fields)
        })
        .collect();

    let mut fields = vec![
        ("op", Json::str("conformance")),
        (
            "config",
            Json::obj(vec![
                ("max_cycle_len", Json::num(cfg.max_cycle_len as u64)),
                ("contended", Json::Bool(cfg.contended)),
                ("library", Json::Bool(cfg.include_library)),
                ("salt", Json::str(&cfg.salt)),
                ("sim_iterations", Json::num(cfg.sim.iterations)),
                ("sim_seed", Json::num(cfg.sim.seed)),
                ("sim_stride", Json::num(cfg.sim.stride as u64)),
                ("shrink", Json::Bool(cfg.shrink)),
            ]),
        ),
        (
            "corpus",
            Json::obj(vec![
                ("library", Json::num(report.corpus_library as u64)),
                ("generated", Json::num(report.corpus_generated as u64)),
                ("total", Json::num(report.corpus_total() as u64)),
            ]),
        ),
        ("models", Json::Arr(models)),
        ("oracles", Json::Arr(oracles)),
        ("discrepancies", Json::Arr(discrepancies)),
        (
            "failed_units",
            Json::Arr(
                report
                    .failed_units
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("index", Json::num(f.index as u64)),
                            ("test", Json::str(&f.test)),
                            ("kind", Json::str(f.kind.name())),
                            ("attempts", Json::num(u64::from(f.attempts))),
                            ("detail", Json::str(&f.detail)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("partial", Json::Bool(report.degraded())),
        ("clean", Json::Bool(report.clean())),
    ];
    // Absent by default so default reports stay byte-identical across
    // cold and warm runs; opting into counters (`--enum-stats`) opts out
    // of that guarantee — a warm store enumerates nothing and reports
    // zeros.
    if let Some(e) = &report.enumeration {
        fields.push((
            "enumeration",
            Json::obj(vec![
                ("rf_prefixes_pruned", Json::num(e.rf_prefixes_pruned)),
                ("co_pairs_saturated", Json::num(e.co_pairs_saturated)),
                ("co_pairs_branched", Json::num(e.co_pairs_branched)),
                ("co_leaves_tested", Json::num(e.co_leaves_tested)),
                ("candidates_emitted", Json::num(e.candidates_emitted)),
            ]),
        ));
    }
    if let Some(d) = &report.data_plane {
        fields.push(("data_plane", data_plane_json(d)));
    }
    Json::obj(fields)
}

/// The opt-in `data_plane` JSON section (shared with the algorithm
/// campaign's report). Absent by default for the same reason as
/// `enumeration`: default reports must stay byte-identical between cold
/// and warm runs, and a warm store forms no batches.
pub(crate) fn data_plane_json(d: &lkmm_exec::DataPlaneSnapshot) -> Json {
    Json::obj(vec![
        ("batches_formed", Json::num(d.batches_formed)),
        ("batch_candidates", Json::num(d.batch_candidates)),
        ("arena_acquires", Json::num(d.arena_acquires)),
        ("arena_reuses", Json::num(d.arena_reuses)),
    ])
}

/// The data-plane stderr observability line (shared with the algorithm
/// campaign's report).
pub(crate) fn data_plane_line(d: &lkmm_exec::DataPlaneSnapshot) -> String {
    format!(
        "data-plane: {} batches carrying {} candidates (mean occupancy {:.1}), \
         {} arena acquires ({} reused)",
        d.batches_formed,
        d.batch_candidates,
        d.mean_batch_occupancy(),
        d.arena_acquires,
        d.arena_reuses
    )
}

pub(crate) fn recheck_json(check: &Recheck) -> Json {
    match check {
        Recheck::ResultAgreement { left, right } => Json::obj(vec![
            ("kind", Json::str("result-agreement")),
            ("left", Json::str(left.column())),
            ("right", Json::str(right.column())),
        ]),
        Recheck::Envelope { sub, envelope } => Json::obj(vec![
            ("kind", Json::str("envelope")),
            ("sub", Json::str(sub.column())),
            ("envelope", Json::str(envelope.column())),
        ]),
        Recheck::C11Expectation { expect } => Json::obj(vec![
            ("kind", Json::str("c11-expectation")),
            ("expect", Json::str(format!("{expect:?}"))),
        ]),
        Recheck::C11Unlicensed => Json::obj(vec![("kind", Json::str("c11-unlicensed"))]),
        Recheck::SimObservation { arch, iterations, seed } => Json::obj(vec![
            ("kind", Json::str("sim-observation")),
            ("arch", Json::str(arch.name())),
            ("iterations", Json::num(*iterations)),
            ("seed", Json::num(*seed)),
        ]),
        Recheck::FamilyExpectation { expect } => Json::obj(vec![
            ("kind", Json::str("family-expectation")),
            ("expect", Json::str(format!("{expect:?}"))),
        ]),
        Recheck::HostObservation { iterations } => Json::obj(vec![
            ("kind", Json::str("host-observation")),
            ("iterations", Json::num(*iterations)),
        ]),
        Recheck::InterleaveDivergence { machine, max_states } => Json::obj(vec![
            ("kind", Json::str("interleave-divergence")),
            ("machine_threads", Json::num(machine.threads.len() as u64)),
            ("max_states", Json::num(*max_states as u64)),
        ]),
    }
}

/// Render the human-readable summary table.
pub fn human_table(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus: {} tests ({} library, {} generated)",
        report.corpus_total(),
        report.corpus_library,
        report.corpus_generated
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>10} {:>13} {:>8}",
        "model", "checked", "allowed", "forbidden", "inconclusive", "skipped"
    );
    for m in &report.models {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>10} {:>13} {:>8}",
            m.id.column(),
            m.pass.checked,
            m.pass.allowed,
            m.pass.forbidden,
            m.pass.inconclusive,
            m.pass.skipped
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>11} {:>8}",
        "oracle", "checked", "violations", "skipped"
    );
    for o in &report.oracles {
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>11} {:>8}",
            o.kind.name(),
            o.summary.checked,
            o.summary.violations,
            o.summary.skipped
        );
    }
    let _ = writeln!(out);
    if report.degraded() {
        let _ = writeln!(
            out,
            "PARTIAL: {} unit(s) quarantined after exhausting retries:",
            report.failed_units.len()
        );
        for f in &report.failed_units {
            let _ = writeln!(
                out,
                "  #{} {} [{}] after {} attempts: {}",
                f.index,
                f.test,
                f.kind.name(),
                f.attempts,
                f.detail
            );
        }
        let _ = writeln!(out);
    }
    if report.clean() {
        let _ = writeln!(out, "no discrepancies");
    } else {
        let _ = writeln!(out, "{} DISCREPANCIES:", report.discrepancies.len());
        for d in &report.discrepancies {
            let _ = writeln!(out);
            let _ = writeln!(out, "[{}] {}: {}", d.oracle.name(), d.test_name, d.detail);
            if let Some(s) = &d.shrunk {
                let _ = writeln!(
                    out,
                    "minimal witness (size {}, {} of {} reductions accepted):",
                    s.size, s.accepted, s.attempts
                );
                for line in s.litmus.lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
    }
    out
}

/// Observability lines for stderr: everything deliberately excluded
/// from the deterministic report.
pub fn observability_lines(report: &CampaignReport) -> String {
    let mut out = String::new();
    if let Some(cursor) = report.resumed_at {
        let _ = writeln!(out, "resumed from checkpoint at unit {cursor}");
    }
    if report.checkpoints_written > 0 {
        let _ = writeln!(out, "{} checkpoint frame(s) written", report.checkpoints_written);
    }
    for m in &report.models {
        let _ = writeln!(
            out,
            "{}: {} cached, {} computed, {} deduped, {} candidates enumerated",
            m.id.column(),
            m.pass.hits,
            m.pass.computed,
            m.pass.deduped,
            m.pass.candidates_enumerated
        );
    }
    if let Some(e) = &report.enumeration {
        let _ = writeln!(
            out,
            "enumeration: {} rf prefixes pruned, {} co pairs saturated, {} branched, \
             {} leaves tested, {} candidates emitted",
            e.rf_prefixes_pruned,
            e.co_pairs_saturated,
            e.co_pairs_branched,
            e.co_leaves_tested,
            e.candidates_emitted
        );
    }
    if let Some(d) = &report.data_plane {
        let _ = writeln!(out, "{}", data_plane_line(d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, SimConfig};

    fn quick() -> CampaignConfig {
        CampaignConfig {
            max_cycle_len: 0,
            sim: SimConfig { iterations: 0, ..SimConfig::default() },
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn json_report_is_deterministic_and_parses() {
        let cfg = quick();
        let a = json_report(&run_campaign(&cfg).unwrap(), &cfg).to_string();
        let b = json_report(&run_campaign(&cfg).unwrap(), &cfg).to_string();
        assert_eq!(a, b);
        let v = Json::parse(&a).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("conformance"));
        assert_eq!(v.get("clean").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("discrepancies").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
        let models = v.get("models").and_then(Json::as_arr).unwrap();
        assert_eq!(models.len(), crate::matrix::ModelId::ALL.len());
    }

    #[test]
    fn enumeration_counters_are_absent_by_default_and_gated_in() {
        // Default reports carry no counters (cold/warm `cmp` relies on
        // that); opting in adds the section and the stderr line.
        let cfg = quick();
        let report = run_campaign(&cfg).unwrap();
        assert!(report.enumeration.is_none());
        let plain = json_report(&report, &cfg).to_string();
        assert!(!plain.contains("enumeration"), "counters leaked into default JSON");
        assert!(!observability_lines(&report).contains("enumeration:"));

        let stats = std::sync::Arc::new(lkmm_exec::EnumStats::default());
        let cfg2 = CampaignConfig { enum_stats: Some(std::sync::Arc::clone(&stats)), ..quick() };
        let report2 = run_campaign(&cfg2).unwrap();
        let snap = report2.enumeration.expect("opted-in campaign records a snapshot");
        assert!(snap.candidates_emitted > 0, "cold matrix pass enumerates candidates");
        let v = Json::parse(&json_report(&report2, &cfg2).to_string()).unwrap();
        let e = v.get("enumeration").expect("opted-in JSON carries the section");
        assert_eq!(e.get("candidates_emitted").and_then(Json::as_u64), Some(snap.candidates_emitted));
        assert!(observability_lines(&report2).contains("enumeration:"));
    }

    #[test]
    fn data_plane_counters_are_absent_by_default_gated_in_and_job_invariant() {
        // Same contract as the enumeration counters: default reports
        // carry nothing (cold/warm `cmp` relies on that), opting in
        // adds the JSON section and the stderr line.
        let cfg = quick();
        let report = run_campaign(&cfg).unwrap();
        assert!(report.data_plane.is_none());
        let plain = json_report(&report, &cfg).to_string();
        assert!(!plain.contains("data_plane"), "counters leaked into default JSON");
        assert!(!observability_lines(&report).contains("data-plane:"));

        let campaign_at = |jobs: usize| {
            let stats = std::sync::Arc::new(lkmm_exec::DataPlaneStats::default());
            let cfg = CampaignConfig { jobs, data_plane: Some(stats), ..quick() };
            let report = run_campaign(&cfg).unwrap();
            (report, cfg)
        };
        let (seq, seq_cfg) = campaign_at(1);
        let snap = seq.data_plane.expect("opted-in campaign records a snapshot");
        assert!(snap.batches_formed > 0, "cold matrix pass forms batches");
        assert!(snap.arena_acquires > 0, "checkers draw relations from worker arenas");
        let v = Json::parse(&json_report(&seq, &seq_cfg).to_string()).unwrap();
        let d = v.get("data_plane").expect("opted-in JSON carries the section");
        assert_eq!(d.get("batches_formed").and_then(Json::as_u64), Some(snap.batches_formed));
        assert_eq!(d.get("arena_acquires").and_then(Json::as_u64), Some(snap.arena_acquires));
        assert!(observability_lines(&seq).contains("data-plane:"));

        // batches_formed / batch_candidates are pure functions of the
        // candidate stream, so a complete campaign reports the same
        // numbers at any job count. arena_acquires is only *nearly*
        // invariant (per-worker facts caches recompute shared
        // pre-execution-tier facts when one pre-execution's batches
        // split across workers) and arena_reuses is per-worker warm-up;
        // neither is compared exactly.
        for jobs in [2, 8] {
            let (par, _) = campaign_at(jobs);
            let p = par.data_plane.unwrap();
            assert_eq!(p.batches_formed, snap.batches_formed, "jobs={jobs}");
            assert_eq!(p.batch_candidates, snap.batch_candidates, "jobs={jobs}");
            assert!(p.arena_acquires > 0, "jobs={jobs}");
        }
    }

    #[test]
    fn human_table_mentions_every_column_and_oracle() {
        let cfg = quick();
        let table = human_table(&run_campaign(&cfg).unwrap());
        for col in ["lkmm", "lkmm-cat", "sc", "tso", "armv8", "power", "c11"] {
            assert!(table.contains(col), "missing column {col} in:\n{table}");
        }
        for oracle in ["native-cat-agreement", "envelope-ordering", "sim-soundness", "c11-divergence"]
        {
            assert!(table.contains(oracle), "missing oracle {oracle} in:\n{table}");
        }
        assert!(table.contains("no discrepancies"));
    }
}
