//! Differential conformance engine for the LKMM reproduction.
//!
//! The paper validates the Linux-kernel memory model by cross-checking
//! it against its neighbours: the hand-written cat formalisation must
//! agree with the native implementation everywhere, hardware models
//! must fit inside the envelope SC ⊆ x86-TSO ⊆ LKMM, the operational
//! simulators must never exhibit an outcome the axiomatic model
//! forbids, and the original-C11 divergences of §5.2 must all trace
//! back to a feature C11 genuinely lacks. This crate automates that
//! cross-checking at corpus scale:
//!
//! * [`matrix`] — run every test in a corpus through every checker and
//!   collect the per-test × per-model verdict matrix, incrementally
//!   through the content-addressed verdict store (each model column is
//!   salted separately, so two checkers that share a display name —
//!   native LKMM and the cat LKMM both print "LKMM" — can never replay
//!   each other's cached verdicts).
//! * [`oracle`] — typed invariants over matrix rows; each violation is
//!   a structured [`Discrepancy`] carrying the exact [`Recheck`] that
//!   failed, so it can be re-validated from scratch.
//! * [`shrink`] — a delta-debugging minimizer (drop threads, drop
//!   statements, flatten `if`s, drop condition conjuncts) that reduces
//!   a discrepancy to a minimal litmus test still discriminating the
//!   disagreeing checkers.
//! * [`campaign`] — the campaign tying the layers together,
//! * [`driver`] — the supervised matrix driver: lazy work units,
//!   per-unit retry with seeded backoff, quarantine of poisoned units,
//!   and periodic checkpoints,
//! * [`checkpoint`] — framed, checksummed campaign manifests with
//!   latest-valid-frame-wins crash recovery and fingerprint-guarded
//!   resume,
//! * [`report`] — deterministic JSON plus a human summary table, and
//! * [`algorithms`] — the real-algorithm campaign: parameterised
//!   litmus families (locks, refcounts, seqlock, RCU trees, deques)
//!   held to per-family safety invariants across the axiomatic,
//!   simulated, host-threaded, and exhaustively-interleaved layers.
//!
//! Discrepancy re-checks never go through the verdict store: a
//! discrepancy is evidence that at least one checker is wrong, and a
//! store keyed by (test, model, salt) cannot tell a correct verdict
//! from a cached wrong one. Shrinker predicates therefore recompute
//! every candidate from scratch, and fault-injection campaigns must run
//! storeless so poisoned verdicts are never persisted.
//!
//! # Examples
//!
//! ```
//! use lkmm_conformance::campaign::{run_campaign, CampaignConfig, SimConfig};
//!
//! // Library-only campaign, simulators off: fast enough for a doctest.
//! let cfg = CampaignConfig {
//!     max_cycle_len: 0,
//!     sim: SimConfig { iterations: 0, ..SimConfig::default() },
//!     ..CampaignConfig::default()
//! };
//! let report = run_campaign(&cfg).unwrap();
//! assert!(report.clean());
//! assert_eq!(report.corpus_library, lkmm_litmus::library::all().len());
//! ```

pub mod algorithms;
pub mod campaign;
pub mod checkpoint;
pub mod driver;
pub mod matrix;
pub mod oracle;
pub mod report;
pub mod shrink;

pub use algorithms::{
    algo_human_table, algo_json_report, algo_observability_lines, run_algo_campaign,
    run_algo_campaign_with, AlgoConfig, AlgoReport, FamilyStats,
};
pub use campaign::{
    config_fingerprint, corpus_stream, run_campaign, run_campaign_with, CampaignConfig,
    CampaignError, CampaignReport, CorpusStream, ModelStats, OracleStats, SimConfig,
};
pub use checkpoint::{Checkpoint, CheckpointLog, CheckpointScan, FailedUnit, FailureKind};
pub use driver::{backoff_delay, drive_campaign, CampaignCore, DriveOutcome, ResilienceConfig};
pub use matrix::{
    build_matrix, CorpusEntry, MatrixOptions, MatrixRow, ModelId, ModelPass, ModelSet, Origin,
    VerdictMatrix,
};
pub use oracle::{
    check_row, recheck_violated, Discrepancy, OracleKind, OracleSummary, Recheck, ENVELOPE_PAIRS,
};
pub use report::{human_table, json_report, observability_lines};
pub use shrink::{shrink, test_size, Shrunk};
