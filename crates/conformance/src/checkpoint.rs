//! Framed, checksummed campaign checkpoints.
//!
//! A checkpoint file (`LKMMCK01`) is an append-only sequence of
//! *manifest frames*, each a complete snapshot of campaign progress:
//! the config fingerprint, the corpus cursor (units `0..cursor` are
//! done), per-column watermarks, and the quarantined units. Appending a
//! whole frame per checkpoint — rather than rewriting one in place —
//! means a crash *during* a checkpoint write costs nothing: the torn
//! frame fails its length or checksum test on load and the previous
//! frame wins. Recovery is therefore the same discipline as the verdict
//! store's: scan the valid prefix, stop at the first bad frame, take
//! the **latest valid** manifest.
//!
//! The frame format mirrors the store record format deliberately
//! (`len:u32le  fnv64:u64le  payload`), with a JSON manifest as the
//! payload so a human can inspect a checkpoint with `xxd`/`jq` when a
//! campaign goes sideways. The fingerprint is serialized as a hex
//! string — the vendored JSON type holds numbers as `f64`, which cannot
//! carry 64 significant bits.
//!
//! Fault points: `ckpt.torn` tears a frame mid-append (half the frame
//! reaches the file, the append returns an injected error), simulating
//! a crash inside the checkpoint write itself.

use crate::matrix::ModelPass;
use crate::oracle::OracleSummary;
use lkmm_core::faultpoint;
use lkmm_service::hash::fnv64;
use lkmm_service::json::Json;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// File magic; the trailing `01` versions the manifest schema.
const MAGIC: &[u8; 8] = b"LKMMCK01";
/// Frame header: `len: u32le` + `checksum: u64le`.
const HEADER_LEN: usize = 12;
/// Sanity bound on one manifest frame (a manifest is small JSON; a
/// length field beyond this is corruption, not a big checkpoint).
const MAX_FRAME_LEN: usize = 1 << 24;

/// Why a quarantined unit was given up on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The unit panicked past the retry budget — either the driver
    /// caught the panic itself or every retry left contained
    /// worker-panic cells.
    Panic,
    /// Transient store/checkpoint I/O kept failing.
    TransientIo,
    /// The unit kept tripping the relative wall-clock limit.
    Deadline,
}

impl FailureKind {
    /// Stable name used in reports and checkpoint manifests.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::TransientIo => "transient-io",
            FailureKind::Deadline => "deadline",
        }
    }

    fn from_name(name: &str) -> Option<FailureKind> {
        match name {
            "panic" => Some(FailureKind::Panic),
            "transient-io" => Some(FailureKind::TransientIo),
            "deadline" => Some(FailureKind::Deadline),
            _ => None,
        }
    }
}

/// One quarantined corpus unit: the supervisor retried it
/// `attempts` times, every attempt failed the same way, and the
/// campaign carried on without it (its matrix row stays all-`None`, the
/// oracles skip it, and the run reports as degraded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailedUnit {
    /// Corpus index (stable across resume — the corpus is a
    /// deterministic function of the config).
    pub index: usize,
    /// Test name, for the report.
    pub test: String,
    /// The failure class every attempt landed in.
    pub kind: FailureKind,
    /// Attempts made (first try + retries).
    pub attempts: u32,
    /// Last failure's message.
    pub detail: String,
}

impl FailedUnit {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index", Json::num(self.index as u64)),
            ("test", Json::str(&self.test)),
            ("kind", Json::str(self.kind.name())),
            ("attempts", Json::num(u64::from(self.attempts))),
            ("detail", Json::str(&self.detail)),
        ])
    }

    fn from_json(v: &Json) -> Option<FailedUnit> {
        Some(FailedUnit {
            index: v.get("index")?.as_u64()? as usize,
            test: v.get("test")?.as_str()?.to_string(),
            kind: FailureKind::from_name(v.get("kind")?.as_str()?)?,
            attempts: v.get("attempts")?.as_u64()? as u32,
            detail: v.get("detail")?.as_str()?.to_string(),
        })
    }
}

/// Aggregate campaign state over the finished prefix `0..cursor` — the
/// whole deterministic report boiled down to sums. Present in a
/// manifest when (and only when) that prefix is discrepancy-free, which
/// lets a resume *continue the arithmetic* instead of replaying the
/// prefix: pass counts and oracle summaries restart from these numbers
/// and only tail units are ever generated or checked. A prefix that
/// found discrepancies would need their full structure in the manifest
/// (test ASTs, recheck specs — the shrinker re-reduces them at the
/// end); rather than serialise all that, a dirty campaign records no
/// prefix and resume falls back to replaying through the warm store.
/// Discrepancies are the rare stop-the-world case; a cheap resume of a
/// clean campaign is the common one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Library rows in the prefix.
    pub corpus_library: usize,
    /// Generated rows in the prefix.
    pub corpus_generated: usize,
    /// Per-column deterministic counts, in
    /// [`crate::matrix::ModelId::ALL`] order. Only the report fields
    /// (checked/allowed/forbidden/inconclusive/skipped) are carried;
    /// the observability counters (hits, computed, …) are per-process
    /// and deliberately absent.
    pub passes: Vec<ModelPass>,
    /// Per-oracle summaries, in [`crate::oracle::OracleKind::ALL`]
    /// order.
    pub oracles: Vec<OracleSummary>,
}

impl PrefixStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("library", Json::num(self.corpus_library as u64)),
            ("generated", Json::num(self.corpus_generated as u64)),
            (
                "passes",
                Json::Arr(
                    self.passes
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("checked", Json::num(p.checked as u64)),
                                ("allowed", Json::num(p.allowed as u64)),
                                ("forbidden", Json::num(p.forbidden as u64)),
                                ("inconclusive", Json::num(p.inconclusive as u64)),
                                ("skipped", Json::num(p.skipped as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "oracles",
                Json::Arr(
                    self.oracles
                        .iter()
                        .map(|o| {
                            Json::obj(vec![
                                ("checked", Json::num(o.checked as u64)),
                                ("violations", Json::num(o.violations as u64)),
                                ("skipped", Json::num(o.skipped as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<PrefixStats> {
        let passes = v
            .get("passes")?
            .as_arr()?
            .iter()
            .map(|p| {
                Some(ModelPass {
                    checked: p.get("checked")?.as_u64()? as usize,
                    allowed: p.get("allowed")?.as_u64()? as usize,
                    forbidden: p.get("forbidden")?.as_u64()? as usize,
                    inconclusive: p.get("inconclusive")?.as_u64()? as usize,
                    skipped: p.get("skipped")?.as_u64()? as usize,
                    ..ModelPass::default()
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let oracles = v
            .get("oracles")?
            .as_arr()?
            .iter()
            .map(|o| {
                Some(OracleSummary {
                    checked: o.get("checked")?.as_u64()? as usize,
                    violations: o.get("violations")?.as_u64()? as usize,
                    skipped: o.get("skipped")?.as_u64()? as usize,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(PrefixStats {
            corpus_library: v.get("library")?.as_u64()? as usize,
            corpus_generated: v.get("generated")?.as_u64()? as usize,
            passes,
            oracles,
        })
    }
}

/// One manifest: everything a resumed campaign needs to pick up where
/// this one stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// FNV-64 over the canonical config string; resume refuses to
    /// continue under a different fingerprint.
    pub fingerprint: u64,
    /// Units `0..cursor` are done (checked or quarantined) and their
    /// completed verdicts are durable in the store — the driver flushes
    /// the store before every frame.
    pub cursor: usize,
    /// Per-column checked-cell counts at frame time, in
    /// [`crate::matrix::ModelId::ALL`] order. Observability only.
    pub watermarks: Vec<usize>,
    /// Quarantined units so far; resume skips them without retrying.
    pub failed_units: Vec<FailedUnit>,
    /// Aggregates over the clean prefix, or `None` when the prefix has
    /// discrepancies (resume then replays through the store instead).
    pub prefix: Option<PrefixStats>,
}

impl Checkpoint {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("fingerprint", Json::str(format!("{:016x}", self.fingerprint))),
            ("cursor", Json::num(self.cursor as u64)),
            (
                "watermarks",
                Json::Arr(self.watermarks.iter().map(|&w| Json::num(w as u64)).collect()),
            ),
            (
                "failed_units",
                Json::Arr(self.failed_units.iter().map(FailedUnit::to_json).collect()),
            ),
        ];
        if let Some(prefix) = &self.prefix {
            fields.push(("prefix", prefix.to_json()));
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Option<Checkpoint> {
        let fingerprint = u64::from_str_radix(v.get("fingerprint")?.as_str()?, 16).ok()?;
        let cursor = v.get("cursor")?.as_u64()? as usize;
        let watermarks = v
            .get("watermarks")?
            .as_arr()?
            .iter()
            .map(|w| w.as_u64().map(|w| w as usize))
            .collect::<Option<Vec<_>>>()?;
        let failed_units = v
            .get("failed_units")?
            .as_arr()?
            .iter()
            .map(FailedUnit::from_json)
            .collect::<Option<Vec<_>>>()?;
        // A malformed prefix section poisons the whole frame (the
        // previous frame wins) rather than silently resuming without it.
        let prefix = match v.get("prefix") {
            None => None,
            Some(p) => Some(PrefixStats::from_json(p)?),
        };
        Some(Checkpoint { fingerprint, cursor, watermarks, failed_units, prefix })
    }
}

/// What a checkpoint-file scan found.
#[derive(Clone, Debug, Default)]
pub struct CheckpointScan {
    /// The latest valid manifest, if any frame survived.
    pub latest: Option<Checkpoint>,
    /// Valid frames in the prefix.
    pub frames: usize,
    /// Bytes past the last valid frame (a torn or corrupt tail — the
    /// expected residue of a crash mid-checkpoint).
    pub dropped_bytes: u64,
}

/// Scan `path` and return the latest valid manifest. A missing file is
/// an empty scan, not an error; a wrong-magic file is treated as no
/// checkpoint at all (never silently reused across format versions).
///
/// # Errors
///
/// Underlying read errors only — torn and corrupt frames are recovery
/// input, not errors.
pub fn load(path: &Path) -> io::Result<CheckpointScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(CheckpointScan::default()),
        Err(e) => return Err(e),
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(CheckpointScan { dropped_bytes: bytes.len() as u64, ..Default::default() });
    }
    let mut scan = CheckpointScan::default();
    let mut at = MAGIC.len();
    let mut valid_end = at;
    while bytes.len() - at >= HEADER_LEN {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        if len > MAX_FRAME_LEN || bytes.len() - at - HEADER_LEN < len {
            break; // absurd length or short payload: stop at the tear
        }
        let payload = &bytes[at + HEADER_LEN..at + HEADER_LEN + len];
        if fnv64(payload) != checksum {
            break;
        }
        let manifest = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| Json::parse(text).ok())
            .and_then(|v| Checkpoint::from_json(&v));
        let Some(manifest) = manifest else { break };
        scan.latest = Some(manifest);
        scan.frames += 1;
        at += HEADER_LEN + len;
        valid_end = at;
    }
    scan.dropped_bytes = (bytes.len() - valid_end) as u64;
    Ok(scan)
}

/// An open checkpoint file the driver appends manifest frames to.
pub struct CheckpointLog {
    path: PathBuf,
    file: File,
    dir_synced: bool,
}

impl CheckpointLog {
    /// Open `path` for appending. `resume: false` truncates any
    /// previous campaign's frames (their fingerprint may differ);
    /// `resume: true` keeps them — but first truncates the file back to
    /// its valid prefix, so new frames never land after a torn tail.
    ///
    /// # Errors
    ///
    /// File creation/truncation errors.
    pub fn open(path: &Path, resume: bool) -> io::Result<CheckpointLog> {
        let fresh = !resume || !path.exists();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(fresh).open(path)?;
        if fresh {
            file.write_all(MAGIC)?;
        } else {
            let scan = load(path)?;
            if scan.frames == 0 {
                // Wrong magic, empty, or nothing valid at all: start over.
                file.set_len(0)?;
                file.write_all(MAGIC)?;
            } else if scan.dropped_bytes > 0 {
                let end = file.metadata()?.len() - scan.dropped_bytes;
                file.set_len(end)?;
            }
        }
        use std::io::Seek as _;
        file.seek(io::SeekFrom::End(0))?;
        Ok(CheckpointLog { path: path.to_path_buf(), file, dir_synced: false })
    }

    /// Append one manifest frame and sync it to stable storage. The
    /// first append of a log's lifetime also fsyncs the parent
    /// directory, so a crash cannot lose the file entry itself.
    ///
    /// # Errors
    ///
    /// Write/sync failures, including the injected `ckpt.torn` tear
    /// (half the frame reaches the file; the next [`load`] drops it).
    pub fn append(&mut self, ck: &Checkpoint) -> io::Result<()> {
        let payload = ck.to_json().to_string().into_bytes();
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if faultpoint::should_fail("ckpt.torn") {
            self.file.write_all(&frame[..frame.len() / 2])?;
            self.file.sync_data()?;
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "faultpoint: torn checkpoint frame at `ckpt.torn`",
            ));
        }
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        if !self.dir_synced {
            if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
                File::open(dir)?.sync_all()?;
            }
            self.dir_synced = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("lkmm-ckpt-{}-{tag}.bin", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample(cursor: usize) -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            cursor,
            watermarks: vec![cursor; 7],
            failed_units: vec![FailedUnit {
                index: 3,
                test: "W+W".into(),
                kind: FailureKind::TransientIo,
                attempts: 3,
                detail: "injected".into(),
            }],
            prefix: None,
        }
    }

    #[test]
    fn prefix_aggregates_round_trip() {
        let path = temp_path("prefix");
        let ck = Checkpoint {
            prefix: Some(PrefixStats {
                corpus_library: 5,
                corpus_generated: 4,
                passes: (0..7)
                    .map(|i| ModelPass {
                        checked: 9 - i,
                        allowed: 4,
                        forbidden: 3,
                        inconclusive: 1,
                        skipped: i,
                        // Observability counters must not survive the
                        // round trip: they are per-process noise.
                        hits: 1000,
                        computed: 1000,
                        deduped: 1000,
                        candidates_enumerated: 1000,
                    })
                    .collect(),
                oracles: vec![
                    OracleSummary { checked: 9, violations: 0, skipped: 2 };
                    4
                ],
            }),
            ..sample(9)
        };
        let mut log = CheckpointLog::open(&path, false).unwrap();
        log.append(&ck).unwrap();
        drop(log);
        let got = load(&path).unwrap().latest.unwrap();
        let prefix = got.prefix.expect("prefix survives");
        assert_eq!(prefix.corpus_library, 5);
        assert_eq!(prefix.corpus_generated, 4);
        assert_eq!(prefix.passes.len(), 7);
        assert_eq!(prefix.passes[2].checked, 7);
        assert_eq!(prefix.passes[2].skipped, 2);
        assert_eq!(prefix.passes[0].hits, 0, "observability counters are dropped");
        assert_eq!(prefix.passes[0].candidates_enumerated, 0);
        assert_eq!(prefix.oracles.len(), 4);
        assert_eq!(prefix.oracles[1].skipped, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn latest_valid_frame_wins() {
        let path = temp_path("latest");
        let mut log = CheckpointLog::open(&path, false).unwrap();
        for cursor in [1, 5, 9] {
            log.append(&sample(cursor)).unwrap();
        }
        drop(log);
        let scan = load(&path).unwrap();
        assert_eq!(scan.frames, 3);
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(scan.latest, Some(sample(9)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_falls_back_to_the_previous_frame() {
        let path = temp_path("torn");
        let mut log = CheckpointLog::open(&path, false).unwrap();
        log.append(&sample(4)).unwrap();
        log.append(&sample(8)).unwrap();
        drop(log);
        // Crash mid-append: chop bytes off the last frame.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let scan = load(&path).unwrap();
        assert_eq!(scan.frames, 1);
        assert!(scan.dropped_bytes > 0);
        assert_eq!(scan.latest.unwrap().cursor, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_for_resume_truncates_the_tear_and_appends_cleanly() {
        let path = temp_path("reopen");
        let mut log = CheckpointLog::open(&path, false).unwrap();
        log.append(&sample(4)).unwrap();
        drop(log);
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new().append(true).open(&path).unwrap()
            .write_all(&[0x55; 9]).unwrap();
        let mut log = CheckpointLog::open(&path, true).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len, "tear truncated");
        log.append(&sample(12)).unwrap();
        drop(log);
        let scan = load(&path).unwrap();
        assert_eq!(scan.frames, 2);
        assert_eq!(scan.latest.unwrap().cursor, 12);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_open_discards_a_previous_campaign() {
        let path = temp_path("fresh");
        let mut log = CheckpointLog::open(&path, false).unwrap();
        log.append(&sample(4)).unwrap();
        drop(log);
        let log = CheckpointLog::open(&path, false).unwrap();
        drop(log);
        let scan = load(&path).unwrap();
        assert_eq!(scan.frames, 0);
        assert!(scan.latest.is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_frame_is_dropped() {
        let path = temp_path("corrupt");
        let mut log = CheckpointLog::open(&path, false).unwrap();
        log.append(&sample(4)).unwrap();
        log.append(&sample(8)).unwrap();
        drop(log);
        // Flip a byte inside the second frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.len() - 10;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = load(&path).unwrap();
        assert_eq!(scan.frames, 1);
        assert_eq!(scan.latest.unwrap().cursor, 4);
        assert!(scan.dropped_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_scan() {
        let path = temp_path("missing");
        let scan = load(&path).unwrap();
        assert!(scan.latest.is_none());
        assert_eq!(scan.frames, 0);
    }

    #[test]
    fn wrong_magic_is_no_checkpoint() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTACKPT whatever").unwrap();
        let scan = load(&path).unwrap();
        assert!(scan.latest.is_none());
        assert!(scan.dropped_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
