//! The algorithm-family campaign: real-algorithm litmus families
//! checked through every layer of the stack.
//!
//! One run expands the selected [`FamilyId`]s at a configured size into
//! their program variants, pushes every program through the same
//! single-enumeration verdict matrix as the cycle campaign (all seven
//! axiomatic columns, incrementally through the verdict store), and
//! then holds each program to the oracles its shape supports:
//!
//! * the four matrix oracles of [`crate::oracle`] (native≡cat,
//!   envelope, C11 whitelist) plus **family safety** — the LKMM verdict
//!   must equal the family's declared expectation;
//! * **sim soundness** — runnable (straight-line) programs execute on
//!   the operational hardware simulators; observing an LKMM-forbidden
//!   outcome is a violation;
//! * **host soundness** — the same runnable programs execute on real
//!   hardware threads via the klitmus host runner;
//! * **interleave agreement** — programs carrying a step machine are
//!   exhaustively interleaved ([`interleave::explore`]) and the
//!   reachability of the bad state must match the axiomatic
//!   SC+atomicity verdict ([`lkmm_algorithms::ScAtomic`]).
//!
//! Like the cycle campaign, the resulting [`AlgoReport`] is a
//! deterministic function of the [`AlgoConfig`]: host runs are real
//! nondeterministic executions, but only the *violation count* they
//! produce enters the report (zero for a sound model), and every other
//! number is replayed from the store or recomputed identically, so a
//! cold and a warm run render byte-identical JSON.

use crate::matrix::{
    build_matrix, uses_srcu, CorpusEntry, MatrixOptions, ModelId, ModelSet, Origin,
};
use crate::campaign::{CampaignError, ModelStats, OracleStats, SimConfig};
use crate::oracle::{
    check_row, recheck_violated, Discrepancy, OracleKind, OracleSummary, Recheck,
};
use crate::shrink::{shrink, test_size};
use lkmm_algorithms::{AlgoProgram, FamilyId, FamilyParams, ScAtomic};
use lkmm_algorithms::interleave;
use lkmm_core::budget::Budget;
use lkmm_exec::{
    check_test_governed, CheckOutcome, EnumOptions, PipelineOptions, Verdict,
};
use lkmm_service::canonical_text;
use lkmm_service::json::Json;
use lkmm_sim::{run_test, Arch, RunConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Everything one algorithm campaign depends on.
#[derive(Clone, Debug)]
pub struct AlgoConfig {
    /// Families to expand; empty means every family.
    pub families: Vec<FamilyId>,
    /// Expansion size (threads / sections / retry depth).
    pub params: FamilyParams,
    /// Cache version salt (each model column adds its own component).
    pub salt: String,
    /// Pipeline worker threads per check (0 = all hardware threads).
    pub jobs: usize,
    /// Per-worker candidate queue bound.
    pub queue_depth: usize,
    /// Per-check budget; trips surface as inconclusive cells.
    pub budget: Budget,
    /// Persistent verdict store; `None` runs in memory.
    pub store_path: Option<PathBuf>,
    /// Simulator soundness pass over runnable programs.
    pub sim: SimConfig,
    /// klitmus host-runner iterations per runnable program; 0 disables
    /// the host-soundness pass.
    pub host_iterations: u64,
    /// Interleaving state cap (0 = unbounded); a truncated exploration
    /// skips the agreement check rather than risking a false verdict.
    pub interleave_max_states: usize,
    /// Minimize discrepancies with the shrinker.
    pub shrink: bool,
    /// Shared enumeration pruning counters for the matrix pass
    /// (observability only, exactly as in the cycle campaign).
    pub enum_stats: Option<std::sync::Arc<lkmm_exec::EnumStats>>,
    /// Shared data-plane counters (batch occupancy, arena reuse) for
    /// the matrix pass (observability only, exactly as in the cycle
    /// campaign).
    pub data_plane: Option<std::sync::Arc<lkmm_exec::DataPlaneStats>>,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        AlgoConfig {
            families: Vec::new(),
            params: FamilyParams::default(),
            salt: String::new(),
            jobs: 0,
            queue_depth: 256,
            budget: Budget::default(),
            store_path: None,
            sim: SimConfig::default(),
            host_iterations: 2_000,
            interleave_max_states: 1_000_000,
            shrink: true,
            enum_stats: None,
            data_plane: None,
        }
    }
}

/// One family's aggregate results — the per-family oracle columns.
#[derive(Clone, Copy, Debug)]
pub struct FamilyStats {
    pub family: FamilyId,
    /// Programs the family expanded into.
    pub programs: usize,
    /// Family-safety outcomes for this family's programs.
    pub safety: OracleSummary,
    /// Sim-soundness outcomes (runnable programs × architectures).
    pub sim: OracleSummary,
    /// Host-soundness outcomes (runnable programs).
    pub host: OracleSummary,
    /// Interleave-agreement outcomes (programs with a machine).
    pub interleave: OracleSummary,
}

/// Everything an algorithm campaign produces.
#[derive(Clone, Debug)]
pub struct AlgoReport {
    /// Expansion size the campaign ran at.
    pub params: FamilyParams,
    /// Per-family oracle columns, in [`FamilyId::ALL`] order (selected
    /// families only).
    pub families: Vec<FamilyStats>,
    /// Per-model counts, in [`ModelId::ALL`] order.
    pub models: Vec<ModelStats>,
    /// Per-oracle counts, in [`OracleKind::ALL`] order.
    pub oracles: Vec<OracleStats>,
    /// Every oracle violation (shrunk when configured).
    pub discrepancies: Vec<Discrepancy>,
    /// Enumeration pruning counters from the matrix pass; present only
    /// when [`AlgoConfig::enum_stats`] was set.
    pub enumeration: Option<lkmm_exec::EnumSnapshot>,
    /// Data-plane counters from the matrix pass; present only when
    /// [`AlgoConfig::data_plane`] was set.
    pub data_plane: Option<lkmm_exec::DataPlaneSnapshot>,
}

impl AlgoReport {
    /// Total programs across all families.
    pub fn programs(&self) -> usize {
        self.families.iter().map(|f| f.programs).sum()
    }

    /// Whether every oracle held everywhere.
    pub fn clean(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// Per-program seed for the sim pass, mirroring the cycle campaign's.
fn sim_seed(base: u64, index: usize) -> u64 {
    base ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run an algorithm campaign with the standard reference checkers.
///
/// # Errors
///
/// [`CampaignError::Generate`] on degenerate family parameters,
/// [`CampaignError::Store`] on verdict-store I/O.
pub fn run_algo_campaign(cfg: &AlgoConfig) -> Result<AlgoReport, CampaignError> {
    run_algo_campaign_with(cfg, &ModelSet::standard())
}

/// Run an algorithm campaign against an explicit [`ModelSet`] (mutant
/// injection for tests).
///
/// # Errors
///
/// See [`run_algo_campaign`].
pub fn run_algo_campaign_with(
    cfg: &AlgoConfig,
    set: &ModelSet,
) -> Result<AlgoReport, CampaignError> {
    let families: Vec<FamilyId> = if cfg.families.is_empty() {
        FamilyId::ALL.to_vec()
    } else {
        let mut fs: Vec<FamilyId> = FamilyId::ALL
            .iter()
            .copied()
            .filter(|f| cfg.families.contains(f))
            .collect();
        fs.dedup();
        fs
    };

    // Expand: one flat program list, family boundaries remembered.
    let mut programs: Vec<AlgoProgram> = Vec::new();
    let mut spans: Vec<(FamilyId, usize, usize)> = Vec::new();
    for &family in &families {
        let start = programs.len();
        programs.extend(lkmm_algorithms::programs(family, &cfg.params)?);
        spans.push((family, start, programs.len()));
    }

    let corpus: Vec<CorpusEntry> = programs
        .iter()
        .map(|p| CorpusEntry {
            test: p.test.clone(),
            origin: Origin::Algorithm {
                family: p.family.name(),
                invariant: p.family.invariant(),
                expect: p.expect,
            },
        })
        .collect();

    let matrix_opts = MatrixOptions {
        salt: &cfg.salt,
        jobs: cfg.jobs,
        queue_depth: cfg.queue_depth,
        budget: cfg.budget.clone(),
        store_path: cfg.store_path.as_deref(),
        enum_stats: cfg.enum_stats.clone(),
        data_plane: cfg.data_plane.clone(),
    };
    let (matrix, passes) = build_matrix(&corpus, set, &matrix_opts)?;
    let enumeration = cfg.enum_stats.as_ref().map(|s| s.snapshot());
    let data_plane = cfg.data_plane.as_ref().map(|s| s.snapshot());

    let mut discrepancies = Vec::new();
    let mut summaries = [OracleSummary::default(); OracleKind::ALL.len()];
    // Per-family slices of the per-oracle summaries.
    let mut family_stats: Vec<FamilyStats> = spans
        .iter()
        .map(|&(family, start, end)| FamilyStats {
            family,
            programs: end - start,
            safety: OracleSummary::default(),
            sim: OracleSummary::default(),
            host: OracleSummary::default(),
            interleave: OracleSummary::default(),
        })
        .collect();
    let family_of = |index: usize| -> usize {
        spans
            .iter()
            .position(|&(_, start, end)| index >= start && index < end)
            .expect("every program index lies in a span")
    };

    // Matrix oracles (incl. family safety, which check_row evaluates on
    // algorithm rows).
    for (i, row) in matrix.rows.iter().enumerate() {
        let before = summaries[OracleKind::FamilySafety.index()];
        check_row(row, &mut discrepancies, &mut summaries);
        let after = summaries[OracleKind::FamilySafety.index()];
        let fs = &mut family_stats[family_of(i)].safety;
        fs.checked += after.checked - before.checked;
        fs.violations += after.violations - before.violations;
        fs.skipped += after.skipped - before.skipped;
    }

    let lkmm_forbidden = |row: &crate::matrix::MatrixRow| {
        matches!(
            row.cell(ModelId::LkmmNative).and_then(CheckOutcome::result),
            Some(r) if r.verdict == Verdict::Forbidden
        )
    };

    // Sim soundness over runnable programs: the operational simulators
    // must never observe an outcome the LKMM forbids.
    if cfg.sim.iterations > 0 {
        for (i, (row, prog)) in matrix.rows.iter().zip(&programs).enumerate() {
            let fi = family_of(i);
            if !prog.runnable || uses_srcu(&row.test) {
                continue;
            }
            if !lkmm_forbidden(row) {
                continue;
            }
            let seed = sim_seed(cfg.sim.seed, i);
            for arch in Arch::ALL {
                let config = RunConfig { iterations: cfg.sim.iterations, seed };
                match run_test(&row.test, arch, &config) {
                    Err(_) => {
                        summaries[OracleKind::SimSoundness.index()].skipped += 1;
                        family_stats[fi].sim.skipped += 1;
                    }
                    Ok(stats) => {
                        summaries[OracleKind::SimSoundness.index()].checked += 1;
                        family_stats[fi].sim.checked += 1;
                        if stats.observed > 0 {
                            summaries[OracleKind::SimSoundness.index()].violations += 1;
                            family_stats[fi].sim.violations += 1;
                            discrepancies.push(Discrepancy {
                                test_name: row.test.name.clone(),
                                oracle: OracleKind::SimSoundness,
                                detail: format!(
                                    "{} observed an LKMM-forbidden outcome {} times in {} runs (seed {seed})",
                                    arch.name(),
                                    stats.observed,
                                    stats.total
                                ),
                                check: Recheck::SimObservation {
                                    arch,
                                    iterations: cfg.sim.iterations,
                                    seed,
                                },
                                test: row.test.clone(),
                                shrunk: None,
                            });
                        }
                    }
                }
            }
        }
    }

    // Host soundness: the same runnable programs on real threads.
    if cfg.host_iterations > 0 {
        for (i, (row, prog)) in matrix.rows.iter().zip(&programs).enumerate() {
            let fi = family_of(i);
            if !prog.runnable {
                continue;
            }
            if !lkmm_forbidden(row) {
                continue;
            }
            let config = lkmm_klitmus::HostConfig { iterations: cfg.host_iterations };
            match lkmm_klitmus::run_on_host(&row.test, &config) {
                Err(_) => {
                    summaries[OracleKind::HostSoundness.index()].skipped += 1;
                    family_stats[fi].host.skipped += 1;
                }
                Ok(stats) => {
                    summaries[OracleKind::HostSoundness.index()].checked += 1;
                    family_stats[fi].host.checked += 1;
                    if stats.observed > 0 {
                        summaries[OracleKind::HostSoundness.index()].violations += 1;
                        family_stats[fi].host.violations += 1;
                        discrepancies.push(Discrepancy {
                            test_name: row.test.name.clone(),
                            oracle: OracleKind::HostSoundness,
                            detail: format!(
                                "host threads observed an LKMM-forbidden outcome {} times in {} runs",
                                stats.observed, stats.total
                            ),
                            check: Recheck::HostObservation {
                                iterations: cfg.host_iterations,
                            },
                            test: row.test.clone(),
                            shrunk: None,
                        });
                    }
                }
            }
        }
    }

    // Interleave agreement: exhaustive SC interleaving of the step
    // machine vs the axiomatic SC+atomicity verdict.
    {
        let opts = EnumOptions { budget: cfg.budget.clone(), ..EnumOptions::default() };
        let pipe = PipelineOptions {
            jobs: cfg.jobs,
            queue_depth: cfg.queue_depth.max(1),
            ..PipelineOptions::default()
        };
        for (i, prog) in programs.iter().enumerate() {
            let fi = family_of(i);
            let Some(machine) = &prog.machine else { continue };
            let explored = interleave::explore(machine, cfg.interleave_max_states);
            if explored.truncated {
                summaries[OracleKind::InterleaveAgreement.index()].skipped += 1;
                family_stats[fi].interleave.skipped += 1;
                continue;
            }
            let axiomatic = match check_test_governed(&ScAtomic, &prog.test, &opts, &pipe) {
                CheckOutcome::Complete(result) => result.verdict,
                CheckOutcome::Inconclusive { .. } => {
                    summaries[OracleKind::InterleaveAgreement.index()].skipped += 1;
                    family_stats[fi].interleave.skipped += 1;
                    continue;
                }
            };
            summaries[OracleKind::InterleaveAgreement.index()].checked += 1;
            family_stats[fi].interleave.checked += 1;
            if explored.bad_reachable != (axiomatic == Verdict::Allowed) {
                summaries[OracleKind::InterleaveAgreement.index()].violations += 1;
                family_stats[fi].interleave.violations += 1;
                discrepancies.push(Discrepancy {
                    test_name: prog.test.name.clone(),
                    oracle: OracleKind::InterleaveAgreement,
                    detail: format!(
                        "interleaving says the bad state is {} ({} states explored), SC+atomic says {}",
                        if explored.bad_reachable { "reachable" } else { "unreachable" },
                        explored.states,
                        axiomatic
                    ),
                    check: Recheck::InterleaveDivergence {
                        machine: machine.clone(),
                        max_states: cfg.interleave_max_states,
                    },
                    test: prog.test.clone(),
                    shrunk: None,
                });
            }
        }
    }

    // Shrink. Family-safety discrepancies re-check through one native
    // LKMM run, so the mutant-catching path minimizes to the smallest
    // program that still gets the wrong verdict. Host observations are
    // scheduling-dependent and interleave machines cannot follow a
    // mutated test, so neither is shrunk (C11Expectation as before).
    if cfg.shrink {
        let opts = EnumOptions { budget: cfg.budget.clone(), ..EnumOptions::default() };
        let pipe = PipelineOptions {
            jobs: cfg.jobs,
            queue_depth: cfg.queue_depth.max(1),
            ..PipelineOptions::default()
        };
        for d in &mut discrepancies {
            if matches!(
                d.check,
                Recheck::C11Expectation { .. }
                    | Recheck::HostObservation { .. }
                    | Recheck::InterleaveDivergence { .. }
            ) {
                continue;
            }
            if !recheck_violated(&d.check, &d.test, set, &opts, &pipe) {
                continue;
            }
            let mut pred = |cand: &lkmm_litmus::ast::Test| {
                recheck_violated(&d.check, cand, set, &opts, &pipe)
            };
            let (minimal, attempts, accepted) = shrink(&d.test, &mut pred);
            d.shrunk = Some(crate::shrink::Shrunk {
                litmus: canonical_text(&minimal),
                size: test_size(&minimal),
                attempts,
                accepted,
            });
        }
    }

    Ok(AlgoReport {
        params: cfg.params,
        families: family_stats,
        models: ModelId::ALL
            .iter()
            .zip(passes)
            .map(|(&id, pass)| ModelStats { id, pass })
            .collect(),
        oracles: OracleKind::ALL
            .iter()
            .zip(summaries)
            .map(|(&kind, summary)| OracleStats { kind, summary })
            .collect(),
        discrepancies,
        enumeration,
        data_plane,
    })
}

/// Render the deterministic JSON report for an algorithm campaign.
pub fn algo_json_report(report: &AlgoReport, cfg: &AlgoConfig) -> Json {
    let families = report
        .families
        .iter()
        .map(|f| {
            let col = |s: &OracleSummary| {
                Json::obj(vec![
                    ("checked", Json::num(s.checked as u64)),
                    ("violations", Json::num(s.violations as u64)),
                    ("skipped", Json::num(s.skipped as u64)),
                ])
            };
            Json::obj(vec![
                ("family", Json::str(f.family.name())),
                ("invariant", Json::str(f.family.invariant())),
                ("programs", Json::num(f.programs as u64)),
                ("safety", col(&f.safety)),
                ("sim", col(&f.sim)),
                ("host", col(&f.host)),
                ("interleave", col(&f.interleave)),
            ])
        })
        .collect();

    let models = report
        .models
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("model", Json::str(m.id.column())),
                ("checked", Json::num(m.pass.checked as u64)),
                ("allowed", Json::num(m.pass.allowed as u64)),
                ("forbidden", Json::num(m.pass.forbidden as u64)),
                ("inconclusive", Json::num(m.pass.inconclusive as u64)),
                ("skipped", Json::num(m.pass.skipped as u64)),
            ])
        })
        .collect();

    let oracles = report
        .oracles
        .iter()
        .map(|o| {
            Json::obj(vec![
                ("oracle", Json::str(o.kind.name())),
                ("checked", Json::num(o.summary.checked as u64)),
                ("violations", Json::num(o.summary.violations as u64)),
                ("skipped", Json::num(o.summary.skipped as u64)),
            ])
        })
        .collect();

    let discrepancies = report
        .discrepancies
        .iter()
        .map(|d| {
            let mut fields = vec![
                ("test", Json::str(&d.test_name)),
                ("oracle", Json::str(d.oracle.name())),
                ("detail", Json::str(&d.detail)),
                ("check", crate::report::recheck_json(&d.check)),
                ("witness", Json::str(canonical_text(&d.test))),
            ];
            if let Some(s) = &d.shrunk {
                fields.push((
                    "shrunk",
                    Json::obj(vec![
                        ("litmus", Json::str(&s.litmus)),
                        ("size", Json::num(s.size as u64)),
                        ("attempts", Json::num(s.attempts as u64)),
                        ("accepted", Json::num(s.accepted as u64)),
                    ]),
                ));
            }
            Json::obj(fields)
        })
        .collect();

    let mut fields = vec![
        ("op", Json::str("conformance-algorithms")),
        (
            "config",
            Json::obj(vec![
                ("threads", Json::num(cfg.params.threads as u64)),
                ("sections", Json::num(cfg.params.sections as u64)),
                ("retries", Json::num(cfg.params.retries as u64)),
                ("salt", Json::str(&cfg.salt)),
                ("sim_iterations", Json::num(cfg.sim.iterations)),
                ("sim_seed", Json::num(cfg.sim.seed)),
                ("host_iterations", Json::num(cfg.host_iterations)),
                ("interleave_max_states", Json::num(cfg.interleave_max_states as u64)),
                ("shrink", Json::Bool(cfg.shrink)),
            ]),
        ),
        ("programs", Json::num(report.programs() as u64)),
        ("families", Json::Arr(families)),
        ("models", Json::Arr(models)),
        ("oracles", Json::Arr(oracles)),
        ("discrepancies", Json::Arr(discrepancies)),
        ("clean", Json::Bool(report.clean())),
    ];
    if let Some(e) = &report.enumeration {
        fields.push((
            "enumeration",
            Json::obj(vec![
                ("rf_prefixes_pruned", Json::num(e.rf_prefixes_pruned)),
                ("co_pairs_saturated", Json::num(e.co_pairs_saturated)),
                ("co_pairs_branched", Json::num(e.co_pairs_branched)),
                ("co_leaves_tested", Json::num(e.co_leaves_tested)),
                ("candidates_emitted", Json::num(e.candidates_emitted)),
            ]),
        ));
    }
    if let Some(d) = &report.data_plane {
        fields.push(("data_plane", crate::report::data_plane_json(d)));
    }
    Json::obj(fields)
}

/// Render the human-readable per-family table.
pub fn algo_human_table(report: &AlgoReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "algorithm families: {} programs at threads={} sections={} retries={}",
        report.programs(),
        report.params.threads,
        report.params.sections,
        report.params.retries
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<10} {:>8}  {:>13} {:>11} {:>11} {:>13}  invariant",
        "family", "programs", "safety", "sim", "host", "interleave"
    );
    let cell = |s: &OracleSummary| {
        if s.checked + s.skipped == 0 {
            "-".to_string()
        } else {
            format!("{}/{}", s.checked - s.violations, s.checked)
        }
    };
    for f in &report.families {
        let _ = writeln!(
            out,
            "{:<10} {:>8}  {:>13} {:>11} {:>11} {:>13}  {}",
            f.family.name(),
            f.programs,
            cell(&f.safety),
            cell(&f.sim),
            cell(&f.host),
            cell(&f.interleave),
            f.family.invariant()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>11} {:>8}",
        "oracle", "checked", "violations", "skipped"
    );
    for o in &report.oracles {
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>11} {:>8}",
            o.kind.name(),
            o.summary.checked,
            o.summary.violations,
            o.summary.skipped
        );
    }
    let _ = writeln!(out);
    if report.clean() {
        let _ = writeln!(out, "no discrepancies");
    } else {
        let _ = writeln!(out, "{} DISCREPANCIES:", report.discrepancies.len());
        for d in &report.discrepancies {
            let _ = writeln!(out);
            let _ = writeln!(out, "[{}] {}: {}", d.oracle.name(), d.test_name, d.detail);
            if let Some(s) = &d.shrunk {
                let _ = writeln!(
                    out,
                    "minimal witness (size {}, {} of {} reductions accepted):",
                    s.size, s.accepted, s.attempts
                );
                for line in s.litmus.lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
    }
    out
}

/// Observability lines for stderr (cache hits, enumeration counters) —
/// everything deliberately excluded from the deterministic report.
pub fn algo_observability_lines(report: &AlgoReport) -> String {
    let mut out = String::new();
    for m in &report.models {
        let _ = writeln!(
            out,
            "{}: {} cached, {} computed, {} deduped, {} candidates enumerated",
            m.id.column(),
            m.pass.hits,
            m.pass.computed,
            m.pass.deduped,
            m.pass.candidates_enumerated
        );
    }
    if let Some(e) = &report.enumeration {
        let _ = writeln!(
            out,
            "enumeration: {} rf prefixes pruned, {} co pairs saturated, {} branched, \
             {} leaves tested, {} candidates emitted",
            e.rf_prefixes_pruned,
            e.co_pairs_saturated,
            e.co_pairs_branched,
            e.co_leaves_tested,
            e.candidates_emitted
        );
    }
    if let Some(d) = &report.data_plane {
        let _ = writeln!(out, "{}", crate::report::data_plane_line(d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> AlgoConfig {
        AlgoConfig {
            families: vec![FamilyId::Ticket, FamilyId::Deque],
            sim: SimConfig { iterations: 50, ..SimConfig::default() },
            host_iterations: 200,
            ..AlgoConfig::default()
        }
    }

    #[test]
    fn ticket_and_deque_campaign_is_clean_across_all_layers() {
        let report = run_algo_campaign(&quick_config()).unwrap();
        assert!(
            report.clean(),
            "{:?}",
            report.discrepancies.iter().map(|d| &d.detail).collect::<Vec<_>>()
        );
        assert_eq!(report.families.len(), 2);
        for f in &report.families {
            assert!(f.programs >= 2, "{}", f.family.name());
            assert!(f.safety.checked == f.programs, "{}", f.family.name());
            assert_eq!(f.safety.violations, 0);
        }
        // Both families carry step machines, so the interleave oracle
        // ran, and both have runnable programs for the operational layers.
        let il = &report.oracles[OracleKind::InterleaveAgreement.index()];
        assert!(il.summary.checked >= 4, "interleave checked {}", il.summary.checked);
        assert_eq!(il.summary.violations, 0);
        let host = &report.oracles[OracleKind::HostSoundness.index()];
        assert!(host.summary.checked >= 2, "host checked {}", host.summary.checked);
        assert_eq!(host.summary.violations, 0);
        let sim = &report.oracles[OracleKind::SimSoundness.index()];
        assert!(sim.summary.checked > 0);
        assert_eq!(sim.summary.violations, 0);
    }

    #[test]
    fn degenerate_params_surface_as_generate_errors() {
        let cfg = AlgoConfig {
            params: FamilyParams { threads: 0, ..FamilyParams::default() },
            ..quick_config()
        };
        match run_algo_campaign(&cfg) {
            Err(CampaignError::Generate(e)) => {
                assert!(e.to_string().contains("degenerate"), "{e}");
            }
            other => panic!("expected a generate error, got {other:?}"),
        }
    }

    #[test]
    fn json_report_is_deterministic_cold_and_warm() {
        let dir = std::env::temp_dir().join(format!(
            "lkmm-algo-report-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = AlgoConfig {
            families: vec![FamilyId::Ticket],
            store_path: Some(dir.join("store")),
            sim: SimConfig { iterations: 20, ..SimConfig::default() },
            host_iterations: 50,
            ..AlgoConfig::default()
        };
        let cold = algo_json_report(&run_algo_campaign(&cfg).unwrap(), &cfg).to_string();
        let warm = algo_json_report(&run_algo_campaign(&cfg).unwrap(), &cfg).to_string();
        assert_eq!(cold, warm, "cold and warm reports must be byte-identical");
        let v = Json::parse(&cold).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("conformance-algorithms"));
        assert_eq!(v.get("clean").and_then(Json::as_bool), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_lkmm_mutant_is_caught_and_shrunk_by_family_safety() {
        // An LKMM that allows everything gets every Forbidden-expecting
        // program wrong; family safety must fire and shrink each hit to
        // a minimal program that the mutant still misjudges.
        let mut set = ModelSet::standard();
        set.replace(ModelId::LkmmNative, Box::new(lkmm_exec::model::AllowAll));
        let cfg = AlgoConfig {
            families: vec![FamilyId::Ticket],
            sim: SimConfig { iterations: 0, ..SimConfig::default() },
            host_iterations: 0,
            ..AlgoConfig::default()
        };
        let report = run_algo_campaign_with(&cfg, &set).unwrap();
        assert!(!report.clean());
        let d = report
            .discrepancies
            .iter()
            .find(|d| d.oracle == OracleKind::FamilySafety)
            .expect("allow-all misjudges the safe ticket variant");
        let shrunk = d.shrunk.as_ref().expect("family-safety discrepancies shrink");
        assert!(shrunk.size <= test_size(&d.test));
        let witness = lkmm_litmus::parse(&shrunk.litmus).unwrap();
        assert!(recheck_violated(
            &d.check,
            &witness,
            &set,
            &EnumOptions::default(),
            &PipelineOptions::default(),
        ));
    }
}
