//! The campaign driver: corpus → verdict matrix → oracles → shrinker.
//!
//! One campaign enumerates a corpus (the paper's named library plus
//! every diy cycle up to a configurable length), builds the verdict
//! matrix across all checkers (incrementally, through the verdict
//! store), evaluates every oracle on every row, runs seeded simulator
//! soundness passes on LKMM-forbidden tests, and minimizes each
//! discrepancy with the delta-debugging shrinker.
//!
//! Everything in the resulting [`CampaignReport`] is a deterministic
//! function of the [`CampaignConfig`]: cache hit counts and wall-clock
//! live in the per-model [`ModelPass`] observability fields, which the
//! JSON report deliberately omits, so a warm re-run over a populated
//! store produces a byte-identical report.

use crate::checkpoint::FailedUnit;
use crate::driver::{drive_campaign, ResilienceConfig};
use crate::matrix::{
    uses_srcu, CorpusEntry, MatrixOptions, MatrixRow, ModelId, ModelPass, ModelSet, Origin,
};
use crate::oracle::{check_row, recheck_violated, Discrepancy, OracleKind, OracleSummary, Recheck};
use crate::shrink::{shrink, test_size, Shrunk};
use lkmm_core::budget::Budget;
use lkmm_exec::{CheckOutcome, EnumOptions, PipelineOptions, Verdict};
use lkmm_generator::{
    cycles_up_to, default_alphabet, generate, generate_contended, Edge, GenError,
};
use lkmm_service::canonical_text;
use lkmm_service::hash::fnv64;
use lkmm_sim::{run_test, Arch, RunConfig};
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Simulator soundness-pass configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Iterations per (test, architecture) run; `0` disables the pass.
    pub iterations: u64,
    /// Base seed; each test derives its own seed from this and its
    /// corpus position, so runs are reproducible test by test.
    pub seed: u64,
    /// Simulate every `stride`-th corpus test (1 = all).
    pub stride: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { iterations: 200, seed: 7, stride: 1 }
    }
}

/// Everything one campaign run depends on.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Generate every diy cycle up to this length (`0` = none; the
    /// shortest critical cycle has length 4).
    pub max_cycle_len: usize,
    /// Also generate each cycle's contended twin
    /// ([`lkmm_generator::generate_contended`]): every event on one
    /// location, write values colliding, the cycle repeated to a fixed
    /// event budget. This is the coherence-heavy half of the corpus —
    /// the tests where per-location write orders are mostly forced and
    /// reads-from choices are mostly doomed.
    pub contended: bool,
    /// Include the paper's named library.
    pub include_library: bool,
    /// Cache version salt (each model column adds its own component).
    pub salt: String,
    /// Pipeline worker threads per check (0 = all hardware threads).
    pub jobs: usize,
    /// Per-worker candidate queue bound.
    pub queue_depth: usize,
    /// Per-check budget; trips surface as inconclusive cells.
    pub budget: Budget,
    /// Persistent verdict store; `None` runs in memory.
    pub store_path: Option<PathBuf>,
    /// Simulator soundness pass.
    pub sim: SimConfig,
    /// Minimize discrepancies with the shrinker.
    pub shrink: bool,
    /// Shared enumeration pruning counters for the matrix pass. `None`
    /// (the default) records nothing; when set, the report carries a
    /// [`CampaignReport::enumeration`] snapshot. Observability only —
    /// counters never influence verdicts or cache keys, and a warm store
    /// legitimately reports zeros.
    pub enum_stats: Option<std::sync::Arc<lkmm_exec::EnumStats>>,
    /// Shared data-plane counters (batch occupancy, arena reuse) for
    /// the matrix pass. Same contract as `enum_stats`: `None` (the
    /// default) records nothing; when set, the report carries a
    /// [`CampaignReport::data_plane`] snapshot. Observability only —
    /// counters never influence verdicts or cache keys, and a warm
    /// store legitimately reports zeros.
    pub data_plane: Option<std::sync::Arc<lkmm_exec::DataPlaneStats>>,
    /// Crash-survival knobs: checkpoint/resume, per-unit retry budget,
    /// backoff seed (see [`ResilienceConfig`]).
    pub resilience: ResilienceConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_cycle_len: 4,
            contended: false,
            include_library: true,
            salt: String::new(),
            jobs: 0,
            queue_depth: 256,
            budget: Budget::default(),
            store_path: None,
            sim: SimConfig::default(),
            shrink: true,
            enum_stats: None,
            data_plane: None,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// One column's aggregate results.
#[derive(Clone, Debug)]
pub struct ModelStats {
    pub id: ModelId,
    pub pass: ModelPass,
}

/// One oracle's aggregate results.
#[derive(Clone, Copy, Debug)]
pub struct OracleStats {
    pub kind: OracleKind,
    pub summary: OracleSummary,
}

/// Everything a campaign produces.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Library tests in the corpus.
    pub corpus_library: usize,
    /// Generated tests in the corpus.
    pub corpus_generated: usize,
    /// Per-model counts, in [`ModelId::ALL`] order.
    pub models: Vec<ModelStats>,
    /// Per-oracle counts, in [`OracleKind::ALL`] order.
    pub oracles: Vec<OracleStats>,
    /// Every oracle violation (shrunk when configured).
    pub discrepancies: Vec<Discrepancy>,
    /// Enumeration pruning counters from the matrix pass; present only
    /// when [`CampaignConfig::enum_stats`] was set.
    pub enumeration: Option<lkmm_exec::EnumSnapshot>,
    /// Data-plane counters (batch occupancy, arena reuse) from the
    /// matrix pass; present only when [`CampaignConfig::data_plane`]
    /// was set.
    pub data_plane: Option<lkmm_exec::DataPlaneSnapshot>,
    /// Units the supervisor gave up on after exhausting retries. A
    /// non-empty list makes the report *degraded*: the matrix is
    /// partial (quarantined rows are all-`None` and every oracle
    /// skipped them), and the CLI exits with a distinct code.
    pub failed_units: Vec<FailedUnit>,
    /// `Some(cursor)` when this run resumed a checkpoint — stderr
    /// observability only, deliberately excluded from the JSON report
    /// (a resumed run's JSON must be byte-identical to a cold run's).
    pub resumed_at: Option<usize>,
    /// Checkpoint frames written this run (stderr observability only).
    pub checkpoints_written: usize,
}

impl CampaignReport {
    /// Total corpus size.
    pub fn corpus_total(&self) -> usize {
        self.corpus_library + self.corpus_generated
    }

    /// Whether every oracle held everywhere.
    pub fn clean(&self) -> bool {
        self.discrepancies.is_empty()
    }

    /// Whether the matrix is partial because units were quarantined.
    pub fn degraded(&self) -> bool {
        !self.failed_units.is_empty()
    }
}

/// Campaign failure: corpus generation, store/checkpoint I/O, or a
/// refused resume. Checking problems (budget trips, enumeration
/// limits) are per-cell inconclusive outcomes, never campaign errors;
/// per-unit faults are retried and then quarantined, never fatal.
#[derive(Debug)]
pub enum CampaignError {
    Generate(GenError),
    Store(io::Error),
    /// The verdict store is locked by another live process.
    Locked {
        lock: PathBuf,
        pid: Option<u32>,
    },
    /// Checkpoint file I/O failed (including an injected torn frame).
    Checkpoint(io::Error),
    /// `--resume` found a checkpoint written under a different config;
    /// continuing would silently mix two campaigns.
    CheckpointMismatch {
        expected: u64,
        found: u64,
    },
    /// The deliberate clean stop from [`ResilienceConfig::stop_after`]:
    /// the store is flushed and a final checkpoint frame records
    /// `cursor`, so a resumed run picks up exactly here.
    Suspended {
        cursor: usize,
        total: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Generate(e) => write!(f, "generator: {e}"),
            CampaignError::Store(e) => write!(f, "verdict store: {e}"),
            CampaignError::Locked { lock, pid } => match pid {
                Some(pid) => write!(
                    f,
                    "verdict store is locked by live process {pid} (lock file {})",
                    lock.display()
                ),
                None => write!(f, "verdict store is locked (lock file {})", lock.display()),
            },
            CampaignError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            CampaignError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:016x} does not match this campaign's \
                 config ({expected:016x}); refusing to resume"
            ),
            CampaignError::Suspended { cursor, total } => write!(
                f,
                "campaign suspended at unit {cursor}/{total} (progress checkpointed; \
                 rerun with --resume to continue)"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<GenError> for CampaignError {
    fn from(e: GenError) -> Self {
        CampaignError::Generate(e)
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Store(e)
    }
}

/// The lazy campaign corpus: the named library up front (already
/// materialised — it is small), then every generated cycle in
/// `cycles_up_to` order, each litmus test built only when the driver
/// reaches it, then the contended twins. The order (and therefore every
/// corpus index) is a deterministic function of the config — which is
/// what lets a checkpoint record progress as a plain cursor.
pub struct CorpusStream {
    library: std::vec::IntoIter<CorpusEntry>,
    cycles: Vec<Vec<Edge>>,
    /// Next cycle slot: `0..cycles.len()` plain, then the contended
    /// twins when enabled.
    at: usize,
    contended: bool,
    total: usize,
}

impl CorpusStream {
    /// Total units this stream will yield.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Advance past the first `n` units without building their tests —
    /// the aggregate-resume fast path: a resumed campaign takes units
    /// `0..cursor` from the checkpoint's aggregates, so their litmus
    /// tests never need to exist in this process at all.
    pub fn seek(&mut self, n: usize) {
        let from_library = n.min(self.library.len());
        if from_library > 0 {
            // `Vec::IntoIter::nth` drops the skipped entries without
            // generating or cloning anything.
            let _ = self.library.nth(from_library - 1);
        }
        self.at += n - from_library;
    }
}

impl Iterator for CorpusStream {
    type Item = Result<CorpusEntry, GenError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.library.next() {
            return Some(Ok(e));
        }
        let n = self.cycles.len();
        if self.at < n {
            let r = generate(&self.cycles[self.at]);
            self.at += 1;
            Some(r.map(|test| CorpusEntry { test, origin: Origin::Generated }))
        } else if self.contended && self.at < 2 * n {
            let r = generate_contended(&self.cycles[self.at - n]);
            self.at += 1;
            Some(r.map(|test| CorpusEntry { test, origin: Origin::Generated }))
        } else {
            None
        }
    }
}

/// The campaign corpus as a lazy stream (see [`CorpusStream`]).
pub fn corpus_stream(cfg: &CampaignConfig) -> CorpusStream {
    let mut library = Vec::new();
    if cfg.include_library {
        for pt in lkmm_litmus::library::all() {
            library.push(CorpusEntry {
                test: pt.test(),
                origin: Origin::Library { lkmm: pt.lkmm, c11: pt.c11 },
            });
        }
    }
    let cycles = if cfg.max_cycle_len > 0 {
        cycles_up_to(cfg.max_cycle_len, &default_alphabet())
    } else {
        Vec::new()
    };
    let total = library.len() + cycles.len() * if cfg.contended { 2 } else { 1 };
    CorpusStream {
        library: library.into_iter(),
        cycles,
        at: 0,
        contended: cfg.contended,
        total,
    }
}

/// Assemble the whole campaign corpus eagerly — [`corpus_stream`]
/// collected, for callers that want the full slice.
///
/// # Errors
///
/// Propagates generator failures (none are expected for the default
/// alphabet: `cycles_up_to` only yields validated cycles).
pub fn corpus(cfg: &CampaignConfig) -> Result<Vec<CorpusEntry>, GenError> {
    corpus_stream(cfg).collect()
}

/// FNV-64 fingerprint over everything the deterministic report depends
/// on: corpus shape, cache salt, fuel budgets, simulator config, shrink
/// flag, column set. A checkpoint records this and resume refuses a
/// mismatch. Knobs that cannot change the report — `jobs`,
/// `queue_depth`, wall-clock limits (already nondeterministic) — are
/// deliberately excluded, so resuming on a different machine with
/// different parallelism is fine.
pub fn config_fingerprint(cfg: &CampaignConfig, total_units: usize) -> u64 {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "ck-v1|cycle:{}|contended:{}|library:{}|salt:{}|candidates:{:?}|steps:{:?}\
         |sim:{}:{}:{}|shrink:{}|units:{total_units}|cols:",
        cfg.max_cycle_len,
        cfg.contended,
        cfg.include_library,
        cfg.salt,
        cfg.budget.max_candidates,
        cfg.budget.max_eval_steps,
        cfg.sim.iterations,
        cfg.sim.seed,
        cfg.sim.stride,
        cfg.shrink,
    );
    for id in ModelId::ALL {
        let _ = write!(s, "{},", id.column());
    }
    fnv64(s.as_bytes())
}

/// Per-test seed for the soundness pass: reproducible, distinct per
/// corpus position, independent of which other tests are simulated.
fn sim_seed(base: u64, corpus_index: usize) -> u64 {
    base ^ (corpus_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Simulator soundness for one completed row: an operational machine
/// must never observe an outcome the LKMM forbids, so only
/// LKMM-forbidden rows need running, and only every `stride`-th corpus
/// index is sampled. Runs as part of the driver's per-row checks, so a
/// checkpoint frame's aggregates already include the prefix's share of
/// the simulator pass.
fn sim_check_row(
    sim: &SimConfig,
    i: usize,
    row: &MatrixRow,
    discrepancies: &mut Vec<Discrepancy>,
    summary: &mut OracleSummary,
) {
    if sim.iterations == 0 || i % sim.stride.max(1) != 0 {
        return;
    }
    let forbidden = matches!(
        row.cell(ModelId::LkmmNative).and_then(CheckOutcome::result),
        Some(r) if r.verdict == Verdict::Forbidden
    );
    if !forbidden {
        return;
    }
    if uses_srcu(&row.test) {
        summary.skipped += 1;
        return;
    }
    let seed = sim_seed(sim.seed, i);
    for arch in Arch::ALL {
        let config = RunConfig { iterations: sim.iterations, seed };
        match run_test(&row.test, arch, &config) {
            Err(_) => summary.skipped += 1,
            Ok(stats) => {
                summary.checked += 1;
                if stats.observed > 0 {
                    summary.violations += 1;
                    discrepancies.push(Discrepancy {
                        test_name: row.test.name.clone(),
                        oracle: OracleKind::SimSoundness,
                        detail: format!(
                            "{} observed an LKMM-forbidden outcome {} times in {} runs (seed {seed})",
                            arch.name(),
                            stats.observed,
                            stats.total
                        ),
                        check: Recheck::SimObservation {
                            arch,
                            iterations: sim.iterations,
                            seed,
                        },
                        test: row.test.clone(),
                        shrunk: None,
                    });
                }
            }
        }
    }
}

/// Run a full campaign with the standard reference checkers.
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    run_campaign_with(cfg, &ModelSet::standard())
}

/// Run a full campaign against an explicit [`ModelSet`] — the entry
/// point for mutant-injection tests (swap one column for a broken
/// model and watch the oracles catch it).
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_campaign_with(
    cfg: &CampaignConfig,
    set: &ModelSet,
) -> Result<CampaignReport, CampaignError> {
    let stream = corpus_stream(cfg);
    let total_units = stream.total();
    let fingerprint = config_fingerprint(cfg, total_units);

    let matrix_opts = MatrixOptions {
        salt: &cfg.salt,
        jobs: cfg.jobs,
        queue_depth: cfg.queue_depth,
        budget: cfg.budget.clone(),
        store_path: cfg.store_path.as_deref(),
        enum_stats: cfg.enum_stats.clone(),
        data_plane: cfg.data_plane.clone(),
    };
    // Rows stream through the driver, which runs the matrix-level
    // oracles and the simulator soundness pass the moment each row's
    // cells are complete — that per-row folding is what lets a
    // checkpoint frame carry the campaign's whole deterministic state
    // as aggregates, and a resume continue it as arithmetic.
    let (core, drive) = drive_campaign(
        stream,
        fingerprint,
        set,
        &matrix_opts,
        &cfg.resilience,
        |i, row, discrepancies, summaries| {
            check_row(row, discrepancies, summaries);
            sim_check_row(&cfg.sim, i, row, discrepancies, &mut summaries[2]);
        },
    )?;
    let crate::driver::CampaignCore {
        corpus_library,
        corpus_generated,
        passes,
        summaries,
        mut discrepancies,
    } = core;
    // Snapshot before the shrink phase so the counters describe exactly
    // the matrix enumeration pass (the per-row oracles and the
    // simulator enumerate nothing; shrink re-checks do).
    let enumeration = cfg.enum_stats.as_ref().map(|s| s.snapshot());
    let data_plane = cfg.data_plane.as_ref().map(|s| s.snapshot());

    // Shrink every discrepancy down to a minimal discriminating witness.
    // Re-checks recompute from scratch through the exact failing pair —
    // never through the store (see crate docs for why).
    if cfg.shrink {
        let opts = EnumOptions { budget: cfg.budget.clone(), ..EnumOptions::default() };
        let pipe = PipelineOptions {
            jobs: cfg.jobs,
            queue_depth: cfg.queue_depth.max(1),
            ..PipelineOptions::default()
        };
        for d in &mut discrepancies {
            // Library C11 expectations describe the original named test
            // only; a reduced test has no published column to compare to.
            if matches!(d.check, Recheck::C11Expectation { .. }) {
                continue;
            }
            if !recheck_violated(&d.check, &d.test, set, &opts, &pipe) {
                // Matrix said violated, scratch recheck disagrees (e.g. a
                // budget trip): leave unshrunk rather than minimize
                // against an unreproducible predicate.
                continue;
            }
            let mut pred = |cand: &lkmm_litmus::ast::Test| {
                recheck_violated(&d.check, cand, set, &opts, &pipe)
            };
            let (minimal, attempts, accepted) = shrink(&d.test, &mut pred);
            d.shrunk = Some(Shrunk {
                litmus: canonical_text(&minimal),
                size: test_size(&minimal),
                attempts,
                accepted,
            });
        }
    }

    Ok(CampaignReport {
        corpus_library,
        corpus_generated,
        models: ModelId::ALL
            .iter()
            .zip(passes)
            .map(|(&id, pass)| ModelStats { id, pass })
            .collect(),
        oracles: OracleKind::ALL
            .iter()
            .zip(summaries)
            .map(|(&kind, summary)| OracleStats { kind, summary })
            .collect(),
        discrepancies,
        enumeration,
        data_plane,
        failed_units: drive.failed_units,
        resumed_at: drive.resumed_at,
        checkpoints_written: drive.checkpoints_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            max_cycle_len: 0,
            sim: SimConfig { iterations: 0, ..SimConfig::default() },
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn library_only_campaign_is_clean() {
        let report = run_campaign(&quick_config()).unwrap();
        assert_eq!(report.corpus_library, lkmm_litmus::library::all().len());
        assert_eq!(report.corpus_generated, 0);
        assert!(report.clean(), "{:?}", report.discrepancies.iter().map(|d| &d.detail).collect::<Vec<_>>());
        let native = &report.models[ModelId::LkmmNative.index()];
        assert_eq!(native.pass.checked, report.corpus_total());
        assert_eq!(native.pass.inconclusive, 0);
        // The agreement oracle covered every row.
        assert_eq!(report.oracles[0].summary.checked, report.corpus_total());
        assert_eq!(report.oracles[0].summary.violations, 0);
    }

    #[test]
    fn short_cycle_lengths_generate_nothing() {
        // The shortest critical cycle needs 4 edges (two non-adjacent
        // external edges), so a length-3 campaign is library-only.
        let cfg = CampaignConfig { max_cycle_len: 3, ..quick_config() };
        let entries = corpus(&cfg).unwrap();
        assert!(entries.iter().all(|e| matches!(e.origin, Origin::Library { .. })));
    }

    #[test]
    fn mutant_model_yields_shrunk_discrepancies() {
        let mut set = ModelSet::standard();
        set.replace(ModelId::LkmmCat, Box::new(lkmm_exec::model::AllowAll));
        let report = run_campaign_with(&quick_config(), &set).unwrap();
        assert!(!report.clean());
        let d = report
            .discrepancies
            .iter()
            .find(|d| d.oracle == OracleKind::NativeCatAgreement)
            .expect("allow-all disagrees with the native LKMM somewhere");
        let shrunk = d.shrunk.as_ref().expect("campaign shrinks by default");
        assert!(shrunk.size <= test_size(&d.test));
        let witness = lkmm_litmus::parse(&shrunk.litmus).expect("witness re-parses");
        // The minimal witness still discriminates the two checkers.
        assert!(recheck_violated(
            &d.check,
            &witness,
            &set,
            &EnumOptions::default(),
            &PipelineOptions::default(),
        ));
    }
}
