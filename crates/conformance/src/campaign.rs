//! The campaign driver: corpus → verdict matrix → oracles → shrinker.
//!
//! One campaign enumerates a corpus (the paper's named library plus
//! every diy cycle up to a configurable length), builds the verdict
//! matrix across all checkers (incrementally, through the verdict
//! store), evaluates every oracle on every row, runs seeded simulator
//! soundness passes on LKMM-forbidden tests, and minimizes each
//! discrepancy with the delta-debugging shrinker.
//!
//! Everything in the resulting [`CampaignReport`] is a deterministic
//! function of the [`CampaignConfig`]: cache hit counts and wall-clock
//! live in the per-model [`ModelPass`] observability fields, which the
//! JSON report deliberately omits, so a warm re-run over a populated
//! store produces a byte-identical report.

use crate::matrix::{
    build_matrix, uses_srcu, CorpusEntry, MatrixOptions, ModelId, ModelPass, ModelSet, Origin,
};
use crate::oracle::{check_row, recheck_violated, Discrepancy, OracleKind, OracleSummary, Recheck};
use crate::shrink::{shrink, test_size, Shrunk};
use lkmm_core::budget::Budget;
use lkmm_exec::{CheckOutcome, EnumOptions, PipelineOptions, Verdict};
use lkmm_generator::{cycles_up_to, default_alphabet, generate, generate_contended, GenError};
use lkmm_service::canonical_text;
use lkmm_sim::{run_test, Arch, RunConfig};
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Simulator soundness-pass configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Iterations per (test, architecture) run; `0` disables the pass.
    pub iterations: u64,
    /// Base seed; each test derives its own seed from this and its
    /// corpus position, so runs are reproducible test by test.
    pub seed: u64,
    /// Simulate every `stride`-th corpus test (1 = all).
    pub stride: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { iterations: 200, seed: 7, stride: 1 }
    }
}

/// Everything one campaign run depends on.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Generate every diy cycle up to this length (`0` = none; the
    /// shortest critical cycle has length 4).
    pub max_cycle_len: usize,
    /// Also generate each cycle's contended twin
    /// ([`lkmm_generator::generate_contended`]): every event on one
    /// location, write values colliding, the cycle repeated to a fixed
    /// event budget. This is the coherence-heavy half of the corpus —
    /// the tests where per-location write orders are mostly forced and
    /// reads-from choices are mostly doomed.
    pub contended: bool,
    /// Include the paper's named library.
    pub include_library: bool,
    /// Cache version salt (each model column adds its own component).
    pub salt: String,
    /// Pipeline worker threads per check (0 = all hardware threads).
    pub jobs: usize,
    /// Per-worker candidate queue bound.
    pub queue_depth: usize,
    /// Per-check budget; trips surface as inconclusive cells.
    pub budget: Budget,
    /// Persistent verdict store; `None` runs in memory.
    pub store_path: Option<PathBuf>,
    /// Simulator soundness pass.
    pub sim: SimConfig,
    /// Minimize discrepancies with the shrinker.
    pub shrink: bool,
    /// Shared enumeration pruning counters for the matrix pass. `None`
    /// (the default) records nothing; when set, the report carries a
    /// [`CampaignReport::enumeration`] snapshot. Observability only —
    /// counters never influence verdicts or cache keys, and a warm store
    /// legitimately reports zeros.
    pub enum_stats: Option<std::sync::Arc<lkmm_exec::EnumStats>>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_cycle_len: 4,
            contended: false,
            include_library: true,
            salt: String::new(),
            jobs: 0,
            queue_depth: 256,
            budget: Budget::default(),
            store_path: None,
            sim: SimConfig::default(),
            shrink: true,
            enum_stats: None,
        }
    }
}

/// One column's aggregate results.
#[derive(Clone, Debug)]
pub struct ModelStats {
    pub id: ModelId,
    pub pass: ModelPass,
}

/// One oracle's aggregate results.
#[derive(Clone, Copy, Debug)]
pub struct OracleStats {
    pub kind: OracleKind,
    pub summary: OracleSummary,
}

/// Everything a campaign produces.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Library tests in the corpus.
    pub corpus_library: usize,
    /// Generated tests in the corpus.
    pub corpus_generated: usize,
    /// Per-model counts, in [`ModelId::ALL`] order.
    pub models: Vec<ModelStats>,
    /// Per-oracle counts, in [`OracleKind::ALL`] order.
    pub oracles: Vec<OracleStats>,
    /// Every oracle violation (shrunk when configured).
    pub discrepancies: Vec<Discrepancy>,
    /// Enumeration pruning counters from the matrix pass; present only
    /// when [`CampaignConfig::enum_stats`] was set.
    pub enumeration: Option<lkmm_exec::EnumSnapshot>,
}

impl CampaignReport {
    /// Total corpus size.
    pub fn corpus_total(&self) -> usize {
        self.corpus_library + self.corpus_generated
    }

    /// Whether every oracle held everywhere.
    pub fn clean(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// Campaign failure: corpus generation or store I/O. Checking problems
/// (budget trips, enumeration limits) are per-cell inconclusive
/// outcomes, never campaign errors.
#[derive(Debug)]
pub enum CampaignError {
    Generate(GenError),
    Store(io::Error),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Generate(e) => write!(f, "generator: {e}"),
            CampaignError::Store(e) => write!(f, "verdict store: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<GenError> for CampaignError {
    fn from(e: GenError) -> Self {
        CampaignError::Generate(e)
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Store(e)
    }
}

/// Assemble the campaign corpus: named library first, then every
/// generated cycle in `cycles_up_to` order — both deterministic.
///
/// # Errors
///
/// Propagates generator failures (none are expected for the default
/// alphabet: `cycles_up_to` only yields validated cycles).
pub fn corpus(cfg: &CampaignConfig) -> Result<Vec<CorpusEntry>, GenError> {
    let mut out = Vec::new();
    if cfg.include_library {
        for pt in lkmm_litmus::library::all() {
            out.push(CorpusEntry {
                test: pt.test(),
                origin: Origin::Library { lkmm: pt.lkmm, c11: pt.c11 },
            });
        }
    }
    if cfg.max_cycle_len > 0 {
        let cycles = cycles_up_to(cfg.max_cycle_len, &default_alphabet());
        for cycle in &cycles {
            out.push(CorpusEntry { test: generate(cycle)?, origin: Origin::Generated });
        }
        if cfg.contended {
            for cycle in &cycles {
                out.push(CorpusEntry {
                    test: generate_contended(cycle)?,
                    origin: Origin::Generated,
                });
            }
        }
    }
    Ok(out)
}

/// Per-test seed for the soundness pass: reproducible, distinct per
/// corpus position, independent of which other tests are simulated.
fn sim_seed(base: u64, corpus_index: usize) -> u64 {
    base ^ (corpus_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run a full campaign with the standard reference checkers.
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    run_campaign_with(cfg, &ModelSet::standard())
}

/// Run a full campaign against an explicit [`ModelSet`] — the entry
/// point for mutant-injection tests (swap one column for a broken
/// model and watch the oracles catch it).
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_campaign_with(
    cfg: &CampaignConfig,
    set: &ModelSet,
) -> Result<CampaignReport, CampaignError> {
    let corpus = corpus(cfg)?;
    let corpus_library = corpus.iter().filter(|e| matches!(e.origin, Origin::Library { .. })).count();
    let corpus_generated = corpus.len() - corpus_library;

    let matrix_opts = MatrixOptions {
        salt: &cfg.salt,
        jobs: cfg.jobs,
        queue_depth: cfg.queue_depth,
        budget: cfg.budget.clone(),
        store_path: cfg.store_path.as_deref(),
        enum_stats: cfg.enum_stats.clone(),
    };
    let (matrix, passes) = build_matrix(&corpus, set, &matrix_opts)?;
    // Snapshot before the oracle/shrink phases so the counters describe
    // exactly the matrix enumeration pass.
    let enumeration = cfg.enum_stats.as_ref().map(|s| s.snapshot());

    // Matrix-level oracles.
    let mut discrepancies = Vec::new();
    let mut summaries = [OracleSummary::default(); OracleKind::ALL.len()];
    for row in &matrix.rows {
        check_row(row, &mut discrepancies, &mut summaries);
    }

    // Simulator soundness: an operational machine must never observe an
    // outcome the LKMM forbids, so only forbidden rows need running.
    if cfg.sim.iterations > 0 {
        let sim_summary = &mut summaries[2];
        let stride = cfg.sim.stride.max(1);
        for (i, row) in matrix.rows.iter().enumerate() {
            if i % stride != 0 {
                continue;
            }
            let forbidden = matches!(
                row.cell(ModelId::LkmmNative).and_then(CheckOutcome::result),
                Some(r) if r.verdict == Verdict::Forbidden
            );
            if !forbidden {
                continue;
            }
            if uses_srcu(&row.test) {
                sim_summary.skipped += 1;
                continue;
            }
            let seed = sim_seed(cfg.sim.seed, i);
            for arch in Arch::ALL {
                let config = RunConfig { iterations: cfg.sim.iterations, seed };
                match run_test(&row.test, arch, &config) {
                    Err(_) => sim_summary.skipped += 1,
                    Ok(stats) => {
                        sim_summary.checked += 1;
                        if stats.observed > 0 {
                            sim_summary.violations += 1;
                            discrepancies.push(Discrepancy {
                                test_name: row.test.name.clone(),
                                oracle: OracleKind::SimSoundness,
                                detail: format!(
                                    "{} observed an LKMM-forbidden outcome {} times in {} runs (seed {seed})",
                                    arch.name(),
                                    stats.observed,
                                    stats.total
                                ),
                                check: Recheck::SimObservation {
                                    arch,
                                    iterations: cfg.sim.iterations,
                                    seed,
                                },
                                test: row.test.clone(),
                                shrunk: None,
                            });
                        }
                    }
                }
            }
        }
    }

    // Shrink every discrepancy down to a minimal discriminating witness.
    // Re-checks recompute from scratch through the exact failing pair —
    // never through the store (see crate docs for why).
    if cfg.shrink {
        let opts = EnumOptions { budget: cfg.budget.clone(), ..EnumOptions::default() };
        let pipe = PipelineOptions {
            jobs: cfg.jobs,
            queue_depth: cfg.queue_depth.max(1),
            ..PipelineOptions::default()
        };
        for d in &mut discrepancies {
            // Library C11 expectations describe the original named test
            // only; a reduced test has no published column to compare to.
            if matches!(d.check, Recheck::C11Expectation { .. }) {
                continue;
            }
            if !recheck_violated(&d.check, &d.test, set, &opts, &pipe) {
                // Matrix said violated, scratch recheck disagrees (e.g. a
                // budget trip): leave unshrunk rather than minimize
                // against an unreproducible predicate.
                continue;
            }
            let mut pred = |cand: &lkmm_litmus::ast::Test| {
                recheck_violated(&d.check, cand, set, &opts, &pipe)
            };
            let (minimal, attempts, accepted) = shrink(&d.test, &mut pred);
            d.shrunk = Some(Shrunk {
                litmus: canonical_text(&minimal),
                size: test_size(&minimal),
                attempts,
                accepted,
            });
        }
    }

    Ok(CampaignReport {
        corpus_library,
        corpus_generated,
        models: ModelId::ALL
            .iter()
            .zip(passes)
            .map(|(&id, pass)| ModelStats { id, pass })
            .collect(),
        oracles: OracleKind::ALL
            .iter()
            .zip(summaries)
            .map(|(&kind, summary)| OracleStats { kind, summary })
            .collect(),
        discrepancies,
        enumeration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            max_cycle_len: 0,
            sim: SimConfig { iterations: 0, ..SimConfig::default() },
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn library_only_campaign_is_clean() {
        let report = run_campaign(&quick_config()).unwrap();
        assert_eq!(report.corpus_library, lkmm_litmus::library::all().len());
        assert_eq!(report.corpus_generated, 0);
        assert!(report.clean(), "{:?}", report.discrepancies.iter().map(|d| &d.detail).collect::<Vec<_>>());
        let native = &report.models[ModelId::LkmmNative.index()];
        assert_eq!(native.pass.checked, report.corpus_total());
        assert_eq!(native.pass.inconclusive, 0);
        // The agreement oracle covered every row.
        assert_eq!(report.oracles[0].summary.checked, report.corpus_total());
        assert_eq!(report.oracles[0].summary.violations, 0);
    }

    #[test]
    fn short_cycle_lengths_generate_nothing() {
        // The shortest critical cycle needs 4 edges (two non-adjacent
        // external edges), so a length-3 campaign is library-only.
        let cfg = CampaignConfig { max_cycle_len: 3, ..quick_config() };
        let entries = corpus(&cfg).unwrap();
        assert!(entries.iter().all(|e| matches!(e.origin, Origin::Library { .. })));
    }

    #[test]
    fn mutant_model_yields_shrunk_discrepancies() {
        let mut set = ModelSet::standard();
        set.replace(ModelId::LkmmCat, Box::new(lkmm_exec::model::AllowAll));
        let report = run_campaign_with(&quick_config(), &set).unwrap();
        assert!(!report.clean());
        let d = report
            .discrepancies
            .iter()
            .find(|d| d.oracle == OracleKind::NativeCatAgreement)
            .expect("allow-all disagrees with the native LKMM somewhere");
        let shrunk = d.shrunk.as_ref().expect("campaign shrinks by default");
        assert!(shrunk.size <= test_size(&d.test));
        let witness = lkmm_litmus::parse(&shrunk.litmus).expect("witness re-parses");
        // The minimal witness still discriminates the two checkers.
        assert!(recheck_violated(
            &d.check,
            &witness,
            &set,
            &EnumOptions::default(),
            &PipelineOptions::default(),
        ));
    }
}
