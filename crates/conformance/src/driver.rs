//! The supervised campaign driver: lazy work units, incremental
//! per-row oracles, retry/backoff, quarantine, and checkpoint/resume.
//!
//! [`drive_campaign`] is the crash-survivable replacement for driving
//! [`crate::matrix::build_matrix`] over a pre-built corpus. The driver
//! *streams* work units from the lazy [`CorpusStream`], feeds them one
//! at a time to the streaming [`CorpusRun`] API, and — the load-bearing
//! difference from a batch build — runs the caller's row-level checks
//! (matrix oracles, simulator soundness) the moment each row's cells
//! are complete, folding everything into running aggregates
//! ([`CampaignCore`]). No full verdict matrix is ever materialised.
//! That buys three things a monolithic batch call cannot offer:
//!
//! * **Checkpoint.** Every `checkpoint_every` units the driver flushes
//!   the verdict store and appends a framed manifest (see
//!   [`crate::checkpoint`]) recording the corpus cursor — and, when
//!   the prefix is discrepancy-free, the aggregates themselves
//!   ([`crate::checkpoint::PrefixStats`]). Killing the process at
//!   *any* point — mid-unit, mid-append, mid-checkpoint — loses at
//!   most the units since the last frame.
//! * **Supervise.** Each unit runs under a retry loop: a driver-level
//!   panic, a transient store I/O error, a contained worker panic, or
//!   (when the budget has a relative time limit) a wall-clock trip is
//!   retried with bounded exponential backoff and deterministic seeded
//!   jitter. A unit that fails every attempt is *quarantined*: its
//!   row stays all-`None` (the oracles skip it), it is recorded as a
//!   typed [`FailedUnit`], and the campaign completes degraded
//!   instead of dying. Deterministic fuel trips (candidate or
//!   eval-step budgets) are **not** faults — retrying them reproduces
//!   the same inconclusive cell, so they stay inconclusive cells.
//! * **Resume.** With a valid checkpoint whose config fingerprint
//!   matches, a clean-prefix campaign resumes as *arithmetic*: the
//!   aggregates restart from the frame's [`PrefixStats`], the corpus
//!   stream seeks past the prefix without generating its tests, and
//!   only the tail is checked — resume cost is proportional to the
//!   *remaining* work, not the corpus. A prefix with discrepancies
//!   has no aggregates in its frames (their full structure is needed
//!   for shrinking); resume then replays every unit through the warm
//!   store, which skips enumeration but re-derives the rows. Either
//!   way the final report is byte-identical to an uninterrupted
//!   run's. A mismatched fingerprint is refused — resuming under a
//!   different config would silently mix two campaigns.
//!
//! Fault points: `campaign.kill` aborts the process at a unit boundary
//! (a simulated SIGKILL for crash tests); `worker.transient` injects a
//! transient I/O failure into the supervisor's attempt path;
//! `ckpt.torn` (in [`crate::checkpoint`]) tears a checkpoint frame.

use crate::campaign::{CampaignError, CorpusStream};
use crate::checkpoint::{self, Checkpoint, CheckpointLog, FailedUnit, FailureKind, PrefixStats};
use crate::matrix::{MatrixOptions, MatrixRow, ModelId, ModelPass, ModelSet, Origin};
use crate::oracle::{Discrepancy, OracleKind, OracleSummary};
use lkmm_core::faultpoint;
use lkmm_exec::{CheckOutcome, EnumOptions, Verdict};
use lkmm_litmus::ast::Test;
use lkmm_service::{
    BatchError, CorpusRun, MultiBatchChecker, MultiColumn, StoreError, UnitFault, VerdictStore,
};
use lkmm_sim::rng::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Duration;

/// Crash-survival knobs for one campaign.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Checkpoint file; `None` disables checkpointing (and resume).
    pub checkpoint: Option<PathBuf>,
    /// Units between checkpoint frames.
    pub checkpoint_every: usize,
    /// Retries per unit after its first failed attempt; a unit failing
    /// `max_retries + 1` attempts is quarantined.
    pub max_retries: u32,
    /// Seed for the deterministic backoff jitter.
    pub retry_seed: u64,
    /// First-retry backoff in milliseconds (doubled per retry, plus
    /// seeded jitter in `[0, delay/2]`). `0` disables sleeping — what
    /// tests use so injected fault storms retry instantly.
    pub retry_base_ms: u64,
    /// Resume from `checkpoint` if it holds a valid manifest for this
    /// config; a missing or empty checkpoint file starts fresh.
    pub resume: bool,
    /// Stop cleanly after this many units *this invocation* (flush +
    /// final checkpoint frame, then [`CampaignError::Suspended`]).
    /// The deterministic suspend the resume bench and tests build on.
    pub stop_after: Option<usize>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint: None,
            checkpoint_every: 64,
            max_retries: 2,
            retry_seed: 7,
            retry_base_ms: 25,
            resume: false,
            stop_after: None,
        }
    }
}

/// Driver observability: everything about *how* the matrix was built
/// that must stay out of the deterministic report JSON, plus the
/// quarantine list (which does go in — a degraded report says so).
#[derive(Clone, Debug, Default)]
pub struct DriveOutcome {
    /// Quarantined units, in corpus order.
    pub failed_units: Vec<FailedUnit>,
    /// `Some(cursor)` when a checkpoint was resumed from.
    pub resumed_at: Option<usize>,
    /// Checkpoint frames appended this invocation.
    pub checkpoints_written: usize,
}

/// Deterministic backoff for retry `attempt` (1-based) of `unit`:
/// exponential in the attempt, jittered by a [`SplitMix64`] stream
/// keyed on `(seed, unit, attempt)` — two runs of the same campaign
/// back off identically, but colliding units spread out.
pub fn backoff_delay(res: &ResilienceConfig, unit: usize, attempt: u32) -> Duration {
    if res.retry_base_ms == 0 {
        return Duration::ZERO;
    }
    let shift = attempt.saturating_sub(1).min(6);
    let base = res.retry_base_ms.saturating_mul(1u64 << shift);
    let mut rng = SplitMix64::seed_from_u64(
        res.retry_seed
            ^ (unit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    let jitter = rng.gen_index((base / 2 + 1) as usize) as u64;
    Duration::from_millis(base + jitter)
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One attempt at one unit. `None` is success (including deterministic
/// inconclusive cells); `Some` classifies the failure.
fn attempt_unit(
    run: &mut CorpusRun<'_, '_>,
    i: usize,
    test: &Test,
    mask_row: &[bool],
    retry_timeouts: bool,
) -> Option<(FailureKind, String)> {
    if let Err(e) = faultpoint::inject_io("worker.transient") {
        return Some((FailureKind::TransientIo, e.to_string()));
    }
    match catch_unwind(AssertUnwindSafe(|| run.check_unit(i, test, mask_row))) {
        Err(payload) => Some((FailureKind::Panic, panic_text(payload.as_ref()))),
        Ok(Err(e)) => Some((FailureKind::TransientIo, e.to_string())),
        Ok(Ok(())) => match run.unit_fault(i) {
            Some(UnitFault::WorkerPanicked) => Some((
                FailureKind::Panic,
                "model evaluation panicked (contained by the pipeline)".to_string(),
            )),
            Some(UnitFault::TimedOut) if retry_timeouts => Some((
                FailureKind::Deadline,
                "relative wall-clock limit tripped".to_string(),
            )),
            _ => None,
        },
    }
}

/// Run one unit under the retry supervisor. Returns the quarantine
/// record if every attempt failed; the unit's slots are reset either
/// way before a retry or quarantine, so partial attempts never leak
/// into the matrix (verdicts that reached the store stay — they are
/// content-addressed and replay as hits on the retry).
fn supervise_unit(
    run: &mut CorpusRun<'_, '_>,
    i: usize,
    test: &Test,
    mask_row: &[bool],
    res: &ResilienceConfig,
    retry_timeouts: bool,
) -> Option<FailedUnit> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match attempt_unit(run, i, test, mask_row, retry_timeouts) {
            None => return None,
            Some((kind, detail)) => {
                run.reset_unit(i);
                if attempt > res.max_retries {
                    return Some(FailedUnit {
                        index: i,
                        test: test.name.clone(),
                        kind,
                        attempts: attempt,
                        detail,
                    });
                }
                let delay = backoff_delay(res, i, attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

/// The campaign's deterministic substance, accumulated row by row —
/// exactly what the report JSON is rendered from. Rows are folded in
/// corpus order, so these sums are identical whether a campaign ran
/// uninterrupted or restarted from a [`PrefixStats`] frame.
#[derive(Clone, Debug)]
pub struct CampaignCore {
    /// Library rows accounted so far.
    pub corpus_library: usize,
    /// Generated rows accounted so far.
    pub corpus_generated: usize,
    /// Per-column counts, in [`ModelId::ALL`] order. The deterministic
    /// fields accumulate per row; the observability counters (hits,
    /// computed, deduped, candidates) are grafted on from the
    /// [`CorpusRun`] when it finishes and cover this process only.
    pub passes: Vec<ModelPass>,
    /// Per-oracle summaries, in [`OracleKind::ALL`] order.
    pub summaries: Vec<OracleSummary>,
    /// Oracle violations so far, in row order.
    pub discrepancies: Vec<Discrepancy>,
}

impl CampaignCore {
    fn empty() -> CampaignCore {
        CampaignCore {
            corpus_library: 0,
            corpus_generated: 0,
            passes: vec![ModelPass::default(); ModelId::ALL.len()],
            summaries: vec![OracleSummary::default(); OracleKind::ALL.len()],
            discrepancies: Vec::new(),
        }
    }

    /// Fold one completed row into the per-column counts.
    fn account_row(&mut self, row: &MatrixRow) {
        match row.origin {
            Origin::Library { .. } => self.corpus_library += 1,
            _ => self.corpus_generated += 1,
        }
        for (pass, cell) in self.passes.iter_mut().zip(&row.cells) {
            let Some(outcome) = cell else {
                pass.skipped += 1;
                continue;
            };
            pass.checked += 1;
            match outcome {
                CheckOutcome::Complete(result) => match result.verdict {
                    Verdict::Allowed => pass.allowed += 1,
                    Verdict::Forbidden => pass.forbidden += 1,
                },
                CheckOutcome::Inconclusive { .. } => pass.inconclusive += 1,
            }
        }
    }

    /// The aggregates as a checkpointable prefix — `None` once any
    /// discrepancy exists (its AST would have to travel too; resume
    /// replays instead).
    fn prefix_stats(&self) -> Option<PrefixStats> {
        if !self.discrepancies.is_empty() {
            return None;
        }
        Some(PrefixStats {
            corpus_library: self.corpus_library,
            corpus_generated: self.corpus_generated,
            passes: self
                .passes
                .iter()
                .map(|p| ModelPass {
                    checked: p.checked,
                    allowed: p.allowed,
                    forbidden: p.forbidden,
                    inconclusive: p.inconclusive,
                    skipped: p.skipped,
                    ..ModelPass::default()
                })
                .collect(),
            oracles: self.summaries.clone(),
        })
    }

    /// Checkpoint watermarks: per-column checked-cell counts.
    fn watermarks(&self) -> Vec<usize> {
        self.passes.iter().map(|p| p.checked).collect()
    }
}

/// Drive a whole campaign by streaming `stream` through a supervised,
/// checkpointing [`CorpusRun`], running `row_check` (the matrix-level
/// oracles plus whatever else the caller folds per row — simulator
/// soundness, say) as each row completes. See the module docs for the
/// full contract.
///
/// # Errors
///
/// Generator failures, store I/O (after per-unit retries), checkpoint
/// I/O, a refused fingerprint mismatch on resume, and the deliberate
/// [`CampaignError::Suspended`] from `stop_after`.
pub fn drive_campaign(
    mut stream: CorpusStream,
    fingerprint: u64,
    set: &ModelSet,
    opts: &MatrixOptions<'_>,
    res: &ResilienceConfig,
    mut row_check: impl FnMut(usize, &MatrixRow, &mut Vec<Discrepancy>, &mut [OracleSummary]),
) -> Result<(CampaignCore, DriveOutcome), CampaignError> {
    let total_units = stream.total();
    let store = match opts.store_path {
        Some(path) => VerdictStore::open(path).map_err(|e| match e {
            StoreError::Locked { lock, pid } => CampaignError::Locked { lock, pid },
            StoreError::Io(e) => CampaignError::Store(e),
        })?,
        None => VerdictStore::in_memory(),
    };
    let columns: Vec<MultiColumn<'_>> = ModelId::ALL
        .iter()
        .map(|&id| MultiColumn {
            model: set.get(id),
            salt: format!("{}|col:{}", opts.salt, id.column()),
        })
        .collect();
    let mut checker = MultiBatchChecker::new(columns, store)
        .with_options(EnumOptions { stats: opts.enum_stats.clone(), ..EnumOptions::default() })
        .with_pipeline_stats(opts.data_plane.clone())
        .with_jobs(opts.jobs)
        .with_queue_depth(opts.queue_depth)
        .with_budget(opts.budget.clone());

    // Resume: load the latest valid manifest and refuse a config
    // mismatch. A missing or empty checkpoint is a fresh start. A clean
    // prefix restores the aggregates and seeks the stream past the
    // done units; a dirty one replays them through the warm store.
    let mut core = CampaignCore::empty();
    let mut failed: Vec<FailedUnit> = Vec::new();
    let mut resumed_at = None;
    let mut start_at = 0usize;
    if res.resume {
        if let Some(path) = &res.checkpoint {
            let scan = checkpoint::load(path).map_err(CampaignError::Checkpoint)?;
            if let Some(ck) = scan.latest {
                if ck.fingerprint != fingerprint {
                    return Err(CampaignError::CheckpointMismatch {
                        expected: fingerprint,
                        found: ck.fingerprint,
                    });
                }
                failed = ck.failed_units;
                resumed_at = Some(ck.cursor);
                // Shape sanity: the fingerprint pins the column set, but
                // a hand-edited manifest could still disagree — treat it
                // as prefix-less rather than misindex the sums.
                let prefix = ck.prefix.filter(|p| {
                    p.passes.len() == ModelId::ALL.len()
                        && p.oracles.len() == OracleKind::ALL.len()
                });
                if let Some(p) = prefix {
                    core.corpus_library = p.corpus_library;
                    core.corpus_generated = p.corpus_generated;
                    core.passes = p.passes;
                    core.summaries = p.oracles;
                    start_at = ck.cursor;
                    stream.seek(ck.cursor);
                }
            }
        }
    }
    let mut log = match &res.checkpoint {
        Some(path) => Some(
            CheckpointLog::open(path, resumed_at.is_some()).map_err(CampaignError::Checkpoint)?,
        ),
        None => None,
    };

    // Only retry wall-clock trips when they can possibly mean "this
    // machine hiccuped": a relative per-check limit. An absolute corpus
    // deadline trips every remaining unit — retrying would turn one
    // late campaign into max_retries late campaigns.
    let retry_timeouts = opts.budget.time_limit.is_some() && opts.budget.deadline.is_none();
    let quarantined: std::collections::BTreeSet<usize> =
        failed.iter().map(|f| f.index).collect();

    let mut run = checker.begin_corpus();
    let mut since_ckpt = 0usize;
    let mut checkpoints_written = 0usize;
    let mut processed = 0usize;
    let mut suspended = None;
    let mut mask_row = vec![false; ModelId::ALL.len()];

    for (off, entry) in (&mut stream).enumerate() {
        let i = start_at + off;
        let entry = entry?;
        // Simulated SIGKILL at a unit boundary (crash-storm tests).
        if faultpoint::should_fail("campaign.kill") {
            std::process::abort();
        }
        for (slot, &id) in mask_row.iter_mut().zip(&ModelId::ALL) {
            *slot = id.supports(&entry.test);
        }
        if quarantined.contains(&i) {
            // Still quarantined from the resumed campaign: the slots
            // stay `None` without another round of doomed retries.
        } else if let Some(f) = supervise_unit(&mut run, i, &entry.test, &mask_row, res, retry_timeouts) {
            failed.push(f);
        }
        let row = MatrixRow { cells: run.row_cells(i), test: entry.test, origin: entry.origin };
        row_check(i, &row, &mut core.discrepancies, &mut core.summaries);
        core.account_row(&row);
        processed += 1;
        since_ckpt += 1;
        let done = i + 1;
        if done < total_units {
            if let Some(log) = &mut log {
                if since_ckpt >= res.checkpoint_every.max(1) {
                    run.flush().map_err(CampaignError::Store)?;
                    log.append(&Checkpoint {
                        fingerprint,
                        cursor: done,
                        watermarks: core.watermarks(),
                        failed_units: failed.clone(),
                        prefix: core.prefix_stats(),
                    })
                    .map_err(CampaignError::Checkpoint)?;
                    checkpoints_written += 1;
                    since_ckpt = 0;
                }
            }
            if res.stop_after.is_some_and(|stop| processed >= stop) {
                suspended = Some(done);
                break;
            }
        }
    }

    if let Some(done) = suspended {
        run.flush().map_err(CampaignError::Store)?;
        if let Some(log) = &mut log {
            log.append(&Checkpoint {
                fingerprint,
                cursor: done,
                watermarks: core.watermarks(),
                failed_units: failed.clone(),
                prefix: core.prefix_stats(),
            })
            .map_err(CampaignError::Checkpoint)?;
        }
        return Err(CampaignError::Suspended { cursor: done, total: total_units });
    }

    let report = match run.finish(total_units) {
        Ok(r) => r,
        Err(BatchError::Io(e)) => return Err(CampaignError::Store(e)),
        Err(BatchError::Generate(e)) => unreachable!("check_unit does not generate: {e}"),
    };
    // Final frame: cursor at the end, so resuming a *finished* clean
    // campaign costs one checkpoint load and zero corpus work.
    if let Some(log) = &mut log {
        log.append(&Checkpoint {
            fingerprint,
            cursor: total_units,
            watermarks: core.watermarks(),
            failed_units: failed.clone(),
            prefix: core.prefix_stats(),
        })
        .map_err(CampaignError::Checkpoint)?;
        checkpoints_written += 1;
    }

    // Graft this process's observability counters onto the
    // deterministic sums (a resumed run reports only its own cache
    // traffic — the JSON never contains these).
    for (pass, col) in core.passes.iter_mut().zip(&report.columns) {
        pass.hits = col.hits;
        pass.computed = col.computed;
        pass.deduped = col.deduped;
        pass.candidates_enumerated = col.candidates_enumerated;
    }

    Ok((core, DriveOutcome { failed_units: failed, resumed_at, checkpoints_written }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{config_fingerprint, corpus_stream, CampaignConfig, SimConfig};
    use crate::oracle::check_row;

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            max_cycle_len: 0,
            sim: SimConfig { iterations: 0, ..SimConfig::default() },
            ..CampaignConfig::default()
        }
    }

    fn temp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("lkmm-driver-{}-{tag}.bin", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn drive(
        cfg: &CampaignConfig,
        store: Option<&std::path::Path>,
        res: &ResilienceConfig,
    ) -> Result<(CampaignCore, DriveOutcome), CampaignError> {
        let stream = corpus_stream(cfg);
        let fp = config_fingerprint(cfg, stream.total());
        let opts = MatrixOptions { store_path: store, ..MatrixOptions::default() };
        drive_campaign(stream, fp, &ModelSet::standard(), &opts, res, |_, row, d, s| {
            check_row(row, d, s)
        })
    }

    fn assert_same_substance(a: &CampaignCore, b: &CampaignCore) {
        assert_eq!(a.corpus_library, b.corpus_library);
        assert_eq!(a.corpus_generated, b.corpus_generated);
        for (x, y) in a.passes.iter().zip(&b.passes) {
            assert_eq!(x.checked, y.checked);
            assert_eq!(x.allowed, y.allowed);
            assert_eq!(x.forbidden, y.forbidden);
            assert_eq!(x.inconclusive, y.inconclusive);
            assert_eq!(x.skipped, y.skipped);
        }
        assert_eq!(a.summaries, b.summaries);
        assert_eq!(a.discrepancies.len(), b.discrepancies.len());
    }

    #[test]
    fn driven_campaign_matches_the_batch_build() {
        let cfg = quick_config();
        let entries = crate::campaign::corpus(&cfg).unwrap();
        let (batch, batch_passes) = crate::matrix::build_matrix(
            &entries,
            &ModelSet::standard(),
            &MatrixOptions::default(),
        )
        .unwrap();
        // The driver folds rows incrementally; re-derive the same
        // aggregates from the batch matrix and compare sums and the
        // per-row verdicts the driver's oracles saw.
        let mut batch_summaries = vec![OracleSummary::default(); OracleKind::ALL.len()];
        let mut batch_discrepancies = Vec::new();
        for row in &batch.rows {
            check_row(row, &mut batch_discrepancies, &mut batch_summaries);
        }
        let res = ResilienceConfig { retry_base_ms: 0, ..ResilienceConfig::default() };
        let (core, outcome) = drive(&cfg, None, &res).unwrap();
        assert!(outcome.failed_units.is_empty());
        assert_eq!(outcome.resumed_at, None);
        assert_eq!(core.corpus_library + core.corpus_generated, batch.rows.len());
        for (d, b) in core.passes.iter().zip(&batch_passes) {
            assert_eq!(d.checked, b.checked);
            assert_eq!(d.allowed, b.allowed);
            assert_eq!(d.forbidden, b.forbidden);
            assert_eq!(d.skipped, b.skipped);
        }
        assert_eq!(core.summaries, batch_summaries);
        assert_eq!(core.discrepancies.len(), batch_discrepancies.len());
    }

    #[test]
    fn suspend_then_resume_reproduces_the_uninterrupted_campaign() {
        let cfg = quick_config();
        let store = temp("resume-store");
        let ckpt = temp("resume-ckpt");
        let base = ResilienceConfig {
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: 4,
            retry_base_ms: 0,
            ..ResilienceConfig::default()
        };

        // Uninterrupted reference run (its own store, so no warm help).
        let ref_store = temp("resume-ref");
        let (full, _) = drive(
            &cfg,
            Some(&ref_store),
            &ResilienceConfig { retry_base_ms: 0, ..ResilienceConfig::default() },
        )
        .unwrap();

        // Interrupted run: suspend partway with a checkpoint.
        let res = ResilienceConfig { stop_after: Some(7), ..base.clone() };
        match drive(&cfg, Some(&store), &res) {
            Err(CampaignError::Suspended { cursor, total }) => {
                assert_eq!(cursor, 7);
                assert!(cursor < total);
            }
            other => panic!("expected suspension, got {other:?}"),
        }

        // Resume: the clean prefix restores from aggregates (nothing
        // replays — only the tail computes), and the substance matches
        // the uninterrupted run exactly.
        let res = ResilienceConfig { resume: true, ..base };
        let (resumed, outcome) = drive(&cfg, Some(&store), &res).unwrap();
        assert_eq!(outcome.resumed_at, Some(7));
        assert_same_substance(&resumed, &full);
        let full_enum: usize = full.passes.iter().map(|p| p.candidates_enumerated).sum();
        let tail_enum: usize = resumed.passes.iter().map(|p| p.candidates_enumerated).sum();
        assert!(tail_enum > 0, "the tail computes fresh");
        assert!(tail_enum < full_enum, "the prefix is never re-enumerated");

        for p in [&store, &ckpt, &ref_store] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(p.with_extension("bin.lock"));
        }
    }

    #[test]
    fn mismatched_fingerprint_is_refused() {
        let cfg = quick_config();
        let ckpt = temp("mismatch-ckpt");
        let base = ResilienceConfig {
            checkpoint: Some(ckpt.clone()),
            retry_base_ms: 0,
            ..ResilienceConfig::default()
        };
        let res = ResilienceConfig { stop_after: Some(3), ..base.clone() };
        assert!(matches!(drive(&cfg, None, &res), Err(CampaignError::Suspended { .. })));

        // Same checkpoint, different config (salt): refused.
        let other = CampaignConfig { salt: "other".into(), ..quick_config() };
        let res = ResilienceConfig { resume: true, ..base };
        match drive(&other, None, &res) {
            Err(CampaignError::CheckpointMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected fingerprint refusal, got {other:?}"),
        }
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn resume_without_a_checkpoint_starts_fresh() {
        let cfg = quick_config();
        let ckpt = temp("fresh-ckpt");
        let res = ResilienceConfig {
            checkpoint: Some(ckpt.clone()),
            resume: true,
            retry_base_ms: 0,
            ..ResilienceConfig::default()
        };
        let (core, outcome) = drive(&cfg, None, &res).unwrap();
        assert_eq!(outcome.resumed_at, None);
        assert!(outcome.checkpoints_written >= 1, "final frame always lands");
        assert!(core.corpus_library + core.corpus_generated > 0);
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let res = ResilienceConfig { retry_base_ms: 10, ..ResilienceConfig::default() };
        let a = backoff_delay(&res, 3, 1);
        let b = backoff_delay(&res, 3, 1);
        assert_eq!(a, b, "same (seed, unit, attempt) => same delay");
        assert_ne!(
            backoff_delay(&res, 3, 1),
            backoff_delay(&res, 4, 1),
            "different units jitter apart"
        );
        for attempt in 1..=8u32 {
            let d = backoff_delay(&res, 0, attempt) ;
            let exp = 10u64 << u64::from(attempt.saturating_sub(1).min(6));
            assert!(d.as_millis() as u64 >= exp, "at least the exponential base");
            assert!(d.as_millis() as u64 <= exp + exp / 2, "jitter bounded by half");
        }
        let zero = ResilienceConfig { retry_base_ms: 0, ..ResilienceConfig::default() };
        assert_eq!(backoff_delay(&zero, 9, 5), Duration::ZERO);
    }
}
