//! Typed invariants over verdict-matrix rows.
//!
//! Each oracle encodes one §5 validation claim as a checkable property
//! of a single row:
//!
//! * **native≡cat** — the two LKMM formulations produce identical
//!   [`TestResult`]s (verdict *and* exact candidate/allowed/witness
//!   counts) on every test;
//! * **envelope ordering** — the LKMM is an envelope of the comparison
//!   models: anything SC allows, TSO allows; anything TSO / ARMv8 /
//!   Power allows, the LKMM allows;
//! * **sim soundness** — an operational simulator never observes an
//!   outcome the LKMM forbids (Table 5's empty "forbidden observed"
//!   column), checked by [`crate::campaign`] with seeded runs;
//! * **C11 divergence whitelist** — original C11 under the P0124
//!   mapping may diverge from the LKMM only where the mapping loses
//!   ordering ([`OriginalC11::divergence_license`]); library rows must
//!   additionally match the paper's published C11 column exactly.
//!
//! The algorithm-family campaign ([`crate::algorithms`]) adds three
//! more: **family safety** (a family program's LKMM verdict matches its
//! declared expectation), **host soundness** (the klitmus runner never
//! observes an LKMM-forbidden outcome on real threads), and
//! **interleave agreement** (exhaustive step-machine interleaving
//! agrees with the axiomatic SC+atomicity verdict).
//!
//! A violation is a structured [`Discrepancy`] carrying a re-checkable
//! [`Recheck`] predicate. Re-checks always recompute from scratch —
//! **never through the verdict store** — so a discrepancy can never be
//! an artifact of a stale or poisoned cache entry, and the shrinker can
//! evaluate the same predicate on mutated tests that were never checked
//! before.

use crate::matrix::{MatrixRow, ModelId, ModelSet, Origin};
use lkmm_exec::{check_test_governed, CheckOutcome, EnumOptions, PipelineOptions, TestResult, Verdict};
use lkmm_litmus::ast::Test;
use lkmm_litmus::library::Expect;
use lkmm_models::OriginalC11;
use lkmm_sim::{run_test, Arch, RunConfig};
use std::fmt;

/// Which invariant a discrepancy violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleKind {
    /// Native and cat LKMM formulations must agree exactly.
    NativeCatAgreement,
    /// SC ⊆ TSO ⊆ LKMM (and ARMv8, Power ⊆ LKMM) on allowed sets.
    EnvelopeOrdering,
    /// A simulator observation implies the LKMM allows the outcome.
    SimSoundness,
    /// C11 may diverge from the LKMM only with a license (or exactly as
    /// the paper's C11 column says, for library rows).
    C11Divergence,
    /// An algorithm-family program's LKMM verdict matches the family's
    /// declared safety expectation (Forbidden for the safe variant,
    /// Allowed for its deliberately weakened twin).
    FamilySafety,
    /// The klitmus host runner never observes an LKMM-forbidden
    /// outcome on real hardware threads.
    HostSoundness,
    /// Loom-style exhaustive interleaving of a program's step machine
    /// agrees with the axiomatic SC+atomicity verdict: the bad state is
    /// reachable iff the model allows the condition.
    InterleaveAgreement,
}

impl OracleKind {
    /// Every oracle, in report order. The first four are the cycle
    /// campaign's; the last three belong to the algorithm-family
    /// campaign and stay at zero elsewhere.
    pub const ALL: [OracleKind; 7] = [
        OracleKind::NativeCatAgreement,
        OracleKind::EnvelopeOrdering,
        OracleKind::SimSoundness,
        OracleKind::C11Divergence,
        OracleKind::FamilySafety,
        OracleKind::HostSoundness,
        OracleKind::InterleaveAgreement,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::NativeCatAgreement => "native-cat-agreement",
            OracleKind::EnvelopeOrdering => "envelope-ordering",
            OracleKind::SimSoundness => "sim-soundness",
            OracleKind::C11Divergence => "c11-divergence",
            OracleKind::FamilySafety => "family-safety",
            OracleKind::HostSoundness => "host-soundness",
            OracleKind::InterleaveAgreement => "interleave-agreement",
        }
    }

    /// Position of this oracle in [`OracleKind::ALL`] (and in every
    /// summaries array).
    pub fn index(self) -> usize {
        OracleKind::ALL.iter().position(|k| *k == self).expect("ALL is total")
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The re-checkable predicate behind one discrepancy: exactly the
/// failing oracle pair, nothing else. The shrinker re-evaluates this
/// (and only this) on every candidate reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recheck {
    /// Two checkers disagree on the full [`TestResult`].
    ResultAgreement { left: ModelId, right: ModelId },
    /// `sub` allows an outcome that `envelope` forbids.
    Envelope { sub: ModelId, envelope: ModelId },
    /// A library row's C11 verdict differs from the paper's column.
    /// Expectations are statements about the *original named test*, so
    /// these discrepancies are never shrunk (a reduced test has no
    /// published expectation to compare against).
    C11Expectation { expect: Verdict },
    /// C11 diverges from the LKMM with no divergence license.
    C11Unlicensed,
    /// A seeded simulator run observes an LKMM-forbidden outcome.
    SimObservation { arch: Arch, iterations: u64, seed: u64 },
    /// An algorithm-family program's LKMM verdict differs from the
    /// family's declared expectation. Fully re-checkable, so
    /// family-safety discrepancies shrink to a minimal program that
    /// still gets the wrong verdict — and when the wrong verdict is an
    /// *Allow*, the recheck additionally demands the outcome be weak
    /// (SC+atomicity forbids it), so the minimal witness is a genuine
    /// weak-memory discriminator rather than the empty program.
    FamilyExpectation { expect: Verdict },
    /// A klitmus host run observes an outcome the LKMM forbids.
    /// Re-checkable in principle (host scheduling is uncontrolled, so a
    /// re-run may not reproduce the observation), but never shrunk.
    HostObservation { iterations: u64 },
    /// Exhaustive interleaving of the program's step machine disagrees
    /// with the axiomatic SC+atomicity verdict. The machine travels
    /// with the check — it is hand-built per family and cannot be
    /// re-derived from a mutated test, so these are never shrunk.
    InterleaveDivergence {
        machine: lkmm_algorithms::interleave::Machine,
        max_states: usize,
    },
}

/// One oracle violation, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Discrepancy {
    /// Name of the offending test.
    pub test_name: String,
    /// Which invariant broke.
    pub oracle: OracleKind,
    /// Human-readable one-liner (verdicts/counts involved).
    pub detail: String,
    /// The exact failing pair, re-checkable from scratch.
    pub check: Recheck,
    /// The offending test (original form).
    pub test: Test,
    /// Minimal discriminating witness, if the shrinker ran.
    pub shrunk: Option<crate::shrink::Shrunk>,
}

/// Per-oracle aggregate counts for one campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleSummary {
    /// Row-level checks evaluated.
    pub checked: usize,
    /// Violations found.
    pub violations: usize,
    /// Checks skipped (missing or inconclusive cells).
    pub skipped: usize,
}

/// The envelope pairs: `(sub, envelope)` with `allowed(sub) ⊆
/// allowed(envelope)`. SC ⊆ LKMM follows transitively through TSO.
pub const ENVELOPE_PAIRS: [(ModelId, ModelId); 4] = [
    (ModelId::Sc, ModelId::Tso),
    (ModelId::Tso, ModelId::LkmmNative),
    (ModelId::Armv8, ModelId::LkmmNative),
    (ModelId::Power, ModelId::LkmmNative),
];

fn complete(row: &MatrixRow, id: ModelId) -> Option<&TestResult> {
    row.cell(id).and_then(CheckOutcome::result)
}

/// Evaluate the matrix-level oracles (agreement, envelope, C11, and —
/// on algorithm rows — family safety) on one row, appending any
/// violations and updating the summaries (indexed like
/// [`OracleKind::ALL`]). Sim soundness needs simulator runs and lives
/// in [`crate::campaign`]; host soundness and interleave agreement live
/// in [`crate::algorithms`].
pub fn check_row(
    row: &MatrixRow,
    out: &mut Vec<Discrepancy>,
    summaries: &mut [OracleSummary],
) {
    let discrepancy = |oracle: OracleKind, detail: String, check: Recheck| Discrepancy {
        test_name: row.test.name.clone(),
        oracle,
        detail,
        check,
        test: row.test.clone(),
        shrunk: None,
    };

    // Native ≡ cat: full result equality, not just the verdict — the two
    // formulations enumerate the same candidates, so even a count drift
    // is a bug in one of them.
    {
        let s = &mut summaries[0];
        match (complete(row, ModelId::LkmmNative), complete(row, ModelId::LkmmCat)) {
            (Some(native), Some(cat)) => {
                s.checked += 1;
                if native != cat {
                    s.violations += 1;
                    out.push(discrepancy(
                        OracleKind::NativeCatAgreement,
                        format!(
                            "native {} (candidates={}, allowed={}) vs cat {} (candidates={}, allowed={})",
                            native.verdict, native.candidates, native.allowed,
                            cat.verdict, cat.candidates, cat.allowed
                        ),
                        Recheck::ResultAgreement {
                            left: ModelId::LkmmNative,
                            right: ModelId::LkmmCat,
                        },
                    ));
                }
            }
            _ => s.skipped += 1,
        }
    }

    // Envelope ordering on verdicts: if the weaker model allows the
    // condition, every enveloping model must allow it too.
    {
        let s = &mut summaries[1];
        for (sub, envelope) in ENVELOPE_PAIRS {
            match (complete(row, sub), complete(row, envelope)) {
                (Some(weak), Some(strong)) => {
                    s.checked += 1;
                    if weak.verdict == Verdict::Allowed && strong.verdict == Verdict::Forbidden {
                        s.violations += 1;
                        out.push(discrepancy(
                            OracleKind::EnvelopeOrdering,
                            format!(
                                "{} allows what {} forbids",
                                sub.column(),
                                envelope.column()
                            ),
                            Recheck::Envelope { sub, envelope },
                        ));
                    }
                }
                _ => s.skipped += 1,
            }
        }
    }

    // C11: library rows must match the paper's column; generated rows
    // may diverge from the LKMM only with a license.
    {
        let s = &mut summaries[3];
        match complete(row, ModelId::C11) {
            None => s.skipped += 1,
            Some(c11) => {
                if let Origin::Library { c11: Some(expect), .. } = &row.origin {
                    s.checked += 1;
                    let expected = match expect {
                        Expect::Allowed => Verdict::Allowed,
                        Expect::Forbidden => Verdict::Forbidden,
                    };
                    if c11.verdict != expected {
                        s.violations += 1;
                        out.push(discrepancy(
                            OracleKind::C11Divergence,
                            format!("C11 says {}, the paper's column says {}", c11.verdict, expected),
                            Recheck::C11Expectation { expect: expected },
                        ));
                    }
                } else {
                    match complete(row, ModelId::LkmmNative) {
                        None => s.skipped += 1,
                        Some(native) => {
                            s.checked += 1;
                            if c11.verdict != native.verdict
                                && OriginalC11::divergence_license(&row.test).is_none()
                            {
                                s.violations += 1;
                                out.push(discrepancy(
                                    OracleKind::C11Divergence,
                                    format!(
                                        "LKMM {} vs C11 {} on a test with no divergence license",
                                        native.verdict, c11.verdict
                                    ),
                                    Recheck::C11Unlicensed,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // Family safety: algorithm rows carry their declared LKMM
    // expectation — the safe variant's violation condition must be
    // Forbidden, the weakened twin's Allowed.
    if let Origin::Algorithm { family, invariant, expect } = &row.origin {
        let s = &mut summaries[OracleKind::FamilySafety.index()];
        match complete(row, ModelId::LkmmNative) {
            Some(native) => {
                s.checked += 1;
                if native.verdict != *expect {
                    s.violations += 1;
                    out.push(discrepancy(
                        OracleKind::FamilySafety,
                        format!(
                            "{family}: LKMM says {}, the family expects {} ({invariant})",
                            native.verdict, expect
                        ),
                        Recheck::FamilyExpectation { expect: *expect },
                    ));
                }
            }
            None => s.skipped += 1,
        }
    }
}

/// Whether `check` still fails on `test`, computed **from scratch** —
/// every model run anew through the governed pipeline, the simulator
/// re-seeded; nothing is read from or written to any verdict store.
/// Inconclusive checks count as *not failing* (the shrinker then simply
/// keeps the larger test, staying conservative).
///
/// This single predicate serves both roles the shrinker needs: the
/// keep-decision on candidate reductions, and the final re-validation
/// of the emitted witness.
pub fn recheck_violated(
    check: &Recheck,
    test: &Test,
    set: &ModelSet,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> bool {
    let run = |id: ModelId| -> Option<TestResult> {
        if !ModelId::supports(id, test) {
            return None;
        }
        match check_test_governed(set.get(id), test, opts, pipe) {
            CheckOutcome::Complete(result) => Some(result),
            CheckOutcome::Inconclusive { .. } => None,
        }
    };
    match check {
        Recheck::ResultAgreement { left, right } => match (run(*left), run(*right)) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        },
        Recheck::Envelope { sub, envelope } => match (run(*sub), run(*envelope)) {
            (Some(weak), Some(strong)) => {
                weak.verdict == Verdict::Allowed && strong.verdict == Verdict::Forbidden
            }
            _ => false,
        },
        Recheck::C11Expectation { expect } => match run(ModelId::C11) {
            Some(c11) => c11.verdict != *expect,
            None => false,
        },
        Recheck::C11Unlicensed => match (run(ModelId::LkmmNative), run(ModelId::C11)) {
            (Some(native), Some(c11)) => {
                native.verdict != c11.verdict
                    && OriginalC11::divergence_license(test).is_none()
            }
            _ => false,
        },
        Recheck::SimObservation { arch, iterations, seed } => {
            let Some(native) = run(ModelId::LkmmNative) else { return false };
            if native.verdict != Verdict::Forbidden {
                return false;
            }
            match run_test(test, *arch, &RunConfig { iterations: *iterations, seed: *seed }) {
                Ok(stats) => stats.observed > 0,
                Err(_) => false,
            }
        }
        Recheck::FamilyExpectation { expect } => match run(ModelId::LkmmNative) {
            Some(native) => {
                if native.verdict == *expect {
                    return false;
                }
                match native.verdict {
                    // A wrong Allow must be backed by a genuinely weak
                    // outcome — one the SC+atomicity interleaving
                    // reference forbids. Without this the shrinker
                    // would collapse every wrong-Allow witness to the
                    // trivially-allowed empty program, which
                    // discriminates nothing.
                    Verdict::Allowed => matches!(
                        check_test_governed(&lkmm_algorithms::ScAtomic, test, opts, pipe),
                        CheckOutcome::Complete(r) if r.verdict == Verdict::Forbidden
                    ),
                    _ => true,
                }
            }
            None => false,
        },
        Recheck::HostObservation { iterations } => {
            let Some(native) = run(ModelId::LkmmNative) else { return false };
            if native.verdict != Verdict::Forbidden {
                return false;
            }
            let config = lkmm_klitmus::HostConfig { iterations: *iterations };
            match lkmm_klitmus::run_on_host(test, &config) {
                Ok(stats) => stats.observed > 0,
                Err(_) => false,
            }
        }
        Recheck::InterleaveDivergence { machine, max_states } => {
            // Recompute both sides from scratch: the machine re-explored,
            // the axiomatic side re-checked under SC+atomicity (the
            // semantics the machine implements — see
            // [`lkmm_algorithms::ScAtomic`]).
            let explored = lkmm_algorithms::interleave::explore(machine, *max_states);
            if explored.truncated {
                return false;
            }
            match check_test_governed(&lkmm_algorithms::ScAtomic, test, opts, pipe) {
                CheckOutcome::Complete(result) => {
                    explored.bad_reachable != (result.verdict == Verdict::Allowed)
                }
                CheckOutcome::Inconclusive { .. } => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{build_matrix, CorpusEntry, MatrixOptions};

    fn library_row(name: &str) -> MatrixRow {
        let pt = lkmm_litmus::library::by_name(name).unwrap();
        let corpus = vec![CorpusEntry {
            test: pt.test(),
            origin: Origin::Library { lkmm: pt.lkmm, c11: pt.c11 },
        }];
        let (matrix, _) =
            build_matrix(&corpus, &ModelSet::standard(), &MatrixOptions::default()).unwrap();
        matrix.rows.into_iter().next().unwrap()
    }

    #[test]
    fn reference_models_pass_on_divergent_and_agreeing_rows() {
        // RWC+mbs is a published LKMM/C11 divergence; the expectation
        // oracle must accept it because the paper's column says Allowed.
        for name in ["MP", "SB+mbs", "RWC+mbs", "RCU-MP"] {
            let row = library_row(name);
            let mut out = Vec::new();
            let mut summaries = [OracleSummary::default(); OracleKind::ALL.len()];
            check_row(&row, &mut out, &mut summaries);
            assert!(out.is_empty(), "{name}: {:?}", out.iter().map(|d| &d.detail).collect::<Vec<_>>());
            assert!(summaries[0].checked == 1);
        }
    }

    #[test]
    fn recheck_predicates_fire_on_a_broken_model() {
        let mut set = ModelSet::standard();
        set.replace(ModelId::LkmmCat, Box::new(lkmm_exec::model::AllowAll));
        let t = lkmm_litmus::library::by_name("SB+mbs").unwrap().test();
        let opts = EnumOptions::default();
        let pipe = PipelineOptions::default();
        let check = Recheck::ResultAgreement { left: ModelId::LkmmNative, right: ModelId::LkmmCat };
        assert!(recheck_violated(&check, &t, &set, &opts, &pipe));
        // The healthy set agrees.
        assert!(!recheck_violated(&check, &t, &ModelSet::standard(), &opts, &pipe));
    }

    #[test]
    fn envelope_recheck_is_direction_sensitive() {
        // SB: TSO allows, SC forbids — the *correct* direction, so the
        // (Sc, Tso) pair must not fire; the inverted pair would.
        let t = lkmm_litmus::library::by_name("SB").unwrap().test();
        let set = ModelSet::standard();
        let opts = EnumOptions::default();
        let pipe = PipelineOptions::default();
        let ok = Recheck::Envelope { sub: ModelId::Sc, envelope: ModelId::Tso };
        assert!(!recheck_violated(&ok, &t, &set, &opts, &pipe));
        let inverted = Recheck::Envelope { sub: ModelId::Tso, envelope: ModelId::Sc };
        assert!(recheck_violated(&inverted, &t, &set, &opts, &pipe));
    }
}
