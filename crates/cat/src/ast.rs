//! Abstract syntax of cat models.

/// A complete cat model: optional name plus instructions in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    /// The leading string literal, e.g. `"Linux-kernel memory model"`.
    pub name: Option<String>,
    /// Instructions, evaluated top to bottom.
    pub instrs: Vec<Instr>,
}

/// One top-level instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `let x = e [and y = f …]`, with optional parameters (functions).
    Let { recursive: bool, bindings: Vec<Binding> },
    /// `acyclic e as name` etc. `negated` handles `~empty`.
    Check { kind: CheckKind, negated: bool, expr: Expr, name: Option<String>, flag: bool },
}

/// A single `name [params] = expr` binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    pub name: String,
    /// Non-empty for function definitions (`let A-cumul(r) = …`).
    pub params: Vec<String>,
    pub body: Expr,
}

/// Constraint kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckKind {
    Acyclic,
    Irreflexive,
    Empty,
}

/// Expressions over sets and relations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Identifier (predefined or `let`-bound).
    Id(String),
    /// The empty relation `0`.
    Empty,
    /// The universal set `_` (spelled `_` in cat; also usable via `M`, etc.).
    Universe,
    /// Function application `f(e1, …)`.
    App(String, Vec<Expr>),
    /// `[S]` — the identity relation on set `S`.
    SetToId(Box<Expr>),
    /// `e1 | e2`.
    Union(Box<Expr>, Box<Expr>),
    /// `e1 ; e2`.
    Seq(Box<Expr>, Box<Expr>),
    /// `e1 \ e2`.
    Diff(Box<Expr>, Box<Expr>),
    /// `e1 & e2`.
    Inter(Box<Expr>, Box<Expr>),
    /// `e1 * e2` — cartesian product of two sets.
    Cartesian(Box<Expr>, Box<Expr>),
    /// `~e` — complement.
    Complement(Box<Expr>),
    /// `e?` — reflexive closure.
    Opt(Box<Expr>),
    /// `e+` — transitive closure.
    Plus(Box<Expr>),
    /// `e*` — reflexive-transitive closure.
    Star(Box<Expr>),
    /// `e^-1` — inverse.
    Inverse(Box<Expr>),
}

impl Expr {
    /// `a | b` helper.
    pub fn union(a: Expr, b: Expr) -> Expr {
        Expr::Union(Box::new(a), Box::new(b))
    }

    /// `a ; b` helper.
    pub fn seq(a: Expr, b: Expr) -> Expr {
        Expr::Seq(Box::new(a), Box::new(b))
    }
}
