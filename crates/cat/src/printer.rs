//! Pretty-printer for cat models: `Display` impls that re-parse to the
//! same AST (round-trip property, enforced by tests).

use crate::ast::{Binding, CheckKind, Expr, Instr, Model};
use std::fmt;

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            writeln!(f, "\"{name}\"")?;
        }
        for instr in &self.instrs {
            writeln!(f, "{instr}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Let { recursive, bindings } => {
                write!(f, "let ")?;
                if *recursive {
                    write!(f, "rec ")?;
                }
                for (i, b) in bindings.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{b}")?;
                }
                Ok(())
            }
            Instr::Check { kind, negated, expr, name, flag } => {
                if *flag {
                    write!(f, "flag ")?;
                }
                if *negated {
                    write!(f, "~")?;
                }
                let kw = match kind {
                    CheckKind::Acyclic => "acyclic",
                    CheckKind::Irreflexive => "irreflexive",
                    CheckKind::Empty => "empty",
                };
                write!(f, "{kw} {expr}")?;
                if let Some(n) = name {
                    write!(f, " as {n}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.params.is_empty() {
            write!(f, "({})", self.params.join(", "))?;
        }
        write!(f, " = {}", self.body)
    }
}

/// Precedence levels for parenthesisation, loosest first (mirrors the
/// parser): union < seq < diff < inter < cartesian < unary < postfix.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Union(..) => 0,
        Expr::Seq(..) => 1,
        Expr::Diff(..) => 2,
        Expr::Inter(..) => 3,
        Expr::Cartesian(..) => 4,
        Expr::Complement(..) => 5,
        Expr::Opt(..) | Expr::Plus(..) | Expr::Star(..) | Expr::Inverse(..) => 6,
        Expr::Id(..) | Expr::Empty | Expr::Universe | Expr::App(..) | Expr::SetToId(..) => 7,
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &Expr, min: u8) -> fmt::Result {
    if prec(child) < min {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Id(n) => write!(f, "{n}"),
            Expr::Empty => write!(f, "0"),
            Expr::Universe => write!(f, "_"),
            Expr::App(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::SetToId(inner) => write!(f, "[{inner}]"),
            Expr::Union(a, b) => {
                write_child(f, a, 0)?;
                write!(f, " | ")?;
                write_child(f, b, 1)
            }
            Expr::Seq(a, b) => {
                write_child(f, a, 1)?;
                write!(f, " ; ")?;
                write_child(f, b, 2)
            }
            Expr::Diff(a, b) => {
                write_child(f, a, 2)?;
                write!(f, " \\ ")?;
                write_child(f, b, 3)
            }
            Expr::Inter(a, b) => {
                write_child(f, a, 3)?;
                write!(f, " & ")?;
                write_child(f, b, 4)
            }
            Expr::Cartesian(a, b) => {
                write_child(f, a, 5)?;
                write!(f, " * ")?;
                write_child(f, b, 5)
            }
            Expr::Complement(inner) => {
                write!(f, "~")?;
                write_child(f, inner, 5)
            }
            Expr::Opt(inner) => {
                write_child(f, inner, 7)?;
                write!(f, "?")
            }
            Expr::Plus(inner) => {
                write_child(f, inner, 7)?;
                write!(f, "+")
            }
            Expr::Star(inner) => {
                write_child(f, inner, 7)?;
                write!(f, "*")
            }
            Expr::Inverse(inner) => {
                write_child(f, inner, 7)?;
                write!(f, "^-1")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn embedded_models_round_trip() {
        for src in [
            crate::builtin::LINUX_KERNEL_CAT,
            crate::builtin::SC_CAT,
            crate::builtin::X86_TSO_CAT,
        ] {
            let m = parse(src).unwrap();
            let printed = m.to_string();
            let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
            assert_eq!(m, reparsed, "round-trip failed for:\n{printed}");
        }
    }

    #[test]
    fn left_associativity_survives() {
        // `a ; b ; c` and the parenthesised right version must print
        // distinguishably and round-trip.
        let m = parse("let x = a ; b ; c\nlet y = a ; (b ; c)").unwrap();
        let printed = m.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(m, reparsed, "{printed}");
    }

    #[test]
    fn postfix_star_vs_cartesian_print_unambiguously() {
        let m = parse("let a = r* ; s\nlet b = R * W\nlet c = (R * W)*").unwrap();
        let printed = m.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(m, reparsed, "{printed}");
    }
}
