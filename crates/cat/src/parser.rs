//! Recursive-descent parser for the cat dialect.

use crate::ast::{Binding, CheckKind, Expr, Instr, Model};
use crate::lexer::{lex, Spanned, Tok};
use std::fmt;

/// Parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for CatParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cat parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CatParseError {}

/// Parse a cat model source.
///
/// # Errors
///
/// Returns [`CatParseError`] for lexical or syntactic problems, including
/// the unsupported `include` directive.
pub fn parse(src: &str) -> Result<Model, CatParseError> {
    let toks = lex(src).map_err(|(message, offset)| CatParseError { message, offset })?;
    Parser { toks, pos: 0 }.parse_model()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, CatParseError> {
        Err(CatParseError { message: message.into(), offset: self.offset() })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CatParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(w) if w == kw)
    }

    fn expect_ident(&mut self) -> Result<String, CatParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn parse_model(&mut self) -> Result<Model, CatParseError> {
        let name = if let Tok::Str(_) = self.peek() {
            match self.bump() {
                Tok::Str(s) => Some(s),
                _ => unreachable!(),
            }
        } else {
            None
        };
        let mut instrs = Vec::new();
        while *self.peek() != Tok::Eof {
            instrs.push(self.parse_instr()?);
        }
        Ok(Model { name, instrs })
    }

    fn parse_instr(&mut self) -> Result<Instr, CatParseError> {
        if self.is_kw("include") {
            return self.err("`include` is not supported; inline the included model");
        }
        if self.is_kw("let") {
            self.bump();
            let recursive = self.is_kw("rec") && {
                self.bump();
                true
            };
            let mut bindings = vec![self.parse_binding()?];
            while self.is_kw("and") {
                self.bump();
                bindings.push(self.parse_binding()?);
            }
            return Ok(Instr::Let { recursive, bindings });
        }
        let flag = self.is_kw("flag") && {
            self.bump();
            true
        };
        let negated = self.eat_punct("~");
        let kind = match self.peek() {
            Tok::Ident(w) if w == "acyclic" => CheckKind::Acyclic,
            Tok::Ident(w) if w == "irreflexive" => CheckKind::Irreflexive,
            Tok::Ident(w) if w == "empty" => CheckKind::Empty,
            other => return self.err(format!("expected instruction, found {other}")),
        };
        self.bump();
        let expr = self.parse_expr()?;
        let name = if self.is_kw("as") {
            self.bump();
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(Instr::Check { kind, negated, expr, name, flag })
    }

    fn parse_binding(&mut self) -> Result<Binding, CatParseError> {
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat_punct("(") {
            loop {
                params.push(self.expect_ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct("=")?;
        let body = self.parse_expr()?;
        Ok(Binding { name, params, body })
    }

    // Precedence, loosest first: `|`, `;`, `\`, `&`, cartesian `*`,
    // unary `~`, postfix `? + * ^-1`.
    fn parse_expr(&mut self) -> Result<Expr, CatParseError> {
        let mut lhs = self.parse_seq()?;
        while self.eat_punct("|") {
            let rhs = self.parse_seq()?;
            lhs = Expr::union(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_seq(&mut self) -> Result<Expr, CatParseError> {
        let mut lhs = self.parse_diff()?;
        while self.eat_punct(";") {
            let rhs = self.parse_diff()?;
            lhs = Expr::seq(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_diff(&mut self) -> Result<Expr, CatParseError> {
        let mut lhs = self.parse_inter()?;
        while self.eat_punct("\\") {
            let rhs = self.parse_inter()?;
            lhs = Expr::Diff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_inter(&mut self) -> Result<Expr, CatParseError> {
        let mut lhs = self.parse_cartesian()?;
        while self.eat_punct("&") {
            let rhs = self.parse_cartesian()?;
            lhs = Expr::Inter(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cartesian(&mut self) -> Result<Expr, CatParseError> {
        let lhs = self.parse_unary()?;
        // `X * Y` is cartesian product when `*` is followed by the start of
        // an atom; otherwise `*` was already consumed as a postfix closure
        // by parse_unary.
        if matches!(self.peek(), Tok::Punct("*")) && self.starts_atom(self.peek2()) {
            self.bump();
            let rhs = self.parse_unary()?;
            return Ok(Expr::Cartesian(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn starts_atom(&self, t: &Tok) -> bool {
        const KEYWORDS: &[&str] = &[
            "let", "rec", "and", "as", "acyclic", "irreflexive", "empty", "flag", "include",
        ];
        match t {
            Tok::Ident(w) => !KEYWORDS.contains(&w.as_str()),
            Tok::Zero | Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("~") => true,
            _ => false,
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, CatParseError> {
        if self.eat_punct("~") {
            let e = self.parse_unary()?;
            return Ok(Expr::Complement(Box::new(e)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, CatParseError> {
        let mut e = self.parse_atom()?;
        loop {
            if self.eat_punct("?") {
                e = Expr::Opt(Box::new(e));
            } else if self.eat_punct("+") {
                e = Expr::Plus(Box::new(e));
            } else if self.eat_punct("^-1") {
                e = Expr::Inverse(Box::new(e));
            } else if matches!(self.peek(), Tok::Punct("*")) && !self.starts_atom(self.peek2()) {
                self.bump();
                e = Expr::Star(Box::new(e));
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, CatParseError> {
        match self.peek().clone() {
            Tok::Zero => {
                self.bump();
                Ok(Expr::Empty)
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("[") => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct("]")?;
                Ok(Expr::SetToId(Box::new(e)))
            }
            Tok::Ident(name) => {
                self.bump();
                if name == "_" {
                    return Ok(Expr::Universe);
                }
                if matches!(self.peek(), Tok::Punct("(")) {
                    self.bump();
                    let mut args = vec![self.parse_expr()?];
                    while self.eat_punct(",") {
                        args.push(self.parse_expr()?);
                    }
                    self.expect_punct(")")?;
                    return Ok(Expr::App(name, args));
                }
                Ok(Expr::Id(name))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_and_lets() {
        let m = parse("\"demo\"\nlet fr = rf^-1 ; co\nacyclic po | fr as check1").unwrap();
        assert_eq!(m.name.as_deref(), Some("demo"));
        assert_eq!(m.instrs.len(), 2);
        match &m.instrs[0] {
            Instr::Let { recursive: false, bindings } => {
                assert_eq!(bindings[0].name, "fr");
                assert_eq!(
                    bindings[0].body,
                    Expr::seq(Expr::Inverse(Box::new(Expr::Id("rf".into()))), Expr::Id("co".into()))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn star_is_postfix_or_cartesian_by_lookahead() {
        let m = parse("let a = rrdep* ; fence\nlet b = (R * R)").unwrap();
        match &m.instrs[0] {
            Instr::Let { bindings, .. } => {
                assert_eq!(
                    bindings[0].body,
                    Expr::seq(Expr::Star(Box::new(Expr::Id("rrdep".into()))), Expr::Id("fence".into()))
                );
            }
            _ => unreachable!(),
        }
        match &m.instrs[1] {
            Instr::Let { bindings, .. } => {
                assert!(matches!(bindings[0].body, Expr::Cartesian(_, _)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_rec_and() {
        let m = parse("let rec p = q | (p ; p) and q = p").unwrap();
        match &m.instrs[0] {
            Instr::Let { recursive: true, bindings } => assert_eq!(bindings.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_functions_and_brackets() {
        let m = parse("let A-cumul(r) = rfe? ; r\nlet mb = po ; [Mb] ; po").unwrap();
        match &m.instrs[0] {
            Instr::Let { bindings, .. } => {
                assert_eq!(bindings[0].params, vec!["r"]);
            }
            _ => unreachable!(),
        }
        match &m.instrs[1] {
            Instr::Let { bindings, .. } => {
                // Sequence is left-associative: (po ; [Mb]) ; po.
                let Expr::Seq(first, _) = &bindings[0].body else { panic!() };
                let Expr::Seq(_, mid) = &**first else { panic!() };
                assert!(matches!(**mid, Expr::SetToId(_)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_flag_checks() {
        let m = parse("flag ~empty rmw as atomicity-warning").unwrap();
        match &m.instrs[0] {
            Instr::Check { kind: CheckKind::Empty, negated: true, flag: true, name, .. } => {
                assert_eq!(name.as_deref(), Some("atomicity-warning"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_include_and_garbage() {
        assert!(parse("include \"cos.cat\"").is_err());
        assert!(parse("let = 3").is_err());
        assert!(parse("acyclic").is_err());
    }
}
