//! Embedded cat models: the paper's LKMM plus SC and x86-TSO baselines.

/// The Linux-kernel memory model as a cat file — a transcription of the
/// paper's Figure 3 (axioms), Figure 8 (definitions) and Figure 12 (RCU).
///
/// Evaluating this file through the interpreter must agree with the native
/// `lkmm::Lkmm` implementation on every candidate execution; the test
/// suites of both crates enforce that.
pub const LINUX_KERNEL_CAT: &str = r#"
"LKMM"

(* Derived communication relations -- Section 2 *)
let fr = rf^-1 ; co
let com = rf | co | fr
let po-loc = po & loc
let rfi = rf & int
let rfe = rf & ext
let coe = co & ext
let fre = fr & ext

(* Auxiliary relations -- Section 3.1 *)
let rmb = (po ; [Rmb] ; po) & (R * R)
let wmb = (po ; [Wmb] ; po) & (W * W)
let mb = po ; [Mb] ; po
let rb-dep = (po ; [Rb-dep] ; po) & (R * R)
let acq-po = [Acquire] ; po
let po-rel = po ; [Release]
let rfi-rel-acq = [Release] ; rfi ; [Acquire]

(* Figure 12: grace periods enlarge strong-fence *)
let gp = (po ; [Sync] ; po?)

(* Figure 8 *)
let dep = addr | data
let rwdep = (dep | ctrl) & (R * W)
let overwrite = co | fr
let to-w = rwdep | (overwrite & int)
let rrdep = addr | (dep ; rfi)
let strong-rrdep = rrdep+ & rb-dep
let to-r = strong-rrdep | rfi-rel-acq
let strong-fence = mb | gp
let fence = strong-fence | po-rel | wmb | rmb | acq-po
let ppo = rrdep* ; (to-r | to-w | fence)
let A-cumul(r) = rfe? ; r
let cumul-fence = A-cumul(strong-fence | po-rel) | wmb
let prop = (overwrite & ext)? ; cumul-fence* ; rfe?
let hb = ((prop \ id) & int) | ppo | rfe
let pb = prop ; strong-fence ; hb*

(* Figure 3: the core axioms *)
acyclic po-loc | com as scpv
empty rmw & (fre ; coe) as atomicity
acyclic hb as happens-before
acyclic pb as propagates-before

(* Figure 12: the RCU axiom *)
let rscs = po ; crit^-1 ; po?
let link = hb* ; pb* ; prop
let gp-link = gp ; link
let rscs-link = rscs ; link
let rec rcu-path = gp-link
  | (rcu-path ; rcu-path)
  | (gp-link ; rscs-link)
  | (rscs-link ; gp-link)
  | (gp-link ; rcu-path ; rscs-link)
  | (rscs-link ; rcu-path ; gp-link)
irreflexive rcu-path as rcu
"#;

/// Sequential consistency: `acyclic(po ∪ com)` (Lamport 1979, in cat).
pub const SC_CAT: &str = r#"
"SC"
let fr = rf^-1 ; co
acyclic po | rf | co | fr as sc
"#;

/// x86-TSO in the herding-cats style: program order is preserved except
/// write-to-read; `smp_mb` maps to `mfence`. The lighter LK barriers
/// (`smp_wmb`, `smp_rmb`, acquire/release) need no machine ordering on
/// TSO. RCU primitives are *not* modelled here (use `lkmm-sim` for the
/// operational grace-period semantics).
pub const X86_TSO_CAT: &str = r#"
"x86-TSO"
let fr = rf^-1 ; co
let com = rf | co | fr
let po-loc = po & loc
acyclic po-loc | com as scpv
let fre = fr & ext
let coe = co & ext
empty rmw & (fre ; coe) as atomicity
let ppo-tso = po \ (W * R)
let mfence = po ; [Mb] ; po
let implied = (po ; [domain(rmw)]) | ([range(rmw)] ; po)
let rfe = rf & ext
acyclic ppo-tso | mfence | implied | rfe | co | fr as tso
"#;

/// Simplified ARMv8 in cat (ordered-before style), matching
/// `lkmm_models::Armv8`.
pub const ARMV8_CAT: &str = r#"
"ARMv8"
let fr = rf^-1 ; co
let com = rf | co | fr
let po-loc = po & loc
acyclic po-loc | com as internal
let fre = fr & ext
let coe = co & ext
empty rmw & (fre ; coe) as atomicity
let rfi = rf & int
let rfe = rf & ext
let obs = rfe | fre | coe
let dep = addr | data
let dob = dep | (ctrl & (R * W)) | (dep ; rfi) | ((addr ; po) & (R * W))
let aob = rmw | ([range(rmw)] ; rfi ; [Acquire])
let full = (po ; [Mb] ; po) | (po ; [Sync] ; po)
let dmb-st = (po ; [Wmb] ; po) & (W * W)
let dmb-ld = (po ; [Rmb] ; po) & (R * M)
let bob = full | dmb-st | dmb-ld
  | ([Acquire] ; po) | (po ; [Release]) | ([Release] ; po ; [Acquire])
let ob = obs | dob | aob | bob
acyclic ob as external
"#;

/// IBM Power in cat (herding-cats style), matching `lkmm_models::Power`.
/// The `ii/ic/ci/cc` preserved-program-order families are a mutually
/// recursive least fixpoint — exercising the interpreter's
/// `let rec … and …`.
pub const POWER_CAT: &str = r#"
"Power"
let fr = rf^-1 ; co
let com = rf | co | fr
let po-loc = po & loc
acyclic po-loc | com as sc-per-location
let rfi = rf & int
let rfe = rf & ext
let fre = fr & ext
let coe = co & ext
empty rmw & (fre ; coe) as atomicity

(* ppo: Herding Cats Fig. 18 *)
let dp = addr | data
let rdw = po-loc & (fre ; rfe)
let detour = po-loc & (coe ; rfe)
let addr-po = addr ; po
let acq-po = [Acquire] ; po
let ii0 = dp | rdw | rfi
let ci0 = ctrl | acq-po | detour
let cc0 = dp | po-loc | ctrl | addr-po
let rec ii = ii0 | ci | (ic ; ci) | (ii ; ii)
    and ic = ii | cc | (ic ; cc) | (ii ; ic)
    and ci = ci0 | (ci ; ii) | (cc ; ci)
    and cc = cc0 | ci | (ci ; ic) | (cc ; cc)
let ppo = (ii & (R * R)) | (ic & (R * W))

(* fences: sync and lwsync *)
let ffence = ((po ; [Mb] ; po) | (po ; [Sync] ; po)) & (M * M)
let lw-raw = (po ; [Wmb] ; po) | (po ; [Rmb] ; po)
  | (po ; [Release]) | ([Acquire] ; po)
let lwfence = lw-raw & ((R * M) | (M * W))
let fences = ffence | lwfence

let hb = ppo | fences | rfe
acyclic hb as no-thin-air
let prop-base = (fences | (rfe ; fences)) ; hb*
let prop = ((W * W) & prop-base)
  | (com* ; prop-base* ; ffence ; hb*)
irreflexive fre ; prop ; hb* as observation
acyclic co | prop as propagation
"#;

#[cfg(test)]
mod tests {
    use crate::CatModel;

    #[test]
    fn builtins_parse() {
        for (name, src) in [
            ("LKMM", super::LINUX_KERNEL_CAT),
            ("SC", super::SC_CAT),
            ("x86-TSO", super::X86_TSO_CAT),
            ("ARMv8", super::ARMV8_CAT),
            ("Power", super::POWER_CAT),
        ] {
            let m = CatModel::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(m.model_name(), Some(name));
        }
    }
}
