//! Tokeniser for the cat dialect.

use std::fmt;

/// A cat token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword. Identifiers may contain `-` and `.`
    /// (`po-loc`, `rcu-path`), which is why cat has no subtraction.
    Ident(String),
    /// A double-quoted string (the model name).
    Str(String),
    /// `0` — the empty relation.
    Zero,
    /// Punctuation / operators.
    Punct(&'static str),
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Zero => write!(f, "`0`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its byte offset (for error messages).
pub type Spanned = (Tok, usize);

/// Tokenise cat source. OCaml-style `(* … *)` comments are skipped
/// (nesting supported).
///
/// # Errors
///
/// Returns `(message, offset)` for unterminated strings/comments or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, (String, usize)> {
    let b = src.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < b.len() {
        let c = b[pos];
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        if b[pos..].starts_with(b"(*") {
            let start = pos;
            let mut depth = 1;
            pos += 2;
            while depth > 0 {
                if pos >= b.len() {
                    return Err(("unterminated comment".into(), start));
                }
                if b[pos..].starts_with(b"(*") {
                    depth += 1;
                    pos += 2;
                } else if b[pos..].starts_with(b"*)") {
                    depth -= 1;
                    pos += 2;
                } else {
                    pos += 1;
                }
            }
            continue;
        }
        if b[pos..].starts_with(b"//") {
            while pos < b.len() && b[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        if c == b'"' {
            pos += 1;
            let sstart = pos;
            while pos < b.len() && b[pos] != b'"' {
                pos += 1;
            }
            if pos >= b.len() {
                return Err(("unterminated string".into(), start));
            }
            out.push((Tok::Str(src[sstart..pos].to_string()), start));
            pos += 1;
            continue;
        }
        if c == b'0' && !next_is_ident(b, pos + 1) {
            out.push((Tok::Zero, start));
            pos += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut end = pos;
            while end < b.len()
                && (b[end].is_ascii_alphanumeric()
                    || b[end] == b'_'
                    || b[end] == b'-'
                    || b[end] == b'.')
            {
                end += 1;
            }
            // Trailing '-' or '.' are not part of identifiers.
            while end > pos && (b[end - 1] == b'-' || b[end - 1] == b'.') {
                end -= 1;
            }
            out.push((Tok::Ident(src[pos..end].to_string()), start));
            pos = end;
            continue;
        }
        if b[pos..].starts_with(b"^-1") {
            out.push((Tok::Punct("^-1"), start));
            pos += 3;
            continue;
        }
        const SINGLES: &[(&[u8], &str)] = &[
            (b"|", "|"),
            (b";", ";"),
            (b"\\", "\\"),
            (b"&", "&"),
            (b"~", "~"),
            (b"?", "?"),
            (b"+", "+"),
            (b"*", "*"),
            (b"(", "("),
            (b")", ")"),
            (b"[", "["),
            (b"]", "]"),
            (b"=", "="),
            (b",", ","),
        ];
        let mut matched = false;
        for (pat, p) in SINGLES {
            if b[pos..].starts_with(pat) {
                out.push((Tok::Punct(p), start));
                pos += pat.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err((format!("unexpected character {:?}", c as char), pos));
        }
    }
    out.push((Tok::Eof, b.len()));
    Ok(out)
}

fn next_is_ident(b: &[u8], pos: usize) -> bool {
    pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_with_dashes() {
        let toks = lex("let po-loc = po & loc").unwrap();
        assert_eq!(toks[1].0, Tok::Ident("po-loc".into()));
        assert_eq!(toks[2].0, Tok::Punct("="));
    }

    #[test]
    fn inverse_operator() {
        let toks = lex("rf^-1").unwrap();
        assert_eq!(toks[0].0, Tok::Ident("rf".into()));
        assert_eq!(toks[1].0, Tok::Punct("^-1"));
    }

    #[test]
    fn nested_comments_and_strings() {
        let toks = lex("\"model (* name *)\" (* a (* nested *) comment *) let").unwrap();
        assert_eq!(toks[0].0, Tok::Str("model (* name *)".into()));
        assert_eq!(toks[1].0, Tok::Ident("let".into()));
    }

    #[test]
    fn zero_token() {
        let toks = lex("let e = 0").unwrap();
        assert_eq!(toks[3].0, Tok::Zero);
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(lex("let x = @").is_err());
        assert!(lex("(* unterminated").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
