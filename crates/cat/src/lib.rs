//! An interpreter for the `cat` consistency-model language.
//!
//! `cat` [Alglave, Cousot & Maranget 2016] is the language in which the
//! paper's LKMM is written: models are sets of constraints (`acyclic`,
//! `irreflexive`, `empty`) over relations built from a candidate
//! execution's base relations with union, intersection, difference,
//! sequence, closures, inverses and (recursive) `let` bindings.
//!
//! The supported dialect covers everything the paper's Figures 8 and 12
//! need: `let`, `let rec … and …` (least fixpoints), user functions
//! (`let A-cumul(r) = rfe? ; r`), the operators `| ; \ & ~ ? + * ^-1`,
//! set-to-relation brackets `[S]`, cartesian product `X * Y`, and named
//! checks (`acyclic hb as Hb`).
//!
//! The LKMM itself ships as an embedded cat file ([`LINUX_KERNEL_CAT`]);
//! the test suite cross-checks the interpreted model against the native
//! Rust implementation in the `lkmm` crate on every library test.
//!
//! # Examples
//!
//! ```
//! use lkmm_cat::CatModel;
//! use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
//!
//! let sc = CatModel::parse(r#"
//! "sequential consistency"
//! let fr = rf^-1 ; co
//! acyclic po | rf | co | fr as sc
//! "#).unwrap();
//!
//! let sb = lkmm_litmus::library::by_name("SB").unwrap().test();
//! let r = check_test(&sc, &sb, &EnumOptions::default()).unwrap();
//! assert_eq!(r.verdict, Verdict::Forbidden); // SC forbids store buffering
//! ```

pub mod ast;
pub mod builtin;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{CheckKind, Expr, Instr, Model};
pub use builtin::LINUX_KERNEL_CAT;
pub use eval::{CatOutcome, CatSession, EvalError};
pub use parser::CatParseError;

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution, ModelSession};

/// A parsed cat model, usable as a [`ConsistencyModel`].
#[derive(Clone, Debug)]
pub struct CatModel {
    model: Model,
}

impl CatModel {
    /// Parse a cat source file.
    ///
    /// # Errors
    ///
    /// Returns [`CatParseError`] on syntax errors.
    pub fn parse(src: &str) -> Result<Self, CatParseError> {
        Ok(CatModel { model: parser::parse(src)? })
    }

    /// The model's declared name (first string literal), if any.
    pub fn model_name(&self) -> Option<&str> {
        self.model.name.as_deref()
    }

    /// Evaluate all checks against one candidate execution.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for semantic errors (unknown identifiers,
    /// type mismatches) — a well-formed model never errors.
    pub fn evaluate(&self, x: &Execution) -> Result<CatOutcome, EvalError> {
        eval::evaluate(&self.model, x)
    }

    /// The parsed AST (for tooling).
    pub fn model(&self) -> &Model {
        &self.model
    }
}

impl ConsistencyModel for CatModel {
    fn name(&self) -> &str {
        self.model.name.as_deref().unwrap_or("cat")
    }

    /// # Panics
    ///
    /// Panics if the model has semantic errors (caught on first use; parse
    /// errors are already impossible here).
    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        let allowed = CatSession::new(&self.model)
            .evaluate_with(x, facts)
            .expect("cat evaluation failed")
            .allowed();
        // `cat.misjudge` deliberately inverts verdicts so the conformance
        // oracles can be demonstrated against a broken checker.
        if lkmm_core::faultpoint::should_fail("cat.misjudge") {
            !allowed
        } else {
            allowed
        }
    }

    fn explain(&self, x: &Execution) -> Option<String> {
        self.evaluate(x)
            .expect("cat evaluation failed")
            .failed_check
            .map(|c| format!("violates cat check `{c}`"))
    }

    fn session(&self) -> Option<Box<dyn ModelSession + '_>> {
        Some(Box::new(CatSession::new(&self.model)))
    }

    /// Interpreting a cat model walks the AST per candidate — the most
    /// expensive evaluator in the workspace (the stress-cat workloads),
    /// so batches carrying a cat model stay fine-grained.
    fn eval_cost_hint(&self) -> usize {
        8
    }
}

impl ModelSession for CatSession<'_> {
    /// # Panics
    ///
    /// Panics if the model has semantic errors, like
    /// [`ConsistencyModel::allows`] on [`CatModel`].
    fn allows(&mut self, x: &Execution) -> bool {
        ModelSession::allows_with(self, x, &ExecFacts::new(x))
    }

    fn allows_with(&mut self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        let allowed = self
            .evaluate_with(x, facts)
            .expect("cat evaluation failed")
            .allowed();
        if lkmm_core::faultpoint::should_fail("cat.misjudge") {
            !allowed
        } else {
            allowed
        }
    }

    /// Fuel exhaustion becomes a clean [`EvalStop`]; genuine semantic
    /// errors still panic (contained by the pipeline's per-candidate
    /// `catch_unwind` in governed runs).
    fn try_allows(&mut self, x: &Execution) -> Result<bool, lkmm_exec::EvalStop> {
        self.try_allows_with(x, &ExecFacts::new(x))
    }

    fn try_allows_with(
        &mut self,
        x: &Execution,
        facts: &ExecFacts<'_>,
    ) -> Result<bool, lkmm_exec::EvalStop> {
        let allowed = match self.evaluate_with(x, facts) {
            Ok(outcome) => outcome.allowed(),
            Err(e) if e.is_fuel_exhausted() => return Err(lkmm_exec::EvalStop),
            Err(e) => panic!("cat evaluation failed: {e}"),
        };
        if lkmm_core::faultpoint::should_fail("cat.misjudge") {
            Ok(!allowed)
        } else {
            Ok(allowed)
        }
    }

    fn install_step_fuel(&mut self, fuel: std::sync::Arc<lkmm_core::budget::StepFuel>) {
        self.set_fuel(fuel);
    }
}

/// The LKMM as an interpreted cat model (parses [`LINUX_KERNEL_CAT`]).
///
/// # Panics
///
/// Never: the embedded source is covered by tests.
pub fn linux_kernel_model() -> CatModel {
    CatModel::parse(LINUX_KERNEL_CAT).expect("embedded LKMM cat file parses")
}
