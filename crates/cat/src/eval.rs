//! Evaluator: cat models against candidate executions.

use crate::ast::{Binding, CheckKind, Expr, Instr, Model};
use lkmm_core::budget::StepFuel;
use lkmm_exec::{ExecFacts, Execution};
use lkmm_litmus::FenceKind;
use lkmm_relation::{
    acquire_rel, scratch_words, with_scratch, ArenaRel, EventSet, Relation, SharedArena,
};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Sentinel message distinguishing fuel exhaustion from genuine semantic
/// errors; see [`EvalError::is_fuel_exhausted`].
const FUEL_EXHAUSTED: &str = "evaluation-step budget exhausted";

/// Evaluation failure (unknown identifier, type mismatch, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError {
    pub message: String,
}

impl EvalError {
    /// The error reported when an installed [`StepFuel`] tank runs dry
    /// mid-evaluation.
    pub fn fuel_exhausted() -> EvalError {
        EvalError { message: FUEL_EXHAUSTED.into() }
    }

    /// Whether this error is fuel exhaustion (a budget stop) rather than
    /// a semantic error in the model.
    pub fn is_fuel_exhausted(&self) -> bool {
        self.message == FUEL_EXHAUSTED
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cat evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Result of evaluating a model against one execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatOutcome {
    /// First failed (non-flag) check, by name or kind.
    pub failed_check: Option<String>,
    /// Names of triggered `flag` checks (warnings, not verdicts).
    pub flags: Vec<String>,
}

impl CatOutcome {
    /// Whether the execution is allowed (no non-flag check failed).
    pub fn allowed(&self) -> bool {
        self.failed_check.is_none()
    }
}

/// A cat runtime value.
///
/// Sets and relations are behind `Arc`s so that (a) cloning an
/// environment — which happens once per candidate when a [`CatSession`]
/// reuses its cached static environment — bumps reference counts instead
/// of copying bitsets, and (b) operators can mutate uniquely-owned
/// intermediate results in place (`Arc::try_unwrap` copy-on-write), which
/// turns the allocation-heavy union chains of `let rec` fixpoints into
/// in-place bit-ors. Relations are [`ArenaRel`] handles: when evaluation
/// runs with a pool attached (the pipeline's per-worker arena), every
/// intermediate that falls out of scope returns its storage for the next
/// candidate instead of hitting the allocator.
#[derive(Clone, Debug)]
enum Value {
    Set(Arc<EventSet>),
    Rel(Arc<ArenaRel>),
    Fun(Rc<FunVal>),
}

/// The optional per-worker storage pool, threaded through evaluation.
type Pool<'p> = Option<&'p SharedArena>;

/// Copy-on-write binary relation operator: mutate in place when the
/// left operand is uniquely owned, copy into pooled storage otherwise.
fn cow_rel(
    a: Arc<ArenaRel>,
    b: &Relation,
    pool: Pool<'_>,
    in_place: impl FnOnce(&mut Relation, &Relation),
) -> Arc<ArenaRel> {
    match Arc::try_unwrap(a) {
        Ok(mut r) => {
            in_place(&mut r, b);
            Arc::new(r)
        }
        Err(a) => {
            let mut r = acquire_rel(pool, a.universe());
            r.copy_from(&a);
            in_place(&mut r, b);
            Arc::new(r)
        }
    }
}

/// Copy-on-write unary relation operator.
fn cow_unary(
    a: Arc<ArenaRel>,
    pool: Pool<'_>,
    in_place: impl FnOnce(&mut Relation),
) -> Arc<ArenaRel> {
    match Arc::try_unwrap(a) {
        Ok(mut r) => {
            in_place(&mut r);
            Arc::new(r)
        }
        Err(a) => {
            let mut r = acquire_rel(pool, a.universe());
            r.copy_from(&a);
            in_place(&mut r);
            Arc::new(r)
        }
    }
}

#[derive(Debug)]
struct FunVal {
    params: Vec<String>,
    body: Expr,
    env: Env,
}

type Env = HashMap<String, Value>;

/// Evaluate `model` against execution `x`.
///
/// # Errors
///
/// Returns [`EvalError`] for semantic errors; a type-correct model always
/// evaluates.
pub fn evaluate(model: &Model, x: &Execution) -> Result<CatOutcome, EvalError> {
    let facts = ExecFacts::new(x);
    let mut env = static_env(x, &facts)?;
    insert_witness(&mut env, x, None);
    evaluate_with_env(model, x.universe(), env, None, None)
}

/// Run a model's instructions against a pre-built base environment.
/// When `fuel` is supplied, one unit is burned per instruction and per
/// fixpoint-round binding, and exhaustion surfaces as
/// [`EvalError::fuel_exhausted`]. When `pool` is supplied, relation
/// intermediates draw storage from it.
fn evaluate_with_env(
    model: &Model,
    n: usize,
    mut env: Env,
    fuel: Option<&StepFuel>,
    pool: Pool<'_>,
) -> Result<CatOutcome, EvalError> {
    let mut outcome = CatOutcome { failed_check: None, flags: Vec::new() };
    for (i, instr) in model.instrs.iter().enumerate() {
        if let Some(f) = fuel {
            if !f.consume(1) {
                return Err(EvalError::fuel_exhausted());
            }
        }
        match instr {
            Instr::Let { recursive: false, bindings } => {
                // Simultaneous bindings: evaluate all in the current env.
                let vals: Vec<(String, Value)> = bindings
                    .iter()
                    .map(|b| Ok((b.name.clone(), bind_value(b, &env, pool)?)))
                    .collect::<Result<_, EvalError>>()?;
                env.extend(vals);
            }
            Instr::Let { recursive: true, bindings } => {
                eval_rec(bindings, &mut env, n, fuel, pool)?;
            }
            Instr::Check { kind, negated, expr, name, flag } => {
                let holds = eval_check(*kind, expr, &env, n, pool)? != *negated;
                let label = || {
                    name.clone()
                        .unwrap_or_else(|| format!("{kind:?} (instruction {i})").to_lowercase())
                };
                if *flag {
                    // herd semantics: a `flag` labels executions where the
                    // condition *holds* (e.g. `flag ~empty bad as bad`
                    // fires when `bad` is non-empty). It never forbids.
                    if holds {
                        outcome.flags.push(label());
                    }
                } else if !holds && outcome.failed_check.is_none() {
                    outcome.failed_check = Some(label());
                }
            }
        }
    }
    Ok(outcome)
}

fn bind_value(b: &Binding, env: &Env, pool: Pool<'_>) -> Result<Value, EvalError> {
    if b.params.is_empty() {
        eval_expr(&b.body, env, pool)
    } else {
        Ok(Value::Fun(Rc::new(FunVal {
            params: b.params.clone(),
            body: b.body.clone(),
            env: env.clone(),
        })))
    }
}

fn eval_rec(
    bindings: &[Binding],
    env: &mut Env,
    n: usize,
    fuel: Option<&StepFuel>,
    pool: Pool<'_>,
) -> Result<(), EvalError> {
    for b in bindings {
        if !b.params.is_empty() {
            return Err(EvalError { message: "recursive functions are not supported".into() });
        }
        env.insert(b.name.clone(), Value::Rel(Arc::new(acquire_rel(pool, n))));
    }
    // Least fixpoint by iteration; cat recursion over ∪/;/closures is
    // monotone, so this terminates (the lattice of relations is finite).
    let cap = n * n * bindings.len() + 2;
    for _ in 0..cap {
        // The fixpoint is where evaluation cost is super-linear, so this
        // is the loop a step budget must bound.
        if let Some(f) = fuel {
            if !f.consume(bindings.len() as u64) {
                return Err(EvalError::fuel_exhausted());
            }
        }
        let mut changed = false;
        for b in bindings {
            let new = eval_expr(&b.body, env, pool)?;
            let new_rel = as_rel(new, n)?;
            let old = match env.get(&b.name) {
                Some(Value::Rel(r)) => Arc::clone(r),
                _ => unreachable!("rec name bound above"),
            };
            if *new_rel != *old {
                changed = true;
                env.insert(b.name.clone(), Value::Rel(new_rel));
            }
        }
        if !changed {
            return Ok(());
        }
    }
    Err(EvalError { message: "recursive definition did not converge (non-monotone?)".into() })
}

fn eval_check(
    kind: CheckKind,
    expr: &Expr,
    env: &Env,
    n: usize,
    pool: Pool<'_>,
) -> Result<bool, EvalError> {
    let v = eval_expr(expr, env, pool)?;
    Ok(match kind {
        CheckKind::Acyclic => as_rel(v, n)?.is_acyclic(),
        CheckKind::Irreflexive => as_rel(v, n)?.is_irreflexive(),
        CheckKind::Empty => match v {
            Value::Set(s) => s.is_empty(),
            Value::Rel(r) => r.is_empty(),
            Value::Fun(_) => {
                return Err(EvalError { message: "`empty` applied to a function".into() })
            }
        },
    })
}

fn as_rel(v: Value, _n: usize) -> Result<Arc<ArenaRel>, EvalError> {
    match v {
        Value::Rel(r) => Ok(r),
        Value::Set(_) => Err(EvalError { message: "expected a relation, found a set".into() }),
        Value::Fun(_) => Err(EvalError { message: "expected a relation, found a function".into() }),
    }
}

fn eval_expr(e: &Expr, env: &Env, pool: Pool<'_>) -> Result<Value, EvalError> {
    let err = |m: String| EvalError { message: m };
    match e {
        Expr::Id(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| err(format!("unknown identifier `{name}`"))),
        Expr::Empty => {
            // `0` is the empty relation; its universe is taken from `id`.
            match env.get("id") {
                Some(Value::Rel(id)) => {
                    Ok(Value::Rel(Arc::new(acquire_rel(pool, id.universe()))))
                }
                _ => Err(err("internal: `id` missing from base env".into())),
            }
        }
        Expr::Universe => match env.get("_UNIV") {
            Some(v) => Ok(v.clone()),
            _ => Err(err("internal: universe missing".into())),
        },
        Expr::App(name, args) => {
            let vals: Vec<Value> =
                args.iter().map(|a| eval_expr(a, env, pool)).collect::<Result<_, _>>()?;
            match (name.as_str(), vals.as_slice()) {
                ("domain", [Value::Rel(r)]) => Ok(Value::Set(Arc::new(r.domain()))),
                ("range", [Value::Rel(r)]) => Ok(Value::Set(Arc::new(r.range()))),
                _ => match env.get(name) {
                    Some(Value::Fun(f)) => {
                        if f.params.len() != args.len() {
                            return Err(err(format!(
                                "`{name}` expects {} argument(s), got {}",
                                f.params.len(),
                                args.len()
                            )));
                        }
                        let mut call_env = f.env.clone();
                        for (p, v) in f.params.iter().zip(vals) {
                            call_env.insert(p.clone(), v);
                        }
                        eval_expr(&f.body, &call_env, pool)
                    }
                    Some(_) => Err(err(format!("`{name}` is not a function"))),
                    None => Err(err(format!("unknown function `{name}`"))),
                },
            }
        }
        Expr::SetToId(inner) => match eval_expr(inner, env, pool)? {
            Value::Set(s) => {
                let mut r = acquire_rel(pool, s.universe());
                for i in s.iter() {
                    r.insert(i, i);
                }
                Ok(Value::Rel(Arc::new(r)))
            }
            _ => Err(err("`[…]` expects a set".into())),
        },
        Expr::Union(a, b) => binop(a, b, env, pool, "union", |x, y, pool| match (x, y) {
            (Value::Set(a), Value::Set(b)) => Some(Value::Set(Arc::new(a.union(&b)))),
            (Value::Rel(a), Value::Rel(b)) => {
                Some(Value::Rel(cow_rel(a, &b, pool, Relation::union_in_place)))
            }
            _ => None,
        }),
        Expr::Inter(a, b) => binop(a, b, env, pool, "intersection", |x, y, pool| match (x, y) {
            (Value::Set(a), Value::Set(b)) => Some(Value::Set(Arc::new(a.intersection(&b)))),
            (Value::Rel(a), Value::Rel(b)) => {
                Some(Value::Rel(cow_rel(a, &b, pool, Relation::intersection_in_place)))
            }
            _ => None,
        }),
        Expr::Diff(a, b) => binop(a, b, env, pool, "difference", |x, y, pool| match (x, y) {
            (Value::Set(a), Value::Set(b)) => Some(Value::Set(Arc::new(a.difference(&b)))),
            (Value::Rel(a), Value::Rel(b)) => {
                Some(Value::Rel(cow_rel(a, &b, pool, Relation::difference_in_place)))
            }
            _ => None,
        }),
        Expr::Seq(a, b) => binop(a, b, env, pool, "sequence", |x, y, pool| match (x, y) {
            (Value::Rel(a), Value::Rel(b)) => {
                let mut out = acquire_rel(pool, a.universe());
                a.seq_into(&b, &mut out);
                Some(Value::Rel(Arc::new(out)))
            }
            _ => None,
        }),
        Expr::Cartesian(a, b) => {
            binop(a, b, env, pool, "cartesian product", |x, y, pool| match (x, y) {
                (Value::Set(a), Value::Set(b)) => {
                    let mut out = acquire_rel(pool, a.universe());
                    for i in a.iter() {
                        for j in b.iter() {
                            out.insert(i, j);
                        }
                    }
                    Some(Value::Rel(Arc::new(out)))
                }
                _ => None,
            })
        }
        Expr::Complement(inner) => match eval_expr(inner, env, pool)? {
            Value::Set(s) => Ok(Value::Set(Arc::new(s.complement()))),
            Value::Rel(r) => Ok(Value::Rel(cow_unary(r, pool, Relation::complement_in_place))),
            Value::Fun(_) => Err(err("`~` applied to a function".into())),
        },
        Expr::Opt(inner) => match eval_expr(inner, env, pool)? {
            Value::Rel(r) => Ok(Value::Rel(cow_unary(r, pool, Relation::reflexive_in_place))),
            _ => Err(err("`?` expects a relation".into())),
        },
        Expr::Plus(inner) => match eval_expr(inner, env, pool)? {
            // `+` is the fixpoint workhorse: close in place when the
            // operand is an intermediate we uniquely own, and run the
            // closure against a pooled scratch row either way.
            Value::Rel(r) => Ok(Value::Rel(cow_unary(r, pool, |r| {
                with_scratch(pool, scratch_words(r.universe()), |row| {
                    r.transitive_close_with(row);
                });
            }))),
            _ => Err(err("`+` expects a relation".into())),
        },
        Expr::Star(inner) => match eval_expr(inner, env, pool)? {
            Value::Rel(r) => Ok(Value::Rel(cow_unary(r, pool, |r| {
                with_scratch(pool, scratch_words(r.universe()), |row| {
                    r.transitive_close_with(row);
                });
                r.reflexive_in_place();
            }))),
            _ => Err(err("`*` expects a relation".into())),
        },
        Expr::Inverse(inner) => match eval_expr(inner, env, pool)? {
            Value::Rel(r) => {
                let mut out = acquire_rel(pool, r.universe());
                r.inverse_into(&mut out);
                Ok(Value::Rel(Arc::new(out)))
            }
            _ => Err(err("`^-1` expects a relation".into())),
        },
    }
}

fn binop(
    a: &Expr,
    b: &Expr,
    env: &Env,
    pool: Pool<'_>,
    what: &str,
    f: impl Fn(Value, Value, Pool<'_>) -> Option<Value>,
) -> Result<Value, EvalError> {
    let va = eval_expr(a, env, pool)?;
    let vb = eval_expr(b, env, pool)?;
    f(va, vb, pool).ok_or_else(|| EvalError { message: format!("type error in {what}") })
}

/// The witness-independent identifiers herd-style models may assume:
/// base relations (`po`, dependency relations, `loc`, `int`, `ext`,
/// `id`, `crit`) and event sets (`R`, `W`, `M`, `F`, `IW`, `Acquire`,
/// `Release`, one set per fence kind). Everything here is a function of
/// the candidate's shared pre-execution, so a [`CatSession`] computes it
/// once per thread-outcome combination and reuses it across all the
/// `rf`/`co` witnesses — the `rf`/`co` entries themselves are added per
/// candidate by [`insert_witness`]. The derived identifiers (`loc`,
/// `int`, `ext`, `crit` and every event set) are read off the shared
/// facts layer rather than recomputed from scratch.
fn static_env(x: &Execution, facts: &ExecFacts<'_>) -> Result<Env, EvalError> {
    if x.events.iter().any(|e| e.srcu().is_some()) {
        return Err(EvalError {
            message: "SRCU events are not exposed to cat models; use the native LKMM".into(),
        });
    }
    let mut env = Env::new();
    let n = x.universe();
    let pool = facts.arena();
    let mut rel = |name: &str, r: &Relation| {
        let mut h = acquire_rel(pool, n);
        h.copy_from(r);
        env.insert(name.to_string(), Value::Rel(Arc::new(h)));
    };
    rel("po", &x.po);
    rel("addr", &x.addr);
    rel("data", &x.data);
    rel("ctrl", &x.ctrl);
    rel("rmw", &x.rmw);
    rel("loc", facts.loc_rel());
    rel("int", facts.int_rel());
    rel("ext", facts.ext_rel());
    rel("id", &Relation::identity(n));
    rel("crit", facts.crit());
    let mut set = |name: &str, s: EventSet| {
        env.insert(name.to_string(), Value::Set(Arc::new(s)));
    };
    set("R", facts.reads().clone());
    set("W", facts.writes().clone());
    set("M", facts.mem().clone());
    set("IW", facts.init_writes().clone());
    set(
        "F",
        x.events_where(|e| matches!(e.kind, lkmm_exec::EventKind::Fence(_))),
    );
    set("Acquire", facts.acquires().clone());
    set("Release", facts.releases().clone());
    set("Rmb", facts.fences(FenceKind::Rmb).clone());
    set("Wmb", facts.fences(FenceKind::Wmb).clone());
    set("Mb", facts.fences(FenceKind::Mb).clone());
    set("Rb-dep", facts.fences(FenceKind::RbDep).clone());
    set("Rcu-lock", facts.fences(FenceKind::RcuLock).clone());
    set("Rcu-unlock", facts.fences(FenceKind::RcuUnlock).clone());
    set("Sync", facts.fences(FenceKind::SyncRcu).clone());
    set("_UNIV", EventSet::full(n));
    Ok(env)
}

/// Add the execution witness (`rf`, `co`) to a base environment,
/// copying into pooled storage when a pool is attached.
fn insert_witness(env: &mut Env, x: &Execution, pool: Pool<'_>) {
    let n = x.universe();
    let mut rf = acquire_rel(pool, n);
    rf.copy_from(&x.rf);
    env.insert("rf".to_string(), Value::Rel(Arc::new(rf)));
    let mut co = acquire_rel(pool, n);
    co.copy_from(&x.co);
    env.insert("co".to_string(), Value::Rel(Arc::new(co)));
}

/// A stateful evaluation handle for checking many candidates of the same
/// litmus test: the witness-independent part of the base environment
/// ([`static_env`]) is cached and keyed on the identity of the shared
/// pre-execution (`Arc::ptr_eq` on `x.events`). Holding a clone of the
/// `Arc` keeps the allocation alive, so the pointer identity cannot be
/// recycled while the cache entry exists.
///
/// One session serves one thread; the parallel pipeline opens a session
/// per worker.
pub struct CatSession<'a> {
    model: &'a Model,
    cache: Option<(Arc<Vec<lkmm_exec::Event>>, Env)>,
    fuel: Option<Arc<StepFuel>>,
}

impl<'a> CatSession<'a> {
    /// A session evaluating `model`.
    pub fn new(model: &'a Model) -> Self {
        CatSession { model, cache: None, fuel: None }
    }

    /// Meter every subsequent evaluation against `fuel` (shared with the
    /// other workers of a governed check).
    pub fn set_fuel(&mut self, fuel: Arc<StepFuel>) {
        self.fuel = Some(fuel);
    }

    /// Evaluate all checks against one candidate execution, reusing the
    /// cached static environment when `x` comes from the same
    /// pre-execution as the previous candidate.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate`]; with fuel installed, additionally
    /// [`EvalError::fuel_exhausted`].
    pub fn evaluate(&mut self, x: &Execution) -> Result<CatOutcome, EvalError> {
        self.evaluate_with(x, &ExecFacts::new(x))
    }

    /// [`Self::evaluate`] against a pre-computed facts layer, so a cache
    /// miss fills the static environment from already-derived relations
    /// instead of recomputing them from the execution.
    pub fn evaluate_with(
        &mut self,
        x: &Execution,
        facts: &ExecFacts<'_>,
    ) -> Result<CatOutcome, EvalError> {
        let hit = self
            .cache
            .as_ref()
            .is_some_and(|(events, _)| Arc::ptr_eq(events, &x.events));
        if !hit {
            self.cache = Some((Arc::clone(&x.events), static_env(x, facts)?));
        }
        let mut env = self.cache.as_ref().expect("cache filled above").1.clone();
        insert_witness(&mut env, x, facts.arena());
        evaluate_with_env(self.model, x.universe(), env, self.fuel.as_deref(), facts.arena())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use lkmm_exec::enumerate::{enumerate, EnumOptions};
    use lkmm_litmus::library;

    fn execs(name: &str) -> (Vec<Execution>, lkmm_litmus::Test) {
        let t = library::by_name(name).unwrap().test();
        (enumerate(&t, &EnumOptions::default()).unwrap(), t)
    }

    fn sc_model() -> Model {
        parse("\"SC\"\nlet fr = rf^-1 ; co\nacyclic po | rf | co | fr as sc").unwrap()
    }

    #[test]
    fn sc_forbids_sb_weak_outcome() {
        let (execs, t) = execs("SB");
        let m = sc_model();
        for x in &execs {
            let out = evaluate(&m, x).unwrap();
            if x.satisfies_prop(&t.condition.prop) {
                assert_eq!(out.failed_check.as_deref(), Some("sc"));
            } else {
                assert!(out.allowed());
            }
        }
    }

    #[test]
    fn rec_fixpoint_converges() {
        // Transitive closure via recursion must equal the + operator.
        let m = parse("let rec tc = po | (tc ; tc)\nirreflexive tc \\ po+ as equal1\nirreflexive po+ \\ tc as equal2\nempty tc \\ po+ as equal3").unwrap();
        let (execs, _) = execs("MP");
        for x in &execs {
            let out = evaluate(&m, x).unwrap();
            assert!(out.allowed(), "{out:?}");
        }
    }

    #[test]
    fn flags_do_not_forbid() {
        let m = parse("flag ~empty po as has-po").unwrap();
        let (execs, _) = execs("SB");
        let out = evaluate(&m, &execs[0]).unwrap();
        assert!(out.allowed());
        assert_eq!(out.flags, vec!["has-po"]);
    }

    #[test]
    fn functions_apply() {
        let m = parse(
            "let rfe = rf & ext\nlet A-cumul(r) = rfe? ; r\nempty A-cumul(0) \\ rfe? as ok",
        )
        .unwrap();
        let (execs, _) = execs("MP");
        // A-cumul(0) = rfe? ; 0 = 0 ⊆ rfe?.
        let out = evaluate(&m, &execs[0]).unwrap();
        assert!(out.allowed(), "{out:?}");
    }

    #[test]
    fn type_errors_are_reported() {
        let m = parse("acyclic R as oops").unwrap();
        let (execs, _) = execs("SB");
        assert!(evaluate(&m, &execs[0]).is_err());
        let m2 = parse("let x = R ; W\nempty x as oops").unwrap();
        assert!(evaluate(&m2, &execs[0]).is_err());
        let m3 = parse("empty nonsense as oops").unwrap();
        assert!(evaluate(&m3, &execs[0]).is_err());
    }

    #[test]
    fn cartesian_and_brackets() {
        let m = parse(
            "let rr = po & (R * R)\nlet viaid = [R] ; po ; [R]\n\
             empty rr \\ viaid as same1\nempty viaid \\ rr as same2",
        )
        .unwrap();
        let (execs, _) = execs("MP");
        for x in &execs {
            assert!(evaluate(&m, x).unwrap().allowed());
        }
    }
}
