//! NOTE: this suite is gated behind the off-by-default `heavy-tests`
//! feature: its `proptest` dev-dependency cannot be fetched in offline
//! builds. Enable with `--features heavy-tests` after restoring the
//! `proptest` dev-dependency in this crate's Cargo.toml.
#![cfg(feature = "heavy-tests")]

//! Property: any cat expression prints to a string that re-parses to the
//! same AST (printer/parser inverse pair).

use lkmm_cat::ast::{Binding, Expr, Instr, Model};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("po".to_string()),
        Just("rf".to_string()),
        Just("co".to_string()),
        Just("po-loc".to_string()),
        Just("rcu-path".to_string()),
        Just("Rb-dep".to_string()),
        Just("x_1".to_string()),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_ident().prop_map(Expr::Id),
        Just(Expr::Empty),
        Just(Expr::Universe),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::union(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::seq(a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Inter(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Cartesian(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Complement(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Opt(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Plus(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Star(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Inverse(Box::new(a))),
            inner.clone().prop_map(|a| Expr::SetToId(Box::new(a))),
            (arb_ident(), proptest::collection::vec(inner, 1..3))
                .prop_map(|(n, args)| Expr::App(n, args)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_roundtrip(body in arb_expr()) {
        let model = Model {
            name: Some("roundtrip".into()),
            instrs: vec![Instr::Let {
                recursive: false,
                bindings: vec![Binding { name: "e".into(), params: vec![], body }],
            }],
        };
        let printed = model.to_string();
        let reparsed = lkmm_cat::parser::parse(&printed)
            .unwrap_or_else(|e| panic!("{printed}\n{e}"));
        prop_assert_eq!(model, reparsed, "{}", printed);
    }
}
