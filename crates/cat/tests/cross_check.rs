//! The interpreted LKMM cat file and the native Rust LKMM must agree on
//! every candidate execution of every library test — the "formal AND
//! executable" goal of the paper, enforced both ways.

use lkmm::Lkmm;
use lkmm_cat::linux_kernel_model;
use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
use lkmm_exec::ConsistencyModel;
use lkmm_litmus::library;

#[test]
fn cat_lkmm_agrees_with_native_lkmm_on_every_candidate() {
    let cat = linux_kernel_model();
    let native = Lkmm::new();
    let mut checked = 0usize;
    for pt in library::all() {
        let t = pt.test();
        for_each_execution(&t, &EnumOptions::default(), &mut |x| {
            let a = cat.allows(x);
            let b = native.allows(x);
            assert_eq!(
                a, b,
                "{}: cat={a} native={b} (native says {:?})\n{x}",
                pt.name,
                native.violated_axiom(x)
            );
            checked += 1;
        })
        .unwrap();
    }
    assert!(checked > 100, "only {checked} executions checked");
}

#[test]
fn cat_lkmm_matches_paper_verdicts() {
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library::Expect;
    let cat = linux_kernel_model();
    for pt in library::all() {
        let t = pt.test();
        let r = check_test(&cat, &t, &EnumOptions::default()).unwrap();
        let expected = match pt.lkmm {
            Expect::Allowed => Verdict::Allowed,
            Expect::Forbidden => Verdict::Forbidden,
        };
        assert_eq!(r.verdict, expected, "{}", pt.name);
    }
}

#[test]
fn raw_candidates_also_agree() {
    // Disable Scpv pruning: the models must agree on incoherent candidates
    // too (both reject them, via their scpv checks).
    let cat = linux_kernel_model();
    let native = Lkmm::new();
    let opts = EnumOptions { prune_scpv: false, ..Default::default() };
    for name in ["SB", "MP", "LB", "WRC+po-rel+rmb", "RCU-MP"] {
        let t = library::by_name(name).unwrap().test();
        for_each_execution(&t, &opts, &mut |x| {
            assert_eq!(cat.allows(x), native.allows(x), "{name}\n{x}");
        })
        .unwrap();
    }
}
