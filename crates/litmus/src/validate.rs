//! Semantic validation of litmus tests, beyond what the parser enforces.

use crate::ast::{AddrExpr, Expr, FenceKind, Stmt, Test};
use crate::cond::StateTerm;
use std::collections::BTreeSet;
use std::fmt;

/// A semantic problem in a litmus test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A register is read before any assignment on some path.
    UninitialisedRegister { thread: usize, reg: String },
    /// `rcu_read_lock`/`rcu_read_unlock` are unbalanced on some path.
    UnbalancedRcu { thread: usize },
    /// The condition mentions a thread that does not exist.
    UnknownThread { thread: usize },
    /// The condition mentions a register never assigned in its thread.
    UnknownRegister { thread: usize, reg: String },
    /// The condition mentions an unknown shared location.
    UnknownLocation(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UninitialisedRegister { thread, reg } => {
                write!(f, "P{thread}: register {reg} read before assignment")
            }
            ValidationError::UnbalancedRcu { thread } => {
                write!(f, "P{thread}: unbalanced RCU critical section")
            }
            ValidationError::UnknownThread { thread } => {
                write!(f, "condition references missing thread P{thread}")
            }
            ValidationError::UnknownRegister { thread, reg } => {
                write!(f, "condition references unassigned register {thread}:{reg}")
            }
            ValidationError::UnknownLocation(l) => {
                write!(f, "condition references unknown location {l}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a test; returns all problems found.
///
/// # Examples
///
/// ```
/// let t = lkmm_litmus::parse(
///     "C t\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (0:r9=1)",
/// ).unwrap();
/// let errors = lkmm_litmus::validate(&t);
/// assert_eq!(errors.len(), 1); // r9 is never assigned
/// ```
pub fn validate(test: &Test) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let mut assigned_per_thread: Vec<BTreeSet<String>> = Vec::new();
    for (tid, thread) in test.threads.iter().enumerate() {
        let mut assigned = BTreeSet::new();
        let mut depth = 0i64;
        check_block(&thread.body, tid, &mut assigned, &mut depth, &mut errors);
        if depth != 0 {
            errors.push(ValidationError::UnbalancedRcu { thread: tid });
        }
        assigned_per_thread.push(assigned);
    }
    let locations = test.shared_locations();
    for term in test.condition.prop.terms() {
        match term {
            StateTerm::Reg { thread, reg } => match assigned_per_thread.get(*thread) {
                None => errors.push(ValidationError::UnknownThread { thread: *thread }),
                Some(assigned) => {
                    if !assigned.contains(reg) {
                        errors.push(ValidationError::UnknownRegister {
                            thread: *thread,
                            reg: reg.clone(),
                        });
                    }
                }
            },
            StateTerm::Loc(name) => {
                if !locations.contains(name) {
                    errors.push(ValidationError::UnknownLocation(name.clone()));
                }
            }
        }
    }
    errors.sort_by_key(|e| format!("{e:?}"));
    errors.dedup();
    errors
}

fn check_expr(
    e: &Expr,
    tid: usize,
    assigned: &BTreeSet<String>,
    errors: &mut Vec<ValidationError>,
) {
    for reg in e.regs() {
        if !assigned.contains(reg) {
            errors.push(ValidationError::UninitialisedRegister {
                thread: tid,
                reg: reg.to_string(),
            });
        }
    }
}

fn check_addr(
    a: &AddrExpr,
    tid: usize,
    assigned: &BTreeSet<String>,
    errors: &mut Vec<ValidationError>,
) {
    if let AddrExpr::Reg(r) = a {
        if !assigned.contains(r) {
            errors.push(ValidationError::UninitialisedRegister {
                thread: tid,
                reg: r.clone(),
            });
        }
    }
}

fn check_block(
    body: &[Stmt],
    tid: usize,
    assigned: &mut BTreeSet<String>,
    depth: &mut i64,
    errors: &mut Vec<ValidationError>,
) {
    for stmt in body {
        match stmt {
            Stmt::ReadOnce { dst, addr }
            | Stmt::LoadAcquire { dst, addr }
            | Stmt::RcuDereference { dst, addr } => {
                check_addr(addr, tid, assigned, errors);
                assigned.insert(dst.clone());
            }
            Stmt::WriteOnce { addr, value }
            | Stmt::StoreRelease { addr, value }
            | Stmt::RcuAssignPointer { addr, value } => {
                check_addr(addr, tid, assigned, errors);
                check_expr(value, tid, assigned, errors);
            }
            Stmt::Xchg { dst, addr, value, .. } => {
                check_addr(addr, tid, assigned, errors);
                check_expr(value, tid, assigned, errors);
                assigned.insert(dst.clone());
            }
            Stmt::CmpXchg { dst, addr, expected, new, .. } => {
                check_addr(addr, tid, assigned, errors);
                check_expr(expected, tid, assigned, errors);
                check_expr(new, tid, assigned, errors);
                assigned.insert(dst.clone());
            }
            Stmt::Assign { dst, value } => {
                check_expr(value, tid, assigned, errors);
                assigned.insert(dst.clone());
            }
            Stmt::AtomicOp { dst, addr, operand, .. } => {
                check_addr(addr, tid, assigned, errors);
                check_expr(operand, tid, assigned, errors);
                if let Some((d, _)) = dst {
                    assigned.insert(d.clone());
                }
            }
            Stmt::Assume(cond) => check_expr(cond, tid, assigned, errors),
            Stmt::Fence(FenceKind::RcuLock) => *depth += 1,
            Stmt::Fence(FenceKind::RcuUnlock) => {
                *depth -= 1;
                if *depth < 0 {
                    errors.push(ValidationError::UnbalancedRcu { thread: tid });
                    *depth = 0;
                }
            }
            Stmt::Fence(_) | Stmt::SpinLock { .. } | Stmt::SpinUnlock { .. } => {}
            Stmt::SrcuReadLock { domain }
            | Stmt::SrcuReadUnlock { domain }
            | Stmt::SynchronizeSrcu { domain } => {
                check_addr(domain, tid, assigned, errors);
            }
            Stmt::If { cond, then_, else_ } => {
                check_expr(cond, tid, assigned, errors);
                // A register assigned on only one branch counts as
                // assigned afterwards only if assigned on both.
                let mut a1 = assigned.clone();
                let mut a2 = assigned.clone();
                check_block(then_, tid, &mut a1, depth, errors);
                check_block(else_, tid, &mut a2, depth, errors);
                *assigned = a1.intersection(&a2).cloned().collect();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn clean_tests_validate() {
        for pt in crate::library::all() {
            let errors = validate(&pt.test());
            assert!(errors.is_empty(), "{}: {errors:?}", pt.name);
        }
    }

    #[test]
    fn detects_uninitialised_register() {
        let t = parse(
            "C t\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, r0); }\nexists (x=0)",
        )
        .unwrap();
        assert!(matches!(
            validate(&t)[0],
            ValidationError::UninitialisedRegister { thread: 0, .. }
        ));
    }

    #[test]
    fn detects_condition_problems() {
        let t = parse(
            "C t\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\n\
             exists (3:r0=1 /\\ 0:r9=0 /\\ zz=1)",
        )
        .unwrap();
        let errors = validate(&t);
        assert!(errors.contains(&ValidationError::UnknownThread { thread: 3 }));
        assert!(errors
            .contains(&ValidationError::UnknownRegister { thread: 0, reg: "r9".into() }));
        assert!(errors.contains(&ValidationError::UnknownLocation("zz".into())));
    }

    #[test]
    fn detects_unbalanced_rcu() {
        let t = parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap();
        assert_eq!(validate(&t), vec![ValidationError::UnbalancedRcu { thread: 0 }]);
        let t2 = parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_unlock(); }\nexists (x=0)",
        )
        .unwrap();
        assert_eq!(validate(&t2), vec![ValidationError::UnbalancedRcu { thread: 0 }]);
    }

    #[test]
    fn branch_only_assignment_is_not_definite() {
        let t = parse(
            "C t\n{ x=0; y=0; }\nP0(int *x, int *y) { int r0; int r1; \
             r0 = READ_ONCE(*x); if (r0 == 1) { r1 = READ_ONCE(*y); } \
             WRITE_ONCE(*y, r1); }\nexists (x=0)",
        )
        .unwrap();
        assert!(matches!(
            validate(&t)[0],
            ValidationError::UninitialisedRegister { thread: 0, .. }
        ));
    }
}
