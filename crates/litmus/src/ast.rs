//! Abstract syntax of LK-dialect litmus programs.

use crate::cond::Condition;
use std::collections::BTreeMap;
use std::fmt;

/// A complete litmus test: shared-location initialisation, one body per
/// thread, and a final-state condition.
///
/// # Examples
///
/// ```
/// use lkmm_litmus::{Test, Thread, Stmt, AddrExpr, Expr, Condition};
///
/// let mut test = Test::new("store-only");
/// test.init_int("x", 0);
/// test.threads.push(Thread::new(vec![Stmt::WriteOnce {
///     addr: AddrExpr::Var("x".into()),
///     value: Expr::Const(1),
/// }]));
/// test.condition = Condition::exists_true();
/// assert_eq!(test.shared_locations(), vec!["x".to_string()]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Test {
    /// Test name, e.g. `"MP+wmb+rmb"`.
    pub name: String,
    /// Initial values of shared locations. Locations mentioned in the code
    /// but absent here default to `0`.
    pub init: BTreeMap<String, InitVal>,
    /// One entry per hardware thread, in `P0, P1, …` order.
    pub threads: Vec<Thread>,
    /// The final-state question.
    pub condition: Condition,
}

impl Test {
    /// An empty test with a trivially-true `exists` condition.
    pub fn new(name: impl Into<String>) -> Self {
        Test {
            name: name.into(),
            init: BTreeMap::new(),
            threads: Vec::new(),
            condition: Condition::exists_true(),
        }
    }

    /// Set the initial integer value of a shared location.
    pub fn init_int(&mut self, loc: impl Into<String>, v: i64) -> &mut Self {
        self.init.insert(loc.into(), InitVal::Int(v));
        self
    }

    /// Initialise a shared location to point at another shared location.
    pub fn init_ptr(&mut self, loc: impl Into<String>, target: impl Into<String>) -> &mut Self {
        self.init.insert(loc.into(), InitVal::Ptr(target.into()));
        self
    }

    /// All shared locations referenced by the test (init keys plus every
    /// location appearing in any thread body or pointer initialiser),
    /// sorted and deduplicated.
    pub fn shared_locations(&self) -> Vec<String> {
        let mut locs: Vec<String> = self.init.keys().cloned().collect();
        for v in self.init.values() {
            if let InitVal::Ptr(t) = v {
                locs.push(t.clone());
            }
        }
        for t in &self.threads {
            collect_locs_stmts(&t.body, &mut locs);
        }
        locs.sort();
        locs.dedup();
        locs
    }

    /// Render the test in the standard `C`-litmus file format, re-parseable
    /// by [`crate::parse`].
    pub fn to_litmus_string(&self) -> String {
        let mut out = format!("C {}\n\n{{\n", self.name);
        for (k, v) in &self.init {
            match v {
                InitVal::Int(i) => out.push_str(&format!("{k}={i};\n")),
                InitVal::Ptr(t) => out.push_str(&format!("{k}=&{t};\n")),
            }
        }
        out.push_str("}\n\n");
        let locs = self.shared_locations();
        let params =
            locs.iter().map(|l| format!("int *{l}")).collect::<Vec<_>>().join(", ");
        for (i, t) in self.threads.iter().enumerate() {
            out.push_str(&format!("P{i}({params})\n{{\n"));
            let mut regs: Vec<&str> = Vec::new();
            collect_regs_stmts(&t.body, &mut regs);
            regs.sort();
            regs.dedup();
            for r in regs {
                out.push_str(&format!("\tint {r};\n"));
            }
            for s in &t.body {
                fmt_stmt(s, 1, &mut out);
            }
            out.push_str("}\n\n");
        }
        out.push_str(&self.condition.to_string());
        out.push('\n');
        out
    }
}

/// Initial value of a shared location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InitVal {
    /// A plain integer.
    Int(i64),
    /// The address of another shared location (`p = &x;`).
    Ptr(String),
}

/// One thread of a litmus test.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Thread {
    /// Statements executed in program order.
    pub body: Vec<Stmt>,
}

impl Thread {
    /// A thread with the given body.
    pub fn new(body: Vec<Stmt>) -> Self {
        Thread { body }
    }
}

/// Memory-ordering variant of a read-modify-write primitive (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RmwOrder {
    /// `xchg_relaxed()`: `R[once], W[once]`.
    Relaxed,
    /// `xchg_acquire()`: `R[acquire], W[once]`.
    Acquire,
    /// `xchg_release()`: `R[once], W[release]`.
    Release,
    /// `xchg()`: `F[mb], R[once], W[once], F[mb]`.
    Full,
}

/// Fence statements (Tables 3 and 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// `smp_rmb()` — orders reads.
    Rmb,
    /// `smp_wmb()` — orders writes.
    Wmb,
    /// `smp_mb()` — full fence, "restores SC".
    Mb,
    /// `smp_read_barrier_depends()` — orders dependent reads (Alpha).
    RbDep,
    /// `rcu_read_lock()` — opens a read-side critical section.
    RcuLock,
    /// `rcu_read_unlock()` — closes a read-side critical section.
    RcuUnlock,
    /// `synchronize_rcu()` — a grace period.
    SyncRcu,
}

impl FenceKind {
    /// The litmus-source spelling of the primitive.
    pub fn as_primitive(self) -> &'static str {
        match self {
            FenceKind::Rmb => "smp_rmb",
            FenceKind::Wmb => "smp_wmb",
            FenceKind::Mb => "smp_mb",
            FenceKind::RbDep => "smp_read_barrier_depends",
            FenceKind::RcuLock => "rcu_read_lock",
            FenceKind::RcuUnlock => "rcu_read_unlock",
            FenceKind::SyncRcu => "synchronize_rcu",
        }
    }
}

/// Which value an arithmetic RMW returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicDst {
    /// `atomic_fetch_add()` returns the value before the update.
    Old,
    /// `atomic_add_return()` returns the value after the update.
    New,
}

/// Where a memory access goes: a named shared location or a pointer held in
/// a register (the source of *address dependencies*).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AddrExpr {
    /// A fixed shared location, e.g. `*x`.
    Var(String),
    /// Deref of a register holding a pointer, e.g. `*r1`.
    Reg(String),
}

/// Pure expressions over registers and constants (the source of *data
/// dependencies*).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Register read.
    Reg(String),
    /// Address-of a shared location: `&x`.
    LocRef(String),
    /// Binary arithmetic / comparison.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation `!e`.
    Not(Box<Expr>),
}

impl Expr {
    /// `a ⊕ b` convenience constructor.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Registers read by this expression (dependency sources).
    pub fn regs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_regs(&mut out);
        out
    }

    fn collect_regs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Const(_) | Expr::LocRef(_) => {}
            Expr::Reg(r) => out.push(r),
            Expr::Bin(_, a, b) => {
                a.collect_regs(out);
                b.collect_regs(out);
            }
            Expr::Not(e) => e.collect_regs(out),
        }
    }
}

/// Binary operators usable in litmus expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Xor,
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Statements of the LK litmus dialect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `dst = READ_ONCE(*addr);` → `R[once]`.
    ReadOnce { dst: String, addr: AddrExpr },
    /// `WRITE_ONCE(*addr, value);` → `W[once]`.
    WriteOnce { addr: AddrExpr, value: Expr },
    /// `dst = smp_load_acquire(addr);` → `R[acquire]`.
    LoadAcquire { dst: String, addr: AddrExpr },
    /// `smp_store_release(addr, value);` → `W[release]`.
    StoreRelease { addr: AddrExpr, value: Expr },
    /// `dst = rcu_dereference(*addr);` → `R[once], F[rb-dep]` (Table 4).
    RcuDereference { dst: String, addr: AddrExpr },
    /// `rcu_assign_pointer(*addr, value);` → `W[release]` (Table 4).
    RcuAssignPointer { addr: AddrExpr, value: Expr },
    /// A fence primitive.
    Fence(FenceKind),
    /// `dst = xchg*(addr, value);` — read-modify-write storing `value`.
    Xchg { order: RmwOrder, dst: String, addr: AddrExpr, value: Expr },
    /// `dst = cmpxchg*(addr, expected, new);` — conditional RMW; `dst`
    /// receives the old value; the write happens only when it equals
    /// `expected`.
    CmpXchg { order: RmwOrder, dst: String, addr: AddrExpr, expected: Expr, new: Expr },
    /// Arithmetic read-modify-write (the kernel's `atomic_add_return`
    /// family, \[69\]): reads the old value, writes `old ⊕ operand`, and
    /// optionally returns the old (`fetch`) or new (`return`) value.
    /// Like `xchg`, the `*_return`/`*_fetch` forms without a suffix are
    /// fully ordered; void `atomic_add`-style ops are always relaxed.
    AtomicOp {
        order: RmwOrder,
        /// Receiving register and whether it takes the old or new value;
        /// `None` for the void forms (`atomic_add(i, v)`).
        dst: Option<(String, AtomicDst)>,
        addr: AddrExpr,
        op: BinOp,
        operand: Expr,
    },
    /// Register-only computation `dst = value;`.
    Assign { dst: String, value: Expr },
    /// `if (cond) { then_ } else { else_ }` — reads feeding `cond` acquire
    /// control dependencies to the events inside both branches.
    If { cond: Expr, then_: Vec<Stmt>, else_: Vec<Stmt> },
    /// `__assume(cond);` — constrains enumeration to executions where
    /// `cond` holds at this point; oracle branches violating it are
    /// discarded as unrealisable. Used to model loops that run until a
    /// condition flips (e.g. the Figure 15 grace-period wait loops): the
    /// modelled iteration is the final one, whose exit condition holds.
    Assume(Expr),
    /// `srcu_read_lock(ss);` — opens a read-side critical section of the
    /// SRCU domain named by `domain` (sleepable RCU; grace periods of
    /// different domains are independent).
    SrcuReadLock { domain: AddrExpr },
    /// `srcu_read_unlock(ss);` — closes the innermost section of the
    /// domain.
    SrcuReadUnlock { domain: AddrExpr },
    /// `synchronize_srcu(ss);` — a grace period of the domain.
    SynchronizeSrcu { domain: AddrExpr },
    /// `spin_lock(addr);` — emulated as an acquire-RMW on the lock word
    /// (paper §7).
    SpinLock { addr: AddrExpr },
    /// `spin_unlock(addr);` — emulated as a store-release of 0 (paper §7).
    SpinUnlock { addr: AddrExpr },
}

pub(crate) fn collect_locs_stmts(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        let mut addr = |a: &AddrExpr| {
            if let AddrExpr::Var(v) = a {
                out.push(v.clone());
            }
        };
        match s {
            Stmt::ReadOnce { addr: a, .. }
            | Stmt::LoadAcquire { addr: a, .. }
            | Stmt::RcuDereference { addr: a, .. }
            | Stmt::SrcuReadLock { domain: a }
            | Stmt::SrcuReadUnlock { domain: a }
            | Stmt::SynchronizeSrcu { domain: a }
            | Stmt::SpinLock { addr: a }
            | Stmt::SpinUnlock { addr: a } => addr(a),
            Stmt::WriteOnce { addr: a, value }
            | Stmt::StoreRelease { addr: a, value }
            | Stmt::RcuAssignPointer { addr: a, value }
            | Stmt::Xchg { addr: a, value, .. } => {
                addr(a);
                collect_locs_expr(value, out);
            }
            Stmt::CmpXchg { addr: a, expected, new, .. } => {
                addr(a);
                collect_locs_expr(expected, out);
                collect_locs_expr(new, out);
            }
            Stmt::AtomicOp { addr: a, operand, .. } => {
                addr(a);
                collect_locs_expr(operand, out);
            }
            Stmt::Assign { value, .. } | Stmt::Assume(value) => collect_locs_expr(value, out),
            Stmt::Fence(_) => {}
            Stmt::If { cond, then_, else_ } => {
                collect_locs_expr(cond, out);
                collect_locs_stmts(then_, out);
                collect_locs_stmts(else_, out);
            }
        }
    }
}

fn collect_locs_expr(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::LocRef(l) => out.push(l.clone()),
        Expr::Bin(_, a, b) => {
            collect_locs_expr(a, out);
            collect_locs_expr(b, out);
        }
        Expr::Not(e) => collect_locs_expr(e, out),
        Expr::Const(_) | Expr::Reg(_) => {}
    }
}

pub(crate) fn collect_regs_stmts<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a str>) {
    for s in stmts {
        match s {
            Stmt::ReadOnce { dst, addr }
            | Stmt::LoadAcquire { dst, addr }
            | Stmt::RcuDereference { dst, addr } => {
                out.push(dst);
                if let AddrExpr::Reg(r) = addr {
                    out.push(r);
                }
            }
            Stmt::WriteOnce { addr, value }
            | Stmt::StoreRelease { addr, value }
            | Stmt::RcuAssignPointer { addr, value } => {
                if let AddrExpr::Reg(r) = addr {
                    out.push(r);
                }
                out.extend(value.regs());
            }
            Stmt::Xchg { dst, addr, value, .. } => {
                out.push(dst);
                if let AddrExpr::Reg(r) = addr {
                    out.push(r);
                }
                out.extend(value.regs());
            }
            Stmt::CmpXchg { dst, addr, expected, new, .. } => {
                out.push(dst);
                if let AddrExpr::Reg(r) = addr {
                    out.push(r);
                }
                out.extend(expected.regs());
                out.extend(new.regs());
            }
            Stmt::AtomicOp { dst, addr, operand, .. } => {
                if let Some((d, _)) = dst {
                    out.push(d);
                }
                if let AddrExpr::Reg(r) = addr {
                    out.push(r);
                }
                out.extend(operand.regs());
            }
            Stmt::Assign { dst, value } => {
                out.push(dst);
                out.extend(value.regs());
            }
            Stmt::Assume(value) => out.extend(value.regs()),
            Stmt::Fence(_)
            | Stmt::SpinLock { .. }
            | Stmt::SpinUnlock { .. }
            | Stmt::SrcuReadLock { .. }
            | Stmt::SrcuReadUnlock { .. }
            | Stmt::SynchronizeSrcu { .. } => {}
            Stmt::If { cond, then_, else_ } => {
                out.extend(cond.regs());
                collect_regs_stmts(then_, out);
                collect_regs_stmts(else_, out);
            }
        }
    }
}

fn fmt_addr(a: &AddrExpr) -> String {
    match a {
        AddrExpr::Var(v) => format!("*{v}"),
        AddrExpr::Reg(r) => format!("*{r}"),
    }
}

fn fmt_expr(e: &Expr) -> String {
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Reg(r) => r.clone(),
        Expr::LocRef(l) => format!("&{l}"),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Xor => "^",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
            };
            format!("({} {} {})", fmt_expr(a), sym, fmt_expr(b))
        }
        Expr::Not(e) => format!("!({})", fmt_expr(e)),
    }
}

pub(crate) fn fmt_stmt(s: &Stmt, depth: usize, out: &mut String) {
    let tab = "\t".repeat(depth);
    match s {
        Stmt::ReadOnce { dst, addr } => {
            out.push_str(&format!("{tab}{dst} = READ_ONCE({});\n", fmt_addr(addr)));
        }
        Stmt::WriteOnce { addr, value } => {
            out.push_str(&format!("{tab}WRITE_ONCE({}, {});\n", fmt_addr(addr), fmt_expr(value)));
        }
        Stmt::LoadAcquire { dst, addr } => {
            out.push_str(&format!("{tab}{dst} = smp_load_acquire({});\n", fmt_addr(addr)));
        }
        Stmt::StoreRelease { addr, value } => {
            out.push_str(&format!(
                "{tab}smp_store_release({}, {});\n",
                fmt_addr(addr),
                fmt_expr(value)
            ));
        }
        Stmt::RcuDereference { dst, addr } => {
            out.push_str(&format!("{tab}{dst} = rcu_dereference({});\n", fmt_addr(addr)));
        }
        Stmt::RcuAssignPointer { addr, value } => {
            out.push_str(&format!(
                "{tab}rcu_assign_pointer({}, {});\n",
                fmt_addr(addr),
                fmt_expr(value)
            ));
        }
        Stmt::Fence(k) => out.push_str(&format!("{tab}{}();\n", k.as_primitive())),
        Stmt::Xchg { order, dst, addr, value } => {
            let f = match order {
                RmwOrder::Relaxed => "xchg_relaxed",
                RmwOrder::Acquire => "xchg_acquire",
                RmwOrder::Release => "xchg_release",
                RmwOrder::Full => "xchg",
            };
            out.push_str(&format!(
                "{tab}{dst} = {f}({}, {});\n",
                fmt_addr(addr),
                fmt_expr(value)
            ));
        }
        Stmt::CmpXchg { order, dst, addr, expected, new } => {
            let f = match order {
                RmwOrder::Relaxed => "cmpxchg_relaxed",
                RmwOrder::Acquire => "cmpxchg_acquire",
                RmwOrder::Release => "cmpxchg_release",
                RmwOrder::Full => "cmpxchg",
            };
            out.push_str(&format!(
                "{tab}{dst} = {f}({}, {}, {});\n",
                fmt_addr(addr),
                fmt_expr(expected),
                fmt_expr(new)
            ));
        }
        Stmt::AtomicOp { order, dst, addr, op, operand } => {
            let opname = match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::And => "and",
                BinOp::Or => "or",
                BinOp::Xor => "xor",
                _ => "add",
            };
            let suffix = match order {
                RmwOrder::Relaxed => "_relaxed",
                RmwOrder::Acquire => "_acquire",
                RmwOrder::Release => "_release",
                RmwOrder::Full => "",
            };
            match dst {
                None => out.push_str(&format!(
                    "{tab}atomic_{opname}({}, {});\n",
                    fmt_expr(operand),
                    fmt_addr(addr)
                )),
                Some((d, AtomicDst::New)) => out.push_str(&format!(
                    "{tab}{d} = atomic_{opname}_return{suffix}({}, {});\n",
                    fmt_expr(operand),
                    fmt_addr(addr)
                )),
                Some((d, AtomicDst::Old)) => out.push_str(&format!(
                    "{tab}{d} = atomic_fetch_{opname}{suffix}({}, {});\n",
                    fmt_expr(operand),
                    fmt_addr(addr)
                )),
            }
        }
        Stmt::Assign { dst, value } => {
            out.push_str(&format!("{tab}{dst} = {};\n", fmt_expr(value)));
        }
        Stmt::Assume(cond) => {
            out.push_str(&format!("{tab}__assume({});\n", fmt_expr(cond)));
        }
        Stmt::If { cond, then_, else_ } => {
            out.push_str(&format!("{tab}if ({}) {{\n", fmt_expr(cond)));
            for s in then_ {
                fmt_stmt(s, depth + 1, out);
            }
            if else_.is_empty() {
                out.push_str(&format!("{tab}}}\n"));
            } else {
                out.push_str(&format!("{tab}}} else {{\n"));
                for s in else_ {
                    fmt_stmt(s, depth + 1, out);
                }
                out.push_str(&format!("{tab}}}\n"));
            }
        }
        Stmt::SrcuReadLock { domain } => {
            out.push_str(&format!("{tab}srcu_read_lock({});\n", fmt_addr(domain)));
        }
        Stmt::SrcuReadUnlock { domain } => {
            out.push_str(&format!("{tab}srcu_read_unlock({});\n", fmt_addr(domain)));
        }
        Stmt::SynchronizeSrcu { domain } => {
            out.push_str(&format!("{tab}synchronize_srcu({});\n", fmt_addr(domain)));
        }
        Stmt::SpinLock { addr } => {
            out.push_str(&format!("{tab}spin_lock({});\n", fmt_addr(addr)));
        }
        Stmt::SpinUnlock { addr } => {
            out.push_str(&format!("{tab}spin_unlock({});\n", fmt_addr(addr)));
        }
    }
}

impl fmt::Display for Test {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_litmus_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locations_gathers_init_body_and_ptr_targets() {
        let mut t = Test::new("t");
        t.init_ptr("p", "x");
        t.threads.push(Thread::new(vec![Stmt::WriteOnce {
            addr: AddrExpr::Var("y".into()),
            value: Expr::Const(1),
        }]));
        assert_eq!(t.shared_locations(), vec!["p", "x", "y"]);
    }

    #[test]
    fn expr_regs_collects_nested() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Reg("r1".into()),
            Expr::Not(Box::new(Expr::Reg("r2".into()))),
        );
        assert_eq!(e.regs(), vec!["r1", "r2"]);
    }

    #[test]
    fn fence_primitive_names() {
        assert_eq!(FenceKind::Mb.as_primitive(), "smp_mb");
        assert_eq!(FenceKind::SyncRcu.as_primitive(), "synchronize_rcu");
    }
}
