//! Final-state conditions: `exists`, `~exists` and `forall` clauses.

use std::fmt;

/// Quantifier of a final condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `exists (…)` — is there a consistent execution whose final state
    /// satisfies the proposition?
    Exists,
    /// `~exists (…)` — the negation of [`Quantifier::Exists`].
    NotExists,
    /// `forall (…)` — do *all* consistent executions satisfy it?
    Forall,
}

/// A final-state condition: a quantifier over a proposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Condition {
    pub quantifier: Quantifier,
    pub prop: Prop,
}

impl Condition {
    /// `exists (true)` — satisfied by any execution.
    pub fn exists_true() -> Self {
        Condition { quantifier: Quantifier::Exists, prop: Prop::True }
    }

    /// `exists (prop)`.
    pub fn exists(prop: Prop) -> Self {
        Condition { quantifier: Quantifier::Exists, prop }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = match self.quantifier {
            Quantifier::Exists => "exists",
            Quantifier::NotExists => "~exists",
            Quantifier::Forall => "forall",
        };
        write!(f, "{q} ({})", self.prop)
    }
}

/// One observable of the final state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StateTerm {
    /// Final value of thread-local register, written `0:r1`.
    Reg { thread: usize, reg: String },
    /// Final value of a shared location, written `x`.
    Loc(String),
}

impl fmt::Display for StateTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateTerm::Reg { thread, reg } => write!(f, "{thread}:{reg}"),
            StateTerm::Loc(l) => write!(f, "{l}"),
        }
    }
}

/// Value a [`StateTerm`] may be compared against.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CondVal {
    /// Plain integer.
    Int(i64),
    /// Address of a shared location (for pointer-valued registers).
    LocRef(String),
}

impl fmt::Display for CondVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondVal::Int(i) => write!(f, "{i}"),
            CondVal::LocRef(l) => write!(f, "&{l}"),
        }
    }
}

/// Propositions over the final state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prop {
    /// Always satisfied.
    True,
    /// `term = value`.
    Eq(StateTerm, CondVal),
    /// `p /\ q`.
    And(Box<Prop>, Box<Prop>),
    /// `p \/ q`.
    Or(Box<Prop>, Box<Prop>),
    /// `not (p)`.
    Not(Box<Prop>),
}

impl Prop {
    /// `term = int` convenience constructor.
    pub fn eq_int(term: StateTerm, v: i64) -> Prop {
        Prop::Eq(term, CondVal::Int(v))
    }

    /// Conjunction of a list of propositions (`True` when empty).
    pub fn all(props: impl IntoIterator<Item = Prop>) -> Prop {
        let mut it = props.into_iter();
        match it.next() {
            None => Prop::True,
            Some(first) => it.fold(first, |acc, p| Prop::And(Box::new(acc), Box::new(p))),
        }
    }

    /// Evaluate against a final state oracle.
    ///
    /// `lookup` maps a [`StateTerm`] to its final value; returning `None`
    /// makes any comparison involving that term false.
    pub fn eval(&self, lookup: &dyn Fn(&StateTerm) -> Option<CondVal>) -> bool {
        match self {
            Prop::True => true,
            Prop::Eq(t, v) => lookup(t).as_ref() == Some(v),
            Prop::And(a, b) => a.eval(lookup) && b.eval(lookup),
            Prop::Or(a, b) => a.eval(lookup) || b.eval(lookup),
            Prop::Not(p) => !p.eval(lookup),
        }
    }

    /// All state terms mentioned by the proposition.
    pub fn terms(&self) -> Vec<&StateTerm> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a StateTerm>) {
        match self {
            Prop::True => {}
            Prop::Eq(t, _) => out.push(t),
            Prop::And(a, b) | Prop::Or(a, b) => {
                a.collect_terms(out);
                b.collect_terms(out);
            }
            Prop::Not(p) => p.collect_terms(out),
        }
    }
}

impl fmt::Display for Prop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prop::True => write!(f, "true"),
            Prop::Eq(t, v) => write!(f, "{t}={v}"),
            Prop::And(a, b) => write!(f, "{a} /\\ {b}"),
            Prop::Or(a, b) => write!(f, "({a} \\/ {b})"),
            Prop::Not(p) => write!(f, "not ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(t: usize, r: &str) -> StateTerm {
        StateTerm::Reg { thread: t, reg: r.to_string() }
    }

    #[test]
    fn eval_conjunction() {
        let p = Prop::all([Prop::eq_int(term(0, "r1"), 1), Prop::eq_int(term(1, "r2"), 0)]);
        let lookup = |t: &StateTerm| match t {
            StateTerm::Reg { thread: 0, .. } => Some(CondVal::Int(1)),
            StateTerm::Reg { thread: 1, .. } => Some(CondVal::Int(0)),
            _ => None,
        };
        assert!(p.eval(&lookup));
        let bad = |_: &StateTerm| Some(CondVal::Int(7));
        assert!(!p.eval(&bad));
    }

    #[test]
    fn eval_not_and_or() {
        let p = Prop::Or(
            Box::new(Prop::Not(Box::new(Prop::True))),
            Box::new(Prop::eq_int(StateTerm::Loc("x".into()), 2)),
        );
        assert!(p.eval(&|_| Some(CondVal::Int(2))));
        assert!(!p.eval(&|_| Some(CondVal::Int(3))));
    }

    #[test]
    fn display_round_trippable_shape() {
        let c = Condition {
            quantifier: Quantifier::NotExists,
            prop: Prop::all([
                Prop::eq_int(term(1, "r0"), 1),
                Prop::Eq(StateTerm::Loc("p".into()), CondVal::LocRef("x".into())),
            ]),
        };
        assert_eq!(c.to_string(), "~exists (1:r0=1 /\\ p=&x)");
    }

    #[test]
    fn terms_collects_all() {
        let p = Prop::all([Prop::eq_int(term(0, "a"), 1), Prop::eq_int(term(1, "b"), 2)]);
        assert_eq!(p.terms().len(), 2);
    }
}
