//! The paper's named litmus tests (every Table 5 row and every figure).
//!
//! Each entry carries the litmus source plus the paper's expected verdicts,
//! so model implementations can be validated table-driven. Figure 7's
//! PeterZ test is reconstructed from the paper's §3.2.3/§3.2.5 description
//! (b from-reads c, release d read by e, f from-reads a, strong fences a→b
// and e→f) — the W+RWC shape.

use crate::ast::Test;
use crate::parser::parse;

/// A verdict expectation from the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Expect {
    /// The model allows the condition to be observed.
    Allowed,
    /// The model forbids it.
    Forbidden,
}

/// A named test together with the paper's expected verdicts.
#[derive(Clone, Debug)]
pub struct PaperTest {
    /// Test name as it appears in the paper.
    pub name: &'static str,
    /// Litmus source (LK C dialect).
    pub source: &'static str,
    /// Expected LKMM verdict (the "Model" column of Table 5).
    pub lkmm: Expect,
    /// Expected verdict under the original C11 model with the \[68\] mapping;
    /// `None` for RCU tests (C11 has no RCU — "–" in Table 5).
    pub c11: Option<Expect>,
    /// Whether this row appears in Table 5.
    pub in_table5: bool,
    /// Figure number in the paper, if the test is a figure.
    pub figure: Option<&'static str>,
}

impl PaperTest {
    /// Parse the embedded source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to parse (a bug in this crate,
    /// covered by tests).
    pub fn test(&self) -> Test {
        parse(self.source).unwrap_or_else(|e| panic!("library test {}: {e}", self.name))
    }
}

/// Look a paper test up by name.
pub fn by_name(name: &str) -> Option<&'static PaperTest> {
    ALL.iter().find(|t| t.name == name)
}

/// All paper tests, in Table 5 order followed by the non-table figures.
pub fn all() -> &'static [PaperTest] {
    ALL
}

/// Only the Table 5 rows, in the paper's row order.
pub fn table5() -> impl Iterator<Item = &'static PaperTest> {
    ALL.iter().filter(|t| t.in_table5)
}

static ALL: &[PaperTest] = &[
    PaperTest {
        name: "LB",
        source: r#"
C LB
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\ 1:r0=1)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: None,
    },
    PaperTest {
        name: "LB+ctrl+mb",
        source: r#"
C LB+ctrl+mb
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*x);
    if (r0 == 1) {
        WRITE_ONCE(*y, 1);
    }
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*y);
    smp_mb();
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\ 1:r0=1)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: Some("4"),
    },
    PaperTest {
        name: "WRC",
        source: r#"
C WRC
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1);
}
P2(int *x, int *y)
{
    int r1;
    int r2;
    r1 = READ_ONCE(*y);
    r2 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 2:r1=1 /\ 2:r2=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: None,
    },
    PaperTest {
        name: "WRC+wmb+acq",
        source: r#"
C WRC+wmb+acq
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*x);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P2(int *x, int *y)
{
    int r1;
    int r2;
    r1 = smp_load_acquire(y);
    r2 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 2:r1=1 /\ 2:r2=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Forbidden),
        in_table5: true,
        figure: Some("14"),
    },
    PaperTest {
        name: "WRC+po-rel+rmb",
        source: r#"
C WRC+po-rel+rmb
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*x);
    smp_store_release(y, 1);
}
P2(int *x, int *y)
{
    int r1;
    int r2;
    r1 = READ_ONCE(*y);
    smp_rmb();
    r2 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 2:r1=1 /\ 2:r2=0)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Forbidden),
        in_table5: true,
        figure: Some("5"),
    },
    PaperTest {
        name: "SB",
        source: r#"
C SB
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0;
    WRITE_ONCE(*x, 1);
    r0 = READ_ONCE(*y);
}
P1(int *x, int *y)
{
    int r0;
    WRITE_ONCE(*y, 1);
    r0 = READ_ONCE(*x);
}
exists (0:r0=0 /\ 1:r0=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: None,
    },
    PaperTest {
        name: "SB+mbs",
        source: r#"
C SB+mbs
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0;
    WRITE_ONCE(*x, 1);
    smp_mb();
    r0 = READ_ONCE(*y);
}
P1(int *x, int *y)
{
    int r0;
    WRITE_ONCE(*y, 1);
    smp_mb();
    r0 = READ_ONCE(*x);
}
exists (0:r0=0 /\ 1:r0=0)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Forbidden),
        in_table5: true,
        figure: Some("6"),
    },
    PaperTest {
        name: "MP",
        source: r#"
C MP
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0;
    int r1;
    r0 = READ_ONCE(*y);
    r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 1:r1=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: None,
    },
    PaperTest {
        name: "MP+wmb+rmb",
        source: r#"
C MP+wmb+rmb
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r1;
    int r2;
    r1 = READ_ONCE(*y);
    smp_rmb();
    r2 = READ_ONCE(*x);
}
exists (1:r1=1 /\ 1:r2=0)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Forbidden),
        in_table5: true,
        figure: Some("2"),
    },
    PaperTest {
        name: "PeterZ-No-Synchro",
        source: r#"
C PeterZ-No-Synchro
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    int r0;
    WRITE_ONCE(*x, 1);
    r0 = READ_ONCE(*y);
}
P1(int *y, int *z)
{
    WRITE_ONCE(*y, 1);
    WRITE_ONCE(*z, 1);
}
P2(int *x, int *z)
{
    int r1;
    int r2;
    r1 = READ_ONCE(*z);
    r2 = READ_ONCE(*x);
}
exists (0:r0=0 /\ 2:r1=1 /\ 2:r2=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: None,
    },
    PaperTest {
        name: "PeterZ",
        source: r#"
C PeterZ
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    int r0;
    WRITE_ONCE(*x, 1);
    smp_mb();
    r0 = READ_ONCE(*y);
}
P1(int *y, int *z)
{
    WRITE_ONCE(*y, 1);
    smp_store_release(z, 1);
}
P2(int *x, int *z)
{
    int r1;
    int r2;
    r1 = READ_ONCE(*z);
    smp_mb();
    r2 = READ_ONCE(*x);
}
exists (0:r0=0 /\ 2:r1=1 /\ 2:r2=0)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: Some("7"),
    },
    PaperTest {
        name: "RCU-deferred-free",
        source: r#"
C RCU-deferred-free
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r1;
    int r2;
    rcu_read_lock();
    r1 = READ_ONCE(*y);
    r2 = READ_ONCE(*x);
    rcu_read_unlock();
}
P1(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    synchronize_rcu();
    WRITE_ONCE(*y, 1);
}
exists (0:r1=1 /\ 0:r2=0)
"#,
        lkmm: Expect::Forbidden,
        c11: None,
        in_table5: true,
        figure: Some("11"),
    },
    PaperTest {
        name: "RCU-MP",
        source: r#"
C RCU-MP
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r1;
    int r2;
    rcu_read_lock();
    r1 = READ_ONCE(*x);
    r2 = READ_ONCE(*y);
    rcu_read_unlock();
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    synchronize_rcu();
    WRITE_ONCE(*x, 1);
}
exists (0:r1=1 /\ 0:r2=0)
"#,
        lkmm: Expect::Forbidden,
        c11: None,
        in_table5: true,
        figure: Some("10"),
    },
    PaperTest {
        name: "RWC",
        source: r#"
C RWC
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0;
    int r1;
    r0 = READ_ONCE(*x);
    r1 = READ_ONCE(*y);
}
P2(int *x, int *y)
{
    int r2;
    WRITE_ONCE(*y, 1);
    r2 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 1:r1=0 /\ 2:r2=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: None,
    },
    PaperTest {
        name: "RWC+mbs",
        source: r#"
C RWC+mbs
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0;
    int r1;
    r0 = READ_ONCE(*x);
    smp_mb();
    r1 = READ_ONCE(*y);
}
P2(int *x, int *y)
{
    int r2;
    WRITE_ONCE(*y, 1);
    smp_mb();
    r2 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 1:r1=0 /\ 2:r2=0)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Allowed),
        in_table5: true,
        figure: Some("13"),
    },
    // ----- Figures that are not Table 5 rows, plus figure siblings -----
    PaperTest {
        name: "LB+ctrl",
        source: r#"
C LB+ctrl
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*x);
    if (r0 == 1) {
        WRITE_ONCE(*y, 1);
    }
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\ 1:r0=1)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "LB+mb",
        source: r#"
C LB+mb
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*y);
    smp_mb();
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\ 1:r0=1)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "MP+wmb+addr-acq",
        source: r#"
C MP+wmb+addr-acq
{ x=0; y=&z; z=0; w=0; }
P0(int *x, int **y, int *w)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, &w);
}
P1(int *x, int **y)
{
    int *r1;
    int r2;
    int r3;
    r1 = READ_ONCE(*y);
    r2 = smp_load_acquire(r1);
    r3 = READ_ONCE(*x);
}
exists (1:r1=&w /\ 1:r3=0)
"#,
        lkmm: Expect::Forbidden,
        c11: None,
        in_table5: false,
        figure: Some("9"),
    },
    PaperTest {
        name: "S",
        source: r#"
C S
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 2);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, 1);
}
exists (1:r0=1 /\ x=2)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "S+wmb+data",
        source: r#"
C S+wmb+data
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 2);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, r0 ^ r0 ^ 1);
}
exists (1:r0=1 /\ x=2)
"#,
        lkmm: Expect::Forbidden,
        c11: None,
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "R",
        source: r#"
C R
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0;
    WRITE_ONCE(*y, 2);
    r0 = READ_ONCE(*x);
}
exists (y=2 /\ 1:r0=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "R+mbs",
        source: r#"
C R+mbs
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0;
    WRITE_ONCE(*y, 2);
    smp_mb();
    r0 = READ_ONCE(*x);
}
exists (y=2 /\ 1:r0=0)
"#,
        lkmm: Expect::Forbidden,
        c11: None,
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "2+2W",
        source: r#"
C 2+2W
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 2);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    WRITE_ONCE(*x, 2);
}
exists (x=1 /\ y=1)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "LB+datas",
        source: r#"
C LB+datas
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1 + (r0 ^ r0));
}
P1(int *x, int *y)
{
    int r0;
    r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, 1 + (r0 ^ r0));
}
exists (0:r0=1 /\ 1:r0=1)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "MP+po-rel+acq",
        source: r#"
C MP+po-rel+acq
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_store_release(y, 1);
}
P1(int *x, int *y)
{
    int r0;
    int r1;
    r0 = smp_load_acquire(y);
    r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 1:r1=0)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Forbidden),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "SB+rel+acq",
        source: r#"
C SB+rel+acq
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0;
    smp_store_release(x, 1);
    r0 = smp_load_acquire(y);
}
P1(int *x, int *y)
{
    int r0;
    smp_store_release(y, 1);
    r0 = smp_load_acquire(x);
}
exists (0:r0=0 /\ 1:r0=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "ISA2",
        source: r#"
C ISA2
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 1);
}
P1(int *y, int *z)
{
    int r0;
    r0 = READ_ONCE(*y);
    WRITE_ONCE(*z, 1);
}
P2(int *x, int *z)
{
    int r1;
    int r2;
    r1 = READ_ONCE(*z);
    r2 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 2:r1=1 /\ 2:r2=0)
"#,
        lkmm: Expect::Allowed,
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "ISA2+po-rel+po-rel+acq",
        source: r#"
C ISA2+po-rel+po-rel+acq
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_store_release(y, 1);
}
P1(int *y, int *z)
{
    int r0;
    r0 = READ_ONCE(*y);
    smp_store_release(z, 1);
}
P2(int *x, int *z)
{
    int r1;
    int r2;
    r1 = smp_load_acquire(z);
    r2 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 2:r1=1 /\ 2:r2=0)
"#,
        lkmm: Expect::Forbidden,
        // C11's release chain breaks at P1's *relaxed* read (no acquire,
        // no acquire fence): no synchronises-with from P0, so C11 allows
        // what the LKMM's A-cumulativity forbids.
        c11: Some(Expect::Allowed),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "Z6.0+mb+po-rel+acq",
        source: r#"
C Z6.0+mb+po-rel+acq
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    WRITE_ONCE(*y, 1);
}
P1(int *y, int *z)
{
    WRITE_ONCE(*y, 2);
    smp_store_release(z, 1);
}
P2(int *x, int *z)
{
    int r0;
    r0 = smp_load_acquire(z);
    WRITE_ONCE(*x, 2);
}
exists (y=2 /\ 2:r0=1 /\ x=1)
"#,
        lkmm: Expect::Allowed,
        c11: None,
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "Z6.0+mbs",
        source: r#"
C Z6.0+mbs
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    WRITE_ONCE(*y, 1);
}
P1(int *y, int *z)
{
    WRITE_ONCE(*y, 2);
    smp_mb();
    WRITE_ONCE(*z, 1);
}
P2(int *x, int *z)
{
    int r0;
    r0 = READ_ONCE(*z);
    smp_mb();
    WRITE_ONCE(*x, 2);
}
exists (y=2 /\ 2:r0=1 /\ x=1)
"#,
        lkmm: Expect::Forbidden,
        c11: None,
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "CoWW",
        source: r#"
C CoWW
{ x=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*x, 2);
}
exists (x=1)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Forbidden),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "CoRR",
        source: r#"
C CoRR
{ x=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x)
{
    int r0;
    int r1;
    r0 = READ_ONCE(*x);
    r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 1:r1=0)
"#,
        lkmm: Expect::Forbidden,
        c11: Some(Expect::Forbidden),
        in_table5: false,
        figure: None,
    },
    PaperTest {
        name: "MP+wmb+addr",
        source: r#"
C MP+wmb+addr
{ x=0; y=&z; z=0; w=0; }
P0(int *x, int **y, int *w)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, &w);
}
P1(int *x, int **y)
{
    int *r1;
    int r2;
    int r3;
    r1 = READ_ONCE(*y);
    r2 = READ_ONCE(*r1);
    r3 = READ_ONCE(*x);
}
exists (1:r1=&w /\ 1:r3=0)
"#,
        lkmm: Expect::Allowed,
        c11: None,
        in_table5: false,
        figure: None,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_library_test_parses() {
        for t in all() {
            let parsed = t.test();
            assert_eq!(parsed.name, t.name, "embedded name mismatch");
            assert!(!parsed.threads.is_empty());
        }
    }

    #[test]
    fn table5_has_fifteen_rows() {
        assert_eq!(table5().count(), 15);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("SB+mbs").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn rcu_tests_have_no_c11_verdict() {
        for t in all().iter().filter(|t| t.name.starts_with("RCU")) {
            assert!(t.c11.is_none());
        }
    }

    #[test]
    fn library_round_trips_through_printer() {
        for t in all() {
            let parsed = t.test();
            let reparsed = crate::parse(&parsed.to_litmus_string())
                .unwrap_or_else(|e| panic!("{}: {e}", t.name));
            assert_eq!(parsed, reparsed, "{}", t.name);
        }
    }
}
