//! Parser for the `C`-litmus file format used by herd7/klitmus.
//!
//! The accepted grammar covers the subset of C that the LKMM paper models:
//! ONCE accesses, acquire/release, fences, RCU primitives, the xchg/cmpxchg
//! families, register arithmetic, pointers (`p = &x;` initialisers,
//! `*r1` dereferences) and `if`/`else`. See [`parse`].

use crate::ast::*;
use crate::cond::*;
use std::collections::BTreeSet;
use std::fmt;

/// Error produced when a litmus file cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input near which the error occurred.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a litmus test from its `C` source format.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem found.
///
/// # Examples
///
/// ```
/// let t = lkmm_litmus::parse(
///     "C SB\n{ x=0; y=0; }\n\
///      P0(int *x, int *y) { WRITE_ONCE(*x, 1); int r0; r0 = READ_ONCE(*y); }\n\
///      P1(int *x, int *y) { WRITE_ONCE(*y, 1); int r0; r0 = READ_ONCE(*x); }\n\
///      exists (0:r0=0 /\\ 1:r0=0)",
/// ).unwrap();
/// assert_eq!(t.name, "SB");
/// ```
pub fn parse(src: &str) -> Result<Test, ParseError> {
    Parser::new(src)?.parse_test()
}

fn atomic_binop(name: &str) -> crate::ast::BinOp {
    use crate::ast::BinOp;
    match name {
        n if n.starts_with("atomic_sub") => BinOp::Sub,
        n if n.starts_with("atomic_and") => BinOp::And,
        n if n.starts_with("atomic_or") => BinOp::Or,
        n if n.starts_with("atomic_xor") => BinOp::Xor,
        _ => BinOp::Add,
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    Punct(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    fn skip_trivia(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.src[self.pos..].starts_with(b"//") {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else if self.src[self.pos..].starts_with(b"/*") {
                self.pos += 2;
                while self.pos < self.src.len() && !self.src[self.pos..].starts_with(b"*/") {
                    self.pos += 1;
                }
                self.pos = (self.pos + 2).min(self.src.len());
            } else {
                return;
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, usize), ParseError> {
        self.skip_trivia();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((Tok::Eof, start));
        }
        let c = self.src[self.pos];
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut end = self.pos;
            while end < self.src.len()
                && (self.src[end].is_ascii_alphanumeric() || self.src[end] == b'_')
            {
                end += 1;
            }
            let word = std::str::from_utf8(&self.src[self.pos..end]).unwrap().to_string();
            self.pos = end;
            return Ok((Tok::Ident(word), start));
        }
        if c.is_ascii_digit() {
            let mut end = self.pos;
            while end < self.src.len() && self.src[end].is_ascii_digit() {
                end += 1;
            }
            let n: i64 = std::str::from_utf8(&self.src[self.pos..end])
                .unwrap()
                .parse()
                .map_err(|_| ParseError { message: "integer overflow".into(), offset: start })?;
            self.pos = end;
            return Ok((Tok::Num(n), start));
        }
        // Multi-character punctuation first.
        const MULTI: &[&str] = &["==", "!=", "<=", ">=", "/\\", "\\/", "&&", "||", "->"];
        for m in MULTI {
            if self.src[self.pos..].starts_with(m.as_bytes()) {
                self.pos += m.len();
                return Ok((Tok::Punct(m), start));
            }
        }
        const SINGLE: &[&str] = &[
            "{", "}", "(", ")", ";", ",", "=", "*", "&", ":", "<", ">", "!", "^", "|", "+", "-",
            "~", "[", "]", ".",
        ];
        for s in SINGLE {
            if self.src[self.pos..].starts_with(s.as_bytes()) {
                self.pos += 1;
                return Ok((Tok::Punct(s), start));
            }
        }
        Err(ParseError {
            message: format!("unexpected character {:?}", c as char),
            offset: start,
        })
    }
}

/// Parsing is recursive over nested blocks, parenthesised expressions,
/// and condition propositions, so nesting is capped: hostile input like
/// `((((…` must produce a parse error, not a stack overflow (which
/// `catch_unwind` cannot contain). The cap is small enough that the
/// recursion fits comfortably in a 2 MiB test-thread stack even with
/// debug-sized frames; real litmus tests nest a handful of levels.
const MAX_NEST_DEPTH: usize = 64;

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    offset: usize,
    /// Shared locations (thread parameters + init keys) — used to decide
    /// whether `*name` dereferences a location or a register.
    shared: BTreeSet<String>,
    /// Current recursion depth across blocks/expressions/propositions.
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut p = Parser {
            lexer: Lexer::new(src),
            tok: Tok::Eof,
            offset: 0,
            shared: BTreeSet::new(),
            depth: 0,
        };
        // A lex error on the very first token (e.g. a NUL byte at offset
        // 0) is a parse error like any other, not a panic.
        p.bump()?;
        Ok(p)
    }

    fn bump(&mut self) -> Result<(), ParseError> {
        let (tok, offset) = self.lexer.next()?;
        self.tok = tok;
        self.offset = offset;
        Ok(())
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), offset: self.offset })
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if matches!(&self.tok, Tok::Punct(q) if *q == p) {
            self.bump()
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.tok))
        }
    }

    fn eat_punct(&mut self, p: &str) -> Result<bool, ParseError> {
        if matches!(&self.tok, Tok::Punct(q) if *q == p) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Ident(s) => {
                self.bump()?;
                Ok(s)
            }
            other => {
                self.tok = other;
                self.err(format!("expected identifier, found {:?}", self.tok))
            }
        }
    }

    fn parse_test(&mut self) -> Result<Test, ParseError> {
        // Header: `C <name>` where <name> may contain +, -, etc. The name
        // runs to the end of the header token sequence; we re-lex it
        // loosely: accept idents/nums/punct until we hit `{` or `P`.
        let lang = self.expect_ident()?;
        if lang != "C" {
            return self.err(format!("expected litmus dialect `C`, found `{lang}`"));
        }
        let mut name = String::new();
        let is_thread_header = |w: &str| {
            w.len() >= 2 && w.starts_with('P') && w[1..].chars().all(|c| c.is_ascii_digit())
        };
        loop {
            match &self.tok {
                Tok::Punct("{") => break,
                Tok::Ident(w) if is_thread_header(w) && !name.is_empty() => break,
                Tok::Ident(w) => {
                    name.push_str(w);
                    self.bump()?;
                }
                Tok::Num(n) => {
                    name.push_str(&n.to_string());
                    self.bump()?;
                }
                Tok::Punct(p @ ("+" | "-" | "*" | ".")) => {
                    name.push_str(p);
                    self.bump()?;
                }
                _ => break,
            }
        }
        if name.is_empty() {
            return self.err("missing test name");
        }
        let mut test = Test::new(name);

        // Init block.
        if self.eat_punct("{")? {
            while !self.eat_punct("}")? {
                // Forms: `x=0;`  `p=&x;`  `int x = 0;`
                let mut ident = self.expect_ident()?;
                if ident == "int" {
                    // optional `*`
                    let _ = self.eat_punct("*")?;
                    ident = self.expect_ident()?;
                }
                self.expect_punct("=")?;
                if self.eat_punct("&")? {
                    let target = self.expect_ident()?;
                    test.init.insert(ident.clone(), InitVal::Ptr(target.clone()));
                    self.shared.insert(target);
                } else {
                    let v = self.parse_signed_int()?;
                    test.init.insert(ident.clone(), InitVal::Int(v));
                }
                self.shared.insert(ident);
                self.expect_punct(";")?;
            }
        }

        // Threads.
        while let Tok::Ident(w) = &self.tok {
            if !w.starts_with('P') || !w[1..].chars().all(|c| c.is_ascii_digit()) || w.len() < 2 {
                break;
            }
            let index: usize = w[1..].parse().unwrap();
            if index != test.threads.len() {
                return self.err(format!(
                    "thread P{index} out of order (expected P{})",
                    test.threads.len()
                ));
            }
            self.bump()?;
            self.expect_punct("(")?;
            // Parameters: `int *x, int *y` or `spinlock_t *s`.
            if !self.eat_punct(")")? {
                loop {
                    let _ty = self.expect_ident()?;
                    while self.eat_punct("*")? {}
                    let pname = self.expect_ident()?;
                    self.shared.insert(pname);
                    if self.eat_punct(")")? {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            self.expect_punct("{")?;
            let body = self.parse_block()?;
            test.threads.push(Thread::new(body));
        }
        if test.threads.is_empty() {
            return self.err("litmus test has no threads");
        }

        // Optional `locations [...]` clause (ignored: we always expose all).
        if matches!(&self.tok, Tok::Ident(w) if w == "locations") {
            self.bump()?;
            self.expect_punct("[")?;
            while !self.eat_punct("]")? {
                self.bump()?;
            }
        }

        // Condition.
        test.condition = self.parse_condition()?;
        Ok(test)
    }

    fn parse_signed_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_punct("-")?;
        match self.tok {
            Tok::Num(n) => {
                self.bump()?;
                Ok(if neg { -n } else { n })
            }
            _ => self.err("expected integer"),
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.enter_nested()?;
        let mut body = Vec::new();
        while !self.eat_punct("}")? {
            if let Some(s) = self.parse_stmt()? {
                body.push(s);
            }
        }
        self.depth -= 1;
        Ok(body)
    }

    /// Depth guard for every recursive production. The counter is only
    /// decremented on success; an error aborts the whole parse, so a
    /// stale count can never be observed.
    fn enter_nested(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            return self.err("nesting too deep");
        }
        Ok(())
    }

    /// Parse one statement; returns `None` for pure declarations.
    fn parse_stmt(&mut self) -> Result<Option<Stmt>, ParseError> {
        let word = match &self.tok {
            Tok::Ident(w) => w.clone(),
            _ => return self.err(format!("expected statement, found {:?}", self.tok)),
        };
        match word.as_str() {
            "int" | "unsigned" | "long" => {
                // Declaration: `int r0;` / `int *r1;` — registers are
                // implicit, so just skip to the `;`.
                self.bump()?;
                while !self.eat_punct(";")? {
                    self.bump()?;
                }
                Ok(None)
            }
            "if" => {
                self.bump()?;
                self.expect_punct("(")?;
                let cond = self.parse_expr()?;
                self.expect_punct(")")?;
                self.expect_punct("{")?;
                let then_ = self.parse_block()?;
                let else_ = if matches!(&self.tok, Tok::Ident(w) if w == "else") {
                    self.bump()?;
                    self.expect_punct("{")?;
                    self.parse_block()?
                } else {
                    Vec::new()
                };
                Ok(Some(Stmt::If { cond, then_, else_ }))
            }
            "WRITE_ONCE" => {
                self.bump()?;
                let (addr, value) = self.parse_addr_value_args()?;
                self.expect_punct(";")?;
                Ok(Some(Stmt::WriteOnce { addr, value }))
            }
            "smp_store_release" => {
                self.bump()?;
                let (addr, value) = self.parse_addr_value_args()?;
                self.expect_punct(";")?;
                Ok(Some(Stmt::StoreRelease { addr, value }))
            }
            "rcu_assign_pointer" => {
                self.bump()?;
                let (addr, value) = self.parse_addr_value_args()?;
                self.expect_punct(";")?;
                Ok(Some(Stmt::RcuAssignPointer { addr, value }))
            }
            "smp_rmb" | "smp_wmb" | "smp_mb" | "smp_read_barrier_depends" | "rcu_read_lock"
            | "rcu_read_unlock" | "synchronize_rcu" => {
                self.bump()?;
                self.expect_punct("(")?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                let kind = match word.as_str() {
                    "smp_rmb" => FenceKind::Rmb,
                    "smp_wmb" => FenceKind::Wmb,
                    "smp_mb" => FenceKind::Mb,
                    "smp_read_barrier_depends" => FenceKind::RbDep,
                    "rcu_read_lock" => FenceKind::RcuLock,
                    "rcu_read_unlock" => FenceKind::RcuUnlock,
                    _ => FenceKind::SyncRcu,
                };
                Ok(Some(Stmt::Fence(kind)))
            }
            "__assume" => {
                self.bump()?;
                self.expect_punct("(")?;
                let cond = self.parse_expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Some(Stmt::Assume(cond)))
            }
            "atomic_add" | "atomic_sub" | "atomic_and" | "atomic_or" | "atomic_xor" => {
                let op = atomic_binop(&word);
                self.bump()?;
                self.expect_punct("(")?;
                let operand = self.parse_expr()?;
                self.expect_punct(",")?;
                let addr = self.parse_addr_arg()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                // Void atomic RMWs provide no ordering ([69]).
                Ok(Some(Stmt::AtomicOp {
                    order: RmwOrder::Relaxed,
                    dst: None,
                    addr,
                    op,
                    operand,
                }))
            }
            "spin_lock" | "spin_unlock" => {
                self.bump()?;
                self.expect_punct("(")?;
                let addr = self.parse_addr_arg()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Some(if word == "spin_lock" {
                    Stmt::SpinLock { addr }
                } else {
                    Stmt::SpinUnlock { addr }
                }))
            }
            "srcu_read_lock" | "srcu_read_unlock" | "synchronize_srcu" => {
                self.bump()?;
                self.expect_punct("(")?;
                let domain = self.parse_addr_arg()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Some(match word.as_str() {
                    "srcu_read_lock" => Stmt::SrcuReadLock { domain },
                    "srcu_read_unlock" => Stmt::SrcuReadUnlock { domain },
                    _ => Stmt::SynchronizeSrcu { domain },
                }))
            }
            _ => {
                // `reg = <rhs>;`
                let dst = self.expect_ident()?;
                self.expect_punct("=")?;
                let stmt = self.parse_assignment_rhs(dst)?;
                self.expect_punct(";")?;
                Ok(Some(stmt))
            }
        }
    }

    fn parse_assignment_rhs(&mut self, dst: String) -> Result<Stmt, ParseError> {
        if let Tok::Ident(f) = &self.tok {
            let f = f.clone();
            let rmw_order = |name: &str| match name {
                s if s.ends_with("_relaxed") => RmwOrder::Relaxed,
                s if s.ends_with("_acquire") => RmwOrder::Acquire,
                s if s.ends_with("_release") => RmwOrder::Release,
                _ => RmwOrder::Full,
            };
            match f.as_str() {
                "READ_ONCE" | "smp_load_acquire" | "rcu_dereference" => {
                    self.bump()?;
                    self.expect_punct("(")?;
                    let addr = self.parse_addr_arg()?;
                    self.expect_punct(")")?;
                    return Ok(match f.as_str() {
                        "READ_ONCE" => Stmt::ReadOnce { dst, addr },
                        "smp_load_acquire" => Stmt::LoadAcquire { dst, addr },
                        _ => Stmt::RcuDereference { dst, addr },
                    });
                }
                "xchg" | "xchg_relaxed" | "xchg_acquire" | "xchg_release" => {
                    self.bump()?;
                    self.expect_punct("(")?;
                    let addr = self.parse_addr_arg()?;
                    self.expect_punct(",")?;
                    let value = self.parse_expr()?;
                    self.expect_punct(")")?;
                    return Ok(Stmt::Xchg { order: rmw_order(&f), dst, addr, value });
                }
                "cmpxchg" | "cmpxchg_relaxed" | "cmpxchg_acquire" | "cmpxchg_release" => {
                    self.bump()?;
                    self.expect_punct("(")?;
                    let addr = self.parse_addr_arg()?;
                    self.expect_punct(",")?;
                    let expected = self.parse_expr()?;
                    self.expect_punct(",")?;
                    let new = self.parse_expr()?;
                    self.expect_punct(")")?;
                    return Ok(Stmt::CmpXchg { order: rmw_order(&f), dst, addr, expected, new });
                }
                name if name.starts_with("atomic_")
                    && (name.contains("_return") || name.starts_with("atomic_fetch_")) =>
                {
                    self.bump()?;
                    return self.parse_atomic_rmw(dst, &f);
                }
                _ => {}
            }
        }
        let value = self.parse_expr()?;
        Ok(Stmt::Assign { dst, value })
    }

    fn parse_atomic_rmw(&mut self, dst: String, f: &str) -> Result<Stmt, ParseError> {
        use crate::ast::AtomicDst;
        let order = match f {
            s if s.ends_with("_relaxed") => RmwOrder::Relaxed,
            s if s.ends_with("_acquire") => RmwOrder::Acquire,
            s if s.ends_with("_release") => RmwOrder::Release,
            _ => RmwOrder::Full,
        };
        let base = f
            .trim_end_matches("_relaxed")
            .trim_end_matches("_acquire")
            .trim_end_matches("_release");
        let (kind, opname) = if let Some(rest) = base.strip_prefix("atomic_fetch_") {
            (AtomicDst::Old, rest.to_string())
        } else {
            // atomic_<op>_return
            let mid = base
                .strip_prefix("atomic_")
                .and_then(|r| r.strip_suffix("_return"))
                .unwrap_or("add");
            (AtomicDst::New, mid.to_string())
        };
        let op = atomic_binop(&format!("atomic_{opname}"));
        self.expect_punct("(")?;
        let operand = self.parse_expr()?;
        self.expect_punct(",")?;
        let addr = self.parse_addr_arg()?;
        self.expect_punct(")")?;
        Ok(Stmt::AtomicOp { order, dst: Some((dst, kind)), addr, op, operand })
    }

    /// `WRITE_ONCE(*x, e)`-style `(addr, value)` argument pair.
    fn parse_addr_value_args(&mut self) -> Result<(AddrExpr, Expr), ParseError> {
        self.expect_punct("(")?;
        let addr = self.parse_addr_arg()?;
        self.expect_punct(",")?;
        let value = self.parse_expr()?;
        self.expect_punct(")")?;
        Ok((addr, value))
    }

    /// An address argument: `*x`, `x`, `&x`, or `*r1`.
    fn parse_addr_arg(&mut self) -> Result<AddrExpr, ParseError> {
        let deref = self.eat_punct("*")?;
        let amp = !deref && self.eat_punct("&")?;
        let name = self.expect_ident()?;
        if amp || self.shared.contains(&name) {
            Ok(AddrExpr::Var(name))
        } else if deref {
            Ok(AddrExpr::Reg(name))
        } else {
            // Bare register used as pointer (e.g. `smp_load_acquire(r1)`).
            Ok(AddrExpr::Reg(name))
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter_nested()?;
        let e = self.parse_bin(0)?;
        self.depth -= 1;
        Ok(e)
    }

    /// Precedence climbing. Levels (loosest first): `|`, `^`, `&`,
    /// equality, relational, additive, multiplicative.
    fn parse_bin(&mut self, level: usize) -> Result<Expr, ParseError> {
        const LEVELS: &[&[(&str, BinOp)]] = &[
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[("<=", BinOp::Le), (">=", BinOp::Ge), ("<", BinOp::Lt), (">", BinOp::Gt)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul)],
        ];
        if level >= LEVELS.len() {
            return self.parse_atom();
        }
        let mut lhs = self.parse_bin(level + 1)?;
        'outer: loop {
            for (sym, op) in LEVELS[level] {
                if matches!(&self.tok, Tok::Punct(p) if p == sym) {
                    self.bump()?;
                    let rhs = self.parse_bin(level + 1)?;
                    lhs = Expr::bin(*op, lhs, rhs);
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("(")? {
            let e = self.parse_expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if self.eat_punct("!")? {
            self.enter_nested()?;
            let e = self.parse_atom()?;
            self.depth -= 1;
            return Ok(Expr::Not(Box::new(e)));
        }
        if self.eat_punct("&")? {
            let name = self.expect_ident()?;
            return Ok(Expr::LocRef(name));
        }
        if self.eat_punct("-")? {
            return match self.tok {
                Tok::Num(n) => {
                    self.bump()?;
                    Ok(Expr::Const(-n))
                }
                _ => self.err("expected number after unary `-`"),
            };
        }
        match &self.tok {
            Tok::Num(n) => {
                let n = *n;
                self.bump()?;
                Ok(Expr::Const(n))
            }
            Tok::Ident(name) => {
                let name = name.clone();
                self.bump()?;
                Ok(Expr::Reg(name))
            }
            _ => self.err(format!("expected expression, found {:?}", self.tok)),
        }
    }

    fn parse_condition(&mut self) -> Result<Condition, ParseError> {
        let quantifier = match &self.tok {
            Tok::Punct("~") => {
                self.bump()?;
                let w = self.expect_ident()?;
                if w != "exists" {
                    return self.err("expected `exists` after `~`");
                }
                Quantifier::NotExists
            }
            Tok::Ident(w) if w == "exists" => {
                self.bump()?;
                Quantifier::Exists
            }
            Tok::Ident(w) if w == "forall" => {
                self.bump()?;
                Quantifier::Forall
            }
            Tok::Eof => return Ok(Condition::exists_true()),
            _ => return self.err(format!("expected condition, found {:?}", self.tok)),
        };
        self.expect_punct("(")?;
        let prop = self.parse_prop_or()?;
        self.expect_punct(")")?;
        Ok(Condition { quantifier, prop })
    }

    fn parse_prop_or(&mut self) -> Result<Prop, ParseError> {
        self.enter_nested()?;
        let mut lhs = self.parse_prop_and()?;
        while self.eat_punct("\\/")? {
            let rhs = self.parse_prop_and()?;
            lhs = Prop::Or(Box::new(lhs), Box::new(rhs));
        }
        self.depth -= 1;
        Ok(lhs)
    }

    fn parse_prop_and(&mut self) -> Result<Prop, ParseError> {
        let mut lhs = self.parse_prop_atom()?;
        while self.eat_punct("/\\")? {
            let rhs = self.parse_prop_atom()?;
            lhs = Prop::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_prop_atom(&mut self) -> Result<Prop, ParseError> {
        if matches!(&self.tok, Tok::Ident(w) if w == "not") {
            self.bump()?;
            self.expect_punct("(")?;
            let p = self.parse_prop_or()?;
            self.expect_punct(")")?;
            return Ok(Prop::Not(Box::new(p)));
        }
        if matches!(&self.tok, Tok::Ident(w) if w == "true") {
            self.bump()?;
            return Ok(Prop::True);
        }
        if self.eat_punct("(")? {
            let p = self.parse_prop_or()?;
            self.expect_punct(")")?;
            return Ok(p);
        }
        // `N:reg=v` or `loc=v` or `[loc]=v`.
        let term = match &self.tok {
            Tok::Num(n) => {
                let thread = *n as usize;
                self.bump()?;
                self.expect_punct(":")?;
                let reg = self.expect_ident()?;
                StateTerm::Reg { thread, reg }
            }
            Tok::Punct("[") => {
                self.bump()?;
                let loc = self.expect_ident()?;
                self.expect_punct("]")?;
                StateTerm::Loc(loc)
            }
            Tok::Ident(_) => StateTerm::Loc(self.expect_ident()?),
            _ => return self.err(format!("expected state term, found {:?}", self.tok)),
        };
        self.expect_punct("=")?;
        let val = if self.eat_punct("&")? {
            CondVal::LocRef(self.expect_ident()?)
        } else {
            CondVal::Int(self.parse_signed_int()?)
        };
        Ok(Prop::Eq(term, val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = r#"
C MP+wmb+rmb

// Figure 1 of the paper
{
x=0;
y=0;
}

P0(int *x, int *y)
{
	WRITE_ONCE(*x, 1);
	smp_wmb();
	WRITE_ONCE(*y, 1);
}

P1(int *x, int *y)
{
	int r1;
	int r2;

	r1 = READ_ONCE(*y);
	smp_rmb();
	r2 = READ_ONCE(*x);
}

exists (1:r1=1 /\ 1:r2=0)
"#;

    #[test]
    fn parses_mp() {
        let t = parse(MP).unwrap();
        assert_eq!(t.name, "MP+wmb+rmb");
        assert_eq!(t.threads.len(), 2);
        assert_eq!(t.threads[0].body.len(), 3);
        assert_eq!(t.threads[0].body[1], Stmt::Fence(FenceKind::Wmb));
        assert_eq!(t.condition.quantifier, Quantifier::Exists);
        assert_eq!(t.condition.prop.terms().len(), 2);
    }

    #[test]
    fn round_trips_through_pretty_printer() {
        let t = parse(MP).unwrap();
        let again = parse(&t.to_litmus_string()).unwrap();
        assert_eq!(t, again);
    }

    #[test]
    fn parses_pointers_and_rcu() {
        let t = parse(
            "C deref\n{ p=&x; x=0; }\n\
             P0(int **p, int *x, int *y) { rcu_read_lock(); int r1; int r2; \
               r1 = rcu_dereference(*p); r2 = READ_ONCE(*r1); rcu_read_unlock(); }\n\
             P1(int **p, int *x, int *y) { WRITE_ONCE(*x, 1); rcu_assign_pointer(*p, &y); \
               synchronize_rcu(); }\n\
             exists (0:r2=0 /\\ p=&y)",
        )
        .unwrap();
        assert_eq!(t.init["p"], InitVal::Ptr("x".into()));
        assert!(matches!(t.threads[0].body[1], Stmt::RcuDereference { .. }));
        assert!(matches!(t.threads[0].body[2], Stmt::ReadOnce { ref addr, .. }
            if *addr == AddrExpr::Reg("r1".into())));
        assert!(matches!(t.threads[1].body[1], Stmt::RcuAssignPointer { .. }));
        assert!(matches!(t.threads[1].body[2], Stmt::Fence(FenceKind::SyncRcu)));
    }

    #[test]
    fn parses_if_with_ctrl_dep() {
        let t = parse(
            "C LB+ctrl\n{ x=0; y=0; }\n\
             P0(int *x, int *y) { int r0; r0 = READ_ONCE(*x); if (r0 == 1) { WRITE_ONCE(*y, 1); } }\n\
             P1(int *x, int *y) { int r0; r0 = READ_ONCE(*y); WRITE_ONCE(*x, 1); }\n\
             exists (0:r0=1 /\\ 1:r0=1)",
        )
        .unwrap();
        match &t.threads[0].body[1] {
            Stmt::If { cond, then_, else_ } => {
                assert_eq!(cond.regs(), vec!["r0"]);
                assert_eq!(then_.len(), 1);
                assert!(else_.is_empty());
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn parses_xchg_family() {
        let t = parse(
            "C x\n{ x=0; }\n\
             P0(int *x) { int r0; r0 = xchg_acquire(x, 2); }\n\
             P1(int *x) { int r1; r1 = cmpxchg(x, 0, 3); }\n\
             exists (0:r0=3 /\\ 1:r1=2)",
        )
        .unwrap();
        assert!(matches!(t.threads[0].body[0], Stmt::Xchg { order: RmwOrder::Acquire, .. }));
        assert!(matches!(t.threads[1].body[0], Stmt::CmpXchg { order: RmwOrder::Full, .. }));
    }

    #[test]
    fn parses_not_exists_and_locations() {
        let t = parse(
            "C n\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\n\
             locations [x;]\n~exists (x=0)",
        )
        .unwrap();
        assert_eq!(t.condition.quantifier, Quantifier::NotExists);
    }

    #[test]
    fn parses_spinlock_emulation() {
        let t = parse(
            "C lock\n{ s=0; x=0; }\n\
             P0(spinlock_t *s, int *x) { spin_lock(&s); WRITE_ONCE(*x, 1); spin_unlock(&s); }\n\
             exists (x=1)",
        )
        .unwrap();
        assert!(matches!(t.threads[0].body[0], Stmt::SpinLock { .. }));
        assert!(matches!(t.threads[0].body[2], Stmt::SpinUnlock { .. }));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("X foo").is_err());
        assert!(parse("C t\n{ x=0; }").is_err()); // no threads
        assert!(parse("C t\n{ x=0 }\nP0(int *x){}").is_err()); // missing `;`
    }

    #[test]
    fn rejects_out_of_order_threads() {
        let err = parse("C t\n{ x=0; }\nP1(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)")
            .unwrap_err();
        assert!(err.message.contains("out of order"), "{err}");
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        // Deeply nested condition parentheses.
        let deep_cond = format!(
            "C t\n{{ x=0; }}\nP0(int *x) {{ WRITE_ONCE(*x, 1); }}\nexists ({}x=1{})",
            "(".repeat(100_000),
            ")".repeat(100_000)
        );
        assert!(deep_cond.contains("exists"));
        let err = parse(&deep_cond).unwrap_err();
        assert!(err.message.contains("too deep"), "{err}");

        // Deeply nested if blocks.
        let deep_if = format!(
            "C t\n{{ x=0; }}\nP0(int *x) {{ {}WRITE_ONCE(*x, 1);{} }}\nexists (x=1)",
            "if (1) { ".repeat(100_000),
            " }".repeat(100_000)
        );
        let err = parse(&deep_if).unwrap_err();
        assert!(err.message.contains("too deep"), "{err}");

        // Well under the cap still parses.
        let ok = format!(
            "C t\n{{ x=0; }}\nP0(int *x) {{ WRITE_ONCE(*x, 1); }}\nexists ({}x=1{})",
            "(".repeat(40),
            ")".repeat(40)
        );
        assert!(parse(&ok).is_ok());
    }
}
