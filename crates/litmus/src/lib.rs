//! Litmus tests in the Linux-kernel flavoured C dialect.
//!
//! A *litmus test* is a small concurrent program plus a question about its
//! final state: `exists (1:r0=1 /\ 1:r1=0)` asks whether any execution ends
//! with those register values. The ASPLOS'18 LKMM paper expresses its whole
//! evaluation (Table 5 and every figure) as such tests, written in a subset
//! of C extended with kernel primitives (`READ_ONCE`, `smp_mb()`,
//! `rcu_read_lock()`, …).
//!
//! This crate provides:
//!
//! * an [AST](ast) for the dialect ([`Test`], [`Stmt`], [`Expr`], …),
//! * a [`parser`] for the standard `C`-litmus file format,
//! * the [final-condition language](cond) (`exists` / `~exists` / `forall`),
//! * a pretty-printer ([`Test::to_litmus_string`]) emitting the same format,
//! * and the paper's [named test library](library) (Figures 1–14 and every
//!   Table 5 row).
//!
//! # Examples
//!
//! ```
//! use lkmm_litmus::parse;
//!
//! let test = parse(r#"
//! C MP
//! { x=0; y=0; }
//! P0(int *x, int *y) { WRITE_ONCE(*x, 1); smp_wmb(); WRITE_ONCE(*y, 1); }
//! P1(int *x, int *y) {
//!     int r0; int r1;
//!     r0 = READ_ONCE(*y);
//!     smp_rmb();
//!     r1 = READ_ONCE(*x);
//! }
//! exists (1:r0=1 /\ 1:r1=0)
//! "#).unwrap();
//! assert_eq!(test.name, "MP");
//! assert_eq!(test.threads.len(), 2);
//! ```

pub mod ast;
pub mod cond;
pub mod library;
pub mod parser;
pub mod rename;
pub mod validate;

pub use ast::{AddrExpr, Expr, FenceKind, RmwOrder, Stmt, Test, Thread};
pub use cond::{Condition, Prop, Quantifier, StateTerm};
pub use parser::{parse, ParseError};
pub use validate::{validate, ValidationError};
