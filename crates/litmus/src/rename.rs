//! Structure-preserving transformations used by canonicalization.
//!
//! The service layer (`lkmm-service`) computes a canonical form for a
//! [`Test`] — threads reordered, locations and registers alpha-renamed —
//! so isomorphic tests map to one cache key. The traversals that such a
//! rewrite needs live here, next to the AST they walk:
//!
//! * [`thread_locations`] / [`thread_registers`] — first-occurrence name
//!   order within one thread body (the seed of alpha-renaming);
//! * [`body_to_string`] — render a statement list without a surrounding
//!   test (the seed of name-blind structural fingerprints);
//! * [`rename_stmts`] / [`rename_test`] — total, capture-free renaming of
//!   locations and (per-thread) registers;
//! * [`permute_threads`] — reorder threads, remapping the thread indices
//!   that final-state conditions mention.
//!
//! All functions are pure: they clone rather than mutate.

use crate::ast::{
    collect_locs_stmts, collect_regs_stmts, fmt_stmt, AddrExpr, Expr, InitVal, Stmt, Test, Thread,
};
use crate::cond::{CondVal, Condition, Prop, StateTerm};
use std::collections::BTreeMap;

/// Shared locations referenced by a thread body, in order of first
/// occurrence (statement-traversal order), deduplicated.
pub fn thread_locations(thread: &Thread) -> Vec<String> {
    let mut locs = Vec::new();
    collect_locs_stmts(&thread.body, &mut locs);
    dedup_keep_first(locs)
}

/// Registers referenced by a thread body, in order of first occurrence
/// (statement-traversal order), deduplicated.
pub fn thread_registers(thread: &Thread) -> Vec<String> {
    let mut regs = Vec::new();
    collect_regs_stmts(&thread.body, &mut regs);
    dedup_keep_first(regs.into_iter().map(str::to_string).collect())
}

fn dedup_keep_first(names: Vec<String>) -> Vec<String> {
    let mut seen = Vec::new();
    for n in names {
        if !seen.contains(&n) {
            seen.push(n);
        }
    }
    seen
}

/// Render a statement list in the litmus source syntax (one statement per
/// line, tab-indented), without the enclosing `P{i}(…) { … }` frame.
pub fn body_to_string(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    for s in stmts {
        fmt_stmt(s, 1, &mut out);
    }
    out
}

fn map_name(map: &BTreeMap<String, String>, name: &str) -> String {
    map.get(name).cloned().unwrap_or_else(|| name.to_string())
}

fn rename_addr(a: &AddrExpr, locs: &BTreeMap<String, String>, regs: &BTreeMap<String, String>) -> AddrExpr {
    match a {
        AddrExpr::Var(v) => AddrExpr::Var(map_name(locs, v)),
        AddrExpr::Reg(r) => AddrExpr::Reg(map_name(regs, r)),
    }
}

fn rename_expr(e: &Expr, locs: &BTreeMap<String, String>, regs: &BTreeMap<String, String>) -> Expr {
    match e {
        Expr::Const(c) => Expr::Const(*c),
        Expr::Reg(r) => Expr::Reg(map_name(regs, r)),
        Expr::LocRef(l) => Expr::LocRef(map_name(locs, l)),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(rename_expr(a, locs, regs)),
            Box::new(rename_expr(b, locs, regs)),
        ),
        Expr::Not(inner) => Expr::Not(Box::new(rename_expr(inner, locs, regs))),
    }
}

/// Rename locations and registers throughout a statement list. Names
/// absent from a map are kept. The caller is responsible for the combined
/// mapping being injective (no capture).
pub fn rename_stmts(
    stmts: &[Stmt],
    locs: &BTreeMap<String, String>,
    regs: &BTreeMap<String, String>,
) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::ReadOnce { dst, addr } => Stmt::ReadOnce {
                dst: map_name(regs, dst),
                addr: rename_addr(addr, locs, regs),
            },
            Stmt::WriteOnce { addr, value } => Stmt::WriteOnce {
                addr: rename_addr(addr, locs, regs),
                value: rename_expr(value, locs, regs),
            },
            Stmt::LoadAcquire { dst, addr } => Stmt::LoadAcquire {
                dst: map_name(regs, dst),
                addr: rename_addr(addr, locs, regs),
            },
            Stmt::StoreRelease { addr, value } => Stmt::StoreRelease {
                addr: rename_addr(addr, locs, regs),
                value: rename_expr(value, locs, regs),
            },
            Stmt::RcuDereference { dst, addr } => Stmt::RcuDereference {
                dst: map_name(regs, dst),
                addr: rename_addr(addr, locs, regs),
            },
            Stmt::RcuAssignPointer { addr, value } => Stmt::RcuAssignPointer {
                addr: rename_addr(addr, locs, regs),
                value: rename_expr(value, locs, regs),
            },
            Stmt::Fence(k) => Stmt::Fence(*k),
            Stmt::Xchg { order, dst, addr, value } => Stmt::Xchg {
                order: *order,
                dst: map_name(regs, dst),
                addr: rename_addr(addr, locs, regs),
                value: rename_expr(value, locs, regs),
            },
            Stmt::CmpXchg { order, dst, addr, expected, new } => Stmt::CmpXchg {
                order: *order,
                dst: map_name(regs, dst),
                addr: rename_addr(addr, locs, regs),
                expected: rename_expr(expected, locs, regs),
                new: rename_expr(new, locs, regs),
            },
            Stmt::AtomicOp { order, dst, addr, op, operand } => Stmt::AtomicOp {
                order: *order,
                dst: dst.as_ref().map(|(d, which)| (map_name(regs, d), *which)),
                addr: rename_addr(addr, locs, regs),
                op: *op,
                operand: rename_expr(operand, locs, regs),
            },
            Stmt::Assign { dst, value } => Stmt::Assign {
                dst: map_name(regs, dst),
                value: rename_expr(value, locs, regs),
            },
            Stmt::Assume(cond) => Stmt::Assume(rename_expr(cond, locs, regs)),
            Stmt::If { cond, then_, else_ } => Stmt::If {
                cond: rename_expr(cond, locs, regs),
                then_: rename_stmts(then_, locs, regs),
                else_: rename_stmts(else_, locs, regs),
            },
            Stmt::SrcuReadLock { domain } => {
                Stmt::SrcuReadLock { domain: rename_addr(domain, locs, regs) }
            }
            Stmt::SrcuReadUnlock { domain } => {
                Stmt::SrcuReadUnlock { domain: rename_addr(domain, locs, regs) }
            }
            Stmt::SynchronizeSrcu { domain } => {
                Stmt::SynchronizeSrcu { domain: rename_addr(domain, locs, regs) }
            }
            Stmt::SpinLock { addr } => Stmt::SpinLock { addr: rename_addr(addr, locs, regs) },
            Stmt::SpinUnlock { addr } => Stmt::SpinUnlock { addr: rename_addr(addr, locs, regs) },
        })
        .collect()
}

fn rename_prop(
    p: &Prop,
    locs: &BTreeMap<String, String>,
    regs: &[BTreeMap<String, String>],
) -> Prop {
    match p {
        Prop::True => Prop::True,
        Prop::Eq(term, val) => {
            let term = match term {
                StateTerm::Reg { thread, reg } => match regs.get(*thread) {
                    Some(m) => StateTerm::Reg { thread: *thread, reg: map_name(m, reg) },
                    None => StateTerm::Reg { thread: *thread, reg: reg.clone() },
                },
                StateTerm::Loc(l) => StateTerm::Loc(map_name(locs, l)),
            };
            let val = match val {
                CondVal::Int(i) => CondVal::Int(*i),
                CondVal::LocRef(l) => CondVal::LocRef(map_name(locs, l)),
            };
            Prop::Eq(term, val)
        }
        Prop::And(a, b) => Prop::And(
            Box::new(rename_prop(a, locs, regs)),
            Box::new(rename_prop(b, locs, regs)),
        ),
        Prop::Or(a, b) => Prop::Or(
            Box::new(rename_prop(a, locs, regs)),
            Box::new(rename_prop(b, locs, regs)),
        ),
        Prop::Not(inner) => Prop::Not(Box::new(rename_prop(inner, locs, regs))),
    }
}

/// Rename shared locations (globally) and registers (per thread, indexed
/// like `test.threads`) throughout a test: init keys, pointer-init
/// targets, every thread body, and the final-state condition. Names
/// absent from a map are kept.
pub fn rename_test(
    test: &Test,
    locs: &BTreeMap<String, String>,
    regs: &[BTreeMap<String, String>],
) -> Test {
    let empty = BTreeMap::new();
    let init = test
        .init
        .iter()
        .map(|(k, v)| {
            let v = match v {
                InitVal::Int(i) => InitVal::Int(*i),
                InitVal::Ptr(t) => InitVal::Ptr(map_name(locs, t)),
            };
            (map_name(locs, k), v)
        })
        .collect();
    let threads = test
        .threads
        .iter()
        .enumerate()
        .map(|(i, t)| Thread::new(rename_stmts(&t.body, locs, regs.get(i).unwrap_or(&empty))))
        .collect();
    let condition = Condition {
        quantifier: test.condition.quantifier,
        prop: rename_prop(&test.condition.prop, locs, regs),
    };
    Test { name: test.name.clone(), init, threads, condition }
}

/// Reorder threads so that new thread `i` is old thread `order[i]`,
/// remapping the `t:reg` thread indices in the condition accordingly.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..test.threads.len()`.
pub fn permute_threads(test: &Test, order: &[usize]) -> Test {
    assert_eq!(order.len(), test.threads.len(), "order must cover every thread");
    let mut inverse = vec![usize::MAX; order.len()];
    for (new, &old) in order.iter().enumerate() {
        assert!(inverse[old] == usize::MAX, "order must be a permutation");
        inverse[old] = new;
    }
    let threads = order.iter().map(|&old| test.threads[old].clone()).collect();
    let condition = Condition {
        quantifier: test.condition.quantifier,
        prop: remap_prop_threads(&test.condition.prop, &inverse),
    };
    Test { name: test.name.clone(), init: test.init.clone(), threads, condition }
}

fn remap_prop_threads(p: &Prop, inverse: &[usize]) -> Prop {
    match p {
        Prop::True => Prop::True,
        // Out-of-range thread indices (a malformed condition) are kept
        // as-is rather than panicking; validation reports them elsewhere.
        Prop::Eq(StateTerm::Reg { thread, reg }, val) => Prop::Eq(
            StateTerm::Reg {
                thread: inverse.get(*thread).copied().unwrap_or(*thread),
                reg: reg.clone(),
            },
            val.clone(),
        ),
        Prop::Eq(term, val) => Prop::Eq(term.clone(), val.clone()),
        Prop::And(a, b) => Prop::And(
            Box::new(remap_prop_threads(a, inverse)),
            Box::new(remap_prop_threads(b, inverse)),
        ),
        Prop::Or(a, b) => Prop::Or(
            Box::new(remap_prop_threads(a, inverse)),
            Box::new(remap_prop_threads(b, inverse)),
        ),
        Prop::Not(inner) => Prop::Not(Box::new(remap_prop_threads(inner, inverse))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const MP: &str = r#"
C MP
{ x=0; y=0; }
P0(int *x, int *y) { WRITE_ONCE(*x, 1); smp_wmb(); WRITE_ONCE(*y, 1); }
P1(int *x, int *y) {
    int r0; int r1;
    r0 = READ_ONCE(*y); smp_rmb(); r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 1:r1=0)
"#;

    #[test]
    fn first_occurrence_orders() {
        let t = parse(MP).unwrap();
        assert_eq!(thread_locations(&t.threads[0]), vec!["x", "y"]);
        assert_eq!(thread_locations(&t.threads[1]), vec!["y", "x"]);
        assert_eq!(thread_registers(&t.threads[1]), vec!["r0", "r1"]);
    }

    #[test]
    fn rename_is_total_and_reparseable() {
        let t = parse(MP).unwrap();
        let locs: BTreeMap<String, String> =
            [("x".into(), "a".into()), ("y".into(), "b".into())].into();
        let regs = vec![
            BTreeMap::new(),
            [("r0".to_string(), "s0".to_string()), ("r1".to_string(), "s1".to_string())].into(),
        ];
        let renamed = rename_test(&t, &locs, &regs);
        assert_eq!(renamed.shared_locations(), vec!["a", "b"]);
        assert_eq!(renamed.condition.to_string(), "exists (1:s0=1 /\\ 1:s1=0)");
        let reparsed = parse(&renamed.to_litmus_string()).unwrap();
        assert_eq!(reparsed, renamed);
    }

    #[test]
    fn permute_threads_remaps_condition_indices() {
        let t = parse(MP).unwrap();
        let swapped = permute_threads(&t, &[1, 0]);
        assert_eq!(swapped.threads[1], t.threads[0]);
        assert_eq!(swapped.condition.to_string(), "exists (0:r0=1 /\\ 0:r1=0)");
        // A double swap is the identity.
        assert_eq!(permute_threads(&swapped, &[1, 0]), t);
    }

    #[test]
    fn body_to_string_matches_full_rendering_fragment() {
        let t = parse(MP).unwrap();
        let body = body_to_string(&t.threads[0].body);
        assert!(t.to_litmus_string().contains(&body));
        assert!(body.contains("smp_wmb();"));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permute_rejects_non_permutation() {
        let t = parse(MP).unwrap();
        let _ = permute_threads(&t, &[0, 0]);
    }
}
