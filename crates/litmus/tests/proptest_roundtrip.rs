//! NOTE: this suite is gated behind the off-by-default `heavy-tests`
//! feature: its `proptest` dev-dependency cannot be fetched in offline
//! builds. Enable with `--features heavy-tests` after restoring the
//! `proptest` dev-dependency in this crate's Cargo.toml.
#![cfg(feature = "heavy-tests")]

//! Property: randomly built litmus tests print to source that re-parses
//! to the same AST.

use lkmm_litmus::ast::{AddrExpr, AtomicDst, BinOp, Expr, FenceKind, InitVal, RmwOrder, Stmt, Test, Thread};
use lkmm_litmus::cond::{CondVal, Condition, Prop, Quantifier, StateTerm};
use proptest::prelude::*;

fn arb_loc() -> impl Strategy<Value = String> {
    prop_oneof![Just("x".to_string()), Just("y".to_string()), Just("z".to_string())]
}

fn arb_reg() -> impl Strategy<Value = String> {
    (0..4usize).prop_map(|i| format!("r{i}"))
}

fn arb_order() -> impl Strategy<Value = RmwOrder> {
    prop_oneof![
        Just(RmwOrder::Relaxed),
        Just(RmwOrder::Acquire),
        Just(RmwOrder::Release),
        Just(RmwOrder::Full),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..5).prop_map(Expr::Const),
        arb_reg().prop_map(Expr::Reg),
        arb_loc().prop_map(Expr::LocRef),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Xor),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Ge),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let atomic_binop = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ];
    let leaf = prop_oneof![
        (arb_reg(), arb_loc()).prop_map(|(dst, l)| Stmt::ReadOnce {
            dst,
            addr: AddrExpr::Var(l),
        }),
        (arb_loc(), arb_expr()).prop_map(|(l, value)| Stmt::WriteOnce {
            addr: AddrExpr::Var(l),
            value,
        }),
        (arb_reg(), arb_loc()).prop_map(|(dst, l)| Stmt::LoadAcquire {
            dst,
            addr: AddrExpr::Var(l),
        }),
        (arb_loc(), arb_expr()).prop_map(|(l, value)| Stmt::StoreRelease {
            addr: AddrExpr::Var(l),
            value,
        }),
        prop_oneof![
            Just(FenceKind::Rmb),
            Just(FenceKind::Wmb),
            Just(FenceKind::Mb),
            Just(FenceKind::RbDep),
            Just(FenceKind::SyncRcu),
        ]
        .prop_map(Stmt::Fence),
        (arb_order(), arb_reg(), arb_loc(), arb_expr()).prop_map(|(order, dst, l, value)| {
            Stmt::Xchg { order, dst, addr: AddrExpr::Var(l), value }
        }),
        (arb_order(), arb_reg(), arb_loc(), arb_expr(), arb_expr()).prop_map(
            |(order, dst, l, expected, new)| Stmt::CmpXchg {
                order,
                dst,
                addr: AddrExpr::Var(l),
                expected,
                new,
            }
        ),
        (
            arb_order(),
            proptest::option::of((arb_reg(), prop_oneof![Just(AtomicDst::Old), Just(AtomicDst::New)])),
            arb_loc(),
            atomic_binop,
            arb_expr()
        )
            .prop_map(|(order, dst, l, op, operand)| {
                // Void forms are always relaxed (the printer emits
                // `atomic_add(i, v)` with no ordering suffix).
                let order = if dst.is_none() { RmwOrder::Relaxed } else { order };
                Stmt::AtomicOp { order, dst, addr: AddrExpr::Var(l), op, operand }
            }),
        (arb_reg(), arb_expr()).prop_map(|(dst, value)| Stmt::Assign { dst, value }),
        arb_expr().prop_map(Stmt::Assume),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        (arb_expr(), proptest::collection::vec(inner.clone(), 0..3),
         proptest::collection::vec(inner, 0..2))
            .prop_map(|(cond, then_, else_)| Stmt::If { cond, then_, else_ })
    })
}

fn arb_test() -> impl Strategy<Value = Test> {
    (
        proptest::collection::vec(proptest::collection::vec(arb_stmt(), 1..5), 1..3),
        proptest::collection::vec((arb_loc(), 0i64..3), 0..3),
    )
        .prop_map(|(threads, inits)| {
            let mut t = Test::new("proptest");
            for (l, v) in inits {
                t.init.insert(l, InitVal::Int(v));
            }
            t.threads = threads.into_iter().map(Thread::new).collect();
            t.condition = Condition {
                quantifier: Quantifier::Exists,
                prop: Prop::Eq(StateTerm::Loc("x".into()), CondVal::Int(1)),
            };
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(test in arb_test()) {
        let printed = test.to_litmus_string();
        let reparsed = lkmm_litmus::parse(&printed)
            .unwrap_or_else(|e| panic!("{printed}\n{e}"));
        prop_assert_eq!(test, reparsed, "{}", printed);
    }
}
