//! Theorem 2: substituting the Figure 15 RCU implementation.
//!
//! [`expand_rcu`] rewrites a litmus test `P` into `P'` by replacing each
//! RCU primitive with the code of Figure 15 (the userspace RCU of
//! Desnoyers et al. used by the Linux trace tool):
//!
//! * `rcu_read_lock()` → read `rc[i]`, and (outermost case) copy the
//!   grace-period phase from `gc` into `rc[i]`, then `smp_mb()`;
//! * `rcu_read_unlock()` → `smp_mb()`, then decrement `rc[i]`;
//! * `synchronize_rcu()` → `smp_mb()`, take `gp_lock` (when more than one
//!   thread starts grace periods), run `update_counter_and_wait()` twice
//!   (flip the `GP_PHASE` bit of `gc`, then wait for every thread's
//!   `rc[i]` to be outside a critical section or in the new phase),
//!   release the lock, `smp_mb()`.
//!
//! The unbounded `while (gp_ongoing(i)) msleep(10);` loops are modelled by
//! their **final iteration**: one read of `rc[i]` and `gc` followed by
//! `__assume(!gp_ongoing)` — exactly the distinguished reads `r1`/`r2`
//! that the paper's proof sketch (§6.3) builds its precedes function from.
//!
//! Theorem 2 says every `P'` execution allowed by the LKMM corresponds to
//! an allowed execution of `P`. The tests verify the observable
//! consequence: the expanded tests forbid exactly the outcomes the
//! abstract RCU primitives forbid (Figure 10 ↔ Figure 16).

use lkmm_litmus::ast::{AddrExpr, BinOp, Expr, FenceKind, Stmt, Test, Thread};
use std::fmt;

/// `GP_PHASE` from Figure 15, line 1.
pub const GP_PHASE: i64 = 0x10000;
/// `CS_MASK` from Figure 15, line 2.
pub const CS_MASK: i64 = 0x0ffff;

/// Expansion options.
#[derive(Clone, Copy, Debug)]
pub struct ExpandOptions {
    /// Number of `update_counter_and_wait` calls per `synchronize_rcu`.
    /// Figure 15 uses 2 (lines 46–47); 1 is provided for the ablation
    /// bench showing why a single phase flip is insufficient in general.
    pub phases: usize,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions { phases: 2 }
    }
}

/// Why a test cannot be expanded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExpandError {
    /// Nested read-side critical sections are supported by Figure 15 but
    /// not by this transformer (the nesting depth would need loop-free
    /// tracking).
    NestedRscs { thread: usize },
    /// RCU primitives inside `if` branches are not supported.
    RcuInsideBranch { thread: usize },
    /// A fresh location name collides with an existing one.
    NameCollision(String),
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::NestedRscs { thread } => {
                write!(f, "nested RCU critical sections in thread {thread}")
            }
            ExpandError::RcuInsideBranch { thread } => {
                write!(f, "RCU primitive inside a branch in thread {thread}")
            }
            ExpandError::NameCollision(n) => write!(f, "location name `{n}` collides"),
        }
    }
}

impl std::error::Error for ExpandError {}

/// Expand every RCU primitive in `test` into the Figure 15 implementation.
///
/// # Errors
///
/// See [`ExpandError`].
///
/// # Examples
///
/// ```
/// use lkmm_rcu::expand_rcu;
///
/// let p = lkmm_litmus::library::by_name("RCU-MP").unwrap().test();
/// let p2 = expand_rcu(&p, &Default::default()).unwrap();
/// // The expansion introduces rc[] and gc but no RCU events remain.
/// assert!(p2.to_litmus_string().contains("__assume"));
/// assert!(!p2.to_litmus_string().contains("rcu_read_lock"));
/// ```
pub fn expand_rcu(test: &Test, opts: &ExpandOptions) -> Result<Test, ExpandError> {
    let n_threads = test.threads.len();
    let rc_name = |i: usize| format!("rc{i}");
    let gc_name = "gc".to_string();
    let lock_name = "gp_lock".to_string();
    let existing = test.shared_locations();
    for i in 0..n_threads {
        if existing.contains(&rc_name(i)) {
            return Err(ExpandError::NameCollision(rc_name(i)));
        }
    }
    if existing.contains(&gc_name) {
        return Err(ExpandError::NameCollision(gc_name));
    }

    let updaters: usize = test
        .threads
        .iter()
        .map(|t| usize::from(t.body.contains(&Stmt::Fence(FenceKind::SyncRcu))))
        .sum();
    let need_lock = updaters > 1;
    if need_lock && existing.contains(&lock_name) {
        return Err(ExpandError::NameCollision(lock_name));
    }

    let mut out = Test::new(format!("{}+impl", test.name));
    out.init = test.init.clone();
    out.condition = test.condition.clone();
    // Figure 15 line 5: gc starts at 1.
    out.init_int(&gc_name, 1);
    for i in 0..n_threads {
        out.init_int(rc_name(i), 0);
    }
    if need_lock {
        out.init_int(&lock_name, 0);
    }

    for (tid, thread) in test.threads.iter().enumerate() {
        let mut fresh = 0usize;
        let mut depth = 0i32;
        let mut body = Vec::new();
        for stmt in &thread.body {
            match stmt {
                Stmt::Fence(FenceKind::RcuLock) => {
                    if depth > 0 {
                        return Err(ExpandError::NestedRscs { thread: tid });
                    }
                    depth += 1;
                    emit_read_lock(&mut body, &rc_name(tid), &gc_name, tid, &mut fresh);
                }
                Stmt::Fence(FenceKind::RcuUnlock) => {
                    depth -= 1;
                    emit_read_unlock(&mut body, &rc_name(tid), tid, &mut fresh);
                }
                Stmt::Fence(FenceKind::SyncRcu) => {
                    emit_synchronize(
                        &mut body,
                        n_threads,
                        &rc_name,
                        &gc_name,
                        need_lock.then_some(lock_name.as_str()),
                        opts.phases,
                        tid,
                        &mut fresh,
                    );
                }
                Stmt::If { then_, else_, .. } => {
                    if contains_rcu(then_) || contains_rcu(else_) {
                        return Err(ExpandError::RcuInsideBranch { thread: tid });
                    }
                    body.push(stmt.clone());
                }
                other => body.push(other.clone()),
            }
        }
        out.threads.push(Thread::new(body));
    }
    Ok(out)
}

fn contains_rcu(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Fence(FenceKind::RcuLock | FenceKind::RcuUnlock | FenceKind::SyncRcu) => true,
        Stmt::If { then_, else_, .. } => contains_rcu(then_) || contains_rcu(else_),
        _ => false,
    })
}

fn reg(tid: usize, fresh: &mut usize) -> String {
    let r = format!("rcu{tid}t{fresh}");
    *fresh += 1;
    r
}

/// Figure 15 lines 8–18 (outermost case; nesting rejected upstream).
fn emit_read_lock(body: &mut Vec<Stmt>, rc: &str, gc: &str, tid: usize, fresh: &mut usize) {
    let tmp = reg(tid, fresh);
    let g = reg(tid, fresh);
    body.push(Stmt::ReadOnce { dst: tmp.clone(), addr: AddrExpr::Var(rc.into()) }); // line 10
    body.push(Stmt::If {
        // line 12: !(tmp & CS_MASK)
        cond: Expr::Not(Box::new(Expr::bin(
            BinOp::And,
            Expr::Reg(tmp.clone()),
            Expr::Const(CS_MASK),
        ))),
        then_: vec![
            Stmt::ReadOnce { dst: g.clone(), addr: AddrExpr::Var(gc.into()) }, // line 13
            Stmt::WriteOnce { addr: AddrExpr::Var(rc.into()), value: Expr::Reg(g) },
            Stmt::Fence(FenceKind::Mb), // line 14
        ],
        else_: vec![Stmt::WriteOnce {
            // line 16
            addr: AddrExpr::Var(rc.into()),
            value: Expr::bin(BinOp::Add, Expr::Reg(tmp), Expr::Const(1)),
        }],
    });
}

/// Figure 15 lines 20–25.
fn emit_read_unlock(body: &mut Vec<Stmt>, rc: &str, tid: usize, fresh: &mut usize) {
    let u = reg(tid, fresh);
    body.push(Stmt::Fence(FenceKind::Mb)); // line 23
    body.push(Stmt::ReadOnce { dst: u.clone(), addr: AddrExpr::Var(rc.into()) }); // line 24
    body.push(Stmt::WriteOnce {
        addr: AddrExpr::Var(rc.into()),
        value: Expr::bin(BinOp::Sub, Expr::Reg(u), Expr::Const(1)),
    });
}

/// Figure 15 lines 43–50, with `update_counter_and_wait` (lines 33–41)
/// inlined and each wait loop modelled by its final iteration.
#[allow(clippy::too_many_arguments)]
fn emit_synchronize(
    body: &mut Vec<Stmt>,
    n_threads: usize,
    rc_name: &dyn Fn(usize) -> String,
    gc: &str,
    lock: Option<&str>,
    phases: usize,
    tid: usize,
    fresh: &mut usize,
) {
    body.push(Stmt::Fence(FenceKind::Mb)); // line 44
    if let Some(l) = lock {
        body.push(Stmt::SpinLock { addr: AddrExpr::Var(l.into()) }); // line 45
    }
    for _phase in 0..phases {
        // line 36: WRITE_ONCE(gc, READ_ONCE(gc) ^ GP_PHASE);
        let g = reg(tid, fresh);
        body.push(Stmt::ReadOnce { dst: g.clone(), addr: AddrExpr::Var(gc.into()) });
        body.push(Stmt::WriteOnce {
            addr: AddrExpr::Var(gc.into()),
            value: Expr::bin(BinOp::Xor, Expr::Reg(g), Expr::Const(GP_PHASE)),
        });
        // lines 37-40: wait for each thread; the modelled (final)
        // iteration of gp_ongoing(i) reads rc[i] and gc (lines 27-30) and
        // its exit condition holds.
        for i in 0..n_threads {
            let v = reg(tid, fresh);
            let g2 = reg(tid, fresh);
            body.push(Stmt::ReadOnce { dst: v.clone(), addr: AddrExpr::Var(rc_name(i)) });
            body.push(Stmt::ReadOnce { dst: g2.clone(), addr: AddrExpr::Var(gc.into()) });
            // !((v & CS_MASK) && ((v ^ g2) & GP_PHASE)) — as bit-level
            // booleans: (v & CS_MASK) == 0 || ((v ^ g2) & GP_PHASE) == 0.
            let in_cs = Expr::bin(BinOp::And, Expr::Reg(v.clone()), Expr::Const(CS_MASK));
            let old_phase = Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Xor, Expr::Reg(v), Expr::Reg(g2)),
                Expr::Const(GP_PHASE),
            );
            body.push(Stmt::Assume(Expr::bin(
                BinOp::Or,
                Expr::bin(BinOp::Eq, in_cs, Expr::Const(0)),
                Expr::bin(BinOp::Eq, old_phase, Expr::Const(0)),
            )));
        }
    }
    if let Some(l) = lock {
        body.push(Stmt::SpinUnlock { addr: AddrExpr::Var(l.into()) }); // line 48
    }
    body.push(Stmt::Fence(FenceKind::Mb)); // line 49
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm::Lkmm;
    use lkmm_exec::enumerate::EnumOptions;
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library;

    fn verdicts(name: &str, opts: &ExpandOptions) -> (Verdict, Verdict, usize) {
        let p = library::by_name(name).unwrap().test();
        let p2 = expand_rcu(&p, opts).unwrap();
        let model = Lkmm::new();
        let enum_opts = EnumOptions::default();
        let r1 = check_test(&model, &p, &enum_opts).unwrap();
        let r2 = check_test(&model, &p2, &enum_opts).unwrap();
        (r1.verdict, r2.verdict, r2.candidates)
    }

    #[test]
    fn theorem2_rcu_mp_expansion_stays_forbidden() {
        let (abstract_v, impl_v, candidates) =
            verdicts("RCU-MP", &ExpandOptions::default());
        assert_eq!(abstract_v, Verdict::Forbidden);
        assert_eq!(impl_v, Verdict::Forbidden, "Figure 16 must be forbidden");
        assert!(candidates > 0, "expansion must have allowed executions at all");
    }

    #[test]
    fn theorem2_rcu_deferred_free_expansion_stays_forbidden() {
        let (abstract_v, impl_v, _) =
            verdicts("RCU-deferred-free", &ExpandOptions::default());
        assert_eq!(abstract_v, Verdict::Forbidden);
        assert_eq!(impl_v, Verdict::Forbidden);
    }

    #[test]
    fn expansion_preserves_allowed_outcomes() {
        // An RCU reader with no grace period anywhere: outcome allowed
        // before and after expansion.
        let p = lkmm_litmus::parse(
            "C rcu-reader-only\n{ x=0; y=0; }\n\
             P0(int *x, int *y) { int r0; int r1; rcu_read_lock(); \
             r0 = READ_ONCE(*y); r1 = READ_ONCE(*x); rcu_read_unlock(); }\n\
             P1(int *x, int *y) { WRITE_ONCE(*x, 1); WRITE_ONCE(*y, 1); }\n\
             exists (0:r0=1 /\\ 0:r1=0)",
        )
        .unwrap();
        let p2 = expand_rcu(&p, &Default::default()).unwrap();
        let model = Lkmm::new();
        let opts = EnumOptions::default();
        let v1 = check_test(&model, &p, &opts).unwrap().verdict;
        let v2 = check_test(&model, &p2, &opts).unwrap().verdict;
        assert_eq!(v1, Verdict::Allowed);
        assert_eq!(v2, Verdict::Allowed);
    }

    #[test]
    fn expansion_grace_period_still_acts_as_strong_fence() {
        // SB with synchronize_rcu on one side and smp_mb on the other is
        // forbidden; the implementation's smp_mb fences preserve that.
        let p = lkmm_litmus::parse(
            "C SB+sync+mb\n{ x=0; y=0; }\n\
             P0(int *x, int *y) { int r0; WRITE_ONCE(*x, 1); synchronize_rcu(); \
             r0 = READ_ONCE(*y); }\n\
             P1(int *x, int *y) { int r0; WRITE_ONCE(*y, 1); smp_mb(); \
             r0 = READ_ONCE(*x); }\n\
             exists (0:r0=0 /\\ 1:r0=0)",
        )
        .unwrap();
        let p2 = expand_rcu(&p, &Default::default()).unwrap();
        let model = Lkmm::new();
        let opts = EnumOptions::default();
        assert_eq!(check_test(&model, &p, &opts).unwrap().verdict, Verdict::Forbidden);
        assert_eq!(check_test(&model, &p2, &opts).unwrap().verdict, Verdict::Forbidden);
    }

    #[test]
    fn rejects_nested_sections_and_branches() {
        let nested = lkmm_litmus::parse(
            "C n\n{ x=0; }\nP0(int *x) { rcu_read_lock(); rcu_read_lock(); \
             WRITE_ONCE(*x, 1); rcu_read_unlock(); rcu_read_unlock(); }\nexists (x=1)",
        )
        .unwrap();
        assert_eq!(
            expand_rcu(&nested, &Default::default()).unwrap_err(),
            ExpandError::NestedRscs { thread: 0 }
        );
        let branched = lkmm_litmus::parse(
            "C b\n{ x=0; }\nP0(int *x) { int r; r = READ_ONCE(*x); \
             if (r == 1) { synchronize_rcu(); } }\nexists (x=0)",
        )
        .unwrap();
        assert_eq!(
            expand_rcu(&branched, &Default::default()).unwrap_err(),
            ExpandError::RcuInsideBranch { thread: 0 }
        );
    }

    #[test]
    fn collision_detection() {
        let t = lkmm_litmus::parse(
            "C c\n{ gc=0; }\nP0(int *gc) { synchronize_rcu(); WRITE_ONCE(*gc, 1); }\n\
             exists (gc=1)",
        )
        .unwrap();
        assert_eq!(
            expand_rcu(&t, &Default::default()).unwrap_err(),
            ExpandError::NameCollision("gc".into())
        );
    }
}

#[cfg(test)]
mod multi_updater_tests {
    use super::*;
    use lkmm::Lkmm;
    use lkmm_exec::enumerate::EnumOptions;
    use lkmm_exec::{check_test, Verdict};

    /// Two concurrent updaters: the expansion includes the gp_lock mutex
    /// (Figure 15 line 6) as a §7 spinlock, and grace periods still act
    /// as strong fences — SB through two expanded synchronize_rcu calls
    /// stays forbidden.
    #[test]
    fn theorem2_with_two_updaters_and_gp_lock() {
        let p = lkmm_litmus::parse(
            "C SB+syncs\n{ x=0; y=0; }\n\
             P0(int *x, int *y) { int r0; WRITE_ONCE(*x, 1); synchronize_rcu(); \
             r0 = READ_ONCE(*y); }\n\
             P1(int *x, int *y) { int r0; WRITE_ONCE(*y, 1); synchronize_rcu(); \
             r0 = READ_ONCE(*x); }\n\
             exists (0:r0=0 /\\ 1:r0=0)",
        )
        .unwrap();
        // One update_counter_and_wait phase keeps the candidate space
        // tractable with two updaters; the gp_lock path and the
        // strong-fence property are what this test exercises.
        let p2 = expand_rcu(&p, &ExpandOptions { phases: 1 }).unwrap();
        // The mutex is present exactly because two threads start GPs.
        assert!(p2.to_litmus_string().contains("spin_lock(*gp_lock)")
            || p2.to_litmus_string().contains("spin_lock(&gp_lock)"));
        let model = Lkmm::new();
        let opts = EnumOptions::default();
        assert_eq!(check_test(&model, &p, &opts).unwrap().verdict, Verdict::Forbidden);
        let r2 = check_test(&model, &p2, &opts).unwrap();
        assert_eq!(r2.verdict, Verdict::Forbidden, "Theorem 2 with gp_lock");
        assert!(r2.candidates > 0);
    }
}
