//! Theorem 1 (RCU guarantee): the RCU axiom is equivalent to the
//! fundamental law.
//!
//! The paper proves that a candidate execution satisfies the Pb and RCU
//! axioms iff it satisfies the fundamental law. We verify this
//! *empirically*: [`check_equivalence`] decides both sides independently
//! on a given execution and reports any disagreement; the test suite runs
//! it across every candidate execution of the litmus library (and the
//! generator fuzzes it further).

use crate::law::satisfies_fundamental_law_with;
use lkmm::LkmmRelations;
use lkmm_exec::Execution;

/// The two sides of Theorem 1 for one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Equivalence {
    /// `acyclic(pb) ∧ irreflexive(rcu-path)` — the axioms side.
    pub axioms: bool,
    /// `∃F. acyclic(pb(F))` — the fundamental-law side.
    pub law: bool,
}

impl Equivalence {
    /// Whether the two formalisations agree, as Theorem 1 guarantees.
    pub fn agree(&self) -> bool {
        self.axioms == self.law
    }
}

/// Evaluate both sides of Theorem 1 on one candidate execution.
///
/// # Examples
///
/// ```
/// use lkmm_exec::enumerate::{enumerate, EnumOptions};
/// use lkmm_rcu::check_equivalence;
///
/// let t = lkmm_litmus::library::by_name("RCU-deferred-free").unwrap().test();
/// for x in enumerate(&t, &EnumOptions::default()).unwrap() {
///     assert!(check_equivalence(&x).agree());
/// }
/// ```
pub fn check_equivalence(x: &Execution) -> Equivalence {
    let r = LkmmRelations::compute(x);
    let axioms = r.pb.is_acyclic()
        && r.rcu_path.is_irreflexive()
        && r.srcu_paths.iter().all(|p| p.is_irreflexive());
    let law = satisfies_fundamental_law_with(x, &r).holds();
    Equivalence { axioms, law }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
    use lkmm_litmus::library;

    #[test]
    fn theorem1_holds_on_every_library_candidate() {
        let mut checked = 0usize;
        for pt in library::all() {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                let eq = check_equivalence(x);
                assert!(
                    eq.agree(),
                    "{}: axioms={} law={}\n{x}",
                    pt.name,
                    eq.axioms,
                    eq.law
                );
                checked += 1;
            })
            .unwrap();
        }
        assert!(checked > 100);
    }

    #[test]
    fn theorem1_holds_on_raw_candidates_of_rcu_tests() {
        let opts = EnumOptions { prune_scpv: false, ..Default::default() };
        for name in ["RCU-MP", "RCU-deferred-free"] {
            let t = library::by_name(name).unwrap().test();
            for_each_execution(&t, &opts, &mut |x| {
                assert!(check_equivalence(x).agree(), "{name}\n{x}");
            })
            .unwrap();
        }
    }

    #[test]
    fn theorem1_on_multi_gp_multi_rscs() {
        // Two RSCSes and two GPs: 16 precedes functions, recursion depth
        // in rcu-path > 1.
        let t = lkmm_litmus::parse(
            "C rcu-2x2\n{ a=0; b=0; c=0; d=0; }\n\
             P0(int *a, int *b, int *c, int *d) { int r0; int r1; \
               rcu_read_lock(); r0 = READ_ONCE(*a); r1 = READ_ONCE(*b); rcu_read_unlock(); \
               rcu_read_lock(); WRITE_ONCE(*c, 1); rcu_read_unlock(); }\n\
             P1(int *a, int *b, int *c, int *d) { int r2; \
               WRITE_ONCE(*b, 1); synchronize_rcu(); WRITE_ONCE(*a, 1); \
               r2 = READ_ONCE(*c); synchronize_rcu(); WRITE_ONCE(*d, 1); }\n\
             exists (0:r0=1 /\\ 0:r1=0)",
        )
        .unwrap();
        let mut checked = 0usize;
        for_each_execution(&t, &EnumOptions::default(), &mut |x| {
            assert!(check_equivalence(x).agree(), "{x}");
            checked += 1;
        })
        .unwrap();
        assert!(checked > 0);
    }
}
