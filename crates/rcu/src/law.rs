//! The fundamental law of RCU (§4.1): existential search over "precedes"
//! functions.

use lkmm::LkmmRelations;
use lkmm_exec::Execution;
use lkmm_litmus::FenceKind;
use lkmm_relation::Relation;

/// Which side a precedes function picks for one (RSCS, GP) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precedes {
    /// `F(RSCS, GP) = RSCS`: the critical section precedes the grace
    /// period.
    Rscs,
    /// `F(RSCS, GP) = GP`: the grace period precedes the critical section.
    Gp,
}

/// The result of the law check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LawOutcome {
    /// A witness precedes function (one entry per (RSCS, GP) pair, in
    /// `(rscs_index, gp_index)` row-major order), if the law holds.
    pub witness: Option<Vec<Precedes>>,
    /// Number of (RSCS, GP) pairs.
    pub pairs: usize,
}

impl LawOutcome {
    /// Whether the execution satisfies the fundamental law.
    pub fn holds(&self) -> bool {
        self.witness.is_some()
    }
}

/// `rcu-fence(F)` for a single (RSCS, GP) choice (§4.1):
///
/// * RSCS precedes GP: `(e1, u) ∈ po` and `e2 = s ∨ (s, e2) ∈ po`;
/// * GP precedes RSCS: `(e1, s) ∈ po` and `e2 = l ∨ (l, e2) ∈ po`.
fn rcu_fence_pair(
    x: &Execution,
    lock: usize,
    unlock: usize,
    sync: usize,
    choice: Precedes,
) -> Relation {
    let n = x.universe();
    let mut r = Relation::empty(n);
    let (before_of, anchor) = match choice {
        Precedes::Rscs => (unlock, sync),
        Precedes::Gp => (sync, lock),
    };
    let firsts: Vec<usize> = (0..n).filter(|&e| x.po.contains(e, before_of)).collect();
    let seconds: Vec<usize> =
        (0..n).filter(|&e| e == anchor || x.po.contains(anchor, e)).collect();
    for &a in &firsts {
        for &b in &seconds {
            r.insert(a, b);
        }
    }
    r
}

/// Check the fundamental law: does a precedes function `F` exist such that
/// `pb(F) = prop ; (strong-fence ∪ rcu-fence(F)) ; hb*` is acyclic?
///
/// `strong-fence` here is the Figure 12 version (`mb ∪ gp`), matching the
/// Theorem 1 statement (equivalence with the Pb *and* RCU axioms).
///
/// The search is exhaustive over the `2^(|RSCS|·|GP|)` assignments —
/// litmus-scale executions have at most a handful of pairs.
///
/// # Examples
///
/// ```
/// use lkmm_exec::enumerate::{enumerate, EnumOptions};
/// use lkmm_rcu::satisfies_fundamental_law;
///
/// let t = lkmm_litmus::library::by_name("RCU-MP").unwrap().test();
/// let weak = enumerate(&t, &EnumOptions::default()).unwrap()
///     .into_iter()
///     .find(|x| x.satisfies_prop(&t.condition.prop))
///     .unwrap();
/// assert!(!satisfies_fundamental_law(&weak).holds()); // Figure 10
/// ```
pub fn satisfies_fundamental_law(x: &Execution) -> LawOutcome {
    let r = LkmmRelations::compute(x);
    satisfies_fundamental_law_with(x, &r)
}

/// As [`satisfies_fundamental_law`], reusing precomputed relations.
pub fn satisfies_fundamental_law_with(x: &Execution, r: &LkmmRelations) -> LawOutcome {
    use lkmm_exec::SrcuKind;
    // (lock, unlock, sync) triples: the RCU domain plus one set per SRCU
    // domain — sections only pair with grace periods of their own domain.
    let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
    let crit: Vec<(usize, usize)> = x.crit().iter().collect();
    let gps: Vec<usize> =
        x.events.iter().filter(|e| e.is_fence(FenceKind::SyncRcu)).map(|e| e.id).collect();
    pairs.extend(crit.iter().flat_map(|&(l, u)| gps.iter().map(move |&s| (l, u, s))));
    for d in x.srcu_domains() {
        let crit_d: Vec<(usize, usize)> = x.srcu_crit(d).iter().collect();
        let gps_d: Vec<usize> = x.srcu_events(SrcuKind::Sync, d).iter().collect();
        pairs.extend(
            crit_d.iter().flat_map(|&(l, u)| gps_d.iter().map(move |&s| (l, u, s))),
        );
    }
    let hb_star = r.hb.reflexive_transitive_closure();

    let assignments = 1usize << pairs.len();
    for mask in 0..assignments {
        let choices: Vec<Precedes> = (0..pairs.len())
            .map(|i| if mask & (1 << i) != 0 { Precedes::Rscs } else { Precedes::Gp })
            .collect();
        let mut rcu_fence = Relation::empty(x.universe());
        for (i, &(l, u, s)) in pairs.iter().enumerate() {
            rcu_fence = rcu_fence.union(&rcu_fence_pair(x, l, u, s, choices[i]));
        }
        let pb_f = r.prop.seq(&r.strong_fence.union(&rcu_fence)).seq(&hb_star);
        if pb_f.is_acyclic() {
            return LawOutcome { witness: Some(choices), pairs: pairs.len() };
        }
    }
    LawOutcome { witness: None, pairs: pairs.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{enumerate, EnumOptions};
    use lkmm_litmus::library;

    fn executions(name: &str) -> (Vec<Execution>, lkmm_litmus::Test) {
        let t = library::by_name(name).unwrap().test();
        (enumerate(&t, &EnumOptions::default()).unwrap(), t)
    }

    #[test]
    fn law_rejects_figure10_and_figure11_weak_outcomes() {
        for name in ["RCU-MP", "RCU-deferred-free"] {
            let (execs, t) = executions(name);
            let mut weak_seen = 0;
            for x in &execs {
                let out = satisfies_fundamental_law(x);
                if x.satisfies_prop(&t.condition.prop) {
                    weak_seen += 1;
                    assert!(!out.holds(), "{name}: law must reject the weak outcome");
                }
            }
            assert!(weak_seen > 0, "{name}: weak outcome missing");
        }
    }

    #[test]
    fn law_accepts_strong_outcomes_with_witness() {
        let (execs, t) = executions("RCU-MP");
        let mut accepted = 0;
        for x in &execs {
            if !x.satisfies_prop(&t.condition.prop) {
                let out = satisfies_fundamental_law(x);
                if out.holds() {
                    accepted += 1;
                    assert_eq!(out.pairs, 1, "one RSCS × one GP");
                    assert_eq!(out.witness.as_ref().unwrap().len(), 1);
                }
            }
        }
        assert!(accepted > 0, "some strong outcome must satisfy the law");
    }

    #[test]
    fn law_is_trivial_without_rcu() {
        // With no RSCS and no GP the law degenerates to the Pb axiom.
        let (execs, _) = executions("SB+mbs");
        for x in &execs {
            let out = satisfies_fundamental_law(x);
            assert_eq!(out.pairs, 0);
            let r = LkmmRelations::compute(x);
            assert_eq!(out.holds(), r.pb.is_acyclic());
        }
    }

    #[test]
    fn both_precedes_choices_fail_on_figure10() {
        // §4.1 walks through both cases for Figure 10: each produces a
        // pb(F) cycle. Verify by checking the law outcome has no witness
        // despite 2 assignments being tried.
        let (execs, t) = executions("RCU-MP");
        let weak = execs.iter().find(|x| x.satisfies_prop(&t.condition.prop)).unwrap();
        let out = satisfies_fundamental_law(weak);
        assert_eq!(out.pairs, 1);
        assert!(out.witness.is_none());
    }
}
