//! Read-Copy-Update: the fundamental law, the RCU axiom, their
//! equivalence (Theorem 1), and the Figure 15 implementation (Theorem 2).
//!
//! The paper formalises RCU twice:
//!
//! * **The fundamental law** (§4.1): *read-side critical sections cannot
//!   span grace periods*. Formally, there must exist a "precedes" function
//!   `F` choosing, for every (RSCS, GP) pair, which one precedes the
//!   other, such that the enlarged `pb(F)` relation is acyclic
//!   ([`law::satisfies_fundamental_law`]).
//! * **The RCU axiom** (§4.2, Figure 12): `rcu-path` — sequences of
//!   grace-period and critical-section links with at least as many GPs as
//!   RSCSes — must be irreflexive (computed in `lkmm::LkmmRelations`).
//!
//! **Theorem 1** states the two are equivalent (given the Pb axiom);
//! [`theorem1::check_equivalence`] verifies this on every candidate
//! execution it is given, and the test suite runs it across the whole
//! litmus library.
//!
//! [`callback`] extends the runtime with the asynchronous primitives the
//! paper's §7 leaves as future work (`call_rcu`, `rcu_barrier`).
//!
//! **Theorem 2** states that the userspace RCU implementation of
//! Figure 15 satisfies the law: [`impl_verify::expand_rcu`] substitutes
//! the implementation into a litmus test (grace-period wait loops modelled
//! by their final iteration via `__assume`), and the test suite checks
//! that the expanded programs forbid exactly what the abstract RCU
//! primitives forbid. [`urcu`] is the same algorithm as a *runtime*
//! library on real threads, stress-tested for the grace-period guarantee.

pub mod callback;
pub mod impl_verify;
pub mod law;
pub mod theorem1;
pub mod urcu;

pub use callback::CallRcu;
pub use impl_verify::{expand_rcu, ExpandError};
pub use law::{satisfies_fundamental_law, LawOutcome};
pub use theorem1::check_equivalence;
pub use urcu::Urcu;
