//! Asynchronous grace periods: `call_rcu` and `rcu_barrier`.
//!
//! The paper's §7 lists "asynchronous RCU grace period primitives,
//! including `call_rcu` and `rcu_barrier`" as future work for the
//! axiomatic model. At the *runtime* level they compose naturally with
//! the Figure 15 algorithm: [`CallRcu`] runs a reclaimer thread that
//! batches registered callbacks, waits one grace period via
//! [`Urcu::synchronize_rcu`], and then invokes them — the deferred-free
//! pattern of Figure 11 without blocking the updater.

use crate::urcu::Urcu;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Callback = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<State>,
    cv: Condvar,
    shutdown: AtomicBool,
}

struct State {
    /// Callbacks waiting for the *next* grace period.
    pending: VecDeque<(u64, Callback)>,
    /// Ticket counter: a callback completes once `completed >= ticket`.
    next_ticket: u64,
    completed: u64,
}

/// An RCU domain with asynchronous callback processing.
///
/// Wraps a [`Urcu`] and owns a background reclaimer thread.
///
/// # Examples
///
/// ```
/// use lkmm_rcu::callback::CallRcu;
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let rcu = CallRcu::new(2);
/// let freed = Arc::new(AtomicUsize::new(0));
/// let f = freed.clone();
/// rcu.call_rcu(move || { f.fetch_add(1, Ordering::SeqCst); });
/// rcu.rcu_barrier(); // waits for the callback to have run
/// assert_eq!(freed.load(Ordering::SeqCst), 1);
/// ```
pub struct CallRcu {
    rcu: Arc<Urcu>,
    shared: Arc<Shared>,
    reclaimer: Option<JoinHandle<()>>,
}

impl CallRcu {
    /// A new domain for `max_threads` reader threads.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is 0.
    pub fn new(max_threads: usize) -> Self {
        let rcu = Arc::new(Urcu::new(max_threads));
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                pending: VecDeque::new(),
                next_ticket: 0,
                completed: 0,
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let reclaimer = {
            let rcu = rcu.clone();
            let shared = shared.clone();
            std::thread::spawn(move || reclaimer_loop(&rcu, &shared))
        };
        CallRcu { rcu, shared, reclaimer: Some(reclaimer) }
    }

    /// The underlying synchronous RCU domain (for readers and for
    /// synchronous grace periods).
    pub fn domain(&self) -> &Urcu {
        &self.rcu
    }

    /// Register `callback` to run after a subsequent grace period — every
    /// read-side critical section active *now* will have ended before it
    /// runs. Never blocks.
    pub fn call_rcu(&self, callback: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock().expect("queue poisoned");
        let ticket = q.next_ticket;
        q.next_ticket += 1;
        q.pending.push_back((ticket, Box::new(callback)));
        drop(q);
        self.shared.cv.notify_all();
    }

    /// Wait until every callback registered *before* this call has run
    /// (the kernel's `rcu_barrier`).
    pub fn rcu_barrier(&self) {
        let mut q = self.shared.queue.lock().expect("queue poisoned");
        let target = q.next_ticket;
        while q.completed < target {
            q = self.shared.cv.wait(q).expect("queue poisoned");
        }
    }
}

impl Drop for CallRcu {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(h) = self.reclaimer.take() {
            let _ = h.join();
        }
    }
}

fn reclaimer_loop(rcu: &Urcu, shared: &Shared) {
    loop {
        // Take the current batch.
        let batch: Vec<(u64, Callback)> = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            while q.pending.is_empty() {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.cv.wait(q).expect("queue poisoned");
            }
            q.pending.drain(..).collect()
        };
        // One grace period covers the whole batch: every RSCS that could
        // observe the about-to-be-retired data has ended afterwards.
        rcu.synchronize_rcu();
        let mut max_ticket = 0;
        for (ticket, cb) in batch {
            cb();
            max_ticket = max_ticket.max(ticket + 1);
        }
        let mut q = shared.queue.lock().expect("queue poisoned");
        q.completed = q.completed.max(max_ticket);
        drop(q);
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn callbacks_run_after_barrier() {
        let rcu = CallRcu::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = counter.clone();
            rcu.call_rcu(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        rcu.rcu_barrier();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn barrier_with_no_callbacks_returns() {
        let rcu = CallRcu::new(1);
        rcu.rcu_barrier();
    }

    #[test]
    fn drop_joins_reclaimer_without_running_pending() {
        // Dropping with an empty queue terminates cleanly.
        let rcu = CallRcu::new(2);
        rcu.call_rcu(|| {});
        rcu.rcu_barrier();
        drop(rcu);
    }

    /// The deferred-free pattern of Figure 11, asynchronous edition:
    /// readers never observe poisoned slots even though the updater never
    /// blocks for a grace period itself.
    #[test]
    fn asynchronous_deferred_free_guarantee() {
        const READERS: usize = 2;
        const POISON: usize = usize::MAX;
        let rcu = Arc::new(CallRcu::new(READERS));
        let slots: Arc<[AtomicUsize; 2]> =
            Arc::new([AtomicUsize::new(1), AtomicUsize::new(POISON)]);
        let current = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for tid in 0..READERS {
            let (rcu, slots, current, stop) =
                (rcu.clone(), slots.clone(), current.clone(), stop.clone());
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let _g = rcu.domain().read_guard(tid);
                    let idx = current.load(Ordering::Relaxed);
                    let v = slots[idx].load(Ordering::Relaxed);
                    assert_ne!(v, POISON, "reader observed an async-freed object");
                }
            }));
        }

        for gen in 2..80usize {
            let old = current.load(Ordering::Relaxed);
            // The *new* slot must be safe to reuse: wait for previous
            // deferred frees to that slot before recycling it.
            rcu.rcu_barrier();
            slots[1 - old].store(gen, Ordering::Relaxed);
            current.store(1 - old, Ordering::Relaxed);
            let slots2 = slots.clone();
            rcu.call_rcu(move || {
                slots2[old].store(POISON, Ordering::Relaxed);
            });
        }
        rcu.rcu_barrier();
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
    }
}
