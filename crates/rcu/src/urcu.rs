//! A runtime implementation of Figure 15: userspace RCU on real threads.
//!
//! This is the same algorithm the paper verifies (Desnoyers et al.,
//! "User-Level Implementations of Read-Copy Update", as used by LTTng),
//! transcribed to Rust atomics with `SeqCst` fences standing in for
//! `smp_mb()`. Readers are wait-free; `synchronize_rcu` waits for every
//! pre-existing read-side critical section to complete.

use std::sync::Mutex;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

/// `GP_PHASE` bit of the grace-period counter (Figure 15, line 1).
const GP_PHASE: usize = 0x10000;
/// Mask of the nesting counter bits (Figure 15, line 2).
const CS_MASK: usize = 0x0ffff;

/// Userspace RCU domain for up to `MAX_THREADS` registered reader threads.
///
/// Thread ids are assigned by the caller (0-based, dense). Readers call
/// [`Urcu::read_lock`]/[`Urcu::read_unlock`] (or use the RAII
/// [`Urcu::read_guard`]); updaters call [`Urcu::synchronize_rcu`], which
/// returns only after every critical section that was running when it was
/// called has finished — the *fundamental law of RCU*.
///
/// # Examples
///
/// ```
/// use lkmm_rcu::Urcu;
///
/// let rcu = Urcu::new(2);
/// {
///     let _guard = rcu.read_guard(0); // thread 0's critical section
/// } // dropped: section closed
/// rcu.synchronize_rcu(); // no readers: returns immediately
/// ```
pub struct Urcu {
    /// `rc[i]`: per-thread nesting counter plus phase bit (line 4).
    rc: Vec<AtomicUsize>,
    /// Grace-period control variable (line 5).
    gc: AtomicUsize,
    /// Serialises grace periods (line 6).
    gp_lock: Mutex<()>,
}

impl Urcu {
    /// A new RCU domain for `max_threads` reader threads.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is 0.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0, "need at least one thread slot");
        Urcu {
            rc: (0..max_threads).map(|_| AtomicUsize::new(0)).collect(),
            gc: AtomicUsize::new(1),
            gp_lock: Mutex::new(()),
        }
    }

    /// Number of registered reader slots.
    pub fn max_threads(&self) -> usize {
        self.rc.len()
    }

    /// Enter a read-side critical section (Figure 15, lines 8–18).
    /// Nesting is supported up to `CS_MASK` levels.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range or nesting overflows the counter.
    pub fn read_lock(&self, tid: usize) {
        let tmp = self.rc[tid].load(Ordering::Relaxed); // line 10
        if tmp & CS_MASK == 0 {
            // line 13: copy the current phase.
            self.rc[tid].store(self.gc.load(Ordering::Relaxed), Ordering::Relaxed);
            fence(Ordering::SeqCst); // line 14: smp_mb()
        } else {
            assert!(tmp & CS_MASK < CS_MASK, "RSCS nesting overflow");
            self.rc[tid].store(tmp + 1, Ordering::Relaxed); // line 16
        }
    }

    /// Leave a read-side critical section (Figure 15, lines 20–25).
    ///
    /// # Panics
    ///
    /// Panics if the thread is not inside a critical section.
    pub fn read_unlock(&self, tid: usize) {
        fence(Ordering::SeqCst); // line 23: smp_mb()
        let val = self.rc[tid].load(Ordering::Relaxed);
        assert!(val & CS_MASK != 0, "rcu_read_unlock without rcu_read_lock");
        self.rc[tid].store(val - 1, Ordering::Relaxed); // line 24
    }

    /// RAII critical section.
    pub fn read_guard(&self, tid: usize) -> ReadGuard<'_> {
        self.read_lock(tid);
        ReadGuard { rcu: self, tid }
    }

    /// Whether thread `i` is in a critical section that started before the
    /// current grace-period phase (Figure 15, lines 26–31).
    fn gp_ongoing(&self, i: usize) -> bool {
        let val = self.rc[i].load(Ordering::Relaxed); // line 27
        (val & CS_MASK != 0) && ((val ^ self.gc.load(Ordering::Relaxed)) & GP_PHASE != 0)
    }

    /// Figure 15, lines 33–41.
    fn update_counter_and_wait(&self) {
        // line 36: flip the phase.
        self.gc.fetch_xor(GP_PHASE, Ordering::Relaxed);
        for i in 0..self.rc.len() {
            while self.gp_ongoing(i) {
                std::thread::yield_now(); // msleep(10) in the original
            }
        }
    }

    /// Wait for a grace period (Figure 15, lines 43–50): every read-side
    /// critical section active at the call has completed on return.
    pub fn synchronize_rcu(&self) {
        fence(Ordering::SeqCst); // line 44
        {
            let _gp = self.gp_lock.lock().expect("RCU grace-period lock poisoned");
            self.update_counter_and_wait(); // line 46
            self.update_counter_and_wait(); // line 47
        } // line 48
        fence(Ordering::SeqCst); // line 49
    }
}

/// RAII guard returned by [`Urcu::read_guard`].
pub struct ReadGuard<'a> {
    rcu: &'a Urcu,
    tid: usize,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.rcu.read_unlock(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn uncontended_grace_period_returns() {
        let rcu = Urcu::new(4);
        rcu.synchronize_rcu();
        rcu.synchronize_rcu();
    }

    #[test]
    fn nesting_tracks_depth() {
        let rcu = Urcu::new(1);
        rcu.read_lock(0);
        rcu.read_lock(0);
        rcu.read_unlock(0);
        // Still inside: gp_ongoing may be true; after final unlock the
        // counter is clear.
        rcu.read_unlock(0);
        assert_eq!(rcu.rc[0].load(Ordering::Relaxed) & CS_MASK, 0);
    }

    #[test]
    #[should_panic(expected = "without rcu_read_lock")]
    fn unlock_without_lock_panics() {
        Urcu::new(1).read_unlock(0);
    }

    /// The fundamental law at runtime: a writer retires an object only
    /// after a grace period, so no reader may ever observe a retired
    /// ("poisoned") object.
    #[test]
    fn grace_period_guarantee_under_stress() {
        const READERS: usize = 3;
        const UPDATES: usize = 2_000;
        const POISON: usize = usize::MAX;

        let rcu = Arc::new(Urcu::new(READERS));
        // Two slots; `current` names the live one.
        let slots: Arc<[AtomicUsize; 2]> =
            Arc::new([AtomicUsize::new(1), AtomicUsize::new(POISON)]);
        let current = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for tid in 0..READERS {
            let rcu = rcu.clone();
            let slots = slots.clone();
            let current = current.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let _g = rcu.read_guard(tid);
                    let idx = current.load(Ordering::Relaxed);
                    let v = slots[idx].load(Ordering::Relaxed);
                    assert_ne!(v, POISON, "reader observed a freed object");
                    reads += 1;
                }
                reads
            }));
        }

        for gen in 2..2 + UPDATES {
            let old = current.load(Ordering::Relaxed);
            let new = 1 - old;
            slots[new].store(gen, Ordering::Relaxed);
            current.store(new, Ordering::Relaxed);
            rcu.synchronize_rcu();
            // Grace period elapsed: no reader can still see `old`.
            slots[old].store(POISON, Ordering::Relaxed);
        }
        stop.store(true, Ordering::Release);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers must have made progress");
    }

    #[test]
    fn concurrent_updaters_serialise() {
        let rcu = Arc::new(Urcu::new(2));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let rcu = rcu.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    rcu.synchronize_rcu();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
