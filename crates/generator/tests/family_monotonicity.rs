//! Family sweeps (§5's "systematic variations … with all combinations of
//! fences or dependencies") plus the key sanity law: *strengthening an
//! adornment never allows more behaviour*.

use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, Verdict};
use lkmm_generator::family::{family, stronger_or_equal};
use lkmm_generator::{generate, Edge, Extremity, InternalKind};
use Extremity::{R, W};

fn verdicts_of_family(base: &[Edge]) -> Vec<(Vec<Edge>, Verdict)> {
    let model = Lkmm::new();
    let opts = EnumOptions::default();
    family(base)
        .unwrap()
        .into_iter()
        .map(|cycle| {
            let t = generate(&cycle).unwrap();
            let v = check_test(&model, &t, &opts)
                .unwrap_or_else(|e| panic!("{}: {e}", t.name))
                .verdict;
            (cycle, v)
        })
        .collect()
}

/// Pointwise-comparable variants must have monotone verdicts.
fn assert_monotone(results: &[(Vec<Edge>, Verdict)]) {
    for (a, va) in results {
        for (b, vb) in results {
            let pointwise_stronger = a.iter().zip(b.iter()).all(|(ea, eb)| match (ea, eb) {
                (
                    Edge::Internal { kind: ka, .. },
                    Edge::Internal { kind: kb, .. },
                ) => stronger_or_equal(*ka, *kb),
                _ => ea == eb,
            });
            if pointwise_stronger && *va == Verdict::Forbidden {
                assert_eq!(
                    *vb,
                    Verdict::Forbidden,
                    "strengthening {a:?} -> {b:?} un-forbade the outcome"
                );
            }
        }
    }
}

#[test]
fn mp_family_verdicts_and_monotonicity() {
    let base = [
        Edge::internal(InternalKind::Po, W, W),
        Edge::Rfe,
        Edge::internal(InternalKind::Po, R, R),
        Edge::Fre,
    ];
    let results = verdicts_of_family(&base);
    assert_eq!(results.len(), 35);
    assert_monotone(&results);

    // Spot-check the corners against the paper's discussion.
    let verdict_of = |w: InternalKind, r: InternalKind| {
        results
            .iter()
            .find(|(c, _)| {
                matches!(c[0], Edge::Internal { kind, .. } if kind == w)
                    && matches!(c[2], Edge::Internal { kind, .. } if kind == r)
            })
            .unwrap()
            .1
    };
    use InternalKind::*;
    assert_eq!(verdict_of(Po, Po), Verdict::Allowed); // MP
    assert_eq!(verdict_of(Wmb, Rmb), Verdict::Forbidden); // Figure 2
    assert_eq!(verdict_of(Mb, Mb), Verdict::Forbidden);
    assert_eq!(verdict_of(Release, Acquire), Verdict::Forbidden);
    assert_eq!(verdict_of(Wmb, Po), Verdict::Allowed); // one-sided
    assert_eq!(verdict_of(Po, Rmb), Verdict::Allowed);
    // Alpha: plain address dependency on the read side is not enough…
    assert_eq!(verdict_of(Wmb, Addr), Verdict::Allowed);
    // …but with smp_read_barrier_depends it is (strong-rrdep).
    assert_eq!(verdict_of(Wmb, AddrRbDep), Verdict::Forbidden);
    // synchronize_rcu as a strong fence.
    assert_eq!(verdict_of(SyncRcu, Po), Verdict::Allowed);
    assert_eq!(verdict_of(SyncRcu, Rmb), Verdict::Forbidden);
}

#[test]
fn lb_family_verdicts_and_monotonicity() {
    let base = [
        Edge::internal(InternalKind::Po, R, W),
        Edge::Rfe,
        Edge::internal(InternalKind::Po, R, W),
        Edge::Rfe,
    ];
    let results = verdicts_of_family(&base);
    assert_eq!(results.len(), 81);
    assert_monotone(&results);
    let verdict_of = |a: InternalKind, b: InternalKind| {
        results
            .iter()
            .find(|(c, _)| {
                matches!(c[0], Edge::Internal { kind, .. } if kind == a)
                    && matches!(c[2], Edge::Internal { kind, .. } if kind == b)
            })
            .unwrap()
            .1
    };
    use InternalKind::*;
    assert_eq!(verdict_of(Po, Po), Verdict::Allowed); // LB
    // One dependency on either side suffices with anything ordering the
    // other (the LKMM respects dependencies to writes: no thin air).
    assert_eq!(verdict_of(Ctrl, Mb), Verdict::Forbidden); // Figure 4
    assert_eq!(verdict_of(Data, Data), Verdict::Forbidden);
    assert_eq!(verdict_of(Ctrl, Po), Verdict::Allowed);
    assert_eq!(verdict_of(Po, Mb), Verdict::Allowed);
}

#[test]
fn sb_family_needs_strong_fences_on_both_sides() {
    let base = [
        Edge::internal(InternalKind::Po, W, R),
        Edge::Fre,
        Edge::internal(InternalKind::Po, W, R),
        Edge::Fre,
    ];
    let results = verdicts_of_family(&base);
    assert_monotone(&results);
    for (cycle, v) in &results {
        let strong = |e: &Edge| {
            matches!(
                e,
                Edge::Internal { kind: InternalKind::Mb | InternalKind::SyncRcu, .. }
            )
        };
        let both_strong = strong(&cycle[0]) && strong(&cycle[2]);
        // SB is forbidden exactly when both sides carry a strong fence —
        // release/acquire/rmb/wmb never order a write before a later read.
        assert_eq!(
            *v,
            if both_strong { Verdict::Forbidden } else { Verdict::Allowed },
            "{cycle:?}"
        );
    }
}
