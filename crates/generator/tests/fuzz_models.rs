//! Model fuzzing over generated cycles: on every candidate execution of
//! every generated test, the model hierarchy SC ⊆ TSO ⊆ LKMM must hold,
//! the cat-interpreted LKMM must agree with the native one, and
//! Theorem 1's equivalence must hold.

use lkmm::Lkmm;
use lkmm_cat::linux_kernel_model;
use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
use lkmm_exec::ConsistencyModel;
use lkmm_generator::{cycles_up_to, default_alphabet, generate};
use lkmm_models::{Sc, X86Tso};

#[test]
fn generated_cycles_respect_model_hierarchy_and_cat_agreement() {
    let cycles = cycles_up_to(4, &default_alphabet());
    assert!(cycles.len() > 100);
    let cat = linux_kernel_model();
    let native = Lkmm::new();
    let mut candidates = 0usize;
    for cycle in &cycles {
        let test = generate(cycle).unwrap();
        for_each_execution(&test, &EnumOptions::default(), &mut |x| {
            candidates += 1;
            let l = native.allows(x);
            assert_eq!(cat.allows(x), l, "cat/native disagree on {}\n{x}", test.name);
            if Sc.allows(x) {
                assert!(X86Tso.allows(x), "SC ⊄ TSO on {}", test.name);
            }
            if X86Tso.allows(x) {
                assert!(l, "TSO ⊄ LKMM on {}", test.name);
            }
            let eq = lkmm_rcu_equiv(x);
            assert!(eq, "Theorem 1 violated on {}\n{x}", test.name);
        })
        .unwrap_or_else(|e| panic!("{}: {e}", test.name));
    }
    assert!(candidates > 500, "only {candidates} candidates fuzzed");
}

fn lkmm_rcu_equiv(x: &lkmm_exec::Execution) -> bool {
    lkmm_rcu::check_equivalence(x).agree()
}

#[test]
fn every_length5_cycle_generates_and_enumerates() {
    // Broader structural sweep: length-5 cycles must all generate and
    // enumerate without error (verdicts exercised above and in benches).
    let cycles = cycles_up_to(5, &default_alphabet());
    let longer: Vec<_> = cycles.iter().filter(|c| c.len() == 5).collect();
    assert!(longer.len() > 300);
    for (i, cycle) in longer.iter().enumerate() {
        // Sample every 7th to keep the test fast; the bench sweeps all.
        if i % 7 != 0 {
            continue;
        }
        let test = generate(cycle).unwrap();
        let mut n = 0usize;
        for_each_execution(&test, &EnumOptions::default(), &mut |_| n += 1)
            .unwrap_or_else(|e| panic!("{}: {e}", test.name));
        assert!(n > 0, "{} has no candidates", test.name);
    }
}
