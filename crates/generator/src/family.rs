//! Test families: "systematic variations of several tests with all
//! combinations of fences or dependencies" (paper §5).
//!
//! A *family* fixes a cycle's skeleton (the external communication edges
//! and the extremities of each internal edge) and sweeps every well-formed
//! adornment of the internal edges — e.g. the MP family ranges over
//! `MP+po+po`, `MP+wmb+rmb`, `MP+mb+addr`, …

use crate::{generate, validate, Edge, GenError, InternalKind};
use lkmm_litmus::ast::Test;

/// All adornments to sweep over.
pub const ALL_KINDS: [InternalKind; 11] = [
    InternalKind::Po,
    InternalKind::Ctrl,
    InternalKind::Data,
    InternalKind::Addr,
    InternalKind::AddrRbDep,
    InternalKind::Rmb,
    InternalKind::Wmb,
    InternalKind::Mb,
    InternalKind::SyncRcu,
    InternalKind::Release,
    InternalKind::Acquire,
];

/// Every variation of `base` obtained by re-adorning its internal edges
/// with all well-formed combinations (the external skeleton is kept).
///
/// # Errors
///
/// Returns [`GenError`] if the base cycle itself is invalid.
pub fn family(base: &[Edge]) -> Result<Vec<Vec<Edge>>, GenError> {
    validate(base)?;
    let slots: Vec<usize> = base
        .iter()
        .enumerate()
        .filter(|(_, e)| !e.is_external())
        .map(|(i, _)| i)
        .collect();
    let mut out = Vec::new();
    let mut current = base.to_vec();
    fn rec(
        slots: &[usize],
        k: usize,
        current: &mut Vec<Edge>,
        out: &mut Vec<Vec<Edge>>,
    ) {
        if k == slots.len() {
            if validate(current).is_ok() {
                out.push(current.clone());
            }
            return;
        }
        let i = slots[k];
        // `slots` was built from the non-external positions of this very
        // vector and only internal adornments are ever written back, but
        // recurse past a surprise rather than panic: a skipped slot just
        // keeps its existing edge.
        let Edge::Internal { src, dst, .. } = current[i] else {
            rec(slots, k + 1, current, out);
            return;
        };
        for kind in ALL_KINDS {
            let candidate = Edge::internal(kind, src, dst);
            if candidate.well_formed() {
                current[i] = candidate;
                rec(slots, k + 1, current, out);
            }
        }
    }
    rec(&slots, 0, &mut current, &mut out);
    Ok(out)
}

/// Generate all family variations as litmus tests.
///
/// # Errors
///
/// Returns [`GenError`] if the base cycle is invalid, or if any swept
/// variation fails to generate (every variation is re-validated before
/// generation, so this indicates a generator bug rather than bad input —
/// but it surfaces as an error, not a panic, since sweeps run inside
/// long campaigns).
pub fn family_tests(base: &[Edge]) -> Result<Vec<Test>, GenError> {
    family(base)?.iter().map(|c| generate(c)).collect()
}

/// Partial strength order on adornments: `stronger_or_equal(a, b)` means
/// every execution ordered by `a` is ordered by `b` under the LKMM.
/// Used by the monotonicity property tests: strengthening an internal
/// edge can only shrink the allowed behaviours.
pub fn stronger_or_equal(weak: InternalKind, strong: InternalKind) -> bool {
    use InternalKind::*;
    if weak == strong {
        return true;
    }
    match (weak, strong) {
        // Plain po is the bottom.
        (Po, _) => true,
        // Full and RCU fences are top (gp joins mb in strong-fence), and
        // are interchangeable for ordering purposes.
        (_, Mb) | (_, SyncRcu) => true,
        // An address dependency plus rb-dep is stronger than without.
        (Addr, AddrRbDep) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Extremity::{R, W};

    fn mp_base() -> Vec<Edge> {
        vec![
            Edge::internal(InternalKind::Po, W, W),
            Edge::Rfe,
            Edge::internal(InternalKind::Po, R, R),
            Edge::Fre,
        ]
    }

    #[test]
    fn mp_family_size() {
        // W→W slot: Po, Wmb, Mb, Sync, Release = 5.
        // R→R slot: Po, Addr, AddrRbDep, Rmb, Mb, Sync, Acquire = 7.
        let fam = family(&mp_base()).unwrap();
        assert_eq!(fam.len(), 5 * 7);
        // All distinct and all generate.
        let tests = family_tests(&mp_base()).unwrap();
        let names: std::collections::BTreeSet<String> =
            tests.iter().map(|t| t.name.clone()).collect();
        assert_eq!(names.len(), tests.len());
    }

    #[test]
    fn lb_family_size() {
        // Two R→W slots: Po, Ctrl, Data, Addr, AddrRbDep, Mb, Sync,
        // Release, Acquire = 9 each.
        let base = vec![
            Edge::internal(InternalKind::Po, R, W),
            Edge::Rfe,
            Edge::internal(InternalKind::Po, R, W),
            Edge::Rfe,
        ];
        assert_eq!(family(&base).unwrap().len(), 81);
    }

    #[test]
    fn strength_order_sanity() {
        use InternalKind::*;
        assert!(stronger_or_equal(Po, Mb));
        assert!(stronger_or_equal(Wmb, Mb));
        assert!(stronger_or_equal(Addr, AddrRbDep));
        assert!(stronger_or_equal(Mb, SyncRcu));
        assert!(!stronger_or_equal(Mb, Wmb));
        assert!(!stronger_or_equal(Rmb, Wmb));
        assert!(!stronger_or_equal(Ctrl, Data));
    }
}
