//! Sweep driver: check every test of a generated family against a model.
//!
//! This is the §5 work-flow ("systematically generate thousands of tests
//! … and run them against the model") as one call. Checking goes through
//! the parallel pipeline ([`lkmm_exec::check_test_pipelined`]): each
//! test's candidate executions are fanned out to worker threads, so a
//! sweep saturates the machine without the caller managing threads.
//! Verdicts are identical for every job count.

use crate::family::family_tests;
use crate::{Edge, GenError};
use lkmm_exec::enumerate::{EnumError, EnumOptions};
use lkmm_exec::{check_test_pipelined, ConsistencyModel, PipelineOptions, TestResult};
use lkmm_litmus::ast::Test;
use std::fmt;

/// One checked family member.
#[derive(Clone, Debug)]
pub struct SweepEntry {
    /// The generated test.
    pub test: Test,
    /// Its verdict under the swept model.
    pub result: TestResult,
}

/// Sweep failure: generation or enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepError {
    /// The base cycle is invalid.
    Generate(GenError),
    /// A generated test failed to enumerate (names the test).
    Enumerate(String, EnumError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Generate(e) => write!(f, "{e}"),
            SweepError::Enumerate(name, e) => write!(f, "{name}: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Check every variation of `base` (see [`crate::family::family`])
/// against `model`, returning the entries in generation order.
///
/// # Errors
///
/// See [`SweepError`].
///
/// # Examples
///
/// ```
/// use lkmm_exec::enumerate::EnumOptions;
/// use lkmm_exec::{PipelineOptions, Verdict};
/// use lkmm_generator::sweep::sweep_family;
/// use lkmm_generator::{Edge, Extremity::{R, W}, InternalKind};
///
/// let mp = [
///     Edge::internal(InternalKind::Po, W, W),
///     Edge::Rfe,
///     Edge::internal(InternalKind::Po, R, R),
///     Edge::Fre,
/// ];
/// let entries = sweep_family(
///     &lkmm_exec::model::AllowAll,
///     &mp,
///     &EnumOptions::default(),
///     &PipelineOptions::default(),
/// ).unwrap();
/// assert_eq!(entries.len(), 35); // 5 × 7 well-formed MP adornments
/// assert!(entries.iter().all(|e| e.result.verdict == Verdict::Allowed));
/// ```
pub fn sweep_family(
    model: &dyn ConsistencyModel,
    base: &[Edge],
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> Result<Vec<SweepEntry>, SweepError> {
    let tests = family_tests(base).map_err(SweepError::Generate)?;
    tests
        .into_iter()
        .map(|test| {
            let result = check_test_pipelined(model, &test, opts, pipe)
                .map_err(|e| SweepError::Enumerate(test.name.clone(), e))?;
            Ok(SweepEntry { test, result })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Extremity::{R, W};
    use crate::InternalKind;
    use lkmm_exec::model::AllowAll;
    use lkmm_exec::Verdict;

    fn mp_base() -> Vec<Edge> {
        vec![
            Edge::internal(InternalKind::Po, W, W),
            Edge::Rfe,
            Edge::internal(InternalKind::Po, R, R),
            Edge::Fre,
        ]
    }

    #[test]
    fn sweep_is_job_count_invariant() {
        let opts = EnumOptions::default();
        let base = mp_base();
        let seq = sweep_family(
            &AllowAll,
            &base,
            &opts,
            &PipelineOptions { jobs: 1, ..Default::default() },
        )
        .unwrap();
        let par = sweep_family(
            &AllowAll,
            &base,
            &opts,
            &PipelineOptions { jobs: 4, ..Default::default() },
        )
        .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.test.name, b.test.name);
            assert_eq!(a.result, b.result, "{}", a.test.name);
        }
        // Every cycle is observable with no axioms.
        assert!(seq.iter().all(|e| e.result.verdict == Verdict::Allowed));
    }

    #[test]
    fn invalid_base_reports_generation_error() {
        let err = sweep_family(
            &AllowAll,
            &[Edge::Rfe],
            &EnumOptions::default(),
            &PipelineOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SweepError::Generate(_)));
    }
}
