//! diy-style systematic litmus-test generation (§5: "we used the diy7
//! tool to systematically generate thousands of tests with cycles of
//! edges of increasing size").
//!
//! A *critical cycle* is a sequence of edges — external communications
//! (`Rfe`, `Fre`, `Coe`) and internal program-order edges adorned with
//! dependencies, fences or acquire/release annotations — that would form
//! a forbidden-or-allowed cycle in an execution. [`generate`] turns a
//! cycle into a litmus test whose `exists` condition observes exactly
//! that cycle; [`cycles_up_to`] enumerates all well-formed cycles up to a
//! length bound (canonicalised up to rotation).
//!
//! # Examples
//!
//! ```
//! use lkmm_generator::{generate, Edge, Extremity, InternalKind};
//! use Extremity::{R, W};
//!
//! // The SB+mbs cycle: W -mb→ R -fre→ W -mb→ R -fre→ (wrap).
//! let cycle = [
//!     Edge::internal(InternalKind::Mb, W, R),
//!     Edge::Fre,
//!     Edge::internal(InternalKind::Mb, W, R),
//!     Edge::Fre,
//! ];
//! let test = generate(&cycle).unwrap();
//! assert_eq!(test.threads.len(), 2);
//! ```

pub mod family;
pub mod sweep;

use lkmm_litmus::ast::{AddrExpr, BinOp, Expr, FenceKind, Stmt, Test, Thread};
use lkmm_litmus::cond::{CondVal, Condition, Prop, Quantifier, StateTerm};
use std::fmt;

/// Event extremity: read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Extremity {
    R,
    W,
}

/// Adornment of an internal (same-thread) edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InternalKind {
    /// Plain program order, no ordering primitive.
    Po,
    /// Control dependency (source must be a read, destination a write).
    Ctrl,
    /// Data dependency (read to write).
    Data,
    /// Address dependency (from a read).
    Addr,
    /// Address dependency plus `smp_read_barrier_depends` (strong-rrdep).
    AddrRbDep,
    /// `smp_rmb` between two reads.
    Rmb,
    /// `smp_wmb` between two writes.
    Wmb,
    /// `smp_mb`.
    Mb,
    /// `synchronize_rcu` used as a strong fence.
    SyncRcu,
    /// Destination write is a `smp_store_release`.
    Release,
    /// Source read is a `smp_load_acquire`.
    Acquire,
}

/// One edge of a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Edge {
    /// External reads-from: a write read by a read on another thread.
    Rfe,
    /// External from-read: a read that misses a write on another thread.
    Fre,
    /// External coherence: two writes to the same location, ordered.
    Coe,
    /// Same-thread edge to a *different* location.
    Internal { kind: InternalKind, src: Extremity, dst: Extremity },
}

impl Edge {
    /// Convenience constructor for internal edges.
    pub fn internal(kind: InternalKind, src: Extremity, dst: Extremity) -> Edge {
        Edge::Internal { kind, src, dst }
    }

    /// Whether the edge crosses threads.
    pub fn is_external(self) -> bool {
        !matches!(self, Edge::Internal { .. })
    }

    /// `(source, destination)` extremities.
    pub fn ends(self) -> (Extremity, Extremity) {
        match self {
            Edge::Rfe => (Extremity::W, Extremity::R),
            Edge::Fre => (Extremity::R, Extremity::W),
            Edge::Coe => (Extremity::W, Extremity::W),
            Edge::Internal { src, dst, .. } => (src, dst),
        }
    }

    /// Parse one diy-style edge name as printed by [`Edge`]'s `Display`
    /// impl: `Rfe`, `Fre`, `Coe`, or `<Kind><src><dst>` like `PodWW`,
    /// `DpAddrRW`, `SyncRW`. Returns `None` for unknown names (including
    /// adornment/extremity combinations that could never print, which
    /// [`validate`] would reject as ill-formed anyway).
    pub fn parse_name(name: &str) -> Option<Edge> {
        match name {
            "Rfe" => return Some(Edge::Rfe),
            "Fre" => return Some(Edge::Fre),
            "Coe" => return Some(Edge::Coe),
            _ => {}
        }
        let (kind_name, ends) = name.split_at(name.len().checked_sub(2)?);
        let kind = match kind_name {
            "Pod" => InternalKind::Po,
            "Ctrl" => InternalKind::Ctrl,
            "DpData" => InternalKind::Data,
            "DpAddr" => InternalKind::Addr,
            "DpAddrRbd" => InternalKind::AddrRbDep,
            "Rmb" => InternalKind::Rmb,
            "Wmb" => InternalKind::Wmb,
            "Mb" => InternalKind::Mb,
            "Sync" => InternalKind::SyncRcu,
            "Rel" => InternalKind::Release,
            "Acq" => InternalKind::Acquire,
            _ => return None,
        };
        let extremity = |c: char| match c {
            'R' => Some(Extremity::R),
            'W' => Some(Extremity::W),
            _ => None,
        };
        let mut chars = ends.chars();
        let src = extremity(chars.next()?)?;
        let dst = extremity(chars.next()?)?;
        let edge = Edge::internal(kind, src, dst);
        edge.well_formed().then_some(edge)
    }

    /// Whether the adornment is compatible with the extremities.
    pub fn well_formed(self) -> bool {
        match self {
            Edge::Rfe | Edge::Fre | Edge::Coe => true,
            Edge::Internal { kind, src, dst } => match kind {
                InternalKind::Po | InternalKind::Mb | InternalKind::SyncRcu => true,
                InternalKind::Ctrl => src == Extremity::R && dst == Extremity::W,
                InternalKind::Data => src == Extremity::R && dst == Extremity::W,
                InternalKind::Addr | InternalKind::AddrRbDep => src == Extremity::R,
                InternalKind::Rmb => src == Extremity::R && dst == Extremity::R,
                InternalKind::Wmb => src == Extremity::W && dst == Extremity::W,
                InternalKind::Release => dst == Extremity::W,
                InternalKind::Acquire => src == Extremity::R,
            },
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Rfe => write!(f, "Rfe"),
            Edge::Fre => write!(f, "Fre"),
            Edge::Coe => write!(f, "Coe"),
            Edge::Internal { kind, src, dst } => {
                let k = match kind {
                    InternalKind::Po => "Pod",
                    InternalKind::Ctrl => "Ctrl",
                    InternalKind::Data => "DpData",
                    InternalKind::Addr => "DpAddr",
                    InternalKind::AddrRbDep => "DpAddrRbd",
                    InternalKind::Rmb => "Rmb",
                    InternalKind::Wmb => "Wmb",
                    InternalKind::Mb => "Mb",
                    InternalKind::SyncRcu => "Sync",
                    InternalKind::Release => "Rel",
                    InternalKind::Acquire => "Acq",
                };
                let e = |x: &Extremity| if *x == Extremity::R { "R" } else { "W" };
                write!(f, "{k}{}{}", e(src), e(dst))
            }
        }
    }
}

/// Generation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenError {
    /// Adjacent edges disagree on the shared event's extremity, or an
    /// edge's adornment is invalid.
    IllFormed,
    /// Fewer than two external edges (no concurrency), or two external
    /// edges are adjacent (not a critical cycle).
    NotCritical,
    /// [`parse_cycle`] met a name that is not a diy edge.
    UnknownEdge(String),
    /// A parameterised program family was asked for a size that cannot
    /// produce a meaningful program (zero threads, zero critical
    /// sections, zero retry depth). The payload names the offending
    /// parameter; callers reject the request instead of silently
    /// generating an empty litmus test.
    Degenerate(&'static str),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::IllFormed => write!(f, "ill-formed cycle"),
            GenError::NotCritical => write!(f, "not a critical cycle"),
            GenError::UnknownEdge(name) => write!(f, "unknown edge `{name}`"),
            GenError::Degenerate(what) => {
                write!(f, "degenerate family parameters: {what}")
            }
        }
    }
}

/// Parse a whitespace-separated cycle specification, e.g.
/// `"PodWW Rfe PodRR Fre"` (the MP shape). The inverse of printing each
/// [`Edge`] with a space between; validity of the *cycle* (adjacency,
/// criticality) is checked by [`validate`]/[`generate`], not here.
///
/// # Errors
///
/// [`GenError::UnknownEdge`] on the first unparseable name.
pub fn parse_cycle(text: &str) -> Result<Vec<Edge>, GenError> {
    text.split_whitespace()
        .map(|name| Edge::parse_name(name).ok_or_else(|| GenError::UnknownEdge(name.to_string())))
        .collect()
}

impl std::error::Error for GenError {}

struct GenEvent {
    thread: usize,
    loc: usize,
    is_write: bool,
    acquire: bool,
    release: bool,
    /// Write value (writes only).
    value: i64,
    /// Expected read value for the condition (reads only).
    expected: Option<i64>,
    /// Register receiving the read value.
    reg: String,
}

/// Check structural validity of a cycle.
pub fn validate(cycle: &[Edge]) -> Result<(), GenError> {
    if cycle.len() < 2 {
        return Err(GenError::IllFormed);
    }
    for e in cycle {
        if !e.well_formed() {
            return Err(GenError::IllFormed);
        }
    }
    let n = cycle.len();
    for i in 0..n {
        let (_, dst) = cycle[i].ends();
        let (src, _) = cycle[(i + 1) % n].ends();
        if dst != src {
            return Err(GenError::IllFormed);
        }
    }
    let externals = cycle.iter().filter(|e| e.is_external()).count();
    if externals < 2 {
        return Err(GenError::NotCritical);
    }
    for i in 0..n {
        if cycle[i].is_external() && cycle[(i + 1) % n].is_external() {
            return Err(GenError::NotCritical);
        }
    }
    // The cycle must close onto thread 0: the last edge must be external.
    if !cycle[n - 1].is_external() {
        return Err(GenError::NotCritical);
    }
    Ok(())
}

/// Generate the litmus test observing `cycle`.
///
/// # Errors
///
/// See [`validate`].
pub fn generate(cycle: &[Edge]) -> Result<Test, GenError> {
    let n_locs = cycle.iter().filter(|e| !e.is_external()).count().max(1);
    generate_with_locs(cycle, n_locs, "", false)
}

/// Generate the *contended* twin of a cycle's litmus test: every event
/// targets the same shared location (the way diy reuses its bounded
/// location pool on long cycles) and every write stores the same value,
/// so a read no longer identifies its writer. Same threads, same
/// adornments — but now program order is program order *to the same
/// location* and reads-from is genuinely ambiguous, so the coherence
/// axioms actually constrain the candidate space: most per-location
/// write permutations are forced and most reads-from choices are doomed
/// partway through. These are the tests where a generate-then-judge
/// enumerator does real wasted work, which makes them both a
/// conformance workload (uniproc/coherence corner cases) and the honest
/// benchmark corpus for enumeration pruning.
///
/// Short cycles produce trivially contended twins (a 4-event cycle has
/// at most two same-location writes), so the twin repeats the cycle's
/// access pattern until another repetition would exceed a fixed budget
/// of [`CONTENTION_EVENTS`] events — the same fixed-resource style as
/// diy's bounded process/location pools. A valid cycle concatenated
/// with itself is still a valid cycle (it closes on itself, so every
/// adjacency including the junction was already checked), and the
/// repetition count is derived, not configurable, so the twin is a pure
/// function of the cycle.
///
/// The test is named after the repeated edge sequence with a `+ctd`
/// suffix.
///
/// # Errors
///
/// See [`validate`].
pub fn generate_contended(cycle: &[Edge]) -> Result<Test, GenError> {
    if cycle.is_empty() {
        return Err(GenError::IllFormed);
    }
    let reps = (CONTENTION_EVENTS / cycle.len()).max(1);
    let repeated: Vec<Edge> = cycle.iter().copied().cycle().take(reps * cycle.len()).collect();
    generate_with_locs(&repeated, 1, "+ctd", true)
}

/// Event budget a contended twin fills by repeating its cycle.
pub const CONTENTION_EVENTS: usize = 8;

fn generate_with_locs(
    cycle: &[Edge],
    n_locs: usize,
    suffix: &str,
    collide_values: bool,
) -> Result<Test, GenError> {
    validate(cycle)?;
    let n = cycle.len();

    // Place events: external edges switch threads, internal edges switch
    // locations.
    let mut events: Vec<GenEvent> = Vec::with_capacity(n);
    let mut thread = 0usize;
    let mut loc = 0usize;
    for (i, edge) in cycle.iter().enumerate() {
        let (src, _) = edge.ends();
        events.push(GenEvent {
            thread,
            loc,
            is_write: src == Extremity::W,
            acquire: matches!(edge, Edge::Internal { kind: InternalKind::Acquire, .. }),
            release: false,
            value: 0,
            expected: None,
            reg: String::new(),
        });
        // The Release adornment marks the *destination* event.
        if let Edge::Internal { kind: InternalKind::Release, .. } =
            cycle[(i + n - 1) % n]
        {
            events[i].release = true;
        }
        if edge.is_external() {
            thread += 1;
        } else {
            loc = (loc + 1) % n_locs;
        }
    }
    // Wrap-around adornments for event 0.
    if let Edge::Internal { kind: InternalKind::Release, .. } = cycle[n - 1] {
        events[0].release = true;
    }

    // Values: writes to each location numbered in cycle order — or all
    // `1` for a contended twin, so reads cannot identify their writer
    // and reads-from stays genuinely ambiguous.
    let mut next_value = vec![0i64; n_locs];
    for ev in events.iter_mut() {
        if ev.is_write {
            next_value[ev.loc] += 1;
            ev.value = if collide_values { 1 } else { next_value[ev.loc] };
        }
    }

    // Read expectations: Rfe in → value of that write; else Fre out →
    // value of the target write's coherence predecessor.
    for i in 0..n {
        if events[i].is_write {
            continue;
        }
        let incoming = cycle[(i + n - 1) % n];
        let outgoing = cycle[i];
        if incoming == Edge::Rfe {
            let w = (i + n - 1) % n;
            events[i].expected = Some(events[w].value);
        } else if outgoing == Edge::Fre {
            let w = (i + 1) % n;
            events[i].expected = Some(events[w].value - 1);
        }
    }

    // Per-thread register numbering.
    let n_threads = thread;
    let mut reg_counter = vec![0usize; n_threads];
    for ev in events.iter_mut() {
        if !ev.is_write {
            ev.reg = format!("r{}", reg_counter[ev.thread]);
            reg_counter[ev.thread] += 1;
        }
    }

    // Emit threads.
    let loc_name = |l: usize| format!("x{l}");
    let name = cycle.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("+");
    let mut test = Test::new(format!("{name}{suffix}"));
    for l in 0..n_locs {
        test.init_int(loc_name(l), 0);
    }
    let mut bodies: Vec<Vec<Stmt>> = vec![Vec::new(); n_threads];
    let mut ptr_counter = 0usize;
    for i in 0..n {
        let ev = &events[i];
        let body = &mut bodies[ev.thread];
        // Dependency/fence adornment of the edge *entering* this event
        // (same thread ⇒ internal edge from the previous event).
        let incoming = cycle[(i + n - 1) % n];
        let mut addr: AddrExpr = AddrExpr::Var(loc_name(ev.loc));
        let mut value_expr = Expr::Const(ev.value);
        let mut ctrl_reg: Option<(String, i64)> = None;
        if let Edge::Internal { kind, .. } = incoming {
            let prev = &events[(i + n - 1) % n];
            match kind {
                InternalKind::Rmb => body.push(Stmt::Fence(FenceKind::Rmb)),
                InternalKind::Wmb => body.push(Stmt::Fence(FenceKind::Wmb)),
                InternalKind::Mb => body.push(Stmt::Fence(FenceKind::Mb)),
                InternalKind::SyncRcu => body.push(Stmt::Fence(FenceKind::SyncRcu)),
                InternalKind::Data => {
                    // value + (r ^ r): a false data dependency.
                    value_expr = Expr::bin(
                        BinOp::Add,
                        Expr::Const(ev.value),
                        Expr::bin(
                            BinOp::Xor,
                            Expr::Reg(prev.reg.clone()),
                            Expr::Reg(prev.reg.clone()),
                        ),
                    );
                }
                InternalKind::Addr | InternalKind::AddrRbDep => {
                    // p = &loc + (r ^ r): a false address dependency.
                    let p = format!("p{ptr_counter}");
                    ptr_counter += 1;
                    body.push(Stmt::Assign {
                        dst: p.clone(),
                        value: Expr::bin(
                            BinOp::Add,
                            Expr::LocRef(loc_name(ev.loc)),
                            Expr::bin(
                                BinOp::Xor,
                                Expr::Reg(prev.reg.clone()),
                                Expr::Reg(prev.reg.clone()),
                            ),
                        ),
                    });
                    if kind == InternalKind::AddrRbDep {
                        body.push(Stmt::Fence(FenceKind::RbDep));
                    }
                    addr = AddrExpr::Reg(p);
                }
                InternalKind::Ctrl => {
                    ctrl_reg = Some((prev.reg.clone(), prev.expected.unwrap_or(0)));
                }
                InternalKind::Po
                | InternalKind::Release
                | InternalKind::Acquire => {}
            }
        }
        let stmt = if ev.is_write {
            if ev.release {
                Stmt::StoreRelease { addr, value: value_expr }
            } else {
                Stmt::WriteOnce { addr, value: value_expr }
            }
        } else if ev.acquire {
            Stmt::LoadAcquire { dst: ev.reg.clone(), addr }
        } else {
            Stmt::ReadOnce { dst: ev.reg.clone(), addr }
        };
        if let Some((creg, cval)) = ctrl_reg {
            body.push(Stmt::If {
                cond: Expr::bin(BinOp::Eq, Expr::Reg(creg), Expr::Const(cval)),
                then_: vec![stmt],
                else_: Vec::new(),
            });
        } else {
            body.push(stmt);
        }
    }
    test.threads = bodies.into_iter().map(Thread::new).collect();

    // Condition: read expectations plus final-value pins for multi-write
    // locations.
    let mut props = Vec::new();
    for ev in &events {
        if let Some(v) = ev.expected {
            props.push(Prop::Eq(
                StateTerm::Reg { thread: ev.thread, reg: ev.reg.clone() },
                CondVal::Int(v),
            ));
        }
    }
    // Final-value pins only make sense when write values are distinct;
    // a contended twin's writes are indistinguishable by value.
    if !collide_values {
        for (l, &last) in next_value.iter().enumerate() {
            if last >= 2 {
                props.push(Prop::Eq(StateTerm::Loc(loc_name(l)), CondVal::Int(last)));
            }
        }
    }
    test.condition = Condition { quantifier: Quantifier::Exists, prop: Prop::all(props) };
    Ok(test)
}

/// The default edge alphabet used by the sweeps.
pub fn default_alphabet() -> Vec<Edge> {
    use Extremity::{R, W};
    let mut out = vec![Edge::Rfe, Edge::Fre, Edge::Coe];
    for src in [R, W] {
        for dst in [R, W] {
            for kind in [
                InternalKind::Po,
                InternalKind::Ctrl,
                InternalKind::Data,
                InternalKind::Addr,
                InternalKind::AddrRbDep,
                InternalKind::Rmb,
                InternalKind::Wmb,
                InternalKind::Mb,
                InternalKind::SyncRcu,
                InternalKind::Release,
                InternalKind::Acquire,
            ] {
                let e = Edge::internal(kind, src, dst);
                if e.well_formed() {
                    out.push(e);
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Enumerate all valid cycles with length in `2..=max_len` over
/// `alphabet`, canonicalised up to rotation (the lexicographically least
/// rotation is kept).
pub fn cycles_up_to(max_len: usize, alphabet: &[Edge]) -> Vec<Vec<Edge>> {
    let mut out = Vec::new();
    let mut stack: Vec<Edge> = Vec::new();
    fn rec(
        alphabet: &[Edge],
        max_len: usize,
        stack: &mut Vec<Edge>,
        out: &mut Vec<Vec<Edge>>,
    ) {
        if stack.len() >= 2 && validate(stack).is_ok() && is_canonical_rotation(stack) {
            out.push(stack.clone());
        }
        if stack.len() == max_len {
            return;
        }
        for &e in alphabet {
            // Adjacency pruning.
            if let Some(&last) = stack.last() {
                if last.ends().1 != e.ends().0 {
                    continue;
                }
                if last.is_external() && e.is_external() {
                    continue;
                }
            }
            stack.push(e);
            rec(alphabet, max_len, stack, out);
            stack.pop();
        }
    }
    rec(alphabet, max_len, &mut stack, &mut out);
    out
}

/// Is this cycle the lexicographically least among its rotations that
/// also end in an external edge?
fn is_canonical_rotation(cycle: &[Edge]) -> bool {
    let n = cycle.len();
    let mut best: Option<Vec<Edge>> = None;
    for r in 0..n {
        // Rotations must keep the "last edge external" closure property.
        if !cycle[(r + n - 1) % n].is_external() {
            continue;
        }
        let rotated: Vec<Edge> = (0..n).map(|i| cycle[(r + i) % n]).collect();
        if best.as_ref().is_none_or(|b| rotated < *b) {
            best = Some(rotated);
        }
    }
    best.as_deref() == Some(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Extremity::{R, W};

    #[test]
    fn validates_shapes() {
        // MP cycle: Wx -wmb- Wy, Rfe, Ry -rmb- Rx, Fre.
        let mp = [
            Edge::internal(InternalKind::Wmb, W, W),
            Edge::Rfe,
            Edge::internal(InternalKind::Rmb, R, R),
            Edge::Fre,
        ];
        assert!(validate(&mp).is_ok());
        // Mismatched extremities.
        let bad = [Edge::Rfe, Edge::Rfe];
        assert_eq!(validate(&bad), Err(GenError::IllFormed)); // W→R then W→R mismatch
        let bad2 = [Edge::internal(InternalKind::Po, W, W), Edge::Rfe];
        assert_eq!(validate(&bad2), Err(GenError::IllFormed));
        // Wmb between a read and a write is ill-formed.
        assert!(!Edge::internal(InternalKind::Wmb, R, W).well_formed());
    }

    #[test]
    fn generates_mp_shape() {
        let mp = [
            Edge::internal(InternalKind::Wmb, W, W),
            Edge::Rfe,
            Edge::internal(InternalKind::Rmb, R, R),
            Edge::Fre,
        ];
        let t = generate(&mp).unwrap();
        assert_eq!(t.threads.len(), 2);
        assert_eq!(t.shared_locations().len(), 2);
        // Writer thread: write, wmb, write.
        assert!(matches!(t.threads[0].body[1], Stmt::Fence(FenceKind::Wmb)));
        assert_eq!(t.condition.prop.terms().len(), 2);
    }

    #[test]
    fn generates_dependencies() {
        let lb_data = [
            Edge::internal(InternalKind::Data, R, W),
            Edge::Rfe,
            Edge::internal(InternalKind::Ctrl, R, W),
            Edge::Rfe,
        ];
        let t = generate(&lb_data).unwrap();
        // Thread 1 has the ctrl-wrapped write.
        assert!(t.threads.iter().any(|th| th
            .body
            .iter()
            .any(|s| matches!(s, Stmt::If { .. }))));
        let addr = [
            Edge::internal(InternalKind::Addr, R, R),
            Edge::Fre,
            Edge::internal(InternalKind::Wmb, W, W),
            Edge::Rfe,
        ];
        let t2 = generate(&addr).unwrap();
        assert!(t2.threads.iter().any(|th| th
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Assign { .. }))));
    }

    #[test]
    fn coe_cycles_pin_final_values() {
        // 2+2W: Wx -wmb- Wy, Coe, Wy' -wmb- Wx', Coe.
        let cycle = [
            Edge::internal(InternalKind::Wmb, W, W),
            Edge::Coe,
            Edge::internal(InternalKind::Wmb, W, W),
            Edge::Coe,
        ];
        let t = generate(&cycle).unwrap();
        // Both locations have two writes → two final-value pins.
        assert_eq!(t.condition.prop.terms().len(), 2);
        assert!(t
            .condition
            .prop
            .terms()
            .iter()
            .all(|term| matches!(term, StateTerm::Loc(_))));
    }

    #[test]
    fn enumeration_yields_thousands_and_all_generate() {
        let cycles = cycles_up_to(6, &default_alphabet());
        assert!(cycles.len() > 1_000, "only {} cycles", cycles.len());
        for c in &cycles {
            generate(c).unwrap_or_else(|e| panic!("{c:?}: {e}"));
        }
    }

    #[test]
    fn edge_names_round_trip_through_parse() {
        for edge in default_alphabet() {
            assert_eq!(Edge::parse_name(&edge.to_string()), Some(edge));
        }
        assert_eq!(Edge::parse_name("Rfe"), Some(Edge::Rfe));
        assert_eq!(Edge::parse_name("Bogus"), None);
        assert_eq!(Edge::parse_name("RmbWW"), None, "ill-formed adornment");
        assert_eq!(
            parse_cycle("PodWW Rfe PodRR Fre").unwrap(),
            vec![
                Edge::internal(InternalKind::Po, W, W),
                Edge::Rfe,
                Edge::internal(InternalKind::Po, R, R),
                Edge::Fre,
            ]
        );
        assert_eq!(
            parse_cycle("PodWW Nope"),
            Err(GenError::UnknownEdge("Nope".to_string()))
        );
    }

    #[test]
    fn whole_cycles_round_trip_through_parse_cycle() {
        // Every enumerated cycle survives print → parse_cycle unchanged,
        // so campaign reports can name generated tests by cycle spec.
        for cycle in cycles_up_to(4, &default_alphabet()) {
            let spec =
                cycle.iter().map(Edge::to_string).collect::<Vec<_>>().join(" ");
            assert_eq!(parse_cycle(&spec).as_deref(), Ok(&cycle[..]), "spec `{spec}`");
        }
        // Whitespace variations parse identically.
        assert_eq!(
            parse_cycle("  PodWW   Rfe\tPodRR \n Fre "),
            parse_cycle("PodWW Rfe PodRR Fre"),
        );
        assert_eq!(parse_cycle(""), Ok(vec![]));
    }

    #[test]
    fn unknown_edge_errors_name_the_offending_token() {
        // The *first* bad token is reported, verbatim, in the message.
        let err = parse_cycle("PodWW Frobnicate Rfe Nope").unwrap_err();
        assert_eq!(err, GenError::UnknownEdge("Frobnicate".to_string()));
        assert!(err.to_string().contains("`Frobnicate`"), "{err}");
        // Near-miss spellings are rejected with their own name, not a
        // guess: case matters and adornments must be well-formed.
        for bad in ["podWW", "RFE", "WmbRW", "Pod"] {
            let err = parse_cycle(bad).unwrap_err();
            assert_eq!(err, GenError::UnknownEdge(bad.to_string()));
            assert!(err.to_string().contains(&format!("`{bad}`")), "{err}");
        }
    }

    #[test]
    fn degenerate_parameters_carry_the_offending_knob_in_the_message() {
        // Program families (crates/algorithms) reject zero-sized
        // parameters with this variant; the message must name the knob
        // so a CLI user can tell which of threads/sections/retries was
        // wrong.
        let err = GenError::Degenerate("threads must be at least 1");
        assert_eq!(
            err.to_string(),
            "degenerate family parameters: threads must be at least 1"
        );
        let err = GenError::Degenerate("retry depth must be at least 1");
        assert!(err.to_string().starts_with("degenerate family parameters:"), "{err}");
        assert!(err.to_string().contains("retry depth"), "{err}");
    }

    #[test]
    fn canonicalisation_dedupes_rotations() {
        let cycles = cycles_up_to(4, &[Edge::Rfe, Edge::Fre, Edge::internal(InternalKind::Po, R, W), Edge::internal(InternalKind::Po, R, R), Edge::internal(InternalKind::Po, W, R), Edge::internal(InternalKind::Po, W, W)]);
        // No two cycles are rotations of each other.
        for (i, a) in cycles.iter().enumerate() {
            for b in cycles.iter().skip(i + 1) {
                if a.len() != b.len() {
                    continue;
                }
                let n = a.len();
                for r in 0..n {
                    let rotated: Vec<Edge> = (0..n).map(|k| b[(r + k) % n]).collect();
                    assert_ne!(*a, rotated, "rotational duplicate");
                }
            }
        }
    }
}
