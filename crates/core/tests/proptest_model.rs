//! NOTE: this suite is gated behind the off-by-default `heavy-tests`
//! feature: its `proptest` dev-dependency cannot be fetched in offline
//! builds. Enable with `--features heavy-tests` after restoring the
//! `proptest` dev-dependency in this crate's Cargo.toml.
#![cfg(feature = "heavy-tests")]

//! Property-based tests on the LKMM's structural invariants, checked
//! across generated critical cycles.

use lkmm::{Lkmm, LkmmRelations};
use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
use lkmm_generator::{cycles_up_to, default_alphabet, generate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// §3.2.2: "ppo relates events in program order" — on coherent
    /// candidates, ppo ⊆ po, and hb is irreflexive by construction.
    #[test]
    fn ppo_within_po_and_hb_irreflexive(idx in 0usize..161) {
        let all = cycles_up_to(4, &default_alphabet());
        let cycle = &all[idx % all.len()];
        let test = generate(cycle).unwrap();
        for_each_execution(&test, &EnumOptions::default(), &mut |x| {
            let r = LkmmRelations::compute(x);
            assert!(
                r.ppo.difference(&x.po).is_empty(),
                "{}: ppo ⊄ po\n{x}",
                test.name
            );
            assert!(r.hb.is_irreflexive(), "{}: hb reflexive", test.name);
            // fence relations are program-order too.
            assert!(r.fence.difference(&x.po).is_empty());
            // strong-fence ⊆ fence ⊆ ppo.
            assert!(r.strong_fence.difference(&r.fence).is_empty());
            assert!(r.fence.difference(&r.ppo).is_empty());
        })
        .unwrap();
    }

    /// Strengthening monotonicity: forbidding is stable under adding
    /// smp_mb fences — a test whose weak outcome the LKMM forbids stays
    /// forbidden when any thread gets extra fences.
    #[test]
    fn adding_mb_fences_never_weakens(idx in 0usize..161, thread_sel in 0usize..4) {
        use lkmm_exec::{check_test, Verdict};
        use lkmm_litmus::ast::Stmt;
        use lkmm_litmus::FenceKind;
        let all = cycles_up_to(4, &default_alphabet());
        let cycle = &all[idx % all.len()];
        let test = generate(cycle).unwrap();
        let model = Lkmm::new();
        let opts = EnumOptions::default();
        let before = check_test(&model, &test, &opts).unwrap().verdict;

        // Insert smp_mb() between every pair of statements in one thread.
        let mut strengthened = test.clone();
        let t = thread_sel % strengthened.threads.len();
        let body = std::mem::take(&mut strengthened.threads[t].body);
        let mut new_body = Vec::new();
        for stmt in body {
            new_body.push(stmt);
            new_body.push(Stmt::Fence(FenceKind::Mb));
        }
        strengthened.threads[t].body = new_body;
        let after = check_test(&model, &strengthened, &opts).unwrap().verdict;
        if before == Verdict::Forbidden {
            prop_assert_eq!(after, Verdict::Forbidden, "{} weakened by fences!", test.name);
        }
    }

    /// The model is monotone across the documented hierarchy on every
    /// candidate: SC-allowed ⇒ LKMM-allowed.
    #[test]
    fn sc_executions_are_lkmm_executions(idx in 0usize..161) {
        use lkmm_exec::ConsistencyModel;
        let all = cycles_up_to(4, &default_alphabet());
        let cycle = &all[idx % all.len()];
        let test = generate(cycle).unwrap();
        let model = Lkmm::new();
        for_each_execution(&test, &EnumOptions::default(), &mut |x| {
            let sc = x.po.union(&x.com()).is_acyclic();
            if sc {
                assert!(model.allows(x), "{}: SC-consistent but LKMM-forbidden", test.name);
            }
        })
        .unwrap();
    }
}
