//! Paper-style explanations of forbidden executions.
//!
//! §3 of the paper explains each forbidden figure by exhibiting a cycle
//! and naming each edge ("a →ppo→ b →rfe→ c →ppo→ d →rfe→ a" for
//! Figure 4). [`explain_violation`] reconstructs exactly that: the
//! violated axiom, a concrete cycle, and the finest-grained relation name
//! for every edge.

use crate::model::{Axiom, Lkmm};
use crate::relations::LkmmRelations;
use lkmm_exec::Execution;
use lkmm_relation::Relation;
use std::fmt;

/// One labelled edge of a violation cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelledEdge {
    pub from: usize,
    pub to: usize,
    /// The most specific relation containing the edge (e.g. `"wmb"`
    /// rather than `"ppo"`).
    pub label: &'static str,
}

/// A violation: the failing axiom plus a labelled cycle witnessing it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub axiom: Axiom,
    pub cycle: Vec<LabelledEdge>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violates {}; cycle: ", self.axiom)?;
        for (i, e) in self.cycle.iter().enumerate() {
            if i == 0 {
                write!(f, "e{}", e.from)?;
            }
            write!(f, " -{}-> e{}", e.label, e.to)?;
        }
        Ok(())
    }
}

/// Candidate labels, ordered most-specific first, for each axiom's
/// relation. The first label whose relation contains the edge wins.
fn label_edge(
    x: &Execution,
    r: &LkmmRelations,
    axiom: Axiom,
    from: usize,
    to: usize,
) -> &'static str {
    let rfe = x.rfe();
    let fre = r.fr.intersection(&x.ext_rel());
    let coe = x.co.intersection(&x.ext_rel());
    let candidates: Vec<(&'static str, &Relation)> = match axiom {
        Axiom::Scpv => vec![
            ("rf", &x.rf),
            ("co", &x.co),
            ("fr", &r.fr),
            ("po-loc", &r.po_loc),
        ],
        Axiom::At => vec![("rmw", &x.rmw), ("fre", &fre), ("coe", &coe)],
        Axiom::Rcu => vec![("rcu-path", &r.rcu_path)],
        Axiom::Hb | Axiom::Pb => vec![
            // Fine-grained ppo/prop constituents first.
            ("rmb", &r.rmb),
            ("wmb", &r.wmb),
            ("mb", &r.mb),
            ("gp", &r.gp),
            ("rb-dep", &r.rb_dep),
            ("acq-po", &r.acq_po),
            ("po-rel", &r.po_rel),
            ("addr", &x.addr),
            ("data", &x.data),
            ("ctrl", &x.ctrl),
            ("rfi-rel-acq", &r.rfi_rel_acq),
            ("rfe", &rfe),
            ("fre", &fre),
            ("coe", &coe),
            ("overwrite", &r.overwrite),
            ("ppo", &r.ppo),
            ("cumul-fence", &r.cumul_fence),
            ("prop", &r.prop),
            ("hb", &r.hb),
            ("pb", &r.pb),
        ],
    };
    for (name, rel) in candidates {
        if rel.contains(from, to) {
            return name;
        }
    }
    "?"
}

/// The relation whose cycle witnesses each axiom.
fn axiom_relation(x: &Execution, r: &LkmmRelations, axiom: Axiom) -> Relation {
    match axiom {
        Axiom::Scpv => r.po_loc.union(&r.com),
        Axiom::At => {
            // Build the 3-edge cycles r -rmw-> w, r -fre-> w', w' -coe-> w
            // as a relation so find_cycle works uniformly: close rmw
            // backwards (w -> r) with fre;coe (r -> w).
            let fre = r.fr.intersection(&x.ext_rel());
            let coe = x.co.intersection(&x.ext_rel());
            x.rmw.intersection(&fre.seq(&coe)).union(&x.rmw.inverse())
        }
        Axiom::Hb => r.hb.clone(),
        Axiom::Pb => r.pb.clone(),
        Axiom::Rcu => {
            // An rcu-path self-loop; expose it as a 1-cycle.
            let mut rel = Relation::empty(x.universe());
            for i in 0..x.universe() {
                if r.rcu_path.contains(i, i) {
                    rel.insert(i, i);
                }
            }
            rel
        }
    }
}

/// Explain why the LKMM forbids `x`, or `None` if it is allowed.
///
/// # Examples
///
/// ```
/// use lkmm::explain::explain_violation;
/// use lkmm_exec::enumerate::{enumerate, EnumOptions};
///
/// let t = lkmm_litmus::library::by_name("MP+wmb+rmb").unwrap().test();
/// let weak = enumerate(&t, &EnumOptions::default()).unwrap()
///     .into_iter().find(|x| x.satisfies_prop(&t.condition.prop)).unwrap();
/// let v = explain_violation(&weak).unwrap();
/// assert_eq!(v.axiom, lkmm::Axiom::Hb);
/// println!("{v}"); // e.g. "violates Hb: …; cycle: e5 -prop-> e7 -rmb-> e5"
/// ```
pub fn explain_violation(x: &Execution) -> Option<Violation> {
    let facts = lkmm_exec::ExecFacts::new(x);
    let r = LkmmRelations::compute(x);
    let axiom = Lkmm::new().violated_axiom_with(&r, &facts)?;
    let rel = axiom_relation(x, &r, axiom);
    let nodes = rel.find_cycle()?;
    let mut cycle = Vec::with_capacity(nodes.len());
    for (i, &from) in nodes.iter().enumerate() {
        let to = nodes[(i + 1) % nodes.len()];
        cycle.push(LabelledEdge { from, to, label: label_edge(x, &r, axiom, from, to) });
    }
    Some(Violation { axiom, cycle })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{enumerate, EnumOptions};
    use lkmm_litmus::library;

    fn weak(name: &str) -> Execution {
        let t = library::by_name(name).unwrap().test();
        enumerate(&t, &EnumOptions::default())
            .unwrap()
            .into_iter()
            .find(|x| x.satisfies_prop(&t.condition.prop))
            .unwrap()
    }

    #[test]
    fn figure4_explanation_matches_the_paper() {
        // §3.2.4: a -ppo-> b -rfe-> c -ppo-> d -rfe-> a (ctrl and mb are
        // the fine labels).
        let v = explain_violation(&weak("LB+ctrl+mb")).unwrap();
        assert_eq!(v.axiom, Axiom::Hb);
        // The canonical walkthrough is the 4-edge ppo/rfe alternation;
        // hb also contains shortcut prop∩int edges, so the witness found
        // may be shorter — but it must be fully labelled and each edge
        // must be a real hb edge.
        assert!(v.cycle.len() >= 2);
        let r = LkmmRelations::compute(&weak("LB+ctrl+mb"));
        for e in &v.cycle {
            assert!(r.hb.contains(e.from, e.to), "{v}");
            assert_ne!(e.label, "?", "{v}");
        }
    }

    #[test]
    fn figure6_is_a_pb_cycle() {
        let v = explain_violation(&weak("SB+mbs")).unwrap();
        assert_eq!(v.axiom, Axiom::Pb);
        assert!(!v.cycle.is_empty());
        assert!(v.to_string().contains("pb") || v.to_string().contains("mb"));
    }

    #[test]
    fn rcu_violations_name_rcu_path() {
        let v = explain_violation(&weak("RCU-MP")).unwrap();
        assert_eq!(v.axiom, Axiom::Rcu);
        assert_eq!(v.cycle.len(), 1);
        assert_eq!(v.cycle[0].label, "rcu-path");
    }

    #[test]
    fn allowed_executions_have_no_explanation() {
        let t = library::by_name("SB").unwrap().test();
        for x in enumerate(&t, &EnumOptions::default()).unwrap() {
            assert!(explain_violation(&x).is_none());
        }
    }

    #[test]
    fn coherence_violations_label_po_loc() {
        let t = lkmm_litmus::parse(
            "C co\n{ x=0; }\nP0(int *x) { int r; WRITE_ONCE(*x, 1); r = READ_ONCE(*x); }\n\
             exists (0:r=0)",
        )
        .unwrap();
        let raw = enumerate(&t, &EnumOptions { prune_scpv: false, ..Default::default() })
            .unwrap();
        let bad = raw.iter().find(|x| x.satisfies_prop(&t.condition.prop)).unwrap();
        let v = explain_violation(bad).unwrap();
        assert_eq!(v.axiom, Axiom::Scpv);
        let labels: Vec<&str> = v.cycle.iter().map(|e| e.label).collect();
        assert!(labels.contains(&"po-loc"), "{labels:?}");
    }

    #[test]
    fn every_forbidden_library_candidate_explains() {
        use lkmm_exec::enumerate::for_each_execution;
        for pt in library::all() {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                let model = Lkmm::new();
                use lkmm_exec::ConsistencyModel;
                if !model.allows(x) {
                    let v = explain_violation(x).expect("forbidden must explain");
                    assert!(!v.cycle.is_empty());
                    assert!(v.cycle.iter().all(|e| e.label != "?"), "{v}");
                }
            })
            .unwrap();
        }
    }
}
