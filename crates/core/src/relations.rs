//! Every relation of Figures 8 and 12, computed from a candidate execution.
//!
//! The struct fields follow the paper's names (with `-` mapped to `_`).
//! Keeping each intermediate relation inspectable makes the model easy to
//! debug and lets tests assert the paper's walked examples edge by edge
//! (e.g. "(a, c) ∈ cumul-fence" in Figure 5).

use lkmm_exec::{ExecFacts, Execution};
use lkmm_litmus::FenceKind;
use lkmm_relation::{acquire_rel, ArenaRel, EventSet, Relation, SharedArena};

/// The relations of Figures 8 and 12 that do not depend on the
/// execution witness (`rf`/`co`): fence relations, dependency
/// skeletons, RCU grace-period/read-side-section shapes, and the
/// auxiliary `int`/`ext`/`id` relations and `R`/`W` sets.
///
/// All candidates sharing one pre-execution (thread-outcome combination)
/// have identical statics, so sessions compute this once per
/// pre-execution — keyed on `Arc::ptr_eq` of `Execution::events` — and
/// reuse it for every witness. This removes the `O(n²)` `int`/`loc`
/// rebuilds and the fence `po;[F];po` sequences from the per-candidate
/// hot loop.
#[derive(Clone, Debug)]
pub struct LkmmStatics {
    /// `id`.
    pub id: Relation,
    /// `int`: same-thread pairs.
    pub int: Relation,
    /// `ext = ~int`.
    pub ext: Relation,
    /// `R`.
    pub reads: EventSet,
    /// `W`.
    pub writes: EventSet,
    /// `po-loc`.
    pub po_loc: Relation,
    /// `rmb`.
    pub rmb: Relation,
    /// `wmb`.
    pub wmb: Relation,
    /// `mb`.
    pub mb: Relation,
    /// `rb-dep`.
    pub rb_dep: Relation,
    /// `[Acquire]`.
    pub acquires_id: Relation,
    /// `[Release]`.
    pub releases_id: Relation,
    /// `acq-po`.
    pub acq_po: Relation,
    /// `po-rel`.
    pub po_rel: Relation,
    /// `gp`.
    pub gp: Relation,
    /// `gp` extended with every SRCU domain's grace periods.
    pub gp_strong: Relation,
    /// `dep = addr ∪ data`.
    pub dep: Relation,
    /// `rwdep = (dep ∪ ctrl) ∩ (R × W)`.
    pub rwdep: Relation,
    /// `strong-fence = mb ∪ gp`.
    pub strong_fence: Relation,
    /// `fence`.
    pub fence: Relation,
    /// `rscs = po ; crit⁻¹ ; po?`.
    pub rscs: Relation,
    /// Per-SRCU-domain `(gp_d, rscs_d)` pairs.
    pub srcu: Vec<(Relation, Relation)>,
}

impl LkmmStatics {
    /// Compute the witness-independent relations for `x`'s
    /// pre-execution.
    pub fn compute(x: &Execution) -> Self {
        Self::compute_with_facts(x, &ExecFacts::new(x))
    }

    /// As [`LkmmStatics::compute`], cloning the shared base relations
    /// (`int`, `ext`, `po-loc`, fence pairs, `gp`, `crit`, SRCU
    /// structure) from a facts layer instead of recomputing them — so
    /// several models checking the same pre-execution pay for each base
    /// relation once.
    pub fn compute_with_facts(x: &Execution, facts: &ExecFacts<'_>) -> Self {
        let n = x.universe();
        let id = Relation::identity(n);
        let int = facts.int_rel().clone();
        let ext = facts.ext_rel().clone();
        let reads = facts.reads().clone();
        let writes = facts.writes().clone();
        let po_loc = facts.po_loc().clone();

        let rr = reads.cross(&reads);
        let ww = writes.cross(&writes);
        let rmb = facts.fencerel(FenceKind::Rmb).intersection(&rr);
        let wmb = facts.fencerel(FenceKind::Wmb).intersection(&ww);
        let mb = facts.fencerel(FenceKind::Mb).clone();
        let rb_dep = facts.fencerel(FenceKind::RbDep).intersection(&rr);
        let acquires_id = facts.acquires().as_identity();
        let releases_id = facts.releases().as_identity();
        let acq_po = acquires_id.seq(&x.po);
        let po_rel = x.po.seq(&releases_id);
        let gp = facts.gp().clone();
        // synchronize_srcu provides the same strong-fence ordering as
        // synchronize_rcu (the kernel's documented guarantee); the real
        // linux-kernel.cat likewise puts Sync-srcu into gp.
        let srcu_facts = facts.srcu();
        let gp_strong = srcu_facts.iter().fold(gp.clone(), |mut acc, d| {
            acc.union_in_place(&d.gp);
            acc
        });

        let dep = x.addr.union(&x.data);
        let rwdep = dep.union(&x.ctrl).intersection(&reads.cross(&writes));
        let strong_fence = mb.union(&gp_strong);
        let mut fence = strong_fence.union(&po_rel);
        fence.union_in_place(&wmb);
        fence.union_in_place(&rmb);
        fence.union_in_place(&acq_po);

        let rscs = x.po.seq(&facts.crit().inverse()).seq(&x.po.reflexive());
        let srcu = srcu_facts
            .iter()
            .map(|d| {
                let srscs = x.po.seq(&d.crit.inverse()).seq(&x.po.reflexive());
                (d.gp.clone(), srscs)
            })
            .collect();

        LkmmStatics {
            id,
            int,
            ext,
            reads,
            writes,
            po_loc,
            rmb,
            wmb,
            mb,
            rb_dep,
            acquires_id,
            releases_id,
            acq_po,
            po_rel,
            gp,
            gp_strong,
            dep,
            rwdep,
            strong_fence,
            fence,
            rscs,
            srcu,
        }
    }
}

/// All LKMM relations for one candidate execution.
#[derive(Clone, Debug)]
pub struct LkmmRelations {
    // --- base and auxiliary ---
    /// `fr = rf⁻¹ ; co`.
    pub fr: Relation,
    /// `com = rf ∪ co ∪ fr`.
    pub com: Relation,
    /// `ext = ~int` (auxiliary, reused by the `At` axiom check).
    pub ext: Relation,
    /// `po-loc`.
    pub po_loc: Relation,
    /// `rmb`: read pairs separated by `smp_rmb`.
    pub rmb: Relation,
    /// `wmb`: write pairs separated by `smp_wmb`.
    pub wmb: Relation,
    /// `mb`: pairs separated by `smp_mb`.
    pub mb: Relation,
    /// `rb-dep`: read pairs separated by `smp_read_barrier_depends`.
    pub rb_dep: Relation,
    /// `acq-po`: an acquire followed in program order.
    pub acq_po: Relation,
    /// `po-rel`: program order into a release.
    pub po_rel: Relation,
    /// `rfi-rel-acq`: internal reads-from of a release by an acquire.
    pub rfi_rel_acq: Relation,
    /// `gp`: pairs separated by (or ending at) a `synchronize_rcu`.
    pub gp: Relation,
    // --- Figure 8 ---
    /// `dep = addr ∪ data`.
    pub dep: Relation,
    /// `rwdep = (dep ∪ ctrl) ∩ (R × W)`.
    pub rwdep: Relation,
    /// `overwrite = co ∪ fr`.
    pub overwrite: Relation,
    /// `to-w = rwdep ∪ (overwrite ∩ int)`.
    pub to_w: Relation,
    /// `rrdep = addr ∪ (dep ; rfi)`.
    pub rrdep: Relation,
    /// `strong-rrdep = rrdep⁺ ∩ rb-dep`.
    pub strong_rrdep: Relation,
    /// `to-r = strong-rrdep ∪ rfi-rel-acq`.
    pub to_r: Relation,
    /// `strong-fence = mb ∪ gp` (Figure 12 extends Figure 8's `mb`).
    pub strong_fence: Relation,
    /// `fence = strong-fence ∪ po-rel ∪ wmb ∪ rmb ∪ acq-po`.
    pub fence: Relation,
    /// `ppo = rrdep* ; (to-r ∪ to-w ∪ fence)`.
    pub ppo: Relation,
    /// `cumul-fence = A-cumul(strong-fence ∪ po-rel) ∪ wmb`.
    pub cumul_fence: Relation,
    /// `prop = (overwrite ∩ ext)? ; cumul-fence* ; rfe?`.
    pub prop: Relation,
    /// `hb = ((prop \ id) ∩ int) ∪ ppo ∪ rfe`.
    pub hb: Relation,
    /// `pb = prop ; strong-fence ; hb*`.
    pub pb: Relation,
    // --- Figure 12 (RCU) ---
    /// `rscs = po ; crit⁻¹ ; po?`.
    pub rscs: Relation,
    /// `link = hb* ; pb* ; prop`.
    pub link: Relation,
    /// `gp-link = gp ; link`.
    pub gp_link: Relation,
    /// `rscs-link = rscs ; link`.
    pub rscs_link: Relation,
    /// `rcu-path`: the least fixpoint of the Figure 12 recursion.
    pub rcu_path: Relation,
    /// Per-SRCU-domain `rcu-path` analogues: grace periods and read-side
    /// sections of one domain only order each other (domains are
    /// independent). One entry per domain in `Execution::srcu_domains()`.
    pub srcu_paths: Vec<Relation>,
}

impl LkmmRelations {
    /// Compute every relation for `x`.
    pub fn compute(x: &Execution) -> Self {
        Self::compute_with(x, &LkmmStatics::compute(x))
    }

    /// As [`LkmmRelations::compute`], reusing precomputed
    /// witness-independent relations (see [`LkmmStatics`]). Only the
    /// `rf`/`co`-dependent relations are recomputed here.
    pub fn compute_with(x: &Execution, s: &LkmmStatics) -> Self {
        Self::compute_with_facts(x, s, &ExecFacts::new(x))
    }

    /// As [`LkmmRelations::compute_with`], additionally cloning the
    /// witness-dependent base relations (`fr`, `com`, `rfi`/`rfe`) from
    /// a shared facts layer instead of re-deriving them from `rf`/`co` —
    /// the per-candidate hot path when several models share one
    /// enumeration pass.
    pub fn compute_with_facts(x: &Execution, s: &LkmmStatics, facts: &ExecFacts<'_>) -> Self {
        let rfi = facts.rfi().clone();
        let rfe = facts.rfe().clone();

        let fr = facts.fr().clone();
        let com = facts.com().clone();

        let rfi_rel_acq = s.releases_id.seq(&rfi).seq(&s.acquires_id);

        let overwrite = x.co.union(&fr);
        let to_w = s.rwdep.union(&overwrite.intersection(&s.int));
        let rrdep = x.addr.union(&s.dep.seq(&rfi));
        let strong_rrdep = rrdep.transitive_closure().intersection(&s.rb_dep);
        let to_r = strong_rrdep.union(&rfi_rel_acq);
        let mut ppo_target = to_r.union(&to_w);
        ppo_target.union_in_place(&s.fence);
        let ppo = rrdep.reflexive_transitive_closure().seq(&ppo_target);
        // A-cumul(r) = rfe? ; r
        let a_cumul = |r: &Relation| rfe.reflexive().seq(r);
        let cumul_fence = a_cumul(&s.strong_fence.union(&s.po_rel)).union(&s.wmb);
        let prop = overwrite
            .intersection(&s.ext)
            .reflexive()
            .seq(&cumul_fence.reflexive_transitive_closure())
            .seq(&rfe.reflexive());
        let mut hb = prop.difference(&s.id);
        hb.intersection_in_place(&s.int);
        hb.union_in_place(&ppo);
        hb.union_in_place(&rfe);
        let pb = prop.seq(&s.strong_fence).seq(&hb.reflexive_transitive_closure());

        let link = hb
            .reflexive_transitive_closure()
            .seq(&pb.reflexive_transitive_closure())
            .seq(&prop);
        let gp_link = s.gp.seq(&link);
        let rscs_link = s.rscs.seq(&link);
        let rcu_path = rcu_path_fixpoint(&gp_link, &rscs_link);
        let srcu_paths = s
            .srcu
            .iter()
            .map(|(sgp, srscs)| rcu_path_fixpoint(&sgp.seq(&link), &srscs.seq(&link)))
            .collect();

        LkmmRelations {
            fr,
            com,
            ext: s.ext.clone(),
            po_loc: s.po_loc.clone(),
            rmb: s.rmb.clone(),
            wmb: s.wmb.clone(),
            mb: s.mb.clone(),
            rb_dep: s.rb_dep.clone(),
            acq_po: s.acq_po.clone(),
            po_rel: s.po_rel.clone(),
            rfi_rel_acq,
            gp: s.gp.clone(),
            dep: s.dep.clone(),
            rwdep: s.rwdep.clone(),
            overwrite,
            to_w,
            rrdep,
            strong_rrdep,
            to_r,
            strong_fence: s.strong_fence.clone(),
            fence: s.fence.clone(),
            ppo,
            cumul_fence,
            prop,
            hb,
            pb,
            rscs: s.rscs.clone(),
            link,
            gp_link,
            rscs_link,
            rcu_path,
            srcu_paths,
        }
    }
}

/// Least fixpoint of the Figure 12 recursion:
///
/// ```text
/// rec rcu-path := gp-link ∪ (rcu-path ; rcu-path)
///               ∪ (gp-link ; rscs-link) ∪ (rscs-link ; gp-link)
///               ∪ (gp-link ; rcu-path ; rscs-link)
///               ∪ (rscs-link ; rcu-path ; gp-link)
/// ```
///
/// `rcu-path` pairs events connected by a non-empty sequence of `gp-link`
/// and `rscs-link` edges with at least as many grace periods as critical
/// sections.
pub fn rcu_path_fixpoint(gp_link: &Relation, rscs_link: &Relation) -> Relation {
    rcu_path_fixpoint_with(gp_link, rscs_link, None).take()
}

/// Caller-held scratch for [`rcu_path_irreflexive_with`]: the two
/// fixpoint generations, the loop-invariant base, and two sequence
/// temporaries. A checking session keeps one of these alive across
/// candidates so the RCU axiom's fixpoint performs no storage
/// round-trips at all — not even pool transactions.
#[derive(Debug, Default)]
pub struct FixpointScratch {
    scratch: Relation,
    scratch2: Relation,
    base: Relation,
    cur: Relation,
    next: Relation,
}

/// Whether the Figure 12 `rcu-path` fixpoint is irreflexive, computed
/// entirely in `fx`'s reusable storage (reshaped, never reacquired).
/// This is the hot-path form of [`rcu_path_fixpoint`]: per-candidate
/// checkers only need the verdict, not the relation.
pub fn rcu_path_irreflexive_with(
    gp_link: &Relation,
    rscs_link: &Relation,
    fx: &mut FixpointScratch,
) -> bool {
    let n = gp_link.universe();
    let FixpointScratch { scratch, scratch2, base, cur, next } = fx;
    scratch.reset(n);
    scratch2.reset(n);
    cur.reset(n);
    // The first three union operands are loop-invariant.
    base.copy_from(gp_link);
    gp_link.seq_into(rscs_link, scratch);
    base.union_in_place(scratch);
    rscs_link.seq_into(gp_link, scratch);
    base.union_in_place(scratch);
    loop {
        next.copy_from(base);
        cur.seq_into(cur, scratch);
        next.union_in_place(scratch);
        gp_link.seq_into(cur, scratch);
        scratch.seq_into(rscs_link, scratch2);
        next.union_in_place(scratch2);
        rscs_link.seq_into(cur, scratch);
        scratch.seq_into(gp_link, scratch2);
        next.union_in_place(scratch2);
        if next == cur {
            return cur.is_irreflexive();
        }
        std::mem::swap(cur, next);
    }
}

/// [`rcu_path_fixpoint`] into storage drawn from `pool` (when present):
/// the loop swaps two pooled generations and reuses two scratch
/// relations for the three-way sequences, so a fixpoint round allocates
/// nothing once the pool is warm.
pub fn rcu_path_fixpoint_with(
    gp_link: &Relation,
    rscs_link: &Relation,
    pool: Option<&SharedArena>,
) -> ArenaRel {
    let n = gp_link.universe();
    // The first three union operands are loop-invariant.
    let mut scratch = acquire_rel(pool, n);
    let mut scratch2 = acquire_rel(pool, n);
    let mut base = acquire_rel(pool, n);
    base.copy_from(gp_link);
    gp_link.seq_into(rscs_link, &mut scratch);
    base.union_in_place(&scratch);
    rscs_link.seq_into(gp_link, &mut scratch);
    base.union_in_place(&scratch);
    let mut cur = acquire_rel(pool, n);
    let mut next = acquire_rel(pool, n);
    loop {
        next.copy_from(&base);
        cur.seq_into(&cur, &mut scratch);
        next.union_in_place(&scratch);
        gp_link.seq_into(&cur, &mut scratch);
        scratch.seq_into(rscs_link, &mut scratch2);
        next.union_in_place(&scratch2);
        rscs_link.seq_into(&cur, &mut scratch);
        scratch.seq_into(gp_link, &mut scratch2);
        next.union_in_place(&scratch2);
        if next == cur {
            return cur;
        }
        std::mem::swap(&mut cur, &mut next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{enumerate, EnumOptions};
    use lkmm_litmus::library;

    /// Find the execution of a library test satisfying its own condition
    /// (the "weak outcome" execution shown in the paper's figure).
    fn weak_execution(name: &str) -> Execution {
        let t = library::by_name(name).unwrap().test();
        enumerate(&t, &EnumOptions::default())
            .unwrap()
            .into_iter()
            .find(|x| x.satisfies_prop(&t.condition.prop))
            .unwrap_or_else(|| panic!("{name}: weak outcome not among candidates"))
    }

    #[test]
    fn figure2_wmb_gives_prop_edge() {
        // In Figure 2, writes a (x=1) and b (y=1) are separated by smp_wmb;
        // (a, b) ∈ prop, and the overwritten read d links to b.
        let x = weak_execution("MP+wmb+rmb");
        let r = LkmmRelations::compute(&x);
        let a = x.events.iter().find(|e| e.thread == Some(0) && e.is_write()).unwrap().id;
        let b = x
            .events
            .iter()
            .filter(|e| e.thread == Some(0) && e.is_write())
            .nth(1)
            .unwrap()
            .id;
        assert!(r.wmb.contains(a, b));
        assert!(r.prop.contains(a, b));
    }

    #[test]
    fn figure4_ctrl_and_mb_are_ppo() {
        let x = weak_execution("LB+ctrl+mb");
        let r = LkmmRelations::compute(&x);
        // T0: read a, ctrl-dependent write b.
        let a = x.events.iter().find(|e| e.thread == Some(0) && e.is_read()).unwrap().id;
        let b = x.events.iter().find(|e| e.thread == Some(0) && e.is_write()).unwrap().id;
        assert!(x.ctrl.contains(a, b));
        assert!(r.ppo.contains(a, b));
        // T1: read c, mb, write d.
        let c = x.events.iter().find(|e| e.thread == Some(1) && e.is_read()).unwrap().id;
        let d = x
            .events
            .iter()
            .find(|e| e.thread == Some(1) && e.is_write() && !e.is_init())
            .unwrap()
            .id;
        assert!(r.mb.contains(c, d));
        assert!(r.ppo.contains(c, d));
        // The full hb cycle of §3.2.4.
        assert!(!r.hb.is_acyclic());
    }

    #[test]
    fn figure5_release_is_a_cumulative() {
        let x = weak_execution("WRC+po-rel+rmb");
        let r = LkmmRelations::compute(&x);
        // a = P0's write of x; c = P1's release write of y.
        let a = x.events.iter().find(|e| e.thread == Some(0) && e.is_write()).unwrap().id;
        let c = x.events.iter().find(|e| e.is_release()).unwrap().id;
        // §3.2.3: (a, c) ∈ A-cumul(po-rel) ⊆ cumul-fence.
        assert!(r.cumul_fence.contains(a, c));
        assert!(!r.hb.is_acyclic());
    }

    #[test]
    fn figure6_pb_cycle() {
        let x = weak_execution("SB+mbs");
        let r = LkmmRelations::compute(&x);
        assert!(r.hb.is_acyclic(), "SB+mbs is a Pb violation, not Hb");
        assert!(!r.pb.is_acyclic());
    }

    #[test]
    fn figure7_peterz_pb_cycle() {
        let x = weak_execution("PeterZ");
        let r = LkmmRelations::compute(&x);
        assert!(!r.pb.is_acyclic());
    }

    #[test]
    fn figure9_rrdep_prefix_extends_ppo() {
        let x = weak_execution("MP+wmb+addr-acq");
        let r = LkmmRelations::compute(&x);
        // c = read of y (pointer), d = acquire via *r1, e = read of x:
        // (c,d) ∈ rrdep (addr), (d,e) ∈ acq-po, so (c,e) ∈ ppo.
        let c = x
            .events
            .iter()
            .find(|e| e.thread == Some(1) && e.is_read() && !e.is_acquire())
            .unwrap()
            .id;
        let d = x.events.iter().find(|e| e.is_acquire()).unwrap().id;
        let xloc = x.loc_id("x").unwrap();
        let e = x
            .events
            .iter()
            .find(|ev| ev.thread == Some(1) && ev.is_read() && ev.loc() == Some(xloc))
            .unwrap()
            .id;
        assert!(r.rrdep.contains(c, d));
        assert!(r.acq_po.contains(d, e));
        assert!(r.ppo.contains(c, e));
        assert!(!r.hb.is_acyclic());
    }

    #[test]
    fn figure10_rcu_path_reflexive() {
        let x = weak_execution("RCU-MP");
        let r = LkmmRelations::compute(&x);
        assert!(!r.rcu_path.is_irreflexive(), "RCU axiom must reject Figure 10");
        // The core axioms alone do not reject it.
        assert!(r.hb.is_acyclic());
        assert!(r.pb.is_acyclic());
    }

    #[test]
    fn rcu_path_fixpoint_counts_gps_vs_rscs() {
        // Hand-built: gp-link 0→1, rscs-link 1→0. One GP, one RSCS in the
        // cycle: rcu-path must contain (0,0) via gp-link;rscs-link.
        let gp_link = Relation::from_pairs(2, [(0, 1)]);
        let rscs_link = Relation::from_pairs(2, [(1, 0)]);
        let p = rcu_path_fixpoint(&gp_link, &rscs_link);
        assert!(p.contains(0, 0));
        // rscs-link alone is never a path: more RSCSes than GPs.
        let p2 = rcu_path_fixpoint(&Relation::empty(2), &rscs_link);
        assert!(p2.is_empty());
    }
}
