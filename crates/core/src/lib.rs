//! The Linux-kernel memory model (LKMM) of Alglave, Maranget, McKenney,
//! Parri & Stern, *ASPLOS 2018* — the paper's primary contribution, as an
//! executable Rust implementation.
//!
//! The model is a predicate on [candidate executions](lkmm_exec::Execution):
//! an execution is allowed iff it satisfies the four core axioms of
//! Figure 3 —
//!
//! * **Scpv** `acyclic(po-loc ∪ com)` — per-variable SC,
//! * **At** `empty(rmw ∩ (fre ; coe))` — RMW atomicity,
//! * **Hb** `acyclic(hb)` — happens-before,
//! * **Pb** `acyclic(pb)` — propagates-before,
//!
//! plus the **RCU axiom** of Figure 12, `irreflexive(rcu-path)`, which is
//! equivalent to the *fundamental law of RCU* (Theorem 1; see the
//! `lkmm-rcu` crate for the law side and the equivalence harness).
//!
//! Every intermediate relation of Figure 8 (`ppo`, `prop`, `cumul-fence`,
//! `hb`, `pb`, …) is exposed in [`LkmmRelations`] so violations can be
//! explained edge by edge, exactly as the paper's §3 walkthroughs do.
//!
//! # Examples
//!
//! ```
//! use lkmm::Lkmm;
//! use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
//!
//! // Figure 6: store buffering with full fences is forbidden (Pb axiom).
//! let sb_mbs = lkmm_litmus::library::by_name("SB+mbs").unwrap().test();
//! let result = check_test(&Lkmm::new(), &sb_mbs, &EnumOptions::default()).unwrap();
//! assert_eq!(result.verdict, Verdict::Forbidden);
//!
//! // Without the fences the outcome is observable.
//! let sb = lkmm_litmus::library::by_name("SB").unwrap().test();
//! let result = check_test(&Lkmm::new(), &sb, &EnumOptions::default()).unwrap();
//! assert_eq!(result.verdict, Verdict::Allowed);
//! ```

pub mod explain;
pub mod model;
pub mod relations;

pub use explain::{explain_violation, Violation};
pub use model::{Axiom, Lkmm, LkmmSession};
pub use relations::{rcu_path_fixpoint, LkmmRelations, LkmmStatics};
