//! The LKMM as a [`ConsistencyModel`]: the four core axioms of Figure 3
//! plus the RCU axiom of Figure 12.

use crate::relations::{
    rcu_path_irreflexive_with, FixpointScratch, LkmmRelations, LkmmStatics,
};
use lkmm_exec::{ConsistencyModel, Event, ExecFacts, Execution, ModelSession};
use lkmm_relation::Relation;
use std::fmt;
use std::sync::Arc;

/// The axioms of the model (Figure 3 + Figure 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axiom {
    /// `acyclic(po-loc ∪ com)` — sequential consistency per variable.
    Scpv,
    /// `empty(rmw ∩ (fre ; coe))` — RMW atomicity.
    At,
    /// `acyclic(hb)` — happens-before.
    Hb,
    /// `acyclic(pb)` — propagates-before.
    Pb,
    /// `irreflexive(rcu-path)` — the RCU axiom.
    Rcu,
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axiom::Scpv => "Scpv: acyclic(po-loc U com)",
            Axiom::At => "At: empty(rmw & (fre;coe))",
            Axiom::Hb => "Hb: acyclic(hb)",
            Axiom::Pb => "Pb: acyclic(pb)",
            Axiom::Rcu => "Rcu: irreflexive(rcu-path)",
        };
        write!(f, "{s}")
    }
}

/// The Linux-kernel memory model.
///
/// # Examples
///
/// ```
/// use lkmm::Lkmm;
/// use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
///
/// let test = lkmm_litmus::library::by_name("MP+wmb+rmb").unwrap().test();
/// let r = check_test(&Lkmm::new(), &test, &EnumOptions::default()).unwrap();
/// assert_eq!(r.verdict, Verdict::Forbidden); // Figure 2 of the paper
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Lkmm {
    /// Skip the RCU axiom (the pure Figure 3/8 core). Used for ablation.
    pub without_rcu: bool,
}

impl Lkmm {
    /// The full model (core + RCU axiom).
    pub fn new() -> Self {
        Lkmm { without_rcu: false }
    }

    /// The Figure 3 core only, without the RCU axiom of Figure 12.
    pub fn core_only() -> Self {
        Lkmm { without_rcu: true }
    }

    /// The first violated axiom, checked in Figure 3 order, or `None` if
    /// the execution is allowed.
    pub fn violated_axiom(&self, x: &Execution) -> Option<Axiom> {
        let facts = ExecFacts::new(x);
        let statics = LkmmStatics::compute_with_facts(x, &facts);
        let r = LkmmRelations::compute_with_facts(x, &statics, &facts);
        self.violated_axiom_with(&r, &facts)
    }

    /// As [`Lkmm::violated_axiom`], reusing precomputed relations. The
    /// Scpv and At axioms read the shared facts layer directly — the
    /// `acyclic(po-loc ∪ com)` and `empty(rmw ∩ (fre ; coe))` checks are
    /// common to every hardware model, so their verdicts are memoised
    /// once per candidate, not recomputed per model.
    pub fn violated_axiom_with(
        &self,
        r: &LkmmRelations,
        facts: &ExecFacts<'_>,
    ) -> Option<Axiom> {
        if !facts.sc_per_loc_ok() {
            return Some(Axiom::Scpv);
        }
        if !facts.atomicity_ok() {
            return Some(Axiom::At);
        }
        if !r.hb.is_acyclic() {
            return Some(Axiom::Hb);
        }
        if !r.pb.is_acyclic() {
            return Some(Axiom::Pb);
        }
        if !self.without_rcu
            && (!r.rcu_path.is_irreflexive()
                || r.srcu_paths.iter().any(|p| !p.is_irreflexive()))
        {
            return Some(Axiom::Rcu);
        }
        None
    }

    /// The hot-path axiom check: evaluates the same Figure 3/12 axioms
    /// as [`Lkmm::violated_axiom_with`], but builds only the relations
    /// the next axiom needs — stopping at the first violation — and
    /// accumulates every intermediate in place into the caller-held
    /// [`AxiomScratch`]. A checking session reuses one scratch across
    /// all candidates, so the axiom check's steady state performs no
    /// storage round-trips at all — cheaper than even a pool
    /// transaction per intermediate. [`LkmmRelations`] stays the
    /// inspectable reference; this is what checking sessions run per
    /// candidate.
    fn violated_axiom_pooled(
        &self,
        x: &Execution,
        s: &LkmmStatics,
        facts: &ExecFacts<'_>,
        tmp: &mut AxiomScratch,
    ) -> Option<Axiom> {
        if !facts.sc_per_loc_ok() {
            return Some(Axiom::Scpv);
        }
        if !facts.atomicity_ok() {
            return Some(Axiom::At);
        }
        let n = x.universe();
        let rfi = facts.rfi();
        let rfe = facts.rfe();
        let AxiomScratch { t, overwrite, target, rrdep, ppo, cf, prop, hb, pb, link, gp_link, rscs_link, row, fx } =
            tmp;
        // `seq_into` destinations are fully overwritten but must carry
        // the candidate's shape; `copy_from` destinations reshape
        // themselves.
        rrdep.reset(n);
        ppo.reset(n);
        prop.reset(n);
        pb.reset(n);
        link.reset(n);
        gp_link.reset(n);
        rscs_link.reset(n);

        // overwrite = co ∪ fr.
        overwrite.copy_from(&x.co);
        overwrite.union_in_place(facts.fr());
        // The ppo target: to-r ∪ to-w ∪ fence.
        target.copy_from(overwrite);
        target.intersection_in_place(&s.int);
        target.union_in_place(&s.rwdep); // to-w
        s.dep.seq_into(rfi, rrdep);
        rrdep.union_in_place(&x.addr);
        t.copy_from(rrdep); // strong-rrdep = rrdep⁺ ∩ rb-dep
        t.transitive_close_with(row);
        t.intersection_in_place(&s.rb_dep);
        target.union_in_place(t);
        t.copy_from(rfi); // rfi-rel-acq = [Release] ; rfi ; [Acquire]
        t.restrict_domain_in_place(facts.releases());
        t.restrict_range_in_place(facts.acquires());
        target.union_in_place(t);
        target.union_in_place(&s.fence);
        // ppo = rrdep* ; target.
        rrdep.transitive_close_with(row);
        rrdep.reflexive_in_place();
        rrdep.seq_into(target, ppo);

        // cumul-fence = (rfe? ; (strong-fence ∪ po-rel)) ∪ wmb.
        cf.copy_from(&s.strong_fence);
        cf.union_in_place(&s.po_rel);
        rfe.seq_into(cf, t);
        cf.union_in_place(t);
        cf.union_in_place(&s.wmb);
        // prop = (overwrite ∩ ext)? ; cumul-fence* ; rfe?.
        cf.transitive_close_with(row);
        cf.reflexive_in_place();
        overwrite.intersection_in_place(&s.ext);
        overwrite.seq_into(cf, prop);
        prop.union_in_place(cf);
        prop.seq_into(rfe, t);
        prop.union_in_place(t);

        // hb = ((prop \ id) ∩ int) ∪ ppo ∪ rfe.
        hb.copy_from(prop);
        hb.difference_in_place(&s.id);
        hb.intersection_in_place(&s.int);
        hb.union_in_place(ppo);
        hb.union_in_place(rfe);
        if !hb.is_acyclic() {
            return Some(Axiom::Hb);
        }

        // pb = prop ; strong-fence ; hb*.
        hb.transitive_close_with(row);
        hb.reflexive_in_place(); // hb* from here on
        prop.seq_into(&s.strong_fence, t);
        t.seq_into(hb, pb);
        if !pb.is_acyclic() {
            return Some(Axiom::Pb);
        }
        if self.without_rcu {
            return None;
        }

        // link = hb* ; pb* ; prop, then the per-domain RCU fixpoints.
        pb.transitive_close_with(row);
        pb.reflexive_in_place();
        hb.seq_into(pb, t);
        t.seq_into(prop, link);
        s.gp.seq_into(link, gp_link);
        s.rscs.seq_into(link, rscs_link);
        if !rcu_path_irreflexive_with(gp_link, rscs_link, fx) {
            return Some(Axiom::Rcu);
        }
        for (sgp, srscs) in &s.srcu {
            sgp.seq_into(link, gp_link);
            srscs.seq_into(link, rscs_link);
            if !rcu_path_irreflexive_with(gp_link, rscs_link, fx) {
                return Some(Axiom::Rcu);
            }
        }
        None
    }
}

/// Reusable storage for one session's axiom checks: every intermediate
/// relation of [`Lkmm::violated_axiom_pooled`] plus the closure scratch
/// row and the RCU fixpoint's generations. Reshaped per candidate,
/// allocated once per session — the intermediates never escape one
/// check, so they need none of the arena's handle bookkeeping. The
/// shared facts tier still draws from the worker's arena (its storage
/// must live inside each candidate's `ExecFacts`).
#[derive(Debug, Default)]
struct AxiomScratch {
    t: Relation,
    overwrite: Relation,
    target: Relation,
    rrdep: Relation,
    ppo: Relation,
    cf: Relation,
    prop: Relation,
    hb: Relation,
    pb: Relation,
    link: Relation,
    gp_link: Relation,
    rscs_link: Relation,
    row: Vec<u64>,
    fx: FixpointScratch,
}

impl ConsistencyModel for Lkmm {
    fn name(&self) -> &str {
        if self.without_rcu {
            "LKMM-core"
        } else {
            "LKMM"
        }
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        let statics = LkmmStatics::compute_with_facts(x, facts);
        let mut tmp = AxiomScratch::default();
        let allowed = self.violated_axiom_pooled(x, &statics, facts, &mut tmp).is_none();
        // `lkmm.misjudge` deliberately inverts verdicts so the conformance
        // oracles can be demonstrated against a broken checker.
        if lkmm_core::faultpoint::should_fail("lkmm.misjudge") {
            !allowed
        } else {
            allowed
        }
    }

    fn explain(&self, x: &Execution) -> Option<String> {
        self.violated_axiom(x).map(|a| format!("violates {a}"))
    }

    fn session(&self) -> Option<Box<dyn ModelSession + '_>> {
        Some(Box::new(LkmmSession {
            model: *self,
            cache: None,
            fuel: None,
            tmp: AxiomScratch::default(),
        }))
    }

    fn eval_cost_hint(&self) -> usize {
        5
    }
}

/// A stateful checking session for the native LKMM: caches the
/// witness-independent [`LkmmStatics`] across the candidates of one
/// pre-execution, keyed on the identity of the shared event list (the
/// held `Arc` keeps the allocation alive, so pointer identity cannot be
/// recycled while the cache entry exists), and keeps one
/// [`AxiomScratch`] whose relations are reshaped in place candidate
/// after candidate.
pub struct LkmmSession {
    model: Lkmm,
    cache: Option<(Arc<Vec<Event>>, LkmmStatics)>,
    fuel: Option<Arc<lkmm_core::budget::StepFuel>>,
    tmp: AxiomScratch,
}

impl ModelSession for LkmmSession {
    fn allows(&mut self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&mut self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        let hit = self
            .cache
            .as_ref()
            .is_some_and(|(events, _)| Arc::ptr_eq(events, &x.events));
        if !hit {
            self.cache =
                Some((Arc::clone(&x.events), LkmmStatics::compute_with_facts(x, facts)));
        }
        let statics = &self.cache.as_ref().expect("cache filled above").1;
        let allowed =
            self.model.violated_axiom_pooled(x, statics, facts, &mut self.tmp).is_none();
        if lkmm_core::faultpoint::should_fail("lkmm.misjudge") {
            !allowed
        } else {
            allowed
        }
    }

    /// The native axioms are evaluated by closed-form relation algebra
    /// (no open-ended fixpoints), so the step cost of one candidate is
    /// charged as `1 + |events|` units against the shared tank.
    fn try_allows(&mut self, x: &Execution) -> Result<bool, lkmm_exec::EvalStop> {
        self.try_allows_with(x, &ExecFacts::new(x))
    }

    fn try_allows_with(
        &mut self,
        x: &Execution,
        facts: &ExecFacts<'_>,
    ) -> Result<bool, lkmm_exec::EvalStop> {
        if let Some(fuel) = &self.fuel {
            if !fuel.consume(1 + x.universe() as u64) {
                return Err(lkmm_exec::EvalStop);
            }
        }
        Ok(self.allows_with(x, facts))
    }

    fn install_step_fuel(&mut self, fuel: Arc<lkmm_core::budget::StepFuel>) {
        self.fuel = Some(fuel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{enumerate, EnumOptions};
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library::{self, Expect};
    use lkmm_litmus::parse;

    #[test]
    fn lkmm_matches_every_paper_verdict() {
        for pt in library::all() {
            let t = pt.test();
            let r = check_test(&Lkmm::new(), &t, &EnumOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", pt.name));
            let expected = match pt.lkmm {
                Expect::Allowed => Verdict::Allowed,
                Expect::Forbidden => Verdict::Forbidden,
            };
            assert_eq!(r.verdict, expected, "{} (paper says {:?})", pt.name, pt.lkmm);
        }
    }

    #[test]
    fn pooled_axiom_check_matches_the_reference_relations() {
        // The session hot path (early-exiting, arena-backed) and the
        // inspectable LkmmRelations build must agree axiom for axiom on
        // every candidate of every library test — with and without a
        // pool attached.
        let model = Lkmm::new();
        let arena = lkmm_relation::shared_arena();
        // One scratch across every candidate of every test, exactly as a
        // session would reuse it — reshaping must never leak state.
        let mut tmp = AxiomScratch::default();
        for pt in library::all() {
            let t = pt.test();
            for x in enumerate(&t, &EnumOptions::default()).unwrap() {
                let mut cache = lkmm_exec::FactsCache::with_arena(arena.clone());
                let facts = cache.facts(&x);
                let statics = LkmmStatics::compute_with_facts(&x, &facts);
                let r = LkmmRelations::compute_with_facts(&x, &statics, &facts);
                assert_eq!(
                    model.violated_axiom_pooled(&x, &statics, &facts, &mut tmp),
                    model.violated_axiom_with(&r, &facts),
                    "{}", pt.name
                );
                let plain = ExecFacts::new(&x);
                let statics2 = LkmmStatics::compute_with_facts(&x, &plain);
                assert_eq!(
                    model.violated_axiom_pooled(&x, &statics2, &plain, &mut tmp),
                    model.violated_axiom_with(&r, &plain),
                    "{} (no pool)", pt.name
                );
            }
        }
        assert!(arena.borrow().reuses() > 0, "the pooled path must recycle storage");
    }

    #[test]
    fn violated_axioms_match_the_paper_walkthroughs() {
        let axiom_of = |name: &str| {
            let t = library::by_name(name).unwrap().test();
            let weak = enumerate(&t, &EnumOptions::default())
                .unwrap()
                .into_iter()
                .find(|x| x.satisfies_prop(&t.condition.prop))
                .unwrap();
            Lkmm::new().violated_axiom(&weak).unwrap()
        };
        assert_eq!(axiom_of("LB+ctrl+mb"), Axiom::Hb); // §3.2.4
        assert_eq!(axiom_of("MP+wmb+rmb"), Axiom::Hb);
        assert_eq!(axiom_of("WRC+po-rel+rmb"), Axiom::Hb); // §3.2.4
        assert_eq!(axiom_of("SB+mbs"), Axiom::Pb); // §3.2.5
        assert_eq!(axiom_of("PeterZ"), Axiom::Pb); // §3.2.5
        assert_eq!(axiom_of("RCU-MP"), Axiom::Rcu); // §4.2
        assert_eq!(axiom_of("RCU-deferred-free"), Axiom::Rcu);
    }

    #[test]
    fn core_only_allows_rcu_patterns() {
        let t = library::by_name("RCU-MP").unwrap().test();
        let with = check_test(&Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        let without = check_test(&Lkmm::core_only(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(with.verdict, Verdict::Forbidden);
        assert_eq!(without.verdict, Verdict::Allowed);
    }

    #[test]
    fn synchronize_rcu_acts_as_strong_fence() {
        // §4.2: gp is added to strong-fence, so synchronize_rcu can replace
        // smp_mb — SB with synchronize_rcu on both sides is forbidden.
        let t = parse(
            "C SB+syncs\n{ x=0; y=0; }\n\
             P0(int *x, int *y) { int r0; WRITE_ONCE(*x, 1); synchronize_rcu(); \
             r0 = READ_ONCE(*y); }\n\
             P1(int *x, int *y) { int r0; WRITE_ONCE(*y, 1); synchronize_rcu(); \
             r0 = READ_ONCE(*x); }\n\
             exists (0:r0=0 /\\ 1:r0=0)",
        )
        .unwrap();
        let r = check_test(&Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Forbidden);
    }

    #[test]
    fn atomicity_axiom_forbids_intervening_write() {
        // Two competing full xchg on the same location must serialise: both
        // cannot read the initial value.
        let t = parse(
            "C At\n{ x=0; }\n\
             P0(int *x) { int r0; r0 = xchg(x, 1); }\n\
             P1(int *x) { int r0; r0 = xchg(x, 2); }\n\
             exists (0:r0=0 /\\ 1:r0=0)",
        )
        .unwrap();
        let r = check_test(&Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Forbidden);
        // One of them reading 0 is of course allowed.
        let t2 = parse(
            "C At2\n{ x=0; }\n\
             P0(int *x) { int r0; r0 = xchg(x, 1); }\n\
             P1(int *x) { int r0; r0 = xchg(x, 2); }\n\
             exists (0:r0=0 /\\ 1:r0=1)",
        )
        .unwrap();
        let r2 = check_test(&Lkmm::new(), &t2, &EnumOptions::default()).unwrap();
        assert_eq!(r2.verdict, Verdict::Allowed);
    }

    #[test]
    fn alpha_needs_rb_dep_for_read_read_dependency() {
        // MP with address dependency but no smp_read_barrier_depends: the
        // LKMM respects read-read address deps only with the barrier
        // (strong-rrdep). Without it the outcome is allowed...
        let t = library::by_name("MP+wmb+addr").unwrap().test();
        let r = check_test(&Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Allowed);
        // ...with rcu_dereference (which carries F[rb-dep]) it is forbidden.
        let t2 = parse(
            "C MP+wmb+deref\n{ x=0; y=&z; z=0; w=0; }\n\
             P0(int *x, int **y, int *w) { WRITE_ONCE(*x, 1); smp_wmb(); \
             WRITE_ONCE(*y, &w); }\n\
             P1(int *x, int **y) { int *r1; int r2; int r3; \
             r1 = rcu_dereference(*y); r2 = READ_ONCE(*r1); r3 = READ_ONCE(*x); }\n\
             exists (1:r1=&w /\\ 1:r3=0)",
        )
        .unwrap();
        let r2 = check_test(&Lkmm::new(), &t2, &EnumOptions::default()).unwrap();
        // The rb-dep orders r1->r2 but r3 has no dependency from r1, so the
        // outcome on r3 is still allowed...
        assert_eq!(r2.verdict, Verdict::Allowed);
        // ...whereas the dependent read r2 is ordered: it cannot see stale
        // data through the new pointer.
        let t3 = parse(
            "C MP+wmb+deref2\n{ x=0; y=&z; z=0; w=0; }\n\
             P0(int **y, int *w) { WRITE_ONCE(*w, 1); smp_wmb(); \
             WRITE_ONCE(*y, &w); }\n\
             P1(int **y) { int *r1; int r2; \
             r1 = rcu_dereference(*y); r2 = READ_ONCE(*r1); }\n\
             exists (1:r1=&w /\\ 1:r2=0)",
        )
        .unwrap();
        let r3 = check_test(&Lkmm::new(), &t3, &EnumOptions::default()).unwrap();
        assert_eq!(r3.verdict, Verdict::Forbidden);
        // The plain READ_ONCE pointer chase (no rb-dep) allows it: Alpha.
        let t4 = parse(
            "C MP+wmb+addr3\n{ x=0; y=&z; z=0; w=0; }\n\
             P0(int **y, int *w) { WRITE_ONCE(*w, 1); smp_wmb(); \
             WRITE_ONCE(*y, &w); }\n\
             P1(int **y) { int *r1; int r2; \
             r1 = READ_ONCE(*y); r2 = READ_ONCE(*r1); }\n\
             exists (1:r1=&w /\\ 1:r2=0)",
        )
        .unwrap();
        let r4 = check_test(&Lkmm::new(), &t4, &EnumOptions::default()).unwrap();
        assert_eq!(r4.verdict, Verdict::Allowed);
    }

    #[test]
    fn spinlock_emulation_serialises_critical_sections() {
        // §7: spin_lock ≙ acquire-RMW, spin_unlock ≙ store-release. The At
        // axiom forces the two lock RMWs to serialise, so P1's critical
        // section observes P0's writes atomically: seeing x=1 but y=0 is
        // forbidden.
        let src = |cond: &str| {
            format!(
                "C lock-atomic\n{{ s=0; x=0; y=0; }}\n\
                 P0(spinlock_t *s, int *x, int *y) {{ spin_lock(&s); \
                 WRITE_ONCE(*x, 1); WRITE_ONCE(*y, 1); spin_unlock(&s); }}\n\
                 P1(spinlock_t *s, int *x, int *y) {{ int r0; int r1; spin_lock(&s); \
                 r0 = READ_ONCE(*x); r1 = READ_ONCE(*y); spin_unlock(&s); }}\n\
                 exists ({cond})"
            )
        };
        let torn = parse(&src("1:r0=1 /\\ 1:r1=0")).unwrap();
        let r = check_test(&Lkmm::new(), &torn, &EnumOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Forbidden);
        // Seeing both (P1 after P0) and neither (P1 before P0) are allowed.
        for cond in ["1:r0=1 /\\ 1:r1=1", "1:r0=0 /\\ 1:r1=0"] {
            let t = parse(&src(cond)).unwrap();
            let r = check_test(&Lkmm::new(), &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Allowed, "{cond}");
        }
    }
}
