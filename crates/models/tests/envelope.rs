//! The paper's central design property (§1.2, Torvalds/Molnar): the LKMM
//! is an *envelope* over the architectures the kernel supports — every
//! execution any hardware model allows, the LKMM allows.
//!
//! The hardware models themselves are pairwise incomparable (each is
//! stronger in its own corner), which is precisely why the kernel needs
//! its own model rather than adopting one architecture's.

use lkmm::Lkmm;
use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
use lkmm_exec::{check_test, ConsistencyModel, Verdict};
use lkmm_generator::{cycles_up_to, default_alphabet, generate};
use lkmm_litmus::library;
use lkmm_models::{Armv8, Power, X86Tso};

#[test]
fn lkmm_allows_whatever_any_hardware_model_allows() {
    let lkmm = Lkmm::new();
    let mut candidates = 0usize;
    for pt in library::all().iter().filter(|p| !p.name.starts_with("RCU")) {
        let t = pt.test();
        for_each_execution(&t, &EnumOptions::default(), &mut |x| {
            candidates += 1;
            let hw_allowed = X86Tso.allows(x) || Armv8.allows(x) || Power.allows(x);
            if hw_allowed {
                assert!(
                    lkmm.allows(x),
                    "{}: a hardware model allows an execution the LKMM forbids\n{x}",
                    pt.name
                );
            }
        })
        .unwrap();
    }
    assert!(candidates > 100);
}

#[test]
fn lkmm_envelope_on_generated_cycles() {
    let lkmm = Lkmm::new();
    for cycle in cycles_up_to(4, &default_alphabet()) {
        let t = generate(&cycle).unwrap();
        for_each_execution(&t, &EnumOptions::default(), &mut |x| {
            let hw_allowed = X86Tso.allows(x) || Armv8.allows(x) || Power.allows(x);
            if hw_allowed {
                assert!(lkmm.allows(x), "{}\n{x}", t.name);
            }
        })
        .unwrap();
    }
}

#[test]
fn hardware_models_are_pairwise_incomparable() {
    // Witnesses that no architecture model subsumes another — the reason
    // "pick one architecture's model" does not work (§1.2).
    let opts = EnumOptions::default();
    let verdict = |m: &dyn ConsistencyModel, name: &str| {
        check_test(m, &library::by_name(name).unwrap().test(), &opts).unwrap().verdict
    };
    // TSO ⊄ ARMv8: x86 maps acquire/release to plain accesses, so
    // SB+rel+acq is x86-observable; ARMv8's RCsc STLR/LDAR forbid it.
    assert_eq!(verdict(&X86Tso, "SB+rel+acq"), Verdict::Allowed);
    assert_eq!(verdict(&Armv8, "SB+rel+acq"), Verdict::Forbidden);
    // ARMv8 ⊄ TSO: trivially, MP is ARM-observable but TSO-forbidden.
    assert_eq!(verdict(&Armv8, "MP"), Verdict::Allowed);
    assert_eq!(verdict(&X86Tso, "MP"), Verdict::Forbidden);
    // ARMv8 ⊄ Power: ARMv8's dmb.st is not A-cumulative in the WRC+wmb+acq
    // shape; Power's lwsync is.
    assert_eq!(verdict(&Armv8, "WRC+wmb+acq"), Verdict::Allowed);
    assert_eq!(verdict(&Power, "WRC+wmb+acq"), Verdict::Forbidden);
    // Power ⊄ ARMv8: Power's lwsync-based release/acquire allow SB+rel+acq.
    assert_eq!(verdict(&Power, "SB+rel+acq"), Verdict::Allowed);
    // And the LKMM allows all the union's behaviours.
    let lkmm = Lkmm::new();
    for name in ["SB+rel+acq", "MP", "WRC+wmb+acq"] {
        assert_eq!(verdict(&lkmm, name), Verdict::Allowed, "{name}");
    }
}
