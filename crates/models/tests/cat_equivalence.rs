//! Every native hardware model must agree with its cat transcription on
//! every candidate execution — the "formal AND executable" guarantee
//! extended from the LKMM to the whole model tower.

use lkmm_cat::CatModel;
use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
use lkmm_exec::ConsistencyModel;
use lkmm_litmus::library;
use lkmm_models::{Armv8, Power, X86Tso};

fn check_pair(native: &dyn ConsistencyModel, cat_src: &str) {
    let cat = CatModel::parse(cat_src).unwrap();
    for pt in library::all().iter().filter(|p| !p.name.starts_with("RCU")) {
        let t = pt.test();
        for_each_execution(&t, &EnumOptions::default(), &mut |x| {
            assert_eq!(
                cat.allows(x),
                native.allows(x),
                "{} on {}: cat/native disagree\n{x}",
                native.name(),
                pt.name
            );
        })
        .unwrap();
    }
}

#[test]
fn armv8_native_matches_cat() {
    check_pair(&Armv8, lkmm_cat::builtin::ARMV8_CAT);
}

#[test]
fn power_native_matches_cat() {
    check_pair(&Power, lkmm_cat::builtin::POWER_CAT);
}

#[test]
fn tso_native_matches_cat() {
    check_pair(&X86Tso, lkmm_cat::builtin::X86_TSO_CAT);
}
