//! §5.2 at state granularity: for each LKMM/C11-diverging test, pin down
//! *which* final states the two models disagree on.

use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::states::collect_states;
use lkmm_exec::ConsistencyModel;
use lkmm_litmus::library;
use lkmm_models::OriginalC11;
use std::collections::BTreeSet;

fn allowed_states(model: &dyn ConsistencyModel, test: &lkmm_litmus::Test) -> BTreeSet<String> {
    collect_states(model, test, &EnumOptions::default())
        .unwrap()
        .states
        .into_iter()
        .filter(|(_, c)| c.allowed > 0)
        .map(|(s, _)| s.0)
        .collect()
}

#[test]
fn c11_divergences_are_exactly_the_weak_states() {
    let lkmm = Lkmm::new();
    let c11 = OriginalC11;
    for pt in library::all() {
        let Some(c11_expect) = pt.c11 else { continue };
        if c11_expect == pt.lkmm {
            continue;
        }
        let test = pt.test();
        let l = allowed_states(&lkmm, &test);
        let c = allowed_states(&c11, &test);
        let only_c11: BTreeSet<_> = c.difference(&l).collect();
        let only_lkmm: BTreeSet<_> = l.difference(&c).collect();
        match pt.name {
            // LKMM forbids, C11 allows: C11 has extra (weak) states.
            "LB+ctrl+mb" | "PeterZ" | "RWC+mbs" | "LB+datas" | "ISA2+po-rel+po-rel+acq" => {
                assert!(!only_c11.is_empty(), "{}: expected extra C11 states", pt.name);
                assert!(only_lkmm.is_empty(), "{}: LKMM should not allow extra", pt.name);
            }
            // LKMM allows, C11 forbids (no wmb equivalent): reversed.
            "WRC+wmb+acq" => {
                assert!(!only_lkmm.is_empty(), "{}", pt.name);
                assert!(only_c11.is_empty(), "{}", pt.name);
            }
            other => panic!("unexpected diverging test {other}"),
        }
    }
}

#[test]
fn agreeing_tests_agree_statewise_too() {
    // Where the verdicts agree, the per-state sets may still differ in
    // principle; on the paper's tests they in fact coincide except where
    // dependencies are involved. Verify the verdict-level agreement is
    // backed by the weak state's membership.
    let lkmm = Lkmm::new();
    let c11 = OriginalC11;
    for pt in library::all() {
        let Some(c11_expect) = pt.c11 else { continue };
        if c11_expect != pt.lkmm {
            continue;
        }
        let test = pt.test();
        let l = allowed_states(&lkmm, &test);
        let c = allowed_states(&c11, &test);
        // The condition's weak state is in both or in neither.
        let summary = collect_states(&lkmm, &test, &EnumOptions::default()).unwrap();
        for (state, count) in &summary.states {
            if count.satisfies {
                assert_eq!(
                    l.contains(&state.0),
                    c.contains(&state.0),
                    "{}: weak state membership diverges",
                    pt.name
                );
            }
        }
    }
}
