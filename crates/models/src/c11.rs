//! Original C11 (C++11 §29.3, before the SC-fence strengthening of
//! Batty et al. \[15\]), under the LK→C11 mapping of P0124 \[68\].

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution};
use lkmm_litmus::{ast::Stmt, FenceKind, Test};
use lkmm_relation::{acquire_rel, acquire_set, scratch_words, with_scratch, ArenaRel, Relation};

/// The original C11 model.
///
/// Under the \[68\] mapping, LK events are reinterpreted as: ONCE →
/// relaxed, acquire/release → acquire/release, `smp_rmb` → acquire fence,
/// `smp_wmb` → release fence, `smp_mb` → `seq_cst` fence; dependencies
/// carry no ordering. A `seq_cst` fence is also an acquire and a release
/// fence.
///
/// Axioms:
///
/// * **Coherence** (RC11 formulation): `irreflexive(hb ; eco?)` with
///   `hb = (po ∪ sw)⁺` and `eco = (rf ∪ co ∪ fr)⁺`;
/// * **Atomicity**: `empty(rmw ∩ (fre ; coe))`;
/// * **SC fences** (the *original*, weak rules): there must exist a total
///   order `S` over `seq_cst` fences, consistent with `hb`, such that the
///   fence/read rule (C++11 29.3p6) and fence/write rule (29.3p7) hold.
///   Because the rules only constrain *pairs of fences*, the existential
///   reduces to an acyclicity check on a constraint digraph.
///
/// Simplifications (documented in DESIGN.md): release sequences are
/// truncated at the head (no RMW chains in the mapped tests), `seq_cst`
/// *atomics* never arise from the mapping (rules 29.3p3–p5 are vacuous),
/// and consume is not modelled (`smp_read_barrier_depends` maps to
/// nothing). RCU has no C11 counterpart ("–" in Table 5); see
/// [`OriginalC11::supports`].
///
/// # Examples
///
/// ```
/// use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
/// use lkmm_models::OriginalC11;
///
/// // Figure 13: the LKMM forbids RWC+mbs, original C11 allows it.
/// let t = lkmm_litmus::library::by_name("RWC+mbs").unwrap().test();
/// let r = check_test(&OriginalC11, &t, &EnumOptions::default()).unwrap();
/// assert_eq!(r.verdict, Verdict::Allowed);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct OriginalC11;

impl OriginalC11 {
    /// Whether the mapping covers this test: C11 has no RCU primitives.
    pub fn supports(test: &Test) -> bool {
        fn no_rcu(stmts: &[Stmt]) -> bool {
            stmts.iter().all(|s| match s {
                Stmt::Fence(
                    FenceKind::RcuLock | FenceKind::RcuUnlock | FenceKind::SyncRcu,
                ) => false,
                Stmt::If { then_, else_, .. } => no_rcu(then_) && no_rcu(else_),
                _ => true,
            })
        }
        test.threads.iter().all(|t| no_rcu(&t.body))
    }

    /// Why this test is *licensed* to diverge from the LKMM, if it is.
    ///
    /// §5.2 of the paper traces every LKMM/C11 disagreement to a feature
    /// the original C11 model genuinely lacks. This is the conformance
    /// suite's whitelist: a test whose LKMM and C11 verdicts differ is
    /// only acceptable when some statement exercises one of those
    /// features. Returns the first such feature found, or `None` for
    /// plain `READ_ONCE`/`WRITE_ONCE` programs, whose verdicts must
    /// coincide under the \[68\] mapping.
    ///
    /// The licensed features:
    ///
    /// * **dependencies** — C11 relaxed accesses carry no address, data,
    ///   or control ordering (the out-of-thin-air problem, §5.2):
    ///   branches, register computation, registers feeding write values,
    ///   register-addressed accesses, `rcu_dereference`;
    /// * **fences** — the mapping weakens every LK fence (`smp_mb` maps
    ///   to the original 29.3p6/p7 `seq_cst` fence rules, which only
    ///   constrain fence pairs; `smp_rmb`/`smp_wmb` become mere
    ///   acquire/release fences);
    /// * **release/acquire** — C11 release sequences and sw edges are
    ///   not A-cumulative the way LKMM propagation is;
    /// * **RMW primitives** — mapped through the fence/ordering variants
    ///   above, inheriting their weakness.
    pub fn divergence_license(test: &Test) -> Option<&'static str> {
        fn expr_has_reg(e: &lkmm_litmus::Expr) -> bool {
            !e.regs().is_empty()
        }
        fn scan(stmts: &[Stmt]) -> Option<&'static str> {
            use lkmm_litmus::AddrExpr;
            for s in stmts {
                let lic = match s {
                    Stmt::If { .. } => Some("control dependency (C11 orders no dependencies)"),
                    Stmt::Assign { .. } | Stmt::Assume(_) => {
                        Some("register computation (dependency chain)")
                    }
                    Stmt::RcuDereference { .. } => {
                        Some("rcu_dereference address dependency")
                    }
                    Stmt::Fence(
                        FenceKind::Rmb | FenceKind::Wmb | FenceKind::Mb | FenceKind::RbDep
                        | FenceKind::SyncRcu,
                    ) => Some("fence mapped to weaker original-C11 fence"),
                    Stmt::LoadAcquire { .. }
                    | Stmt::StoreRelease { .. }
                    | Stmt::RcuAssignPointer { .. } => {
                        Some("release/acquire (C11 sw is not A-cumulative)")
                    }
                    Stmt::Xchg { .. }
                    | Stmt::CmpXchg { .. }
                    | Stmt::AtomicOp { .. }
                    | Stmt::SpinLock { .. }
                    | Stmt::SpinUnlock { .. } => Some("read-modify-write mapping"),
                    _ => None,
                };
                if lic.is_some() {
                    return lic;
                }
                // Address dependencies: any register-addressed access.
                let addr_reg = match s {
                    Stmt::ReadOnce { addr, .. } | Stmt::WriteOnce { addr, .. } => {
                        matches!(addr, AddrExpr::Reg(_))
                    }
                    _ => false,
                };
                if addr_reg {
                    return Some("address dependency (C11 orders no dependencies)");
                }
                // Data dependencies: a register feeding a write's value.
                if let Stmt::WriteOnce { value, .. } = s {
                    if expr_has_reg(value) {
                        return Some("data dependency (C11 orders no dependencies)");
                    }
                }
            }
            None
        }
        test.threads.iter().find_map(|t| scan(&t.body))
    }

    /// The synchronizes-with relation (C++11 29.3p2 and 29.8p2-4).
    pub fn sw(x: &Execution) -> Relation {
        Self::sw_with(x, &ExecFacts::new(x))
    }

    /// [`Self::sw`] against a pre-computed facts layer.
    pub fn sw_with(x: &Execution, facts: &ExecFacts<'_>) -> Relation {
        Self::sw_pooled(x, facts).take()
    }

    /// The `sw` computation itself, accumulated in place into storage
    /// from the facts' arena. The p2/29.8 rules all have the shape
    /// `[S] ; r ; [T]` (with fence prefixes/suffixes `[F] ; po ; [W]`
    /// and `[R] ; po ; [F]`), so each is a pair of row restrictions
    /// around at most one composition.
    fn sw_pooled(x: &Execution, facts: &ExecFacts<'_>) -> ArenaRel {
        let pool = facts.arena();
        let n = x.universe();
        let rf = &x.rf;
        let po = &x.po;
        // seq_cst fences are both release and acquire fences.
        let mut rel_fence = acquire_set(pool, n);
        let mut acq_fence = acquire_set(pool, n);
        let sc_fence = facts.fences(FenceKind::Mb);
        for e in facts.fences(FenceKind::Wmb).iter().chain(sc_fence.iter()) {
            rel_fence.insert(e);
        }
        for e in facts.fences(FenceKind::Rmb).iter().chain(sc_fence.iter()) {
            acq_fence.insert(e);
        }
        // Fence prefix [rel_fence] ; po ; [W] and suffix [R] ; po ; [acq_fence].
        let mut fpre = acquire_rel(pool, n);
        fpre.copy_from(po);
        fpre.restrict_domain_in_place(&rel_fence);
        fpre.restrict_range_in_place(facts.writes());
        let mut fpost = acquire_rel(pool, n);
        fpost.copy_from(po);
        fpost.restrict_domain_in_place(facts.reads());
        fpost.restrict_range_in_place(&acq_fence);

        let mut t = acquire_rel(pool, n);
        let mut t2 = acquire_rel(pool, n);
        // (1) release store read by acquire load: [L] ; rf ; [A].
        let mut sw = acquire_rel(pool, n);
        sw.copy_from(rf);
        sw.restrict_domain_in_place(facts.releases());
        sw.restrict_range_in_place(facts.acquires());
        // (2) release fence ; store, read by acquire load.
        fpre.seq_into(rf, &mut t);
        t2.copy_from(&t);
        t2.restrict_range_in_place(facts.acquires());
        sw.union_in_place(&t2);
        // (4) release fence ; store … load ; acquire fence (t still
        // holds fpre ; rf).
        t.seq_into(&fpost, &mut t2);
        sw.union_in_place(&t2);
        // (3) release store read by a load ; acquire fence.
        t.copy_from(rf);
        t.restrict_domain_in_place(facts.releases());
        t.seq_into(&fpost, &mut t2);
        sw.union_in_place(&t2);
        sw
    }

    /// `hb = (po ∪ sw)⁺`.
    pub fn hb(x: &Execution) -> Relation {
        Self::hb_with(x, &ExecFacts::new(x))
    }

    /// [`Self::hb`] against a pre-computed facts layer.
    pub fn hb_with(x: &Execution, facts: &ExecFacts<'_>) -> Relation {
        Self::hb_pooled(x, facts).take()
    }

    /// [`Self::hb_with`] into pooled storage.
    fn hb_pooled(x: &Execution, facts: &ExecFacts<'_>) -> ArenaRel {
        let mut hb = Self::sw_pooled(x, facts);
        hb.union_in_place(&x.po);
        with_scratch(facts.arena(), scratch_words(x.universe()), |row| {
            hb.transitive_close_with(row);
        });
        hb
    }

    /// Whether a total order `S` over `seq_cst` fences exists satisfying
    /// the original fence rules, given `hb` and the facts layer.
    fn sc_order_exists(x: &Execution, hb: &Relation, facts: &ExecFacts<'_>) -> bool {
        let fences: Vec<usize> = x
            .events
            .iter()
            .filter(|e| e.is_fence(FenceKind::Mb) || e.is_fence(FenceKind::SyncRcu))
            .map(|e| e.id)
            .collect();
        if fences.len() < 2 {
            return true;
        }
        // (B, A) ∈ fr ∪ co: B observes co-before A. Iterated as a chain
        // rather than materialising the union.
        let bad = || facts.fr().iter().chain(x.co.iter());
        // must_precede(a, b): a must come before b in S.
        let mut must = acquire_rel(facts.arena(), x.universe());
        for &a in &fences {
            for &b in &fences {
                if a == b {
                    continue;
                }
                if hb.contains(a, b) {
                    must.insert(a, b);
                }
                // conflict(b, a): some write A po-before b, some access B
                // po-after a, with (B, A) ∈ fr ∪ co. Then ¬(b <S a), i.e.
                // a must precede b.
                let conflict = bad().any(|(obs, wr)| {
                    x.events[wr].is_write() && x.po.contains(wr, b) && x.po.contains(a, obs)
                });
                if conflict {
                    must.insert(a, b);
                }
            }
        }
        must.is_acyclic()
    }
}

impl ConsistencyModel for OriginalC11 {
    fn name(&self) -> &str {
        "C11"
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        let pool = facts.arena();
        let n = x.universe();
        let hb = Self::hb_pooled(x, facts);
        // Coherence: irreflexive(hb ; eco?), split as irreflexive(hb)
        // (the `?` identity part) plus irreflexive(hb ; eco).
        if !hb.is_irreflexive() {
            return false;
        }
        let mut eco = acquire_rel(pool, n);
        eco.copy_from(facts.com());
        with_scratch(pool, scratch_words(n), |row| {
            eco.transitive_close_with(row);
        });
        let mut t = acquire_rel(pool, n);
        hb.seq_into(&eco, &mut t);
        if !t.is_irreflexive() {
            return false;
        }
        // Atomicity.
        if !facts.atomicity_ok() {
            return false;
        }
        Self::sc_order_exists(x, &hb, facts)
    }

    fn eval_cost_hint(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::EnumOptions;
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library::{self, Expect};

    #[test]
    fn c11_matches_every_table5_verdict() {
        for pt in library::all() {
            let Some(expect) = pt.c11 else { continue };
            let t = pt.test();
            assert!(OriginalC11::supports(&t), "{}", pt.name);
            let r = check_test(&OriginalC11, &t, &EnumOptions::default()).unwrap();
            let expected = match expect {
                Expect::Allowed => Verdict::Allowed,
                Expect::Forbidden => Verdict::Forbidden,
            };
            assert_eq!(r.verdict, expected, "{} (paper C11 column)", pt.name);
        }
    }

    #[test]
    fn rcu_tests_are_unsupported() {
        for name in ["RCU-MP", "RCU-deferred-free"] {
            let t = library::by_name(name).unwrap().test();
            assert!(!OriginalC11::supports(&t));
        }
    }

    #[test]
    fn divergence_set_matches_section_5_2() {
        // The paper highlights exactly these LKMM/C11 divergences among
        // the Table 5 rows (§5.2).
        let diverging: Vec<&str> = library::table5()
            .filter(|pt| pt.c11.is_some() && pt.c11 != Some(pt.lkmm))
            .map(|pt| pt.name)
            .collect();
        assert_eq!(
            diverging,
            vec!["LB+ctrl+mb", "WRC+wmb+acq", "PeterZ", "RWC+mbs"],
        );
        // The extended library adds two more: dependency-based ordering
        // (out-of-thin-air) and A-cumulativity, both absent from C11.
        let extended: Vec<&str> = library::all()
            .iter()
            .filter(|pt| !pt.in_table5 && pt.c11.is_some() && pt.c11 != Some(pt.lkmm))
            .map(|pt| pt.name)
            .collect();
        assert_eq!(extended, vec!["LB+datas", "ISA2+po-rel+po-rel+acq"]);
    }

    #[test]
    fn every_library_divergence_is_licensed() {
        // The conformance whitelist must cover every §5.2 divergence …
        for pt in library::all() {
            let Some(expect) = pt.c11 else { continue };
            if expect == pt.lkmm {
                continue;
            }
            let t = pt.test();
            assert!(
                OriginalC11::divergence_license(&t).is_some(),
                "{} diverges but has no license",
                pt.name
            );
        }
        // … while plain ONCE-only programs get none: the mapping keeps
        // relaxed accesses relaxed, so their verdicts must coincide.
        for name in ["MP", "SB", "2+2W"] {
            let t = library::by_name(name).unwrap().test();
            assert!(
                OriginalC11::divergence_license(&t).is_none(),
                "{name} should not be licensed to diverge"
            );
        }
    }

    #[test]
    fn sw_exists_only_with_synchronisation() {
        use lkmm_exec::enumerate::enumerate;
        let t = library::by_name("MP").unwrap().test();
        for x in enumerate(&t, &EnumOptions::default()).unwrap() {
            assert!(OriginalC11::sw(&x).is_empty(), "relaxed MP has no sw");
        }
        let t2 = library::by_name("WRC+po-rel+rmb").unwrap().test();
        let execs = enumerate(&t2, &EnumOptions::default()).unwrap();
        assert!(execs.iter().any(|x| !OriginalC11::sw(x).is_empty()));
    }
}
