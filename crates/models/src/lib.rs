//! Comparison consistency models: SC, x86-TSO, ARMv8, Power and original C11.
//!
//! The paper's Table 5 compares the LKMM verdict with the C11 verdict
//! obtained through the LK→C11 primitive mapping of P0124 \[68\]:
//!
//! | LK primitive            | C11                                  |
//! |-------------------------|--------------------------------------|
//! | `READ_ONCE`             | relaxed load                         |
//! | `WRITE_ONCE`            | relaxed store                        |
//! | `smp_load_acquire`      | acquire load                         |
//! | `smp_store_release`     | release store                        |
//! | `smp_rmb`               | `atomic_thread_fence(acquire)`       |
//! | `smp_wmb`               | `atomic_thread_fence(release)`       |
//! | `smp_mb`                | `atomic_thread_fence(seq_cst)`       |
//! | dependencies            | *nothing* (C11 has no dependencies)  |
//! | RCU primitives          | *no equivalent* ("–" in Table 5)     |
//!
//! [`OriginalC11`] implements the *pre-strengthening* C11 of C++11 §29.3,
//! in which a `seq_cst` fence does **not** restore sequential consistency
//! (the paper's Figure 13 discussion): the SC axiom is an existential
//! search for a total order `S` over `seq_cst` fences satisfying the
//! fence/read and fence/write rules. That is exactly what makes
//! `RWC+mbs` and `PeterZ` *allowed* under C11 while the LKMM forbids
//! them, and `SB+mbs` forbidden under both.

pub mod armv8;
pub mod c11;
pub mod power;
pub mod sc;
pub mod tso;

pub use armv8::Armv8;
pub use c11::OriginalC11;
pub use power::Power;
pub use sc::Sc;
pub use tso::X86Tso;
