//! Sequential consistency.

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution};
use lkmm_relation::acquire_rel;

/// Lamport's sequential consistency: all events execute in some total
/// order consistent with program order — axiomatically,
/// `acyclic(po ∪ rf ∪ co ∪ fr)` plus RMW atomicity
/// (`empty(rmw ∩ (fre ; coe))`).
///
/// The atomicity conjunct is part of what "interleaving semantics"
/// means once the language has `cmpxchg`/`atomic_fetch_add`: an RMW's
/// read and write occupy one indivisible step of the total order, so no
/// foreign write can fall between them. Without it SC would *allow*
/// two CASes to both claim the same old value — an outcome no
/// interleaving can produce — and SC would fail to be a subset of
/// x86-TSO on RMW-bearing tests, breaking the envelope-ordering oracle.
///
/// # Examples
///
/// ```
/// use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
/// use lkmm_models::Sc;
///
/// let mp = lkmm_litmus::library::by_name("MP").unwrap().test();
/// let r = check_test(&Sc, &mp, &EnumOptions::default()).unwrap();
/// assert_eq!(r.verdict, Verdict::Forbidden); // no weak behaviour under SC
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Sc;

impl ConsistencyModel for Sc {
    fn name(&self) -> &str {
        "SC"
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        if !facts.atomicity_ok() {
            return false;
        }
        let mut order = acquire_rel(facts.arena(), x.po.universe());
        order.copy_from(&x.po);
        order.union_in_place(facts.com());
        order.is_acyclic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::EnumOptions;
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library;

    #[test]
    fn sc_forbids_every_weak_idiom() {
        for name in ["SB", "MP", "LB", "WRC", "RWC", "PeterZ-No-Synchro"] {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Sc, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Forbidden, "{name}");
            assert!(r.allowed > 0, "{name}: SC must allow some execution");
        }
    }

    #[test]
    fn sc_is_stricter_than_lkmm_on_candidates() {
        use lkmm_exec::enumerate::for_each_execution;
        let lkmm = lkmm::Lkmm::new();
        for pt in library::all() {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                if Sc.allows(x) {
                    assert!(lkmm.allows(x), "{}: SC-allowed but LKMM-forbidden\n{x}", pt.name);
                }
            })
            .unwrap();
        }
    }
}
